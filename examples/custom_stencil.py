"""Bring your own benchmark: a 1-D heat-diffusion stencil.

Shows how a downstream user writes a new program against the public API
and measures what short-circuiting buys: each time step computes the two
boundary cells and the interior separately and concatenates them -- the
hotspot pattern in one dimension.

Run:  python examples/custom_stencil.py
"""

import numpy as np

from repro.compiler import compile_fun
from repro.gpu import A100, CostModel
from repro.ir import FunBuilder, f32, run_fun
from repro.mem.exec import MemExecutor
from repro.symbolic import Var

ALPHA = 0.25


def build(steps: int):
    n = Var("n")
    b = FunBuilder("heat1d")
    b.size_param("n")
    u0 = b.param("u", f32(n))

    lp = b.loop(count=steps, carried=[("uc", u0)], index="t")
    u = lp["uc"]

    # Interior cells: u'[i] = u[i] + a*(u[i-1] - 2u[i] + u[i+1]).
    mp = lp.map_(n - 2, index="i")
    c = mp.idx + 1
    mid = mp.index(u, [c])
    lap = mp.binop(
        "+",
        mp.index(u, [c - 1]),
        mp.binop("-", mp.index(u, [c + 1]), mp.binop("*", mid, 2.0)),
    )
    out = mp.binop("+", mid, mp.binop("*", lap, ALPHA))
    mp.returns(out)
    (interior,) = mp.end()

    # Dirichlet boundaries: endpoints keep their value.
    left = lp.replicate([1], lp.index(u, [0]))
    right = lp.replicate([1], lp.index(u, [n - 1]))
    nxt = lp.concat(left, interior, right)
    lp.returns(nxt)
    (res,) = lp.end()
    b.returns(res)
    return b.build()


def reference(u: np.ndarray, steps: int) -> np.ndarray:
    cur = u.astype(np.float32).copy()
    for _ in range(steps):
        nxt = cur.copy()
        nxt[1:-1] = cur[1:-1] + np.float32(ALPHA) * (
            cur[:-2] - 2 * cur[1:-1] + cur[2:]
        )
        cur = nxt
    return cur


def main():
    steps, nv = 50, 4096
    fun = build(steps)
    u = np.sin(np.linspace(0, np.pi, nv)).astype(np.float32)
    expected = reference(u, steps)
    (interp_out,) = run_fun(fun, n=nv, u=u.copy())
    assert np.allclose(interp_out, expected, atol=1e-4)

    cm = CostModel(A100)
    print(f"1-D heat stencil, n={nv}, {steps} steps")
    for sc in (False, True):
        compiled = compile_fun(fun, short_circuit=sc)
        ex = MemExecutor(compiled.fun)
        vals, stats = ex.run(n=nv, u=u.copy())
        got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
        assert np.allclose(got, expected, atol=1e-4)
        label = "opt  " if sc else "unopt"
        extra = (
            f" ({compiled.sc_stats.committed} short-circuits)" if sc else ""
        )
        print(
            f"  {label}: {stats.bytes_total:>10,} B moved, "
            f"{stats.launches:>4} launches, simulated "
            f"{cm.total_time(stats)*1e6:8.1f} us{extra}"
        )


if __name__ == "__main__":
    main()
