"""Index functions: O(1) layout transformations over one memory block.

Reproduces the paper's fig. 3 step by step, then shows the generalized
LMAD slices that express NW's anti-diagonal blocks on a flat matrix.

Run:  python examples/index_functions.py
"""

import numpy as np

from repro.lmad import IndexFn, lmad
from repro.symbolic import Prover, Var


def fig3_walkthrough():
    print("=== paper fig. 3: a chain of O(1) transformations ===")
    p = Prover()
    arr = np.arange(64)

    as_ = IndexFn.row_major([64])
    print(f"let as = iota 64            -- ixfn {as_}")
    bs = as_.reshape([8, 8], p)
    print(f"let bs = unflatten 8 8 as   -- ixfn {bs}")
    cs = bs.transpose()
    print(f"let cs = transpose bs       -- ixfn {cs}")
    ds = cs.slice_triplets([(1, 2, 2), (4, 4, 1)])
    print(f"let ds = cs[1:3:2, 4:8:1]   -- ixfn {ds}")
    es = ds.flatten(p).slice_triplets([(2, 6, 1)])
    print(f"let es = (flatten ds)[2:]   -- ixfn {es}")
    print()
    print("None of these manifested an array: they are metadata on as_mem.")
    off = es.apply_concrete([5], {})
    print(f"es[5] resolves by applying L1, unranking, applying L2: "
          f"flat offset {off} (paper: 59)")
    assert off == 59
    assert arr[es.gather_offsets({})][5] == 59
    print()


def nw_slices():
    print("=== generalized LMAD slicing: NW anti-diagonals ===")
    n, b, i = Var("n"), Var("b"), Var("i")
    rvert = lmad(i * b, [(i + 1, n * b - b), (b + 1, n)])
    w = lmad(i * b + n + 1, [(i + 1, n * b - b), (b, n), (b, 1)])
    print(f"R_vert = A[{rvert}]  -- all vertical bars of anti-diagonal i")
    print(f"W      = A[{w}]  -- all blocks of anti-diagonal i")

    # Concretely, for q=3, b=2 (n=7), anti-diagonal i=1:
    env = {"n": 7, "b": 2, "i": 1}
    nv = 7
    A = np.arange(nv * nv)
    f = IndexFn.row_major([nv * nv]).lmad_slice(rvert.substitute(env))
    bars = A[f.gather_offsets({})]
    print(f"\nconcrete (q=3, b=2, i=1): vertical bars =\n{bars}")
    print("(each row is one bar: 3 elements spaced a full matrix row apart)")


if __name__ == "__main__":
    fig3_walkthrough()
    nw_slices()
