"""Quickstart: write an array program, compile it, watch copies disappear.

The program is the paper's introductory example (fig. 1, left): add to each
diagonal element of an n x n matrix the corresponding element of the first
row.  Race-free functional style needs two parallel operations -- a map
producing a fresh array X, and an update writing X into the diagonal slice
-- and the array short-circuiting optimization makes the second one free.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_fun
from repro.gpu import A100, CostModel
from repro.ir import FunBuilder, f32, run_fun
from repro.ir.pretty import pretty_fun
from repro.lmad import lmad
from repro.mem.exec import MemExecutor
from repro.symbolic import Var


def build_program():
    n = Var("n")
    b = FunBuilder("diag_add")
    b.size_param("n")
    A = b.param("A", f32(n * n))

    # O(1) generalized slices: the diagonal (stride n+1) and first row.
    diag = b.lmad_slice(A, lmad(0, [(n, n + 1)]), name="diag")
    row0 = b.lmad_slice(A, lmad(0, [(n, 1)]), name="row0")

    # let X = map2 (\d r -> d + r) A[diag] A[row0]
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx])
    r = mp.index(row0, [mp.idx])
    s = mp.binop("+", d, r)
    mp.returns(s)
    (X,) = mp.end()

    # let A[diag] = X        -- the circuit point
    A2 = b.update_lmad(A, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    return b.build()


def main():
    fun = build_program()
    print("source program:")
    print(pretty_fun(fun))
    print()

    nv = 1024
    A = np.arange(nv * nv, dtype=np.float32)

    # Reference (purely functional) semantics.
    (expected,) = run_fun(fun, n=nv, A=A.copy())

    cm = CostModel(A100)
    for short_circuit in (False, True):
        compiled = compile_fun(fun, short_circuit=short_circuit)
        ex = MemExecutor(compiled.fun)
        vals, stats = ex.run(n=nv, A=A.copy())
        got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
        assert np.allclose(got, expected), "pipelines must agree!"
        label = "with short-circuiting" if short_circuit else "baseline"
        print(f"--- {label} ---")
        print(stats.summary())
        print(f"simulated A100 time : {cm.total_time(stats)*1e6:.2f} us")
        if short_circuit:
            print(f"short-circuits      : {compiled.sc_stats.committed}")
        print()

    print("Both runs produce identical results; the optimized one moved "
          "no bytes for the update.")


if __name__ == "__main__":
    main()
