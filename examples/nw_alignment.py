"""Needleman-Wunsch end to end: the paper's running example as a user would
run it.

Builds the blocked/skewed NW program, compiles it with and without array
short-circuiting, verifies both against the NumPy reference, and prints a
mini version of the paper's table I for the A100 and MI100 device models.

Run:  python examples/nw_alignment.py [q] [b]
"""

import sys

import numpy as np

from repro.bench.harness import compile_both, row_for, measure_dataset, validate
from repro.bench.programs import nw
from repro.gpu import A100, MI100
from repro.mem.exec import MemExecutor


def main():
    qv = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    bv = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    nv = qv * bv + 1
    print(f"NW on a {nv} x {nv} score matrix ({qv} x {qv} blocks of {bv})")

    compiled = compile_both(nw)
    unopt, opt = compiled
    print(f"short-circuits committed: {opt.sc_stats.committed} "
          f"(one per skewed loop; requires the fig. 9 proof)")
    print(f"validated vs reference  : {validate(nw, 'small', compiled)}")

    # Run for real at this size and show the traffic difference.
    inp = nw.inputs_for(qv, bv)
    ref = nw.reference(inp["A"], nv)
    for label, c in (("unoptimized", unopt), ("optimized  ", opt)):
        ex = MemExecutor(c.fun)
        vals, stats = ex.run(
            **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}
        )
        got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
        assert np.allclose(got, ref), "wrong alignment scores!"
        print(f"{label}: {stats.bytes_total:>12,} bytes moved, "
              f"{stats.launches:>5} kernel launches, "
              f"{stats.elided_copies:>4} copies elided")

    # Paper-style table rows at this size.
    stats = measure_dataset(nw, (qv, bv), compiled)
    print()
    print(f"{'device':8s} {'ref':>10s} {'unopt':>8s} {'opt':>8s} {'impact':>8s}")
    for device in (A100, MI100):
        row = row_for(nw, str(nv), (qv, bv), device, stats)
        print(f"{row.device:8s} {row.ref_ms:9.3f}ms {row.unopt_rel:7.2f}x "
              f"{row.opt_rel:7.2f}x {row.impact:7.2f}x")


if __name__ == "__main__":
    main()
