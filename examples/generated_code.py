"""See the imperative code the optimization recovers (paper section IV-A).

Compiles the fig. 1 diagonal program with and without short-circuiting and
prints the generated pseudo-CUDA side by side: the unoptimized version
allocates a temporary and launches a copy kernel; the optimized version is
the single kernel an imperative programmer would have written, with the
LMAD flat-offset expressions inlined at every access.

Run:  python examples/generated_code.py
"""

from repro import FunBuilder, compile_fun, f32
from repro.lmad import lmad
from repro.mem.codegen import generate_code
from repro.symbolic import Var


def build():
    n = Var("n")
    b = FunBuilder("diag_add")
    b.size_param("n")
    A = b.param("A", f32(n * n))
    diag = b.lmad_slice(A, lmad(0, [(n, n + 1)]), name="diag")
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx])
    r = mp.index(A, [mp.idx])
    mp.returns(mp.binop("+", d, r))
    (X,) = mp.end()
    A2 = b.update_lmad(A, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    return b.build()


def main():
    fun = build()
    for sc, label in ((False, "WITHOUT short-circuiting"), (True, "WITH short-circuiting")):
        print(f"{'=' * 20} {label} {'=' * 20}")
        print(generate_code(compile_fun(fun, short_circuit=sc).fun))
        print()


if __name__ == "__main__":
    main()
