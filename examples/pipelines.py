"""Pipelines: drive the pass manager, read the trace, pick a preset.

``compile_fun`` is a thin wrapper over :class:`repro.pipeline.PassManager`
running one of four named presets (``unopt``, ``sc``, ``sc+fuse``,
``full``).  This example compiles one program under every preset and
shows what the pipeline layer gives you beyond the compiled function:

* the per-pass :class:`repro.pipeline.PipelineTrace` -- wall-clock
  timings, IR statement / allocation deltas and structured rejection
  diagnostics, JSON-serializable and renderable as a table (the same
  object ``python -m repro.bench --explain`` prints);
* direct :class:`~repro.pipeline.PassManager` use with a hand-built pass
  list, including the automatic re-run of an invalidated analysis;
* the ``REPRO_PRINT_AFTER`` environment variable (try
  ``REPRO_PRINT_AFTER=short_circuit python examples/pipelines.py`` to
  dump the IR right after short-circuiting).

Run:  python examples/pipelines.py
"""

from repro import compile_fun, f32, pretty_fun
from repro.ir import FunBuilder
from repro.ir import ast as A
from repro.mem.memir import iter_stmts
from repro.pipeline import (
    PRESETS,
    CompileContext,
    PassManager,
    preset_pipeline,
)
from repro.symbolic import Var


def build_program():
    """The quickstart program: map into the diagonal of a matrix."""
    n = Var("n")
    b = FunBuilder("diag_add")
    b.size_param("n")
    A = b.param("A", f32(n * n))
    from repro.lmad import lmad

    diag = b.lmad_slice(A, lmad(0, [(n, n + 1)]), name="diag")
    row0 = b.lmad_slice(A, lmad(0, [(n, 1)]), name="row0")
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx])
    r = mp.index(row0, [mp.idx])
    mp.returns(mp.binop("+", d, r))
    (X,) = mp.end()
    A2 = b.update_lmad(A, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    return b.build()


def main():
    fun = build_program()

    # -- every preset, one line each ----------------------------------
    print("preset      allocs  stmts  sc  schedule")
    for preset in PRESETS:
        c = compile_fun(fun, pipeline=preset)
        stmts = list(iter_stmts(c.fun.body))
        allocs = sum(isinstance(s.exp, A.Alloc) for s in stmts)
        committed = c.sc_stats.committed if c.sc_stats else 0
        schedule = " -> ".join(c.trace.executed_pass_names())
        print(f"{preset:<11s} {allocs:>6d} {len(stmts):>5d} "
              f"{committed:>3d}  {schedule}")
    print()

    # -- the full story of one compilation ----------------------------
    c = compile_fun(fun, pipeline="full", verify=True)
    print(c.trace.render())
    print()
    print(f"verified checkpoints: {', '.join(c.verify_reports)}")
    print(f"trace JSON: {len(c.trace.to_json())} bytes, "
          f"{len(c.trace.records)} records")
    print()

    # -- driving the manager by hand ----------------------------------
    # A custom pipeline is just a pass list; the manager re-runs any
    # analysis an earlier pass invalidated before a pass that needs it.
    ctx = CompileContext(source=fun, verify=False)
    trace = PassManager(preset_pipeline("sc"), name="sc").run(ctx)
    print(f"hand-run 'sc' pipeline: {len(trace.records)} records, "
          f"{trace.compile_seconds * 1e3:.2f}ms")
    print()
    print("final IR (full preset):")
    print(pretty_fun(c.fun))


if __name__ == "__main__":
    main()
