"""Integration tests for the compilation pipeline driver."""

import numpy as np

from repro import compile_fun, f32, FunBuilder, parse_fun, pretty_fun, run_fun
from repro.ir import ast as A
from repro.mem.exec import MemExecutor
from repro.symbolic import Var

n = Var("n")


def simple_fun():
    b = FunBuilder("f")
    x = b.param("x", f32(n))
    big = b.param("big", f32(n * 2))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (X,) = mp.end()
    out = b.update_slice(big, [(0, n, 1)], X)
    b.returns(out)
    return b.build()


class TestPipeline:
    def test_source_not_mutated(self):
        fun = simple_fun()
        before = pretty_fun(fun)
        compile_fun(fun)
        assert pretty_fun(fun) == before

    def test_stages_recorded(self):
        c = compile_fun(simple_fun())
        for stage in ("typecheck", "introduce_memory", "hoist", "last_use",
                      "short_circuit", "dead_allocs"):
            assert stage in c.stage_seconds
        assert c.compile_seconds > 0
        assert c.sc_seconds <= c.compile_seconds

    def test_unopt_has_no_sc_stage(self):
        c = compile_fun(simple_fun(), short_circuit=False)
        assert c.sc_stats is None
        assert "short_circuit" not in c.stage_seconds

    def test_dead_allocations_removed_after_sc(self):
        c = compile_fun(simple_fun())
        assert c.sc_stats.committed == 1
        # The map result's buffer was re-homed; its alloc must be gone.
        allocs = [s for s in c.fun.body.stmts if isinstance(s.exp, A.Alloc)]
        assert len(allocs) == 0

    def test_public_api_end_to_end(self):
        fun = simple_fun()
        x = np.arange(4, dtype=np.float32)
        big = np.zeros(8, dtype=np.float32)
        (expected,) = run_fun(fun, x=x.copy(), big=big.copy())
        c = compile_fun(fun)
        ex = MemExecutor(c.fun)
        vals, stats = ex.run(x=x.copy(), big=big.copy())
        got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
        assert np.allclose(got, expected)
        assert stats.copy_traffic() == 0

    def test_parse_compile_run(self):
        """Text -> AST -> compiled -> executed, all through repro's API."""
        fun = parse_fun(
            "fun f(x : [n]f32, big : [n*2]f32) =\n"
            "  let (y : *[n]f32) =\n"
            "    map (i < n) {\n"
            "      let (v : f32) = x[i]\n"
            "      let (w : f32) = v + 1.0\n"
            "      in (w)\n"
            "    }\n"
            "  let (out : *[n*2]f32) = big with [0:n:1] = y\n"
            "  in (out)"
        )
        c = compile_fun(fun)
        assert c.sc_stats.committed == 1
        ex = MemExecutor(c.fun)
        vals, _ = ex.run(
            x=np.arange(3, dtype=np.float32), big=np.zeros(6, dtype=np.float32)
        )
        got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
        assert list(got) == [1, 2, 3, 0, 0, 0]

    def test_splitting_toggle_plumbs_through(self):
        """Disabling dimension splitting must reach the structural prover:
        NW's structural tier then proves nothing, and every surviving
        commit is a polyhedral-fallback recovery."""
        from repro.bench.programs import nw

        fun = nw.build()
        strong = compile_fun(fun, enable_splitting=True).sc_stats
        weak = compile_fun(fun, enable_splitting=False).sc_stats
        assert strong.committed == 6, strong.summary()
        assert strong.tiers.get("structural", 0) > 0, strong.summary()
        assert weak.committed == 6, weak.summary()
        assert weak.tiers.get("structural", 0) == 0, weak.summary()
        assert weak.tiers.get("polyhedral", 0) > 0, weak.summary()
