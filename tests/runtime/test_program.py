"""Program differentials: pooled serving must be invisible to the cost
model -- bit-identical outputs, signatures, and footprints versus a
fresh per-call executor, on every benchmark, under both executor tiers.
"""

import importlib

import numpy as np
import pytest

import repro.runtime as rt
from repro.mem.exec import MemExecutor
from repro.runtime.serve import _run_uncached

BENCHMARKS = ["nw", "lud", "hotspot", "lbm", "optionpricing", "locvolcalib", "nn"]


def bench(name):
    mod = importlib.import_module(f"repro.bench.programs.{name}")
    return mod, mod.inputs_for(*mod.TEST_DATASETS["small"])


class TestPooledDifferential:
    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("vectorize", [False, True],
                             ids=["interp", "vec"])
    def test_pooled_matches_fresh(self, name, vectorize):
        mod, inputs = bench(name)
        program = rt.compile(mod.build(), pipeline="full")
        ref_outs, ref_stats = _run_uncached(
            program.fun, inputs, vectorize=vectorize
        )
        for _ in range(2):  # second round runs against a warm pool
            outs, stats = program.run(
                inputs, vectorize=vectorize, memoize=False
            )
            for a, b in zip(ref_outs, outs):
                assert np.array_equal(np.asarray(a), np.asarray(b))
            assert stats.signature() == ref_stats.signature()
            assert stats.traffic_signature() == ref_stats.traffic_signature()
            assert stats.peak_bytes == ref_stats.peak_bytes

    @pytest.mark.parametrize("name", ["nw", "lud"])
    def test_unopt_pipeline_also_agrees(self, name):
        mod, inputs = bench(name)
        program = rt.compile(mod.build(), pipeline="unopt")
        ref_outs, ref_stats = _run_uncached(program.fun, inputs)
        outs, stats = program.run(inputs, memoize=False)
        for a, b in zip(ref_outs, outs):
            assert np.array_equal(np.asarray(a), np.asarray(b))
        assert stats.signature() == ref_stats.signature()

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_nan_poisoned_pool_still_agrees(self, name):
        """Zero-fill-on-acquire: even a pool whose idle buffers were
        filled with NaN between requests serves bit-identical results."""
        mod, inputs = bench(name)
        program = rt.compile(mod.build(), pipeline="full")
        first, _ = program.run(inputs, memoize=False)
        program.pool.poison()
        second, _ = program.run(inputs, memoize=False)
        for a, b in zip(first, second):
            assert np.array_equal(np.asarray(a), np.asarray(b))


class TestPoolIntegration:
    def test_second_run_hits_the_pool(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        _, st1 = program.run(inputs, memoize=False)
        assert st1.pool_misses > 0 and st1.pool_hits == 0
        _, st2 = program.run(inputs, memoize=False)
        assert st2.pool_hits > 0 and st2.pool_misses == 0
        assert st2.pool_hit_rate == 1.0

    def test_outputs_do_not_alias_pool_memory(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        outs1, _ = program.run(inputs, memoize=False)
        snap = [np.asarray(o).copy() for o in outs1]
        program.run(inputs, memoize=False)  # reuses the same buffers
        for o, s in zip(outs1, snap):
            assert np.array_equal(np.asarray(o), s)

    def test_reserve_provisions_for_workers(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        program.reserve(inputs, workers=3)
        skey = program.shape_key(inputs)
        plan = program.pool.plan(skey)
        assert plan is not None and plan.reserved_copies == 3
        assert program.pool.free_buffers() >= 3 * len(plan.manifest)

    def test_warm_timing_is_stamped(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        _, stats = program.run(inputs)
        assert stats.warm_call_seconds > 0
        assert stats.cold_compile_seconds == program.cold_compile_seconds


class TestResponseMemo:
    def test_repeat_request_is_recalled(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        outs1, st1 = program.run(inputs)
        outs2, st2 = program.run(inputs)
        assert program.memo_hits == 1
        for a, b in zip(outs1, outs2):
            assert np.array_equal(np.asarray(a), np.asarray(b))
            if isinstance(a, np.ndarray):
                assert a is not b  # fresh copy, caller-owned
        assert st2.signature() == st1.signature()
        assert st2.pool_hits == 0 and st2.pool_misses == 0

    def test_recalled_response_is_mutation_safe(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        outs1, _ = program.run(inputs)
        np.asarray(outs1[0]).fill(-1)
        outs2, _ = program.run(inputs)
        assert not np.array_equal(np.asarray(outs1[0]), np.asarray(outs2[0]))

    def test_different_inputs_are_distinct_requests(self):
        mod, _ = bench("hotspot")
        program = rt.compile(mod.build())
        a = mod.inputs_for(*mod.TEST_DATASETS["small"])
        program.run(a)
        b = {
            k: (v * 2 if isinstance(v, np.ndarray) else v)
            for k, v in a.items()
        }
        outs_b, _ = program.run(b)
        assert program.memo_hits == 0
        ref_b, _ = _run_uncached(program.fun, b)
        for x, y in zip(ref_b, outs_b):
            assert np.array_equal(np.asarray(x), np.asarray(y))

    def test_memoize_false_forces_execution(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        program.run(inputs)
        _, st = program.run(inputs, memoize=False)
        assert program.memo_hits == 0
        assert st.pool_hits + st.pool_misses > 0


class TestProgramHandle:
    def test_cache_state_travels(self):
        mod, _ = bench("hotspot")
        from repro.compiler import compile_fun

        compile_fun(mod.build())  # seed the cache
        program = rt.compile(mod.build())
        assert program.cache_state == "memory"
        assert program.cold_compile_seconds > 0

    def test_executor_reuses_shared_offset_cache(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        program.run(inputs, memoize=False)
        assert len(program._offs_cache) > 0
        before = len(program._offs_cache)
        program.run(inputs, memoize=False)
        assert len(program._offs_cache) == before

    def test_fresh_executor_still_works_without_pool(self):
        """compile() must not change plain MemExecutor usage."""
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        ex = MemExecutor(program.fun)
        vals, stats = ex.run(**dict(inputs))
        assert vals and stats.pool_hits == 0 and stats.pool_misses == 0
