"""BufferPool semantics: exact-size reuse, pristine-on-acquire, leases."""

import numpy as np
import pytest

from repro.runtime import BufferPool


class TestAcquireRelease:
    def test_miss_then_hit(self):
        pool = BufferPool()
        buf, reused = pool.acquire(16, "f32")
        assert not reused
        assert buf.dtype == np.float32 and buf.size == 16
        assert pool.misses == 1 and pool.hits == 0
        pool.release(buf)
        buf2, reused2 = pool.acquire(16, "f32")
        assert reused2 and buf2 is buf
        assert pool.hits == 1

    def test_exact_size_keying(self):
        """A 16-element buffer never serves a 17-element request -- the
        peak-footprint accounting must see the exact nbytes a fresh
        ``np.zeros`` would have had."""
        pool = BufferPool()
        buf, _ = pool.acquire(16, "f32")
        pool.release(buf)
        other, reused = pool.acquire(17, "f32")
        assert not reused
        same_size_other_dtype, reused = pool.acquire(16, "i64")
        assert not reused

    def test_reused_buffer_is_zeroed(self):
        pool = BufferPool()
        buf, _ = pool.acquire(8, "f32")
        buf[:] = 7.5
        pool.release(buf)
        buf2, reused = pool.acquire(8, "f32")
        assert reused
        assert np.array_equal(buf2, np.zeros(8, dtype=np.float32))

    def test_zero_false_skips_the_fill(self):
        pool = BufferPool()
        buf, _ = pool.acquire(8, "f32")
        buf[:] = 7.5
        pool.release(buf)
        buf2, reused = pool.acquire(8, "f32", zero=False)
        assert reused
        assert np.all(buf2 == 7.5)

    @pytest.mark.parametrize("dtype", ["f32", "f64", "i64", "bool"])
    def test_poisoned_pool_hands_out_pristine_memory(self, dtype):
        pool = BufferPool()
        buf, _ = pool.acquire(8, dtype)
        pool.release(buf)
        pool.poison()
        assert np.any(buf != 0)
        buf2, reused = pool.acquire(8, dtype)
        assert reused
        assert np.count_nonzero(buf2) == 0

    def test_counts(self):
        pool = BufferPool()
        a, _ = pool.acquire(4, "f32")
        b, _ = pool.acquire(4, "f32")
        pool.release(a)
        assert pool.free_buffers() == 1
        assert pool.free_bytes() == 16
        pool.release(b)
        assert pool.free_buffers() == 2


class TestLease:
    def test_buffers_return_on_close(self):
        pool = BufferPool()
        with pool.lease() as lease:
            lease.acquire(8, "f32")
            lease.acquire(4, "i64")
            assert pool.free_buffers() == 0
            assert lease.misses == 2 and lease.hits == 0
        assert pool.free_buffers() == 2

    def test_manifest_records_the_draw(self):
        pool = BufferPool()
        with pool.lease() as lease:
            lease.acquire(8, "f32")
            lease.acquire(4, "i64")
            manifest = lease.manifest()
        assert manifest == (
            (np.dtype(np.float32).str, 8),
            (np.dtype(np.int64).str, 4),
        )

    def test_concurrent_leases_never_share(self):
        pool = BufferPool()
        l1, l2 = pool.lease(), pool.lease()
        a, _ = l1.acquire(8, "f32")
        b, _ = l2.acquire(8, "f32")
        assert a is not b
        l1.close()
        l2.close()

    def test_closed_lease_rejects_acquire(self):
        pool = BufferPool()
        lease = pool.lease()
        lease.close()
        with pytest.raises(AssertionError):
            lease.acquire(8, "f32")


class TestReserve:
    def _plan(self, pool):
        with pool.lease() as lease:
            lease.acquire(8, "f32")
            lease.acquire(8, "f32")
            lease.acquire(4, "i64")
            pool.note_plan("shape", lease.manifest())

    def test_reserve_provisions_copies(self):
        pool = BufferPool()
        self._plan(pool)
        created = pool.reserve("shape", 2)
        # 3 buffers already idle from the planning lease; two leases'
        # worth is 6, so reserve tops up by 3.
        assert created == 3
        assert pool.free_buffers() == 6

    def test_reserve_is_idempotent_per_level(self):
        pool = BufferPool()
        self._plan(pool)
        pool.reserve("shape", 2)
        assert pool.reserve("shape", 2) == 0
        assert pool.reserve("shape", 1) == 0
        assert pool.reserve("shape", 3) == 3

    def test_reserve_without_plan_is_a_noop(self):
        pool = BufferPool()
        assert pool.reserve("missing", 4) == 0
