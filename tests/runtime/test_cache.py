"""The persistent program cache: keys, layers, invalidation."""

import pytest

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32
from repro.ir.pretty import pretty_fun
from repro.runtime import (
    COLD,
    DISK_HIT,
    MEM_HIT,
    ProgramCache,
    compile_cached,
    make_key,
    program_cache,
)
from repro.runtime.program import _resolve_flags
from repro.symbolic import Var

n = Var("n")


def simple_fun(assume_upper=None):
    b = FunBuilder("simple")
    b.size_param("n")
    if assume_upper is not None:
        b.assume_upper("n", assume_upper)
    x = b.param("x", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (y,) = mp.end()
    b.returns(y)
    return b.build()


def _key(fun, label="full"):
    sc, fu, re_, label = _resolve_flags(label, True, True, True)
    return make_key(fun, label, sc, fu, re_, True, True, False)


class TestMemoryLayer:
    def test_repeat_compile_is_a_hit_returning_the_same_object(self):
        c1 = compile_fun(simple_fun())
        c2 = compile_fun(simple_fun())
        assert c1 is c2
        pc = program_cache()
        assert pc.hits == 1 and pc.misses == 1

    def test_cache_false_forces_a_cold_compile(self):
        c1 = compile_fun(simple_fun())
        c2 = compile_fun(simple_fun(), cache=False)
        assert c1 is not c2

    def test_env_var_off_disables_caching(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGCACHE", "off")
        c1 = compile_fun(simple_fun())
        c2 = compile_fun(simple_fun())
        assert c1 is not c2

    def test_distinct_pipelines_do_not_collide(self):
        c_full = compile_fun(simple_fun(), pipeline="full")
        c_unopt = compile_fun(simple_fun(), pipeline="unopt")
        assert c_full is not c_unopt
        assert compile_fun(simple_fun(), pipeline="unopt") is c_unopt

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="bogus"):
            compile_cached(simple_fun(), pipeline="bogus")

    def test_lru_eviction(self):
        pc = ProgramCache(max_entries=2)
        funs = [simple_fun(), simple_fun(8), simple_fun(9)]
        for f in funs:
            pc.get_or_compile(_key(f), lambda f=f: compile_fun(f, cache=False))
        assert len(pc) == 2
        # The oldest entry (no assumption) was evicted.
        _, state, _ = pc.get_or_compile(
            _key(funs[0]), lambda: compile_fun(funs[0], cache=False)
        )
        assert state == COLD


class TestKeyAnatomy:
    def test_assumptions_are_part_of_the_key(self):
        """Two compiles of the same body under different dataset
        invariants must never share an artifact (their provers answer
        different queries)."""
        k_plain = _key(simple_fun())
        k_assume = _key(simple_fun(assume_upper=1024))
        assert k_plain.source == k_assume.source
        assert k_plain.assumptions != k_assume.assumptions
        assert k_plain.digest() != k_assume.digest()
        c1 = compile_fun(simple_fun())
        c2 = compile_fun(simple_fun(assume_upper=1024))
        assert c1 is not c2

    def test_structurally_identical_builds_share_a_key(self):
        assert _key(simple_fun()).digest() == _key(simple_fun()).digest()

    def test_flags_differentiate(self):
        fun = simple_fun()
        sc, fu, re_, label = _resolve_flags(None, True, True, False)
        k1 = make_key(fun, label, sc, fu, re_, True, True, False)
        k2 = _key(fun)
        assert k1.digest() != k2.digest()

    def test_options_differentiate(self):
        fun = simple_fun()
        k1 = make_key(fun, "full", True, True, True, True, True, False)
        k2 = make_key(fun, "full", True, True, True, True, True, True)
        assert k1.digest() != k2.digest()


class TestDiskLayer:
    def test_round_trip_skips_every_pass(self, tmp_path):
        """A disk hit rebuilds the compiled program without running the
        pipeline: its trace is the single ``progcache`` record, while
        the IR pretty-print is byte-identical to the cold compile's."""
        fun = simple_fun()
        key = _key(fun)

        pc1 = ProgramCache(disk_dir=tmp_path)
        cold, state, cold_s = pc1.get_or_compile(
            key, lambda: compile_fun(fun, cache=False), disk=True
        )
        assert state == COLD
        assert pc1.disk_stores == 1
        cold_passes = len(cold.trace.records)
        assert cold_passes > 1

        # A fresh process: empty memory layer, same disk directory.
        pc2 = ProgramCache(disk_dir=tmp_path)
        warm, state, warm_cold_s = pc2.get_or_compile(
            key, lambda: pytest.fail("disk hit must not recompile"),
            disk=True,
        )
        assert state == DISK_HIT
        assert pc2.disk_hits == 1
        assert len(warm.trace.records) == 1
        rec = warm.trace.records[0]
        assert rec.name == "progcache"
        assert rec.detail["passes_skipped"] == cold_passes
        assert pretty_fun(warm.fun) == pretty_fun(cold.fun)
        assert warm.pipeline == cold.pipeline
        assert warm_cold_s == pytest.approx(cold_s)
        # The disk hit is promoted into the memory layer.
        again, state, _ = pc2.get_or_compile(
            key, lambda: pytest.fail("must not recompile"), disk=True
        )
        assert state == MEM_HIT and again is warm

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        import repro.runtime.cache as cache_mod

        fun = simple_fun()
        key = _key(fun)
        pc1 = ProgramCache(disk_dir=tmp_path)
        pc1.get_or_compile(key, lambda: compile_fun(fun, cache=False), disk=True)

        monkeypatch.setattr(cache_mod, "CACHE_VERSION", 999)
        pc2 = ProgramCache(disk_dir=tmp_path)
        _, state, _ = pc2.get_or_compile(
            key, lambda: compile_fun(fun, cache=False), disk=True
        )
        assert state == COLD
        assert pc2.disk_hits == 0

    def test_corrupt_entry_degrades_to_cold(self, tmp_path):
        fun = simple_fun()
        key = _key(fun)
        pc1 = ProgramCache(disk_dir=tmp_path)
        pc1.get_or_compile(key, lambda: compile_fun(fun, cache=False), disk=True)
        for p in tmp_path.glob("*.pkl"):
            p.write_bytes(b"not a pickle")
        pc2 = ProgramCache(disk_dir=tmp_path)
        _, state, _ = pc2.get_or_compile(
            key, lambda: compile_fun(fun, cache=False), disk=True
        )
        assert state == COLD
        assert pc2.disk_errors == 1

    def test_clear_disk_removes_entries(self, tmp_path):
        fun = simple_fun()
        pc = ProgramCache(disk_dir=tmp_path)
        pc.get_or_compile(
            _key(fun), lambda: compile_fun(fun, cache=False), disk=True
        )
        assert list(tmp_path.glob("*.pkl"))
        pc.clear(disk=True)
        assert not list(tmp_path.glob("*.pkl"))
        assert len(pc) == 0
