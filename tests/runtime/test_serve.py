"""The serving harness and its thread-safety contract."""

import importlib
import threading

import numpy as np

import repro.runtime as rt
from repro.runtime.serve import (
    _percentile,
    _run_uncached,
    check_pooled_identical,
    measure_serve,
    serve_program,
)


def bench(name):
    mod = importlib.import_module(f"repro.bench.programs.{name}")
    return mod, mod.inputs_for(*mod.TEST_DATASETS["small"])


class TestServeProgram:
    def test_metrics_shape(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        out = serve_program(program, inputs, requests=10, workers=2)
        assert out["requests"] == 10 and out["workers"] == 2
        assert out["throughput_rps"] > 0
        assert out["p50_ms"] <= out["p99_ms"]
        assert 0.0 <= out["pool_hit_rate"] <= 1.0
        assert out["memo_hits"] + 1 >= out["requests"] - out["workers"]

    def test_single_flight_coalesces_the_cold_herd(self):
        """With an empty memo, concurrent identical requests share one
        production run instead of each paying for its own."""
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        serve_program(program, inputs, requests=12, workers=4)
        # reserve() produced once; every served request was recalled.
        assert program.memo_hits == 12
        assert program.calls == 13

    def test_worker_errors_propagate(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        bad = dict(inputs)
        bad.pop(next(iter(bad)))
        try:
            serve_program(program, bad, requests=2, workers=1)
        except Exception:
            return
        raise AssertionError("missing-input error was swallowed")


class TestConcurrencySmoke:
    def test_barrier_synchronized_race(self):
        """Two workers drive the same Program through real (unmemoized)
        pooled executions, released by a barrier so their leases overlap
        maximally; every response must equal the single-threaded
        reference bit-for-bit, with signature-identical stats."""
        mod, inputs = bench("lbm")
        program = rt.compile(mod.build())
        ref_outs, ref_stats = _run_uncached(program.fun, inputs)
        program.reserve(inputs, workers=2)

        rounds = 4
        barrier = threading.Barrier(2)
        failures = []

        def worker():
            try:
                for _ in range(rounds):
                    barrier.wait()
                    outs, stats = program.run(inputs, memoize=False)
                    for a, b in zip(ref_outs, outs):
                        assert np.array_equal(np.asarray(a), np.asarray(b))
                    assert stats.signature() == ref_stats.signature()
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures

    def test_concurrent_leases_get_disjoint_buffers(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        program.reserve(inputs, workers=2)
        l1, l2 = program.pool.lease(), program.pool.lease()
        a, _ = l1.acquire(8, "f32")
        b, _ = l2.acquire(8, "f32")
        assert a is not b
        l1.close()
        l2.close()


class TestMeasureServe:
    def test_small_end_to_end(self):
        mod, _ = bench("hotspot")
        out = measure_serve(
            mod, mod.TEST_DATASETS["small"],
            requests=8, workers=2, cold_samples=1,
        )
        assert out["ok"]
        assert out["outputs_equal_interp"] and out["outputs_equal_vec"]
        assert out["signature_equal_interp"] and out["signature_equal_vec"]
        assert out["cold_call_s"] > 0 and out["warm_call_s"] > 0
        assert out["warm_100_s"] < out["cold_100_s"]
        assert out["pool_hits_total"] > 0

    def test_check_pooled_identical_bypasses_the_memo(self):
        mod, inputs = bench("hotspot")
        program = rt.compile(mod.build())
        program.run(inputs)  # populate the memo
        res = check_pooled_identical(program, inputs)
        assert res["ok"]
        assert program.memo_hits == 0


class TestPercentile:
    def test_nearest_rank(self):
        lat = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(lat, 0.0) == 1.0
        assert _percentile(lat, 1.0) == 4.0
        assert _percentile(lat, 0.5) == 3.0
        assert _percentile([], 0.5) == 0.0
