"""Generated-C structure: fused kernels lower to single-loop bodies.

The point of emitting from the *post-pipeline* memory IR is that the
fusion pass's work survives lowering: a producer inlined into its
consumer must yield one C loop over the thread space with the producer's
scalar expression spliced inline -- not a loop per original kernel and
not a materialized intermediate.
"""

import numpy as np
import pytest

from repro.backend import NativeEngine, native_enabled
from repro.backend.cemit import KernelSpec
from repro.compiler import compile_fun
from repro.mem.exec import MemExecutor
from tests.opt.conftest import random_two_stage_pipeline

pytestmark = pytest.mark.skipif(
    not native_enabled(), reason="no C compiler available"
)


def _fused_specs(fun, engine):
    """KernelSpecs of outermost map statements carrying FusedRecords."""
    specs = []
    for stmt in fun.body.stmts:
        if getattr(stmt, "fused", ()) and id(stmt) in engine.plans:
            spec = engine.plans[id(stmt)]
            if isinstance(spec, KernelSpec):
                specs.append(spec)
    return specs


def test_fused_two_stage_pipeline_is_single_loop():
    # Seed 2 lowers fully (no mixed-kind min/max) and fuses.
    fun = compile_fun(
        random_two_stage_pipeline(np.random.RandomState(2)),
        pipeline="full",
    ).fun
    eng = NativeEngine()
    ex = MemExecutor(fun, native=eng)
    data = np.random.RandomState(0)
    ex.run(n=33, xs=data.randn(33).astype(np.float32))
    specs = _fused_specs(fun, eng)
    assert specs, "pipeline did not fuse or did not lower"
    for spec in specs:
        # Exactly one loop: the thread loop.  The inlined producer
        # contributes scalar statements, never a second loop or a
        # buffer round-trip.
        assert spec.source.count("for (") == 1, spec.source


def test_fused_benchmark_kernel_is_single_loop():
    from repro.bench.programs import nn

    fun = compile_fun(nn.build(), pipeline="full").fun
    eng = NativeEngine()
    ex = MemExecutor(fun, native=eng)
    inp = nn.inputs_for(*nn.TEST_DATASETS["small"])
    ex.run(**inp)
    specs = _fused_specs(fun, eng)
    assert specs, "nn did not fuse or did not lower"
    for spec in specs:
        assert spec.source.count("for (") == 1, spec.source


def test_counter_stores_present():
    """The emitted C charges the simulated counters itself -- traffic
    accounting is compiled in, not replayed in Python."""
    fun = compile_fun(
        random_two_stage_pipeline(np.random.RandomState(2)),
        pipeline="full",
    ).fun
    eng = NativeEngine()
    ex = MemExecutor(fun, native=eng)
    data = np.random.RandomState(0)
    ex.run(n=33, xs=data.randn(33).astype(np.float32))
    (spec,) = _fused_specs(fun, eng)
    assert "C[1] +=" in spec.source  # bytes read
    assert "C[2] +=" in spec.source  # bytes written
    assert "C[3] +=" in spec.source  # flops
