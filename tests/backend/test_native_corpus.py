"""The fusion corpus, replayed through the native tier.

The 30-seed random two-stage pipelines from ``tests/opt`` exercise the
emitter over a much wider space of scalar expressions and LMAD read
patterns (reflected indices, double read sites) than the hand-written
benchmarks.  Every seed must be bit-identical between the native tier
and the interpreter; the seeds whose scalar code avoids
``min``/``max`` over mixed scalar kinds (Python semantics make those
data-dependently *typed*, so the emitter refuses them and the
vectorized tier serves the launch) must actually lower to C.
"""

import numpy as np
import pytest

from repro.backend import NativeEngine, native_enabled
from repro.compiler import compile_fun
from repro.mem.exec import MemExecutor
from tests.opt.conftest import random_two_stage_pipeline

pytestmark = pytest.mark.skipif(
    not native_enabled(), reason="no C compiler available"
)

N = 33
SEEDS = range(30)


def _inputs(seed):
    data = np.random.RandomState(1000 + seed)
    return {"n": N, "xs": data.randn(N).astype(np.float32)}


def _run(fun, seed, **kw):
    ex = MemExecutor(fun, **kw)
    vals, stats = ex.run(**_inputs(seed))
    outs = [
        np.asarray(ex.mem[v.mem][v.ixfn.gather_offsets({})]) for v in vals
    ]
    return outs, stats


@pytest.mark.parametrize("seed", SEEDS)
def test_corpus_native_matches_interpreter(seed):
    fun = compile_fun(
        random_two_stage_pipeline(np.random.RandomState(seed)),
        pipeline="full",
    ).fun
    outs_n, st_n = _run(fun, seed, native=NativeEngine())
    outs_i, st_i = _run(fun, seed, vectorize=False)
    for a, b in zip(outs_n, outs_i):
        assert np.array_equal(a, b), seed
    assert st_n.signature() == st_i.signature(), seed
    assert st_n.peak_bytes == st_i.peak_bytes, seed


def test_corpus_coverage():
    """Every seed either lowers fully or falls back for the one
    documented reason; a fixed-seed corpus lowers deterministically."""
    lowered = 0
    for seed in SEEDS:
        fun = compile_fun(
            random_two_stage_pipeline(np.random.RandomState(seed)),
            pipeline="full",
        ).fun
        _, stats = _run(fun, seed, native=NativeEngine())
        assert stats.native_launches or stats.vec_launches, seed
        if stats.native_launches and not stats.vec_launches:
            lowered += 1
    assert lowered >= 5, lowered
