"""Differential tests for the native C executor tier.

The contract under test is the tier-equivalence invariant extended to
three tiers: for every benchmark and every pipeline preset, the native
tier's outputs and every simulated :class:`ExecStats` quantity --
``signature()``, ``traffic_signature()``, ``peak_bytes`` -- are
bit-identical to the vectorized and interpreted tiers.  The native tier
may *decline* work (emission rejects a construct, a launch's structure
changes) but must never change it.
"""

import numpy as np
import pytest

from repro.backend import NativeEngine, native_enabled
from repro.bench.harness import materialize
from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun
from repro.mem.exec import MemExecutor

pytestmark = pytest.mark.skipif(
    not native_enabled(), reason="no C compiler available"
)

BENCHMARKS = all_benchmarks()

#: Benchmarks whose outermost maps all lower to C under the full
#: pipeline (optionpricing keeps one exp-using map on the vectorized
#: tier; locvolcalib's tridiagonal solves use Python-semantics min/max
#: on mixed scalar kinds, which the emitter refuses).
FULLY_NATIVE = {"nw", "lud", "hotspot", "lbm", "nn"}


def _run(fun, **kw):
    inp = kw.pop("inputs")
    ex = MemExecutor(fun, **kw)
    vals, stats = ex.run(
        **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}
    )
    outs = [np.asarray(materialize(ex, v)) for v in vals]
    return outs, stats


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
@pytest.mark.parametrize("preset", ["unopt", "sc", "sc+fuse", "full"])
def test_native_matches_other_tiers(name, preset):
    module = BENCHMARKS[name]
    compiled = compile_fun(module.build(), pipeline=preset)
    inp = module.inputs_for(*module.TEST_DATASETS["small"])

    outs_n, st_n = _run(compiled.fun, inputs=inp, native=NativeEngine())
    outs_v, st_v = _run(compiled.fun, inputs=inp)
    for a, b in zip(outs_n, outs_v):
        assert np.array_equal(a, b)
    assert st_n.signature() == st_v.signature()
    assert st_n.traffic_signature() == st_v.traffic_signature()
    assert st_n.peak_bytes == st_v.peak_bytes
    if name in FULLY_NATIVE:
        assert st_n.native_launches > 0
        assert st_n.vec_launches == st_n.interp_launches == 0


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_native_matches_interpreter(name):
    module = BENCHMARKS[name]
    compiled = compile_fun(module.build(), pipeline="full")
    inp = module.inputs_for(*module.TEST_DATASETS["small"])

    outs_n, st_n = _run(compiled.fun, inputs=inp, native=NativeEngine())
    outs_i, st_i = _run(compiled.fun, inputs=inp, vectorize=False)
    for a, b in zip(outs_n, outs_i):
        assert np.array_equal(a, b)
    assert st_n.signature() == st_i.signature()
    assert st_n.peak_bytes == st_i.peak_bytes


def test_plan_sharing_and_permanent_rejection_cache():
    """Plans are emitted once per statement and shared across executors;
    a second run re-launches the compiled kernels without re-emission."""
    module = BENCHMARKS["nn"]
    compiled = compile_fun(module.build(), pipeline="full")
    inp = module.inputs_for(200)
    eng = NativeEngine()
    _run(compiled.fun, inputs=inp, native=eng)
    emitted = dict(eng.plans)
    secs = eng.codegen_seconds
    outs2, st2 = _run(compiled.fun, inputs=inp, native=eng)
    assert eng.plans == emitted  # nothing re-planned
    assert eng.codegen_seconds == secs  # nothing re-emitted
    assert st2.native_launches > 0
