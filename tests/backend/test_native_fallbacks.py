"""Degradation paths: the native tier must never be load-bearing.

Switching it off (``REPRO_NATIVE=off``), losing the C compiler,
corrupting the on-disk kernel cache, or a launch whose structure
diverges from the cached plan must all leave every program running
bit-identically on the remaining tiers -- and the tier bookkeeping
(``native_launches``, ``codegen_seconds``) must stay out of the stats
signature so tiers remain interchangeable.
"""

import ctypes

import numpy as np
import pytest

import repro.backend.build as build
import repro.runtime as rt
from repro.backend import NativeEngine, maybe_engine, native_enabled
from repro.backend.cemit import KernelSpec
from repro.mem.exec import MemExecutor
from repro.mem.stats import ExecStats

needs_cc = pytest.mark.skipif(
    not native_enabled(), reason="no C compiler available"
)


def _nn():
    from repro.bench.programs import nn

    return nn, nn.inputs_for(*nn.TEST_DATASETS["small"])


# -- gating -------------------------------------------------------------
class TestGating:
    def test_env_off_disables_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "off")
        assert not native_enabled()
        assert maybe_engine() is None

    def test_env_off_program_still_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "off")
        mod, inputs = _nn()
        program = rt.compile(mod.build(), pipeline="full")
        outs, stats = program.run(inputs, memoize=False)
        assert stats.native_launches == 0
        ref, ref_stats = program.run(inputs, vectorize=False, memoize=False)
        for a, b in zip(outs, ref):
            assert np.array_equal(np.asarray(a), np.asarray(b))
        assert stats.signature() == ref_stats.signature()

    @needs_cc
    def test_run_native_kwarg(self):
        mod, inputs = _nn()
        program = rt.compile(mod.build(), pipeline="full")
        _, st_off = program.run(inputs, native=False, memoize=False)
        assert st_off.native_launches == 0
        _, st_on = program.run(inputs, memoize=False)
        assert st_on.native_launches > 0
        assert st_on.signature() == st_off.signature()

    def test_missing_cc_warns_once(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setattr(build, "_cc_info", (None, ""))
        monkeypatch.setattr(build, "_warned", False)
        assert maybe_engine() is None
        assert maybe_engine() is None
        err = capsys.readouterr().err
        assert err.count("no C compiler") == 1


# -- kernel cache -------------------------------------------------------
TRIVIAL = (
    "void repro_kernel(long long W, const long long* ia,"
    " const double* fa, char** bufs, long long* C)"
    " { (void)ia; (void)fa; (void)bufs; C[0] += W; }\n"
)


def _call(fn, w):
    counters = np.zeros(6, dtype=np.int64)
    fn(
        ctypes.c_longlong(w),
        None,
        None,
        None,
        counters.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong)),
    )
    return int(counters[0])


@needs_cc
class TestKernelCache:
    def test_disk_hit_across_memo_clear(self):
        fn, digest = build.compile_kernel(TRIVIAL)
        assert _call(fn, 7) == 7
        so = build.cache_dir() / f"{digest}.so"
        mtime = so.stat().st_mtime_ns
        build.clear_memo()
        fn2, digest2 = build.compile_kernel(TRIVIAL)
        assert digest2 == digest
        assert so.stat().st_mtime_ns == mtime  # loaded, not rebuilt
        assert _call(fn2, 3) == 3

    def test_corrupt_so_rebuilds_cold(self):
        fn, digest = build.compile_kernel(TRIVIAL)
        so = build.cache_dir() / f"{digest}.so"
        # Replace via a fresh inode (as an interrupted writer from
        # another process would): the damaged entry must be unlinked
        # and rebuilt cold, not trusted.
        so.unlink()
        so.write_bytes(b"this is not a shared object")
        build.clear_memo()
        fn2, digest2 = build.compile_kernel(TRIVIAL)
        assert digest2 == digest
        assert _call(fn2, 11) == 11  # rebuilt and loadable

    def test_source_is_cached_beside_object(self):
        _, digest = build.compile_kernel(TRIVIAL)
        csrc = build.cache_dir() / f"{digest}.c"
        assert csrc.read_text() == TRIVIAL


# -- per-launch fallback ------------------------------------------------
@needs_cc
def test_structure_mismatch_falls_back_per_launch():
    mod, inputs = _nn()
    from repro.compiler import compile_fun

    fun = compile_fun(mod.build(), pipeline="full").fun
    eng = NativeEngine()
    ex = MemExecutor(fun, native=eng)
    vals, st = ex.run(**{k: (v.copy() if hasattr(v, "copy") else v)
                         for k, v in inputs.items()})
    assert st.native_launches > 0

    # Poison every cached plan with a directive for a host scalar that
    # does not exist: the next launch's structure check fails and must
    # fall back -- per launch, without unplanning the statement or
    # corrupting the run.
    poisoned = 0
    for spec in eng.plans.values():
        if isinstance(spec, KernelSpec):
            spec.int_dirs = list(spec.int_dirs) + [
                ("env", "__poison__", "pyint")
            ]
            poisoned += 1
    assert poisoned > 0

    ex2 = MemExecutor(fun, native=eng)
    vals2, st2 = ex2.run(**{k: (v.copy() if hasattr(v, "copy") else v)
                            for k, v in inputs.items()})
    assert st2.native_launches == 0
    assert st2.vec_launches + st2.interp_launches > 0
    assert st2.signature() == st.signature()
    for a, b in zip(vals, vals2):
        assert np.array_equal(
            np.asarray(ex.mem[a.mem][a.ixfn.gather_offsets({})]),
            np.asarray(ex2.mem[b.mem][b.ixfn.gather_offsets({})]),
        )


# -- stats bookkeeping --------------------------------------------------
def test_tier_counters_stay_out_of_signature():
    s = ExecStats()
    base = s.signature()
    s.native_launches = 7
    s.codegen_seconds = 1.5
    assert s.signature() == base


def test_native_hit_rate():
    s = ExecStats()
    assert s.native_hit_rate == 0.0
    s.native_launches = 3
    assert s.native_hit_rate == 1.0
    s.vec_launches = 2
    s.interp_launches = 1
    assert s.native_hit_rate == 0.5
