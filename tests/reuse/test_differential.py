"""Reuse on vs off must be invisible to everything but the allocator.

For every benchmark, both executor tiers, the coalesced program's
outputs are bit-identical to the unconstrained one's and the traffic
signature (bytes moved, flops, launches) is untouched -- only the
allocation columns of the stats may differ.
"""

import numpy as np

import pytest

from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun
from repro.mem.exec import MemExecutor

BENCHMARKS = all_benchmarks()


def _outputs(ex, vals):
    out = []
    for v in vals:
        if hasattr(v, "mem"):
            out.append(np.asarray(ex.mem[v.mem][v.ixfn.gather_offsets({})]))
        else:
            out.append(np.asarray(v))
    return out


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_reuse_preserves_outputs_and_traffic(name):
    module = BENCHMARKS[name]
    args = module.TEST_DATASETS["small"]
    inp = module.inputs_for(*args)
    fun_on = compile_fun(module.build(), short_circuit=True).fun
    fun_off = compile_fun(
        module.build(), short_circuit=True, reuse=False
    ).fun
    for vectorize in (True, False):
        runs = []
        for fun in (fun_on, fun_off):
            ex = MemExecutor(fun, vectorize=vectorize)
            vals, stats = ex.run(
                **{
                    k: (v.copy() if hasattr(v, "copy") else v)
                    for k, v in inp.items()
                }
            )
            runs.append((_outputs(ex, vals), stats))
        (out_on, st_on), (out_off, st_off) = runs
        for a, b in zip(out_on, out_off):
            assert np.array_equal(a, b), (name, vectorize)
        assert st_on.traffic_signature() == st_off.traffic_signature(), (
            name,
            vectorize,
        )
