"""Shared programs for the memory-reuse corpus.

The positive programs are two-stage map/reduce chains where the first
stage's buffer is provably dead before the second stage's first touch --
the minimal shape the coalescer exists for.  The negative programs are
the documented soundness boundaries: a double-buffered loop (merging the
per-iteration buffer would clobber the previous iteration's values) and
an ``if`` whose branch allocations escape through an existential result.
"""

from __future__ import annotations

from repro.ir import FunBuilder, f32
from repro.ir import ast as A
from repro.symbolic import Var

n = Var("n")
m = Var("m")


def two_stage(first_width, second_width, declare_sizes=()) -> A.Fun:
    """``X = map(2*x); s = reduce X; Y = map(y+s); t = reduce Y``.

    ``X``'s block dies at the first reduce, before ``Y``'s first touch,
    so the two allocations are merge candidates; whether the merge lands
    (and in which mode) depends on the provable relation between
    ``first_width`` and ``second_width``.
    """
    b = FunBuilder("two_stage")
    for name in declare_sizes:
        b.size_param(name)
    if {"n", "m"} <= set(declare_sizes):
        b.assume_lower("m", 1)
        b.assume_upper("m", n)
    x = b.param("x", f32(first_width))
    y = b.param("y", f32(second_width))
    mp = b.map_(first_width, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (X,) = mp.end()
    s = b.reduce("+", X)
    mp2 = b.map_(second_width, index="j")
    mp2.returns(mp2.binop("+", mp2.index(y, [mp2.idx]), s))
    (Y,) = mp2.end()
    t = b.reduce("+", Y)
    b.returns(t)
    return b.build()


def double_buffer_loop() -> A.Fun:
    """A loop whose body allocates the next state from the carried one.

    Each iteration reads the previous iteration's buffer while writing a
    fresh one -- the classic double-buffering shape.  The body allocation
    escapes into the carried state, so it must never be coalesced or
    freed inside the loop.
    """
    b = FunBuilder("dbuf")
    k = b.size_param("k")
    x = b.param("x", f32(n))
    lp = b.loop(count=k, carried=[("Acur", x)], index="i")
    mp = lp.map_(n, index="j")
    mp.returns(mp.binop("+", mp.index(lp["Acur"], [mp.idx]), 1.0))
    (X,) = mp.end()
    lp.returns(X)
    (A2,) = lp.end()
    b.returns(A2)
    return b.build()


def if_escape() -> A.Fun:
    """Branch allocations escaping an ``if`` through an existential.

    Both branch results alias the ``if``'s existential block; they stay
    live until the last read through it at the enclosing level, so the
    branches themselves must not free (or donate) them.
    """
    b = FunBuilder("ifesc")
    x = b.param("x", f32(n))
    c0 = b.binop("<", b.reduce("+", x), 0.0)
    br = b.if_(c0)
    mp = br.then_builder.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (X,) = mp.end()
    br.then_builder.returns(X)
    mp = br.else_builder.map_(n, index="j")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 3.0))
    (Y,) = mp.end()
    br.else_builder.returns(Y)
    (Z,) = br.end()
    s = b.reduce("+", Z)
    mp2 = b.map_(n, index="l")
    mp2.returns(mp2.binop("+", mp2.index(x, [mp2.idx]), s))
    (W,) = mp2.end()
    t = b.reduce("+", W)
    b.returns(t)
    return b.build()
