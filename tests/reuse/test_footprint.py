"""Footprint accounting: the four peak measurements must agree exactly.

The same lifetime model is implemented four times -- interpreted
executor, vectorized engine, dry mode, and the static estimator -- and
nothing short of exact equality keeps them honest.  The reduction test
pins the paper-level claim: reuse shrinks the peak on most benchmarks,
with the block-recurrence ones (NW, LUD) saving at least a quarter.
"""

import numpy as np

import pytest

from repro.bench.__main__ import PERF_DATASETS
from repro.bench.harness import compile_both, measure_footprint
from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun
from repro.mem.exec import MemExecutor
from repro.mem.memir import iter_stmts
from repro.reuse import estimate_peak

BENCHMARKS = all_benchmarks()


def _fresh(inp):
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_peak_agreement_across_tiers_and_estimator(name):
    module = BENCHMARKS[name]
    args = module.TEST_DATASETS["small"]
    for compiled in compile_both(module):
        inp = module.inputs_for(*args)
        ex_i = MemExecutor(compiled.fun, vectorize=False)
        ex_i.run(**_fresh(inp))
        ex_v = MemExecutor(compiled.fun)
        ex_v.run(**_fresh(inp))
        _, dry = MemExecutor(compiled.fun, mode="dry").run(
            **module.dry_inputs_for(*args)
        )
        est = estimate_peak(compiled.fun, inp)
        assert (
            ex_i.stats.peak_bytes
            == ex_v.stats.peak_bytes
            == dry.peak_bytes
            == est.peak_bytes
        ), (name, ex_i.stats.peak_bytes, ex_v.stats.peak_bytes,
            dry.peak_bytes, est.peak_bytes)
        # The estimator's allocation totals are exact too, not just the
        # high-water mark.
        assert est.alloc_bytes == ex_i.stats.alloc_bytes
        assert est.alloc_count == ex_i.stats.alloc_count


def test_footprint_drops_on_most_benchmarks():
    """Peak memory improves on most benchmarks, by either mechanism:
    coalescing shrinks the optimized pipeline's own allocations below
    their naive sum, or short-circuiting eliminates the buffers outright
    (NW's widened-slice commits leave it with *zero* intermediate
    allocations, so its within-pipeline coalesce saving is vacuously 0
    while its peak drops to the parameters alone)."""
    reduced = []
    savings = {}
    for name, module in BENCHMARKS.items():
        fp = measure_footprint(module, PERF_DATASETS[name])
        opt, unopt = fp["opt"], fp["unopt"]
        alloc_shed = (
            1.0 - opt["alloc_bytes"] / unopt["alloc_bytes"]
            if unopt["alloc_bytes"]
            else 0.0
        )
        savings[name] = max(opt["saving"], alloc_shed)
        if (
            opt["peak_bytes"] < opt["naive_bytes"]
            or opt["peak_bytes"] < unopt["peak_bytes"]
        ):
            reduced.append(name)
    assert len(reduced) >= 4, (reduced, savings)
    assert max(savings["nw"], savings["lud"]) >= 0.25, savings


def test_frees_are_deletable_annotations():
    """Stripping every ``mem_frees`` must not change what runs -- only
    the high-water mark (which can then only go up).  LUD's unoptimized
    pipeline is the one whose peak lands between two host-level
    statements, so the strict inequality is observable there."""
    module = BENCHMARKS["lud"]
    args = PERF_DATASETS["lud"]
    inp = module.inputs_for(*args)

    annotated = compile_fun(module.build(), short_circuit=False)
    # cache=False: this compile's IR is mutated below, and the program
    # cache would otherwise hand back the same (shared) CompiledFun.
    stripped = compile_fun(module.build(), short_circuit=False, cache=False)
    for s in iter_stmts(stripped.fun.body):
        s.mem_frees = ()

    ex_a = MemExecutor(annotated.fun)
    vals_a, _ = ex_a.run(**_fresh(inp))
    ex_s = MemExecutor(stripped.fun)
    vals_s, _ = ex_s.run(**_fresh(inp))
    for a, b in zip(vals_a, vals_s):
        assert np.array_equal(
            ex_a.mem[a.mem][a.ixfn.gather_offsets({})],
            ex_s.mem[b.mem][b.ixfn.gather_offsets({})],
        )
    assert ex_a.stats.traffic_signature() == ex_s.stats.traffic_signature()
    assert ex_s.stats.peak_bytes > ex_a.stats.peak_bytes
