"""The coalescer: merge modes, soundness boundaries, IR hygiene.

Positive cases assert the exact merge mode the size relation licenses
(equal / fits / widened) and that the rewritten program still computes
the same values.  Negative cases are the boundaries the pass documents:
unprovable size relations, double-buffered loops, and branch allocations
escaping an ``if``.
"""

import numpy as np

from repro.analysis import verify_fun
from repro.compiler import compile_fun
from repro.ir import ast as A
from repro.mem.exec import MemExecutor
from repro.mem.memir import array_bindings, iter_stmts
from repro.reuse.liveranges import LiveRanges

from tests.reuse.conftest import double_buffer_loop, if_escape, m, n, two_stage


def _allocs(fun):
    return {
        s.names[0]: s for s in iter_stmts(fun.body) if isinstance(s.exp, A.Alloc)
    }


def _run_scalar(fun, **inputs):
    ex = MemExecutor(fun)
    vals, _ = ex.run(**inputs)
    return vals[0]


# ----------------------------------------------------------------------
# Merge modes
# ----------------------------------------------------------------------
def test_equal_sizes_merge():
    c = compile_fun(two_stage(n, n), short_circuit=False)
    assert [r[2] for r in c.reuse_stats.records] == ["equal"]
    (cand, survivor), = c.reuse_stats.mapping.items()
    allocs = _allocs(c.fun)
    assert cand not in allocs, "merged-away alloc statement must be removed"
    assert survivor in allocs
    # Every binding of the merged block was rewritten to the survivor.
    assert all(
        b.mem != cand for b in array_bindings(c.fun).values()
    ), "stale binding references the merged-away block"
    x = np.arange(5, dtype=np.float32)
    y = np.arange(5, dtype=np.float32) * 3
    got = _run_scalar(c.fun, x=x, y=y, n=5)
    assert np.isclose(got, (y + (2 * x).sum()).sum())


def test_smaller_candidate_fits():
    c = compile_fun(
        two_stage(n, m, declare_sizes=("n", "m")), short_circuit=False
    )
    assert [r[2] for r in c.reuse_stats.records] == ["fits"]
    assert c.reuse_stats.widened == 0
    x = np.arange(6, dtype=np.float32)
    y = np.ones(4, dtype=np.float32)
    got = _run_scalar(c.fun, x=x, y=y, n=6, m=4)
    assert np.isclose(got, (y + (2 * x).sum()).sum())


def test_larger_candidate_widens_survivor():
    c = compile_fun(
        two_stage(m, n, declare_sizes=("n", "m")), short_circuit=False
    )
    assert [r[2] for r in c.reuse_stats.records] == ["widened"]
    assert c.reuse_stats.widened == 1
    # The surviving alloc was rewritten to the candidate's (larger) size.
    (cand, survivor), = c.reuse_stats.mapping.items()
    size = _allocs(c.fun)[survivor].exp.size
    assert "n" in size.free_vars()
    x = np.ones(4, dtype=np.float32)
    y = np.arange(6, dtype=np.float32)
    got = _run_scalar(c.fun, x=x, y=y, n=6, m=4)
    assert np.isclose(got, (y + (2 * x).sum()).sum())


def test_unrelated_sizes_rejected():
    # No provable relation between n and m: the merge must be rejected
    # even though the lifetimes are disjoint.
    c = compile_fun(two_stage(n, m), short_circuit=False)
    assert not c.reuse_stats.mapping
    assert c.reuse_stats.rejected.get("size", 0) >= 1


def test_reuse_passes_leave_program_verifiable():
    for fun in (two_stage(n, n), double_buffer_loop(), if_escape()):
        report = verify_fun(compile_fun(fun, short_circuit=False).fun)
        assert report.ok(), report.render()


# ----------------------------------------------------------------------
# Soundness boundaries
# ----------------------------------------------------------------------
def test_double_buffer_loop_not_merged_or_freed():
    c = compile_fun(double_buffer_loop(), short_circuit=False)
    assert not c.reuse_stats.mapping
    # The per-iteration buffer escapes into the carried state ...
    ranges = LiveRanges(c.fun)
    escaping = set().union(
        *(bl.escaping for bl in ranges.per_block.values())
    )
    allocs = _allocs(c.fun)
    assert escaping & set(allocs)
    # ... so no statement anywhere frees it.
    freed = set().union(*(s.mem_frees for s in iter_stmts(c.fun.body)))
    assert not (freed & escaping)
    ex = MemExecutor(c.fun)
    vals, _ = ex.run(x=np.arange(6, dtype=np.float32), k=4, n=6)
    out = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
    assert np.array_equal(out, np.arange(6, dtype=np.float32) + 4)


def test_if_escaping_aliases_not_merged_or_freed_in_branch():
    c = compile_fun(if_escape(), short_circuit=False)
    assert not c.reuse_stats.mapping
    ranges = LiveRanges(c.fun)
    escaping = set().union(
        *(bl.escaping for bl in ranges.per_block.values())
    )
    assert escaping, "branch results must escape through the existential"
    # Escaping branch blocks are freed only at the enclosing level, after
    # the last read through the existential -- never inside the branch.
    fun_if = next(
        s.exp for s in c.fun.body.stmts if isinstance(s.exp, A.If)
    )
    for branch in (fun_if.then_block, fun_if.else_block):
        for s in iter_stmts(branch):
            assert not (set(s.mem_frees) & escaping)
    freed_at_top = set().union(*(s.mem_frees for s in c.fun.body.stmts))
    assert escaping <= freed_at_top


# ----------------------------------------------------------------------
# The reuse=False escape hatch
# ----------------------------------------------------------------------
def test_reuse_off_is_pure_accounting():
    on = compile_fun(two_stage(n, n), short_circuit=False)
    off = compile_fun(two_stage(n, n), short_circuit=False, reuse=False)
    assert off.reuse_stats is None
    assert all(not s.mem_frees for s in iter_stmts(off.fun.body))
    x = np.arange(5, dtype=np.float32)
    y = np.arange(5, dtype=np.float32) * 3
    a = _run_scalar(on.fun, x=x.copy(), y=y.copy(), n=5)
    b = _run_scalar(off.fun, x=x.copy(), y=y.copy(), n=5)
    assert a == b
