"""PassManager mechanics: keys, ledger, checkpoints, snapshots."""

from __future__ import annotations

import pytest

from repro import compile_fun, f32, pretty_fun
from repro.ir import FunBuilder
from repro.pipeline import (
    AnalysisPass,
    CompileContext,
    HoistPass,
    IntroduceMemoryPass,
    Pass,
    PassManager,
    PRINT_AFTER_ENV,
    ShortCircuitPass,
    preset_pipeline,
)
from repro.pipeline.trace import KIND_ANALYSIS, KIND_VERIFY
from repro.symbolic import Var

n = Var("n")


def simple_fun():
    """A map into a slice of a bigger array: one short-circuit chance."""
    b = FunBuilder("f")
    x = b.param("x", f32(n))
    big = b.param("big", f32(n * 2))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (X,) = mp.end()
    out = b.update_slice(big, [(0, n, 1)], X)
    b.returns(out)
    return b.build()


class TestStageKeys:
    def test_every_occurrence_gets_a_unique_key(self):
        c = compile_fun(simple_fun())
        keys = list(c.stage_seconds)
        assert keys == [
            "typecheck", "introduce_memory", "hoist", "last_use",
            "short_circuit", "dead_allocs", "fuse", "dead_allocs#2",
            "reuse", "dead_allocs#3", "mem_frees",
        ]
        assert len(keys) == len(set(keys))

    def test_compile_seconds_is_the_exact_sum(self):
        c = compile_fun(simple_fun())
        assert c.compile_seconds == sum(c.stage_seconds.values())
        assert c.compile_seconds == c.trace.compile_seconds


class TestAnalysisLedger:
    def test_invalidated_analysis_is_rerun_automatically(self):
        class ScramblePass(Pass):
            """Mutating no-op that declares it preserves nothing."""

            name = "scramble"

            def run(self, ctx, fun):
                return self.stats(changed=False)

        passes = [
            IntroduceMemoryPass(),
            HoistPass(),
            AnalysisPass("last_use"),
            ScramblePass(),
            ShortCircuitPass(),  # requires last_use -> forced re-run
        ]
        ctx = CompileContext(source=simple_fun())
        trace = PassManager(passes, name="custom").run(ctx)
        analyses = [r.key for r in trace.records if r.kind == KIND_ANALYSIS]
        assert analyses == ["last_use", "last_use#2"]

    def test_preserved_analysis_is_not_rerun(self):
        ctx = CompileContext(source=simple_fun())
        trace = PassManager(preset_pipeline("full"), name="full").run(ctx)
        analyses = [r.key for r in trace.records if r.kind == KIND_ANALYSIS]
        # One scheduled last_use, one scheduled mem_frees -- and nothing
        # auto-inserted: sc/fuse/dead_allocs/reuse all carry last_use over.
        assert analyses == ["last_use", "mem_frees"]


class TestVerifyCheckpoints:
    def test_verify_reports_keep_the_legacy_labels(self):
        c = compile_fun(simple_fun(), verify=True)
        assert set(c.verify_reports) == {
            "introduce_memory", "hoist+last_use", "short_circuit",
            "fuse", "reuse",
        }
        assert all(r.ok() for r in c.verify_reports.values())

    def test_verify_records_land_in_the_trace(self):
        c = compile_fun(simple_fun(), verify=True)
        labels = [
            r.name for r in c.trace.records if r.kind == KIND_VERIFY
        ]
        assert labels == [
            "verify[introduce_memory]", "verify[hoist+last_use]",
            "verify[short_circuit]", "verify[fuse]", "verify[reuse]",
        ]

    def test_checkpoint_fires_even_when_the_pass_was_skipped(self):
        # simple_fun has nothing to fuse, so the post-fuse dead-alloc
        # sweep is condition-skipped -- its "fuse" checkpoint still runs.
        c = compile_fun(simple_fun(), verify=True)
        rec = c.trace.record("dead_allocs#2")
        assert rec is not None and rec.skipped
        assert "fuse" in c.verify_reports


class TestSnapshots:
    def test_print_after_dumps_ir_to_stderr(self, monkeypatch, capsys):
        monkeypatch.setenv(PRINT_AFTER_ENV, "short_circuit")
        c = compile_fun(simple_fun())
        err = capsys.readouterr().err
        assert "-- IR after short_circuit" in err
        assert "alloc" in err
        assert pretty_fun(c.fun).splitlines()[0] in err

    def test_no_env_no_output(self, monkeypatch, capsys):
        monkeypatch.delenv(PRINT_AFTER_ENV, raising=False)
        compile_fun(simple_fun())
        assert capsys.readouterr().err == ""


class TestCompileFunWrapper:
    def test_defaults_are_the_full_preset(self):
        by_default = compile_fun(simple_fun())
        by_name = compile_fun(simple_fun(), pipeline="full")
        assert by_default.pipeline == by_name.pipeline == "full"
        assert pretty_fun(by_default.fun) == pretty_fun(by_name.fun)

    def test_flag_combinations_are_labelled(self):
        c = compile_fun(simple_fun(), short_circuit=False, fuse=False,
                        reuse=False)
        assert c.pipeline == "unopt"
        c = compile_fun(simple_fun(), short_circuit=False)
        assert c.pipeline == "custom"

    def test_preset_overrides_flags(self):
        c = compile_fun(simple_fun(), short_circuit=False, pipeline="sc")
        assert c.pipeline == "sc"
        assert "short_circuit" in c.stage_seconds

    def test_manager_is_usable_directly(self):
        ctx = CompileContext(source=simple_fun())
        trace = PassManager(preset_pipeline("sc"), name="sc").run(ctx)
        assert ctx.mfun is not None
        assert trace.pipeline == "sc"
        assert ctx.sc_stats is not None and ctx.sc_stats.committed >= 1


class TestBrokenPass:
    def test_verification_error_names_the_stage(self, monkeypatch):
        """The monkeypatch seam survives the refactor: sabotaging
        ``repro.compiler.introduce_memory`` still fails the first
        checkpoint of the *full* preset."""
        from repro.analysis import VerificationError
        from repro.mem import introduce as I

        original = I.introduce_memory

        def sabotaged(fun):
            out = original(fun)
            for stmt in out.body.stmts:
                for pe in stmt.pattern:
                    if pe.is_array():
                        pe.mem = None  # strip one memory annotation
                        return out
            return out

        monkeypatch.setattr("repro.compiler.introduce_memory", sabotaged)
        with pytest.raises(VerificationError) as exc:
            compile_fun(simple_fun(), verify=True)
        assert exc.value.stage == "introduce_memory"
