"""Pipeline presets: every preset compiles every benchmark verifier-clean.

This is the preset-level acceptance gate for the pass-manager refactor:
``unopt``, ``sc``, ``sc+fuse`` and ``full`` must all (a) produce final IR
that :func:`repro.analysis.verifier.verify_fun` accepts, (b) execute the
exact ordered pass list that :func:`repro.pipeline.preset_pass_names`
advertises, and (c) emit a :class:`repro.pipeline.PipelineTrace` that
survives a JSON round-trip.
"""

from __future__ import annotations

import pytest

from repro.analysis.verifier import verify_fun
from repro.compiler import compile_fun
from repro.bench.programs import all_benchmarks
from repro.pipeline import (
    PRESETS,
    PipelineTrace,
    preset_for_flags,
    preset_pass_names,
)
from repro.pipeline.trace import KIND_ANALYSIS, KIND_PASS

BENCHMARKS = all_benchmarks()

#: One compilation per (benchmark, preset), shared across the tests below.
_cache = {}


def compiled(name: str, preset: str):
    key = (name, preset)
    if key not in _cache:
        fun = BENCHMARKS[name].build()
        _cache[key] = compile_fun(fun, pipeline=preset)
    return _cache[key]


@pytest.mark.parametrize("preset", list(PRESETS))
@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_preset_compiles_verifier_clean(name, preset):
    c = compiled(name, preset)
    report = verify_fun(c.fun, stage=f"{name} [{preset}]")
    assert report.ok(), report.render()


@pytest.mark.parametrize("preset", list(PRESETS))
def test_preset_runs_advertised_pass_list(preset):
    """The trace's scheduled pass/analysis sequence is exactly the
    preset's advertised schedule -- no silent extra analysis re-runs."""
    expected = preset_pass_names(preset)
    for name in BENCHMARKS:
        c = compiled(name, preset)
        assert c.pipeline == preset
        scheduled = c.trace.pass_names(kinds=(KIND_PASS, KIND_ANALYSIS))
        assert scheduled == expected, name
        executed = c.trace.executed_pass_names()
        assert [p for p in expected if p in executed]  # sanity: nonempty


@pytest.mark.parametrize("preset", list(PRESETS))
def test_trace_json_round_trip(preset):
    c = compiled("nw", preset)
    trace = c.trace
    back = PipelineTrace.from_json(trace.to_json())
    assert back.to_dict() == trace.to_dict()
    assert back.pipeline == preset
    assert back.stage_seconds() == trace.stage_seconds()
    assert back.compile_seconds == trace.compile_seconds


def test_preset_flags_round_trip():
    assert preset_for_flags(True, True, True) == "full"
    assert preset_for_flags(True, True, False) == "sc+fuse"
    assert preset_for_flags(True, False, False) == "sc"
    assert preset_for_flags(False, False, False) == "unopt"
    assert preset_for_flags(False, True, True) is None


def test_unknown_preset_is_an_error():
    fun = BENCHMARKS["nn"].build()
    with pytest.raises(KeyError, match="unopt"):
        compile_fun(fun, pipeline="turbo")
