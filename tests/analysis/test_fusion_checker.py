"""Negative corpus for the fusion provenance checker (FU rules).

Compiles a real two-stage pipeline (so fusion actually commits and the
consumer carries a :class:`FusedRecord`), asserts the pristine fused
program is clean, then hand-breaks each obligation.
"""

import dataclasses

from repro.analysis import verify_fun
from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32
from repro.ir import ast as A
from repro.mem.memir import MEM_TYPE, iter_stmts
from repro.symbolic import SymExpr, Var

n = Var("n")


def _fused_fun() -> A.Fun:
    b = FunBuilder("pipe")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xs, [mp.idx]), 2.0))
    (inter,) = mp.end()
    mc = b.map_(n, index="j")
    mc.returns(mc.binop("+", mc.index(inter, [mc.idx]), 1.0))
    (out,) = mc.end()
    b.returns(out)
    cf = compile_fun(b.build())
    assert cf.fuse_stats.committed == 1
    return cf.fun


def _fused_stmt(fun: A.Fun) -> A.Let:
    for stmt in iter_stmts(fun.body):
        if stmt.fused:
            return stmt
    raise AssertionError("no fused statement")


def test_pristine_fused_program_is_clean():
    report = verify_fun(_fused_fun())
    assert report.ok()
    assert not report.diagnostics


def test_fu01_surviving_elided_block():
    # Re-introduce an allocation of the block the record claims elided.
    fun = _fused_fun()
    stmt = _fused_stmt(fun)
    rec = stmt.fused[0]
    fun.body.stmts.insert(
        0,
        A.Let(
            pattern=[A.PatElem(rec.mem, MEM_TYPE)],
            exp=A.Alloc(SymExpr.var("n") * rec.elem_bytes, "f32"),
        ),
    )
    report = verify_fun(fun)
    assert "FU01" in report.rules_fired()
    assert report.errors


def test_fu02_write_set_drift():
    # A record promising a write to a block the kernel never touches.
    fun = _fused_fun()
    stmt = _fused_stmt(fun)
    rec = stmt.fused[0]
    stmt.fused = (
        dataclasses.replace(
            rec, write_mems=rec.write_mems + ("phantom_mem",)
        ),
    )
    report = verify_fun(fun)
    assert "FU02" in report.rules_fired()
    assert report.errors


def test_fu02_unrecorded_rehoming():
    # A later pass re-homes the consumer's destination without rewriting
    # the provenance record: the actual write set drifts from the promise.
    fun = _fused_fun()
    stmt = _fused_stmt(fun)
    rec = stmt.fused[0]
    stmt.fused = (dataclasses.replace(rec, write_mems=("stale_mem",)),)
    report = verify_fun(fun)
    assert "FU02" in report.rules_fired()
