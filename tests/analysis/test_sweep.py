"""Whole-benchmark verification sweep plus the mutation smoke test.

The sweep is the translation-validation acceptance bar: every benchmark,
through both pipelines, must verify with zero diagnostics.  The mutation
test is the referee check on the referee: disable the one prover call
short-circuiting's safety rests on, and the post-pass verifier must
catch the unsafe commits the pass then makes.
"""

import pytest

from repro.analysis import verify_fun
from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun
from repro.lmad import NonOverlapChecker

BENCHMARKS = sorted(all_benchmarks())


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("sc", [False, True], ids=["unopt", "opt"])
def test_benchmark_verifies_clean(name, sc):
    fun = all_benchmarks()[name].build()
    compiled = compile_fun(fun, short_circuit=sc).fun
    report = verify_fun(compiled, stage="opt" if sc else "unopt")
    assert report.ok(), report.render(show_notes=True)
    assert not report.diagnostics, report.render(show_notes=True)


def test_mutated_pass_is_caught(monkeypatch):
    """Break short-circuiting's overlap check; the verifier must object.

    With ``NonOverlapChecker.check`` forced to ``True`` during
    compilation, the pass happily commits candidates whose writes overlap
    live data.  The verifier (run afterwards, with the real prover) has
    to flag at least one race/liveness error on some benchmark -- if it
    stays silent, it is not actually checking anything the pass could get
    wrong.
    """
    broken_funs = []
    with monkeypatch.context() as m:
        m.setattr(NonOverlapChecker, "check", lambda self, a, b: True)
        for name in BENCHMARKS:
            fun = all_benchmarks()[name].build()
            broken_funs.append(
                (name, compile_fun(fun, short_circuit=True).fun)
            )
    caught = []
    for name, fun in broken_funs:
        report = verify_fun(fun, stage="sabotaged-sc")
        if report.errors:
            caught.append((name, sorted(report.rules_fired())))
    assert caught, "no benchmark's sabotaged compile was flagged"
