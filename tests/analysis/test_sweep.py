"""Whole-benchmark verification sweep plus the mutation smoke test.

The sweep is the translation-validation acceptance bar: every benchmark,
through both pipelines, must verify with zero diagnostics.  The mutation
test is the referee check on the referee: disable the one prover call
short-circuiting's safety rests on, and the post-pass verifier must
catch the unsafe commits the pass then makes.
"""

import pytest

from repro.analysis import verify_fun
from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun
from repro.lmad import NonOverlapChecker

BENCHMARKS = sorted(all_benchmarks())


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("sc", [False, True], ids=["unopt", "opt"])
def test_benchmark_verifies_clean(name, sc):
    fun = all_benchmarks()[name].build()
    compiled = compile_fun(fun, short_circuit=sc).fun
    report = verify_fun(compiled, stage="opt" if sc else "unopt")
    assert report.ok(), report.render(show_notes=True)
    assert not report.diagnostics, report.render(show_notes=True)


def test_mutated_pass_is_caught(monkeypatch):
    """Sabotage short-circuiting; the verifier must object.

    Two simultaneous mutations: the overlap check is forced to ``True``
    (both tiers short out through ``NonOverlapChecker.check``, so every
    candidate commits unchecked), and index-function translation
    mis-places every rebased layout by one element.  The pass then
    installs rebases whose images genuinely escape their blocks or
    collide with live data.  The verifier (run afterwards, with honest
    provers in both tiers) has to flag at least one benchmark -- if it
    stays silent, it is not actually checking anything the pass could
    get wrong.

    Note the checker sabotage *alone* no longer suffices: every
    candidate the pass attempts on these benchmarks is genuinely safe
    (the polyhedral tier proves the formerly-unprovable ones), so the
    committed programs would be correct and the verifier right to stay
    quiet.
    """
    import repro.opt.shortcircuit as scmod
    from repro.lmad import IndexFn
    from repro.lmad.lmad import Lmad
    from repro.opt.rebase import translate_ixfn as real_translate
    from repro.symbolic import sym

    def shifted_translate(ixfn, available, symtab, max_rounds=16):
        out = real_translate(ixfn, available, symtab, max_rounds)
        if out is None:
            return None
        return IndexFn(
            tuple(Lmad(l.offset + sym(1), l.dims) for l in out.lmads)
        )

    broken_funs = []
    with monkeypatch.context() as m:
        m.setattr(NonOverlapChecker, "check", lambda self, a, b: True)
        m.setattr(scmod, "translate_ixfn", shifted_translate)
        for name in BENCHMARKS:
            fun = all_benchmarks()[name].build()
            broken_funs.append(
                (name, compile_fun(fun, short_circuit=True).fun)
            )
    caught = []
    for name, fun in broken_funs:
        report = verify_fun(fun, stage="sabotaged-sc")
        if report.errors:
            caught.append((name, sorted(report.rules_fired())))
    assert caught, "no benchmark's sabotaged compile was flagged"
