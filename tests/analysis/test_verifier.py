"""Negative corpus for the memory-IR verifier.

Each test hand-breaks one invariant of a correctly-compiled program and
asserts that exactly the intended rule fires (plus that the pristine
program is clean, so the corpus cannot pass vacuously).
"""

import numpy as np

from repro.analysis import verify_fun
from repro.compiler import compile_fun
from repro.ir import ast as A
from repro.lmad import IndexFn, lmad
from repro.mem.exec import MemExecutor
from repro.mem.memir import MemBinding, binding_of, param_mem_name
from repro.symbolic import SymExpr

from tests.analysis.conftest import array_pat, find_stmt, map_stmt, simple_fun


def test_pristine_program_is_clean(compiled_simple):
    report = verify_fun(compiled_simple)
    assert report.ok()
    assert not report.diagnostics


# ----------------------------------------------------------------------
# Well-formedness
# ----------------------------------------------------------------------
def test_wf01_missing_binding(compiled_simple):
    array_pat(map_stmt(compiled_simple)).mem = None
    report = verify_fun(compiled_simple)
    assert "WF01" in report.rules_fired()
    assert report.errors


def test_wf02_unknown_block(compiled_simple):
    pe = array_pat(map_stmt(compiled_simple))
    pe.mem = MemBinding("no_such_block", binding_of(pe).ixfn)
    report = verify_fun(compiled_simple)
    assert "WF02" in report.rules_fired()


def test_wf03_negative_alloc(compiled_simple):
    stmt = find_stmt(compiled_simple, lambda s: isinstance(s.exp, A.Alloc))
    stmt.exp = A.Alloc(SymExpr.const(-4), stmt.exp.dtype)
    report = verify_fun(compiled_simple)
    assert "WF03" in report.rules_fired()


def test_wf05_rank_mismatch(compiled_simple):
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    wrong = IndexFn.row_major((SymExpr.var("n"), SymExpr.var("n")))
    pe.mem = MemBinding(b.mem, wrong)
    report = verify_fun(compiled_simple)
    assert "WF05" in report.rules_fired()


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------
def test_b01_offset_past_allocation(compiled_simple):
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    # Shift the whole row one element to the right: the last write now
    # lands at offset n, one past the block's n elements.
    shifted = IndexFn((lmad(1, [(SymExpr.var("n"), 1)]),))
    pe.mem = MemBinding(b.mem, shifted)
    report = verify_fun(compiled_simple)
    assert "B01" in report.rules_fired()


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
def test_l01_stale_last_use(compiled_simple):
    # Claim `x` dies at the map although the reduce still reads it.  Any
    # consumer of last_uses would be licensed to reuse x's buffer there.
    stmt = map_stmt(compiled_simple)
    stmt.last_uses = frozenset(stmt.last_uses) | {"x"}
    report = verify_fun(compiled_simple)
    assert "L01" in report.rules_fired()


def test_l02_alloc_after_use(compiled_simple):
    block = compiled_simple.body
    alloc = find_stmt(compiled_simple, lambda s: isinstance(s.exp, A.Alloc))
    block.stmts.remove(alloc)
    block.stmts.append(alloc)
    report = verify_fun(compiled_simple)
    assert "L02" in report.rules_fired()


# ----------------------------------------------------------------------
# Races
# ----------------------------------------------------------------------
def test_r01_rebase_clobbers_live_input(compiled_simple):
    # Simulate a broken short-circuiting commit: re-home the fresh map
    # result onto the input's block.  The map's writes now land on x,
    # which the reduce reads afterwards -- with no value flow to excuse it.
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    pe.mem = MemBinding(param_mem_name("x"), b.ixfn)
    report = verify_fun(compiled_simple)
    assert "R01" in report.rules_fired()
    # The annotation bug is observable: the executor (which trusts the
    # annotations) now disagrees with the source semantics.
    ex = MemExecutor(compiled_simple)
    vals, _ = ex.run(x=np.arange(4, dtype=np.float32))
    got_sum = vals[1]
    assert got_sum != np.arange(4, dtype=np.float32).sum()


def test_r02_threads_share_an_element(compiled_simple):
    # All n threads of the map write through a stride-0 row: every
    # thread stores to offset 0 of the block.
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    squashed = IndexFn((lmad(0, [(SymExpr.var("n"), 0)]),))
    pe.mem = MemBinding(b.mem, squashed)
    report = verify_fun(compiled_simple)
    assert "R02" in report.rules_fired()


def test_verify_option_raises_on_broken_pass(monkeypatch):
    """compile_fun(verify=True) turns verifier errors into exceptions."""
    from repro.analysis import VerificationError
    from repro.mem import introduce as I

    original = I.introduce_memory

    def sabotaged(fun):
        out = original(fun)
        array_pat(map_stmt(out)).mem = None
        return out

    monkeypatch.setattr("repro.compiler.introduce_memory", sabotaged)
    try:
        compile_fun(simple_fun(), short_circuit=False, verify=True)
    except VerificationError as e:
        assert e.stage == "introduce_memory"
        assert "WF01" in e.report.rules_fired()
    else:
        raise AssertionError("verify=True did not flag the broken stage")


def test_verify_option_clean_program_keeps_reports():
    cf = compile_fun(simple_fun(), verify=True)
    assert set(cf.verify_reports) == {
        "introduce_memory", "hoist+last_use", "short_circuit"
    }
    assert all(r.ok() for r in cf.verify_reports.values())
