"""Negative corpus for the memory-IR verifier.

Each test hand-breaks one invariant of a correctly-compiled program and
asserts that exactly the intended rule fires (plus that the pristine
program is clean, so the corpus cannot pass vacuously).
"""

import numpy as np

from repro.analysis import verify_fun
from repro.compiler import compile_fun
from repro.ir import ast as A
from repro.lmad import IndexFn, lmad
from repro.mem.exec import MemExecutor
from repro.mem.memir import MemBinding, binding_of, param_mem_name
from repro.symbolic import SymExpr

from tests.analysis.conftest import array_pat, find_stmt, map_stmt, simple_fun


def test_pristine_program_is_clean(compiled_simple):
    report = verify_fun(compiled_simple)
    assert report.ok()
    assert not report.diagnostics


# ----------------------------------------------------------------------
# Well-formedness
# ----------------------------------------------------------------------
def test_wf01_missing_binding(compiled_simple):
    array_pat(map_stmt(compiled_simple)).mem = None
    report = verify_fun(compiled_simple)
    assert "WF01" in report.rules_fired()
    assert report.errors


def test_wf02_unknown_block(compiled_simple):
    pe = array_pat(map_stmt(compiled_simple))
    pe.mem = MemBinding("no_such_block", binding_of(pe).ixfn)
    report = verify_fun(compiled_simple)
    assert "WF02" in report.rules_fired()


def test_wf03_negative_alloc(compiled_simple):
    stmt = find_stmt(compiled_simple, lambda s: isinstance(s.exp, A.Alloc))
    stmt.exp = A.Alloc(SymExpr.const(-4), stmt.exp.dtype)
    report = verify_fun(compiled_simple)
    assert "WF03" in report.rules_fired()


def test_wf05_rank_mismatch(compiled_simple):
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    wrong = IndexFn.row_major((SymExpr.var("n"), SymExpr.var("n")))
    pe.mem = MemBinding(b.mem, wrong)
    report = verify_fun(compiled_simple)
    assert "WF05" in report.rules_fired()


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------
def test_b01_offset_past_allocation(compiled_simple):
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    # Shift the whole row one element to the right: the last write now
    # lands at offset n, one past the block's n elements.
    shifted = IndexFn((lmad(1, [(SymExpr.var("n"), 1)]),))
    pe.mem = MemBinding(b.mem, shifted)
    report = verify_fun(compiled_simple)
    assert "B01" in report.rules_fired()


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
def test_l01_stale_last_use(compiled_simple):
    # Claim `x` dies at the map although the reduce still reads it.  Any
    # consumer of last_uses would be licensed to reuse x's buffer there.
    stmt = map_stmt(compiled_simple)
    stmt.last_uses = frozenset(stmt.last_uses) | {"x"}
    report = verify_fun(compiled_simple)
    assert "L01" in report.rules_fired()


def test_l02_alloc_after_use(compiled_simple):
    block = compiled_simple.body
    alloc = find_stmt(compiled_simple, lambda s: isinstance(s.exp, A.Alloc))
    block.stmts.remove(alloc)
    block.stmts.append(alloc)
    report = verify_fun(compiled_simple)
    assert "L02" in report.rules_fired()


# ----------------------------------------------------------------------
# Races
# ----------------------------------------------------------------------
def test_r01_rebase_clobbers_live_input(compiled_simple):
    # Simulate a broken short-circuiting commit: re-home the fresh map
    # result onto the input's block.  The map's writes now land on x,
    # which the reduce reads afterwards -- with no value flow to excuse it.
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    pe.mem = MemBinding(param_mem_name("x"), b.ixfn)
    report = verify_fun(compiled_simple)
    assert "R01" in report.rules_fired()
    # The annotation bug is observable: the executor (which trusts the
    # annotations) now disagrees with the source semantics.
    ex = MemExecutor(compiled_simple)
    vals, _ = ex.run(x=np.arange(4, dtype=np.float32))
    got_sum = vals[1]
    assert got_sum != np.arange(4, dtype=np.float32).sum()


def test_r02_threads_share_an_element(compiled_simple):
    # All n threads of the map write through a stride-0 row: every
    # thread stores to offset 0 of the block.
    pe = array_pat(map_stmt(compiled_simple))
    b = binding_of(pe)
    squashed = IndexFn((lmad(0, [(SymExpr.var("n"), 0)]),))
    pe.mem = MemBinding(b.mem, squashed)
    report = verify_fun(compiled_simple)
    assert "R02" in report.rules_fired()


# ----------------------------------------------------------------------
# Dependence distance (R03 refinement)
# ----------------------------------------------------------------------
def _carried_update_loop(drift: bool) -> A.Fun:
    """A loop doing two in-place point updates on its carried array: one
    at ``i`` and one at ``2*i`` (drifting) or ``i`` again (lockstep)."""
    from repro.ir import FunBuilder, f32
    from repro.symbolic import Var

    b = FunBuilder("wr")
    k = b.size_param("k")
    b.assume_lower("k", 1)
    x = b.param("x", f32(Var("n")))
    b.assume_lower("n", 1)
    lp = b.loop(count=k, carried=[("Xc", x)], index="i")
    v = lp.lit(1.0)
    X2 = lp.update_point(lp["Xc"], [lp.idx], v)
    X3 = lp.update_point(X2, [2 * lp.idx if drift else lp.idx], v)
    lp.returns(X3)
    (Xf,) = lp.end()
    b.returns(Xf)
    return b.build()


def test_r03_lockstep_dependent_writes_exempt():
    # Both writes shift by one element per iteration: the overlap
    # pattern is iteration-invariant, covered by the carried flow.
    fun = compile_fun(_carried_update_loop(drift=False), verify=False).fun
    report = verify_fun(fun)
    assert report.ok(), report.render()


def test_r03_drifting_dependent_write_flagged():
    # The second write slides at twice the rate of the first: name-level
    # dataflow alone no longer licenses the overlap.
    fun = compile_fun(_carried_update_loop(drift=True), verify=False).fun
    report = verify_fun(fun)
    assert "R03" in report.rules_fired()


def test_slides_together_distance_vectors():
    from repro.analysis.races import RaceChecker
    from repro.symbolic import Context, Prover

    prover = Prover(Context())
    i = SymExpr.var("i")
    four = SymExpr.const(4)
    row = lambda off: lmad(off, [(four, SymExpr.const(1))])
    assert RaceChecker._slides_together(row(i * 8), row(i * 8 + 2), "i", prover)
    assert not RaceChecker._slides_together(row(i * 8), row(i * 4), "i", prover)
    # Index-dependent stride: the region's shape changes per iteration.
    skewed = lmad(i * 8, [(four, i + 1)])
    assert not RaceChecker._slides_together(skewed, row(i * 8), "i", prover)


# ----------------------------------------------------------------------
# Free annotations
# ----------------------------------------------------------------------
def _consumed_map_fun() -> A.Fun:
    """``X = map 2*x; s = reduce X; return s`` -- X's block is freed at
    the reduce (its last touch) by the pipeline's annotation pass."""
    from repro.ir import FunBuilder, f32
    from repro.symbolic import Var

    b = FunBuilder("consumed")
    n = Var("n")
    x = b.param("x", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (X,) = mp.end()
    s = b.reduce("+", X)
    b.returns(s)
    return b.build()


def test_f01_free_before_later_touch():
    fun = compile_fun(_consumed_map_fun(), short_circuit=False).fun
    freeing = find_stmt(fun, lambda s: s.mem_frees)
    mem = freeing.mem_frees[0]
    freeing.mem_frees = ()
    map_stmt(fun).mem_frees = (mem,)  # freed while the reduce still reads
    report = verify_fun(fun)
    assert "F01" in report.rules_fired()


def test_f01_free_of_result_reachable_block(compiled_simple):
    # simple_fun returns X: its block escapes and must never be freed.
    pe = array_pat(map_stmt(compiled_simple))
    map_stmt(compiled_simple).mem_frees = (binding_of(pe).mem,)
    report = verify_fun(compiled_simple)
    assert "F01" in report.rules_fired()


def test_f02_free_of_unallocated_param_block(compiled_simple):
    stmt = compiled_simple.body.stmts[-1]
    stmt.mem_frees = (param_mem_name("x"),)
    report = verify_fun(compiled_simple)
    assert "F02" in report.rules_fired()


def test_f02_free_of_outer_block_inside_kernel(compiled_simple):
    pe = array_pat(map_stmt(compiled_simple))
    body = map_stmt(compiled_simple).exp.lam.body
    body.stmts[-1].mem_frees = (binding_of(pe).mem,)
    report = verify_fun(compiled_simple)
    assert "F02" in report.rules_fired()


def test_verify_option_raises_on_broken_pass(monkeypatch):
    """compile_fun(verify=True) turns verifier errors into exceptions."""
    from repro.analysis import VerificationError
    from repro.mem import introduce as I

    original = I.introduce_memory

    def sabotaged(fun):
        out = original(fun)
        array_pat(map_stmt(out)).mem = None
        return out

    monkeypatch.setattr("repro.compiler.introduce_memory", sabotaged)
    try:
        compile_fun(simple_fun(), short_circuit=False, verify=True)
    except VerificationError as e:
        assert e.stage == "introduce_memory"
        assert "WF01" in e.report.rules_fired()
    else:
        raise AssertionError("verify=True did not flag the broken stage")


def test_verify_option_clean_program_keeps_reports():
    cf = compile_fun(simple_fun(), verify=True)
    assert set(cf.verify_reports) == {
        "introduce_memory", "hoist+last_use", "short_circuit", "fuse", "reuse"
    }
    assert all(r.ok() for r in cf.verify_reports.values())
