"""Negative corpus for the memory-space rules (MS01/MS02).

Same method as ``test_verifier.py``: compile a correct program, break
exactly one space invariant the way a buggy pass would, and assert the
matching rule fires (plus a clean bill for the pristine program and for
a legal re-homing, so the corpus cannot pass vacuously).
"""

from repro.analysis import verify_fun
from repro.analysis.diagnostics import Severity
from repro.compiler import compile_fun
from repro.ir import ast as A
from repro.mem.memir import binding_of
from repro.mem.spaces import SPACES, assign_space
from repro.symbolic import SymExpr

from tests.analysis.conftest import array_pat, find_stmt, map_stmt, simple_fun


def _alloc_stmt(fun):
    return find_stmt(fun, lambda s: isinstance(s.exp, A.Alloc))


def test_pristine_spaces_are_clean(compiled_simple):
    report = verify_fun(compiled_simple)
    assert report.ok()
    assert not [d for d in report.diagnostics if d.rule.startswith("MS")]


def test_legal_rehoming_is_clean():
    """assign_space moves the Alloc *and* every binding, which is the
    coherent way to re-home a block: no rule may fire."""
    fun = compile_fun(simple_fun(), short_circuit=False).fun
    stmt = _alloc_stmt(fun)
    assert assign_space(fun, stmt.pattern[0].name, "scratch") >= 1
    report = verify_fun(fun)
    assert report.ok(), report.diagnostics


def test_ms01_scratch_overflow_is_rejected():
    """A concrete allocation bigger than the scratchpad is a proven
    capacity violation."""
    fun = compile_fun(simple_fun(), short_circuit=False).fun
    stmt = _alloc_stmt(fun)
    assign_space(fun, stmt.pattern[0].name, "scratch")
    too_big = SPACES["scratch"].capacity // 4 + 1  # f32 elements
    stmt.exp = A.Alloc(SymExpr.const(too_big), stmt.exp.dtype, "scratch")
    report = verify_fun(fun)
    assert "MS01" in report.rules_fired()
    assert any(
        d.rule == "MS01" and d.severity is Severity.ERROR
        for d in report.diagnostics
    )


def test_ms01_symbolic_sizes_are_skipped():
    """Capacity claims about symbolic sizes are not decidable here: a
    scratch block of n elements passes even though n could be huge."""
    fun = compile_fun(simple_fun(), short_circuit=False).fun
    stmt = _alloc_stmt(fun)
    assign_space(fun, stmt.pattern[0].name, "scratch")
    report = verify_fun(fun)
    assert "MS01" not in report.rules_fired()


def test_ms01_unknown_space_name():
    fun = compile_fun(simple_fun(), short_circuit=False).fun
    stmt = _alloc_stmt(fun)
    stmt.exp = A.Alloc(stmt.exp.size, stmt.exp.dtype, "l2")
    report = verify_fun(fun)
    assert "MS01" in report.rules_fired()
    assert report.errors


def test_ms02_binding_space_mismatch(compiled_simple):
    """Re-tagging a binding without moving the Alloc (what a careless
    merge would do) is a space-coherence error."""
    pe = array_pat(map_stmt(compiled_simple))
    pe.mem = binding_of(pe).with_space("regs")
    report = verify_fun(compiled_simple)
    assert "MS02" in report.rules_fired()
    assert report.errors
