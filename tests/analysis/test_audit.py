"""The overlap audit: tier cross-examination of logged queries."""

from repro.analysis.audit import audit_compilation, audit_pool
from repro.bench.programs import all_benchmarks
from repro.lmad.lmad import Lmad, LmadDim
from repro.lmad.overlap import ProverPool, QueryRecord
from repro.symbolic import Context, sym


def L(off, *dims):
    return Lmad(sym(off), tuple(LmadDim(sym(s), sym(st)) for s, st in dims))


def test_audit_replays_real_compilation_cleanly():
    res = audit_compilation(all_benchmarks()["lud"].build(), "lud", "full")
    assert res.ok(), res.render()
    assert res.queries > 0
    assert res.polyhedral > 0, res.render()
    assert "[ok]" in res.render()


def test_audit_flags_result_flips():
    """A log entry whose recorded result the replay cannot reproduce."""
    pool = ProverPool()
    pool.set_client("sc")
    ctx = Context()
    a, b = L(0, (4, 1)), L(2, (4, 1))  # genuinely overlapping
    pool.checker_for(ctx).check(a, b)
    # Corrupt the record as a sabotaged/regressed prover would have.
    rec = pool.query_log[0]
    pool.query_log[0] = QueryRecord(
        rec.client, rec.ctx, rec.l1, rec.l2, rec.structural, rec.tier, True
    )
    res = audit_pool(pool, "synthetic", "full")
    assert not res.ok()
    assert "replay gives" in res.render()


def test_audit_counts_log_drops():
    pool = ProverPool(log_cap=1)
    ctx = Context()
    chk = pool.checker_for(ctx)
    chk.check(L(0, (2, 1)), L(5, (2, 1)))
    chk.check(L(10, (2, 1)), L(15, (2, 1)))
    res = audit_pool(pool, "synthetic", "full")
    assert res.queries == 1 and res.dropped == 1
    assert "1 dropped" in res.render()


def test_cli_overlap_audit(capsys):
    from repro.analysis.__main__ import main

    assert main(["nw", "--overlap-audit", "--pipeline", "sc"]) == 0
    out = capsys.readouterr().out
    assert "nw/sc" in out and "[ok]" in out
