"""Shared helpers: small compiled programs and targeted IR mutations.

The negative corpus works by compiling a *correct* program and then
hand-breaking one invariant in the memory annotations -- exactly the
kind of damage a buggy pass would do -- and asserting the matching rule
fires.  Building broken programs from source would not work: the
front-end refuses them long before the memory IR exists.
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32
from repro.ir import ast as A
from repro.mem.memir import iter_stmts
from repro.symbolic import Var

n = Var("n")


def simple_fun() -> A.Fun:
    """``X = map i<n. 2*x[i];  s = reduce + x`` -- a fresh map result in
    its own alloc plus a later read of the input, so clobbering ``x_mem``
    is observable."""
    b = FunBuilder("f")
    x = b.param("x", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (X,) = mp.end()
    s = b.reduce("+", x)
    b.returns(X, s)
    return b.build()


@pytest.fixture
def compiled_simple() -> A.Fun:
    return compile_fun(simple_fun(), short_circuit=False).fun


def find_stmt(fun: A.Fun, pred) -> A.Let:
    for stmt in iter_stmts(fun.body):
        if pred(stmt):
            return stmt
    raise AssertionError("no statement matches the predicate")


def map_stmt(fun: A.Fun) -> A.Let:
    return find_stmt(fun, lambda s: isinstance(s.exp, A.Map))


def array_pat(stmt: A.Let) -> A.PatElem:
    for pe in stmt.pattern:
        if pe.is_array():
            return pe
    raise AssertionError("statement has no array result")
