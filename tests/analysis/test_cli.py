"""The ``python -m repro.analysis`` entry point."""

import pytest

from repro.analysis.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "nw" in out and "lud" in out


def test_single_benchmark_ok(capsys):
    """Default run verifies every pipeline preset."""
    assert main(["nw"]) == 0
    out = capsys.readouterr().out
    for preset in ("unopt", "sc", "sc+fuse", "full"):
        assert f"nw [{preset}]" in out
    assert "OK" in out


def test_opt_only_runs_one_pipeline(capsys):
    assert main(["nn", "--opt-only"]) == 0
    out = capsys.readouterr().out
    assert "[full]" in out and "[unopt]" not in out


def test_pipeline_selects_presets(capsys):
    assert main(["nn", "--pipeline", "sc"]) == 0
    out = capsys.readouterr().out
    assert "[sc]" in out and "[full]" not in out and "[unopt]" not in out


def test_unknown_name_is_an_error(capsys):
    assert main(["not-a-benchmark"]) == 2


def test_no_programs_is_usage_error():
    with pytest.raises(SystemExit):
        main([])
