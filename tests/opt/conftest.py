"""Hypothesis-lite generator of two-stage map pipelines for fusion tests.

A *two-stage pipeline* is the canonical fusion candidate: a producer map
computing a random scalar expression from an input array, and a consumer
map reading the producer's result at a random in-range index pattern and
post-processing it.  The generator is deliberately dependency-free (a
seeded ``numpy.random.RandomState`` instead of hypothesis strategies):
fusion tests want a *fixed, reproducible* corpus so that the committed /
rejected counts asserted alongside the semantics stay stable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import FunBuilder, f32
from repro.ir.ast import Fun
from repro.symbolic import Var

#: Binops closed over f32 without introducing NaNs on random data.
BINOPS = ["+", "-", "*", "max", "min"]
UNOPS = ["neg", "abs"]

n = Var("n")


def random_two_stage_pipeline(rng: np.random.RandomState) -> Fun:
    """A random producer map feeding a random consumer map.

    The producer computes 1-4 random scalar ops over ``xs[i]``; the
    consumer reads the intermediate at either ``i`` (pointwise) or
    ``n-1-i`` (reflected -- still provably in range, exercising the
    LMAD-composition legality proof beyond the identity case), possibly
    at two sites, and applies 1-3 more random ops.  Every generated
    program is a legal fusion candidate: the intermediate has exactly one
    consumer and does not escape.
    """
    b = FunBuilder("pipe")
    b.size_param("n")
    xs = b.param("xs", f32(n))

    mp = b.map_(n, index="i")
    v = mp.index(xs, [mp.idx])
    for _ in range(rng.randint(1, 5)):
        if rng.rand() < 0.25:
            v = mp.unop(UNOPS[rng.randint(len(UNOPS))], v)
        else:
            c = float(rng.randint(-3, 4))
            v = mp.binop(BINOPS[rng.randint(len(BINOPS))], v, c)
    mp.returns(v)
    (inter,) = mp.end()

    mc = b.map_(n, index="j")
    sites = [mc.idx, n - 1 - mc.idx]
    w = mc.index(inter, [sites[rng.randint(2)]])
    if rng.rand() < 0.4:  # a second read site of the same intermediate
        w2 = mc.index(inter, [sites[rng.randint(2)]])
        w = mc.binop(BINOPS[rng.randint(len(BINOPS))], w, w2)
    for _ in range(rng.randint(1, 4)):
        c = float(rng.randint(-3, 4))
        w = mc.binop(BINOPS[rng.randint(len(BINOPS))], w, c)
    mc.returns(w)
    (out,) = mc.end()
    b.returns(out)
    return b.build()


def random_mapnest_pipeline(rng: np.random.RandomState) -> Fun:
    """A random rank-2 mapnest producer feeding 1-2 consumer mapnests.

    The producer is a perfect ``[n][n]`` nest computing 1-3 random
    scalar ops over ``xs[i*n + k]``; each consumer is itself a rank-2
    nest reading ``inter[r, c]`` where each coordinate is independently
    pointwise (``j``) or reflected (``n-1-j``) -- in range either way,
    so the per-dimension coverage proofs must all discharge.  Half the
    corpus has a *second* consumer, exercising fusion by duplication
    (the producer body stays under ``DUP_COST_LIMIT`` by construction);
    a third of consumer bodies read the intermediate at two sites.
    """
    b = FunBuilder("pipe2")
    b.size_param("n")
    xs = b.param("xs", f32(n * n))
    # Strides of the rank-2 intermediate are multiples of n: the
    # structural injectivity/race provers need n >= 1 to normalize them
    # (every benchmark program declares the same kind of bound).
    b.assume_lower("n", 1)

    mp = b.map_(n, index="i")
    inner = mp.map_(n, index="k")
    v = inner.index(xs, [mp.idx * n + inner.idx])
    for _ in range(rng.randint(1, 4)):
        if rng.rand() < 0.25:
            v = inner.unop(UNOPS[rng.randint(len(UNOPS))], v)
        else:
            c = float(rng.randint(-3, 4))
            v = inner.binop(BINOPS[rng.randint(len(BINOPS))], v, c)
    inner.returns(v)
    (row,) = inner.end()
    mp.returns(row)
    (inter,) = mp.end()

    n_consumers = 2 if rng.rand() < 0.5 else 1
    outs = []
    for ci in range(n_consumers):
        mc = b.map_(n, index=f"j{ci}")
        md = mc.map_(n, index=f"l{ci}")

        def site():
            r = [mc.idx, n - 1 - mc.idx][rng.randint(2)]
            c = [md.idx, n - 1 - md.idx][rng.randint(2)]
            return md.index(inter, [r, c])

        w = site()
        if rng.rand() < 0.33:  # a second read site of the intermediate
            w = md.binop(BINOPS[rng.randint(len(BINOPS))], w, site())
        for _ in range(rng.randint(1, 3)):
            c = float(rng.randint(-3, 4))
            w = md.binop(BINOPS[rng.randint(len(BINOPS))], w, c)
        md.returns(w)
        (orow,) = md.end()
        mc.returns(orow)
        (out,) = mc.end()
        outs.append(out)
    b.returns(*outs)
    return b.build()


@pytest.fixture
def gen_pipeline():
    return random_two_stage_pipeline


@pytest.fixture
def gen_mapnest_pipeline():
    return random_mapnest_pipeline
