"""Property-based end-to-end soundness of the whole compiler.

Hypothesis generates random small programs from a grammar of fresh-array
constructors, change-of-layout views, slice updates and concats -- the
exact constructs short-circuiting rewrites -- and checks the *fundamental
theorem* of this reproduction: for every program, the optimized memory
pipeline computes the same values as the purely functional interpreter.

A counterexample here is a real miscompile (this harness caught the
scratch zero-fill clobber during development).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32, run_fun
from repro.mem.exec import MemExecutor
from repro.symbolic import Var

N = 6  # fixed extent keeps shapes compatible


@st.composite
def programs(draw):
    """A random straight-line program over [N]f32 arrays."""
    b = FunBuilder("prog")
    n = Var("n")
    b.size_param("n")
    x = b.param("x", f32(n))
    arrays = [x]  # rank-1, length-n arrays in scope

    def fresh_via_map(src):
        mp = b.map_(n, index=f"i")
        v = mp.index(src, [mp.idx])
        op = draw(st.sampled_from(["*", "+", "max"]))
        c = float(draw(st.integers(-3, 3)))
        mp.returns(mp.binop(op, v, c))
        return mp.end()[0]

    n_stmts = draw(st.integers(1, 6))
    for _ in range(n_stmts):
        kind = draw(
            st.sampled_from(
                ["map", "copy", "reverse", "slice", "update", "concat2"]
            )
        )
        src = draw(st.sampled_from(arrays))
        if kind == "map":
            arrays.append(fresh_via_map(src))
        elif kind == "copy":
            arrays.append(b.copy(src))
        elif kind == "reverse":
            arrays.append(b.reverse(src, 0))
        elif kind == "slice":
            # Keep full length via step 1 slices of a double-length concat?
            # Simpler: a reversed triplet slice of the same extent.
            arrays.append(b.slice(src, [(n - 1, n, -1)]))
        elif kind == "update":
            # Update the first half of a fresh copy with a fresh map result.
            target = b.copy(draw(st.sampled_from(arrays)))
            val = fresh_via_map(draw(st.sampled_from(arrays)))
            half = b.slice(val, [(0, 3, 1)])
            arrays.append(b.update_slice(target, [(0, 3, 1)], half))
        else:  # concat2 -> keep only as final result shape [2n]
            a1 = fresh_via_map(draw(st.sampled_from(arrays)))
            a2 = fresh_via_map(draw(st.sampled_from(arrays)))
            cc = b.concat(a1, a2)
            b.returns(cc)
            return b.build()
    b.returns(arrays[-1])
    return b.build()


@settings(max_examples=60, deadline=None)
@given(programs(), st.integers(0, 1000))
def test_optimized_pipeline_preserves_semantics(fun, seed):
    rng = np.random.RandomState(seed)
    x = rng.randn(N).astype(np.float32)
    (expected,) = run_fun(fun, n=N, x=x.copy())
    for sc in (False, True):
        compiled = compile_fun(fun, short_circuit=sc)
        ex = MemExecutor(compiled.fun)
        vals, _ = ex.run(n=N, x=x.copy())
        got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
        assert np.allclose(got, expected), (
            f"miscompile (sc={sc}) on program:\n"
            + __import__("repro.ir.pretty", fromlist=["pretty_fun"]).pretty_fun(fun)
        )


@settings(max_examples=30, deadline=None)
@given(programs())
def test_dry_run_traffic_matches_real(fun):
    """Dry-mode accounting must equal real-mode accounting exactly."""
    compiled = compile_fun(fun, short_circuit=True)
    x = np.ones(N, dtype=np.float32)
    _, real = MemExecutor(compiled.fun).run(n=N, x=x)
    _, dry = MemExecutor(compiled.fun, mode="dry").run(n=N)
    assert dry.bytes_read == real.bytes_read
    assert dry.bytes_written == real.bytes_written
    assert dry.launches == real.launches
    assert dry.elided_copies == real.elided_copies
