"""FusedRecord provenance: chains, duplication accounting, round-trip.

Three properties of the fusion paper trail:

* *chain provenance* -- A fused into B then B into C leaves both records
  on C, with ``chain_depth`` 1 and 2 and the elided traffic of *both*
  intermediates accounted;
* *duplication accounting* -- a producer duplicated into k consumers
  claims its elided write exactly once (``bytes_elided_fusion`` must not
  double-count), split as 2x on the primary record and 1x per duplicate;
* *round-trip* -- :func:`repro.mem.hoist.rewrite_mem_bindings` (the
  memory-coalescing rename every record must survive) preserves every
  provenance field; only the block names it exists to rewrite change.
"""

import numpy as np

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32
from repro.mem.exec import MemExecutor
from repro.mem.hoist import rewrite_mem_bindings
from repro.mem.memir import iter_stmts
from repro.symbolic import Var

n = Var("n")
N = 9


def _chain_fun():
    """xs -> A (x2) -> B (+1) -> C (B[k] * B[n-1-k]): a depth-2 chain."""
    b = FunBuilder("chain")
    b.size_param("n")
    b.assume_lower("n", 1)
    xs = b.param("xs", f32(n))
    m1 = b.map_(n, index="i")
    m1.returns(m1.binop("*", m1.index(xs, [m1.idx]), 2.0))
    (a,) = m1.end()
    m2 = b.map_(n, index="j")
    m2.returns(m2.binop("+", m2.index(a, [m2.idx]), 1.0))
    (mid,) = m2.end()
    m3 = b.map_(n, index="k")
    m3.returns(
        m3.binop(
            "*", m3.index(mid, [m3.idx]), m3.index(mid, [n - 1 - m3.idx])
        )
    )
    (out,) = m3.end()
    b.returns(out)
    return b.build()


def _dup_fun():
    """xs -> A (x2) -> two consumers: the duplication candidate."""
    b = FunBuilder("dup")
    b.size_param("n")
    b.assume_lower("n", 1)
    xs = b.param("xs", f32(n))
    m1 = b.map_(n, index="i")
    m1.returns(m1.binop("*", m1.index(xs, [m1.idx]), 2.0))
    (a,) = m1.end()
    m2 = b.map_(n, index="j")
    m2.returns(m2.binop("+", m2.index(a, [m2.idx]), 1.0))
    (o1,) = m2.end()
    m3 = b.map_(n, index="k")
    m3.returns(m3.binop("-", m3.index(a, [m3.idx]), 1.0))
    (o2,) = m3.end()
    b.returns(o1, o2)
    return b.build()


def _records(fun):
    return [(s, r) for s in iter_stmts(fun.body) for r in s.fused]


# ----------------------------------------------------------------------
def test_chain_fusion_stacks_records_with_depths():
    cf = compile_fun(_chain_fun(), verify=True)
    st = cf.fuse_stats
    assert st.committed == 2, st.summary()
    assert st.chained == 1, st.summary()
    assert all(r.ok for r in cf.verify_reports.values())

    recs = [r for _, r in _records(cf.fun)]
    assert len(recs) == 2
    assert sorted(r.chain_depth for r in recs) == [1, 2]
    # Both records ended up on the final consumer (the only map left).
    owners = {id(s) for s, _ in _records(cf.fun)}
    assert len(owners) == 1
    # The chained record documents the mid producer read twice
    # (pointwise + reflected), the transferred one its single read.
    by_depth = {r.chain_depth: r for r in recs}
    assert by_depth[2].reads == 2
    assert len(by_depth[2].site_hashes) == 2
    assert by_depth[1].reads == 1
    assert not any(r.duplicated for r in recs)


def test_chain_fusion_outputs_and_accounting():
    fun = _chain_fun()
    fused = compile_fun(fun)
    unfused = compile_fun(fun, fuse=False)
    xs = np.arange(N, dtype=np.float32)

    outs = []
    for cf in (fused, unfused):
        ex = MemExecutor(cf.fun)
        (val,), stats = ex.run(n=N, xs=xs.copy())
        outs.append(ex.mem[val.mem][val.ixfn.gather_offsets({})])
        if cf is fused:
            # Two elided [N]f32 intermediates, write + read back each.
            assert stats.fused_kernels == 2
            assert stats.bytes_elided_fusion == 2 * (2 * 4 * N)
    assert np.array_equal(outs[0], outs[1])


def test_duplication_accounting_does_not_double_count():
    fun = _dup_fun()
    fused = compile_fun(fun, verify=True)
    assert all(r.ok for r in fused.verify_reports.values())
    recs = [r for _, r in _records(fused.fun)]
    assert sorted(r.duplicated for r in recs) == [False, True]

    xs = np.arange(N, dtype=np.float32)
    ex = MemExecutor(fused.fun)
    _, stats = ex.run(n=N, xs=xs.copy())
    # One write elided (once!) + one elided read per consumer:
    # (1 write + 2 reads) * N * 4 bytes, not 2 records x 2x.
    assert stats.bytes_elided_fusion == 3 * 4 * N
    assert stats.fused_kernels == 2


def test_rewrite_mem_bindings_round_trips_provenance():
    cf = compile_fun(_dup_fun())
    before = [
        (s.names, r) for s, r in _records(cf.fun)
    ]
    assert before, "expected fused records on the compiled program"
    # Rename every block the records mention, as allocation coalescing
    # would, and require all provenance fields to survive verbatim.
    mems = {r.mem for _, r in before}
    for _, r in before:
        mems |= set(r.write_mems)
    mapping = {m: f"{m}__renamed" for m in mems}
    rewrite_mem_bindings(cf.fun, mapping)
    after = [(s.names, r) for s, r in _records(cf.fun)]
    assert len(after) == len(before)
    for (names_b, rb), (names_a, ra) in zip(before, after):
        assert names_b == names_a
        assert ra.mem == mapping.get(rb.mem, rb.mem)
        assert ra.write_mems == tuple(
            mapping.get(m, m) for m in rb.write_mems
        )
        for field in (
            "producer", "width", "elem_bytes", "reads", "rank",
            "duplicated", "recompute_stmts", "chain_depth", "site_hashes",
        ):
            assert getattr(ra, field) == getattr(rb, field), field
