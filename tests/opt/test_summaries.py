"""Tests for access summaries and the precision of destination-use
collection (the U_xss machinery of paper section V-B)."""

import pytest

from repro.ir import FunBuilder, f32
from repro.ir import ast as A
from repro.lmad import IndexFn, NonOverlapChecker, lmad
from repro.lmad.lmad import Lmad
from repro.mem import introduce_memory
from repro.opt.summaries import (
    AccessSet,
    collect_block_dst_uses,
    collect_dst_uses,
)
from repro.symbolic import Context, Prover, Var, sym

n = Var("n")


@pytest.fixture
def prover():
    return Prover(Context().assume_lower("n", 1))


class TestAccessSet:
    def test_empty(self):
        assert AccessSet().is_empty()

    def test_unknown_is_top(self, prover):
        a = AccessSet(unknown=True)
        b = AccessSet([lmad(0, [(4, 1)])])
        chk = NonOverlapChecker(prover)
        assert not a.disjoint_from(b, chk)
        assert b.disjoint_from(AccessSet(), chk)  # empty always disjoint

    def test_disjoint_pairwise(self, prover):
        chk = NonOverlapChecker(prover)
        a = AccessSet([lmad(0, [(4, 1)]), lmad(8, [(4, 1)])])
        b = AccessSet([lmad(4, [(4, 1)]), lmad(12, [(4, 1)])])
        assert a.disjoint_from(b, chk)
        c = AccessSet([lmad(2, [(4, 1)])])
        assert not a.disjoint_from(c, chk)

    def test_composed_ixfn_is_unknown(self, prover):
        f = IndexFn.col_major([4, 5]).flatten(prover)
        s = AccessSet()
        s.add_ixfn(f)
        assert s.unknown

    def test_aggregation_over_loop_var(self, prover):
        i = Var("i")
        s = AccessSet([Lmad(i * 4, (  ))])
        agg = s.aggregated("i", sym(8), prover)
        assert not agg.unknown
        assert agg.lmads[0] == lmad(0, [(8, 4)])

    def test_aggregation_failure_is_unknown(self, prover):
        i = Var("i")
        s = AccessSet([Lmad(i * i, ())])  # quadratic: not promotable
        agg = s.aggregated("i", sym(8), prover)
        assert agg.unknown

    def test_substitute(self):
        i, j = Var("i"), Var("j")
        s = AccessSet([Lmad(i, ())]).substitute({"i": j})
        assert s.lmads[0].offset == j


def _annotated(build):
    b = FunBuilder("f")
    build(b)
    return introduce_memory(b.build())


class TestCollectDstUses:
    def _bindings(self, fun):
        from repro.mem.memir import array_bindings

        return array_bindings(fun)

    def test_views_touch_nothing(self, prover):
        fun = _annotated(lambda b: (
            b.param("x", f32(n, n)),
            b.transpose("x", name="t"),
            b.slice("t", [(0, 2, 1), (0, 2, 1)], name="s"),
            b.returns("s"),
        ))
        binds = self._bindings(fun)
        for stmt in fun.body.stmts:
            if isinstance(stmt.exp, (A.Rearrange, A.SliceT)):
                uses = collect_dst_uses(stmt, "x_mem", binds, prover)
                assert uses.is_empty()

    def test_index_is_a_point(self, prover):
        fun = _annotated(lambda b: (
            b.param("x", f32(n)),
            b.index("x", [3], name="v"),
            b.binop("+", "v", 1.0, name="w"),
            b.returns("w"),
        ))
        binds = self._bindings(fun)
        idx_stmt = next(
            s for s in fun.body.stmts if isinstance(s.exp, A.Index)
        )
        uses = collect_dst_uses(idx_stmt, "x_mem", binds, prover)
        assert len(uses.lmads) == 1
        assert uses.lmads[0].offset.as_int() == 3
        assert uses.lmads[0].rank == 0

    def test_copy_reads_full_source(self, prover):
        fun = _annotated(lambda b: (
            b.param("x", f32(n)),
            b.copy("x", name="c"),
            b.returns("c"),
        ))
        binds = self._bindings(fun)
        cp = next(s for s in fun.body.stmts if isinstance(s.exp, A.Copy))
        uses = collect_dst_uses(cp, "x_mem", binds, prover)
        assert len(uses.lmads) == 1
        assert uses.lmads[0].shape == (n,)

    def test_skip_vars_excluded(self, prover):
        fun = _annotated(lambda b: (
            b.param("x", f32(n)),
            b.index("x", [0], name="v"),
            b.binop("+", "v", 1.0, name="w"),
            b.returns("w"),
        ))
        binds = self._bindings(fun)
        idx_stmt = next(s for s in fun.body.stmts if isinstance(s.exp, A.Index))
        uses = collect_dst_uses(
            idx_stmt, "x_mem", binds, prover, skip_vars=frozenset({"x"})
        )
        assert uses.is_empty()

    def test_map_uses_aggregated_over_threads(self, prover):
        fun = _annotated(lambda b: (
            b.param("x", f32(n)),
            _mk_map(b),
            b.returns("ys"),
        ))
        binds = self._bindings(fun)
        mp = next(s for s in fun.body.stmts if isinstance(s.exp, A.Map))
        uses = collect_dst_uses(mp, "x_mem", binds, prover)
        # Per-thread point reads x[i] promoted over i < n: the whole row.
        assert any(l.shape == (n,) for l in uses.lmads)

    def test_update_region_not_whole_array(self, prover):
        fun = _annotated(lambda b: (
            b.param("x", f32(n)),
            b.param("y", f32(2)),
            b.update_slice("x", [(0, 2, 1)], "y", name="x2"),
            b.returns("x2"),
        ))
        binds = self._bindings(fun)
        up = next(s for s in fun.body.stmts if isinstance(s.exp, A.Update))
        uses = collect_dst_uses(up, "x_mem", binds, prover)
        assert len(uses.lmads) == 1
        assert uses.lmads[0].shape[0].as_int() == 2


def _mk_map(b):
    mp = b.map_(n, index="i", names=["ys"])
    v = mp.index("x", [mp.idx])
    mp.returns(mp.binop("*", v, 2.0))
    return mp.end()[0]
