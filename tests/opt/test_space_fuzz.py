"""Fuzz: random space assignments are invisible to semantics.

Spaces are descriptive (see :mod:`repro.mem.spaces`): re-homing any
alloc'd block into any space must leave the verifier clean (the
assignment moves Alloc and bindings together), compute the same values,
and keep the four per-space peak accountants in exact agreement.  The
corpus is the fusion generator's random pipelines with every block's
space drawn at random, under both compile presets.
"""

import numpy as np
import pytest

from repro.analysis import verify_fun
from repro.compiler import compile_fun
from repro.ir import ast as A
from repro.mem.exec import MemExecutor
from repro.mem.memir import iter_stmts
from repro.mem.spaces import SPACES, assign_space
from repro.reuse import estimate_peak

N = 16


def _alloc_names(fun):
    return [
        s.pattern[0].name
        for s in iter_stmts(fun.body)
        if isinstance(s.exp, A.Alloc)
    ]


def _nonzero(d):
    return {k: v for k, v in d.items() if v}


def _scatter_spaces(fun, rng) -> int:
    spaces = sorted(SPACES)
    moved = 0
    for mem in _alloc_names(fun):
        moved += assign_space(fun, mem, spaces[rng.randint(len(spaces))])
    return moved


def _check(fun, inputs, dry_inputs, expected):
    report = verify_fun(fun)
    assert report.ok(), [str(d) for d in report.diagnostics]

    ex_i = MemExecutor(fun, vectorize=False)
    ex_i.run(**{k: np.copy(v) if hasattr(v, "copy") else v
                for k, v in inputs.items()})
    ex_v = MemExecutor(fun)
    vals, _ = ex_v.run(**{k: np.copy(v) if hasattr(v, "copy") else v
                          for k, v in inputs.items()})
    _, dry = MemExecutor(fun, mode="dry").run(**dry_inputs)
    est = estimate_peak(fun, inputs)

    got = ex_v.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
    assert np.allclose(got, expected)
    four = [
        _nonzero(ex_i.stats.space_peak_bytes),
        _nonzero(ex_v.stats.space_peak_bytes),
        _nonzero(dry.space_peak_bytes),
        _nonzero(est.space_peaks),
    ]
    assert four[0] == four[1] == four[2] == four[3], four


@pytest.mark.parametrize("seed", range(10))
def test_random_spaces_two_stage(seed, gen_pipeline):
    rng = np.random.RandomState(seed)
    fun = gen_pipeline(rng)
    compiled = compile_fun(fun, short_circuit=bool(seed % 2), cache=False)
    x = rng.randn(N).astype(np.float32)
    ex = MemExecutor(compiled.fun)
    vals, _ = ex.run(n=N, xs=x.copy())
    expected = np.copy(ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})])

    _scatter_spaces(compiled.fun, rng)
    _check(compiled.fun, {"n": N, "xs": x}, {"n": N}, expected)


@pytest.mark.parametrize("seed", range(6))
def test_random_spaces_mapnest(seed, gen_mapnest_pipeline):
    rng = np.random.RandomState(100 + seed)
    fun = gen_mapnest_pipeline(rng)
    compiled = compile_fun(
        fun, short_circuit=True, fuse=bool(seed % 2), cache=False
    )
    x = rng.randn(N * N).astype(np.float32)
    ex = MemExecutor(compiled.fun)
    vals, _ = ex.run(n=N, xs=x.copy())
    expected = np.copy(ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})])

    _scatter_spaces(compiled.fun, rng)
    _check(compiled.fun, {"n": N, "xs": x}, {"n": N}, expected)
