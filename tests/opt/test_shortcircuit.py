"""Tests for the array short-circuiting pass (paper section V).

Each test builds a small program exhibiting one paper scenario, runs the
pipeline, asserts the expected commit/failure, and -- crucially -- checks
that the optimized executor still agrees with the reference interpreter.
"""

import numpy as np

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32, i64, run_fun
from repro.ir import ast as A
from repro.lmad import lmad
from repro.mem.exec import MemExecutor
from repro.symbolic import Var

n = Var("n")


def exec_and_compare(fun, **inputs):
    """Run interp + both pipelines; all must agree.  Returns (opt, stats)."""
    refs = run_fun(
        fun, **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inputs.items()}
    )
    results = {}
    for sc in (False, True):
        c = compile_fun(fun, short_circuit=sc)
        ex = MemExecutor(c.fun)
        vals, stats = ex.run(
            **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inputs.items()}
        )
        for ref, val in zip(refs, vals):
            got = ex.mem[val.mem][val.ixfn.gather_offsets({})] if hasattr(val, "mem") else val
            assert np.allclose(got, ref, atol=1e-5), f"sc={sc} diverged"
        results[sc] = (c, stats)
    return results[True]


# ----------------------------------------------------------------------
# Update circuit points
# ----------------------------------------------------------------------
class TestUpdateCircuit:
    def test_fig4a_style_slice_update(self):
        """Fresh map result written into a slice: the simplest circuit."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        big = b.param("big", f32(n * 2))
        mp = b.map_(n, index="i")
        v = mp.binop("*", mp.index(x, [mp.idx]), 2.0)
        mp.returns(v)
        (X,) = mp.end()
        out = b.update_slice(big, [(0, n, 1)], X)
        b.returns(out)
        opt, stats = exec_and_compare(
            b.build(),
            x=np.arange(4, dtype=np.float32),
            big=np.zeros(8, dtype=np.float32),
        )
        assert opt.sc_stats.committed == 1
        assert stats.copy_traffic() == 0

    def test_fig1_left_commits(self):
        b = FunBuilder("f")
        b.size_param("n")
        Aname = b.param("A", f32(n * n))
        diag = b.lmad_slice(Aname, lmad(0, [(n, n + 1)]), name="diag")
        mp = b.map_(n, index="i")
        d = mp.index(diag, [mp.idx])
        r = mp.index(Aname, [mp.idx])
        mp.returns(mp.binop("+", d, r))
        (X,) = mp.end()
        A2 = b.update_lmad(Aname, lmad(0, [(n, n + 1)]), X)
        b.returns(A2)
        opt, stats = exec_and_compare(
            b.build(), n=8, A=np.arange(64, dtype=np.float32)
        )
        assert opt.sc_stats.committed == 1

    def test_fig1_right_fails_safely(self):
        """Data-dependent indirection: WAR hazards, copy must stay."""
        b = FunBuilder("f")
        b.size_param("n")
        Aname = b.param("A", f32(n * n))
        js = b.param("js", i64(n))
        diag = b.lmad_slice(Aname, lmad(0, [(n, n + 1)]), name="diag")
        mp = b.map_(n, index="i")
        d = mp.index(diag, [mp.idx])
        mp.index(js, [mp.idx], name="jv")
        r = mp.index(Aname, [Var("jv") * (n + 1)])
        mp.returns(mp.binop("+", d, r))
        (X,) = mp.end()
        A2 = b.update_lmad(Aname, lmad(0, [(n, n + 1)]), X)
        b.returns(A2)
        opt, stats = exec_and_compare(
            b.build(),
            n=8,
            A=np.arange(64, dtype=np.float32),
            js=np.random.RandomState(0).randint(0, 8, 8),
        )
        assert opt.sc_stats.committed == 0
        assert stats.copy_traffic() > 0

    def test_value_not_lastly_used_fails(self):
        """X used after the update: not a circuit point."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        big = b.param("big", f32(n * 2))
        mp = b.map_(n, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
        (X,) = mp.end()
        out = b.update_slice(big, [(0, n, 1)], X)
        again = b.reduce("+", X)  # X lives past the update
        b.returns(out, again)
        opt, _ = exec_and_compare(
            b.build(),
            x=np.arange(4, dtype=np.float32),
            big=np.zeros(8, dtype=np.float32),
        )
        assert opt.sc_stats.committed == 0

    def test_overlapping_use_between_fails(self):
        """A read of the destination region between creation and circuit
        point (paper property 4, fig. 4b line 7)."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        big = b.param("big", f32(n * 2))
        mp = b.map_(n, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
        (X,) = mp.end()
        peek = b.index(big, [0])  # reads inside the region X would occupy
        sink = b.binop("+", peek, 1.0)
        out = b.update_slice(big, [(0, n, 1)], X)
        b.returns(out, sink)
        opt, _ = exec_and_compare(
            b.build(),
            x=np.arange(4, dtype=np.float32),
            big=np.arange(8, dtype=np.float32),
        )
        assert opt.sc_stats.committed == 0

    def test_disjoint_use_between_commits(self):
        """A use of a *different* region of the destination is fine."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        big = b.param("big", f32(n * 2))
        mp = b.map_(n, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
        (X,) = mp.end()
        peek = b.index(big, [n + 1])  # second half: disjoint from [0, n)
        sink = b.binop("+", peek, 1.0)
        out = b.update_slice(big, [(0, n, 1)], X)
        b.returns(out, sink)
        opt, _ = exec_and_compare(
            b.build(),
            x=np.arange(4, dtype=np.float32),
            big=np.arange(8, dtype=np.float32),
        )
        assert opt.sc_stats.committed == 1


# ----------------------------------------------------------------------
# Concat circuit points and chains
# ----------------------------------------------------------------------
class TestConcatCircuit:
    def _two_maps_concat(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        mp1 = b.map_(n, index="i")
        mp1.returns(mp1.binop("*", mp1.index(x, [mp1.idx]), 2.0))
        (as_,) = mp1.end()
        mp2 = b.map_(n, index="i")
        mp2.returns(mp2.binop("+", mp2.index(x, [mp2.idx]), 1.0))
        (bs_,) = mp2.end()
        xss = b.concat(as_, bs_)
        b.returns(xss)
        return b.build()

    def test_fig4a_both_operands_commit(self):
        opt, stats = exec_and_compare(
            self._two_maps_concat(), x=np.arange(5, dtype=np.float32)
        )
        assert opt.sc_stats.committed == 2
        assert stats.copy_traffic() == 0

    def test_duplicated_operand_partial(self):
        """`concat bs bs` keeps one copy (footnote 17)."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        mp = b.map_(n, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
        (bs_,) = mp.end()
        xss = b.concat(bs_, bs_)
        b.returns(xss)
        opt, stats = exec_and_compare(
            b.build(), x=np.arange(5, dtype=np.float32)
        )
        # Only the first occurrence short-circuits into its segment.
        assert opt.sc_stats.committed == 1
        assert stats.copy_traffic() > 0  # one copy survives

    def test_layout_chain_rebased(self):
        """Invertible change-of-layout chain between creation and circuit
        (paper section V-A-a: cs = chg-layout(bs))."""
        b = FunBuilder("f")
        x = b.param("x", f32(4, 4))
        mp = b.map_(4, index="i")
        row = mp.map_(4, index="j")
        row.returns(row.binop("*", row.index(x, [Var("i"), row.idx]), 2.0))
        (r,) = row.end()
        mp.returns(r)
        (ys,) = mp.end()
        tr = b.transpose(ys)  # invertible
        rv = b.reverse(tr, 0)  # invertible
        big = b.param("big", f32(8, 4))
        out = b.update_slice(big, [(0, 4, 1), (0, 4, 1)], rv)
        b.returns(out)
        opt, stats = exec_and_compare(
            b.build(),
            x=np.arange(16, dtype=np.float32).reshape(4, 4),
            big=np.zeros(32, dtype=np.float32).reshape(8, 4),
        )
        # The update chain commits (the mapnest implicit circuit may too).
        assert opt.sc_stats.committed >= 1
        assert stats.copy_traffic() == 0

    def test_slice_chain_not_invertible(self):
        """A slice between creation and circuit point fails (the paper's
        dense-slice counterexample)."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        mp = b.map_(n * 2, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx % 1 if False else Var("i") - Var("i")]), 2.0))
        (ys,) = mp.end()
        half = b.slice(ys, [(0, n, 2)])  # every other element
        big = b.param("big", f32(n * 2))
        out = b.update_slice(big, [(0, n, 1)], half)
        b.returns(out)
        opt, _ = exec_and_compare(
            b.build(),
            x=np.arange(3, dtype=np.float32),
            big=np.zeros(6, dtype=np.float32),
        )
        assert opt.sc_stats.committed == 0
        assert "non-invertible-layout" in opt.sc_stats.failures

    def test_transitive_chain_fig6a(self):
        """as/bs -> cs (concat) -> yss (update): resolved via fixpoint."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        yss = b.param("yss", f32(n * 4))
        mp1 = b.map_(n, index="i")
        mp1.returns(mp1.binop("*", mp1.index(x, [mp1.idx]), 2.0))
        (as_,) = mp1.end()
        mp2 = b.map_(n, index="i")
        mp2.returns(mp2.binop("+", mp2.index(x, [mp2.idx]), 1.0))
        (bs_,) = mp2.end()
        cs = b.concat(as_, bs_)
        out = b.update_slice(yss, [(n, n * 2, 1)], cs)
        b.returns(out)
        opt, stats = exec_and_compare(
            b.build(),
            x=np.arange(3, dtype=np.float32),
            yss=np.zeros(12, dtype=np.float32),
        )
        # One candidate whose chain covers cs AND both concat operands.
        assert opt.sc_stats.committed == 1
        assert stats.copy_traffic() == 0


# ----------------------------------------------------------------------
# Mapnest implicit circuit points (fig. 6b)
# ----------------------------------------------------------------------
class TestMapImplicit:
    def test_local_loop_chain_commits(self):
        b = FunBuilder("f")
        b.size_param("n")
        src = b.param("src", f32(n, n))
        mp = b.map_(n, index="i")
        rs0 = mp.scratch("f32", [n])
        a0 = mp.index(src, [mp.idx, 0])
        rs1 = mp.update_point(rs0, [0], a0)
        lp = mp.loop(count=n - 1, carried=[("rs", rs1)], index="k")
        prev = lp.index(lp["rs"], [lp.idx])
        cur = lp.index(src, [Var("i"), lp.idx + 1])
        tot = lp.binop("+", cur, lp.unop("sqrt", lp.unop("abs", prev)))
        rs2 = lp.update_point(lp["rs"], [lp.idx + 1], tot)
        lp.returns(rs2)
        (rsf,) = lp.end()
        mp.returns(rsf)
        (xss,) = mp.end()
        b.returns(xss)
        opt, stats = exec_and_compare(
            b.build(),
            n=5,
            src=np.abs(np.random.RandomState(0).randn(5, 5)).astype(np.float32),
        )
        assert opt.sc_stats.committed == 1
        assert stats.elided_copies >= 5  # one implicit copy per thread

    def test_scalar_results_unaffected(self):
        """Scalar-result maps have no per-thread array to re-home."""
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        mp = b.map_(n, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 3.0))
        (ys,) = mp.end()
        b.returns(ys)
        opt, _ = exec_and_compare(b.build(), x=np.arange(4, dtype=np.float32))
        assert opt.sc_stats.committed == 0  # nothing to do; still correct


# ----------------------------------------------------------------------
# Loop crossing (fig. 5b) and its safety conditions
# ----------------------------------------------------------------------
class TestLoopCrossing:
    def test_double_buffer_safe_ordering_commits(self):
        """Per step: read input fully, then build a fresh result (condition
        (3) satisfied) -- collapses to one region."""
        b = FunBuilder("f")
        b.size_param("n")
        src = b.param("src", f32(n))
        mp = b.map_(n, index="th")
        u0 = mp.copy(src)
        lp = mp.loop(count=3, carried=[("u", u0)], index="t")
        # Read phase: gather the input into a temporary...
        d0 = lp.scratch("f32", [n])
        rd = lp.loop(count=n, carried=[("d", d0)], index="k")
        v = rd.binop("*", rd.index(lp["u"], [rd.idx]), 1.5)
        d1 = rd.update_point(rd["d"], [rd.idx], v)
        rd.returns(d1)
        (df,) = rd.end()
        # ... write phase: build the fresh result after all reads of u
        # (fig. 5b condition (3) satisfied at statement granularity).
        w0 = lp.scratch("f32", [n])
        wr = lp.loop(count=n, carried=[("w", w0)], index="k")
        v2 = wr.binop("+", wr.index(df, [wr.idx]), 1.0)
        w1 = wr.update_point(wr["w"], [wr.idx], v2)
        wr.returns(w1)
        (wf,) = wr.end()
        lp.returns(wf)
        (uf,) = lp.end()
        mp.returns(uf)
        (res,) = mp.end()
        b.returns(res)
        opt, _ = exec_and_compare(
            b.build(), n=4, src=np.arange(4, dtype=np.float32)
        )
        # The whole chain (u0 copy, per-step w, loop) lands in `res`.
        assert opt.sc_stats.committed >= 1

    def test_stencil_loop_rejected(self):
        """Footnote 23's stencil: iteration t+1 reads neighbours of what t
        wrote; collapsing the two buffers is unsafe and must fail."""
        b = FunBuilder("f")
        b.size_param("n")
        src = b.param("src", f32(n))
        mp = b.map_(1, index="th")
        u0 = mp.copy(src)
        lp = mp.loop(count=3, carried=[("u", u0)], index="t")
        w0 = lp.scratch("f32", [n])
        inner = lp.loop(count=n - 2, carried=[("w", w0)], index="k")
        # Reads u AFTER earlier writes to w would be unsafe if collapsed:
        # interleave read/write by reading u inside the same loop that
        # writes w at a *different* location.
        left = inner.index(lp["u"], [inner.idx])
        right = inner.index(lp["u"], [inner.idx + 2])
        w1 = inner.update_point(
            inner["w"], [inner.idx + 1], inner.binop("+", left, right)
        )
        inner.returns(w1)
        (wf,) = inner.end()
        lp.returns(wf)
        (uf,) = lp.end()
        mp.returns(uf)
        (res,) = mp.end()
        b.returns(res)
        opt, _ = exec_and_compare(
            b.build(), n=6, src=np.arange(6, dtype=np.float32)
        )
        # The loop-crossing candidate must NOT collapse the stencil buffers
        # ... and whatever happened, the result above was still correct.
        assert "loop-input-live-past-first-write" in opt.sc_stats.failures


# ----------------------------------------------------------------------
# Dead-copy reuse
# ----------------------------------------------------------------------
class TestCopyReuse:
    def test_copy_of_dead_source_reused(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        mp = b.map_(n, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
        (ys,) = mp.end()
        zs = b.copy(ys)  # ys dead after this
        v = b.lit(9.0)
        z2 = b.update_point(zs, [0], v)
        b.returns(z2)
        opt, stats = exec_and_compare(b.build(), x=np.arange(4, dtype=np.float32))
        # Either the full circuit (ys built in zs's block) or the dead-source
        # reuse fires -- both make the copy free (the 4-byte point update
        # write is real work, not copy overhead).
        assert opt.sc_stats.committed + opt.sc_stats.reused_copies >= 1
        copies = [k for k in stats.kernels.values() if k.kind == "copy"]
        assert sum(k.bytes_total for k in copies) == 0

    def test_copy_of_live_source_kept(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        mp = b.map_(n, index="i")
        mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
        (ys,) = mp.end()
        zs = b.copy(ys)
        v = b.lit(9.0)
        z2 = b.update_point(zs, [0], v)
        s = b.reduce("+", ys)  # ys still live
        b.returns(z2, s)
        opt, stats = exec_and_compare(b.build(), x=np.arange(4, dtype=np.float32))
        assert opt.sc_stats.reused_copies == 0
        assert stats.copy_traffic() > 0


# ----------------------------------------------------------------------
# If-crossing (fig. 5a)
# ----------------------------------------------------------------------
class TestIfCrossing:
    def test_branch_results_rebased(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        big = b.param("big", f32(n * 2))
        c = b.param("c", f32())
        cb = b.binop("<", c, 0.5)
        ih = b.if_(cb)
        t_mp = ih.then_builder.map_(n, index="i")
        t_mp.returns(t_mp.binop("*", t_mp.index(x, [t_mp.idx]), 2.0))
        (tv,) = t_mp.end()
        ih.then_builder.returns(tv)
        e_mp = ih.else_builder.map_(n, index="i")
        e_mp.returns(e_mp.binop("+", e_mp.index(x, [e_mp.idx]), 5.0))
        (ev,) = e_mp.end()
        ih.else_builder.returns(ev)
        (X,) = ih.end()
        out = b.update_slice(big, [(n, n, 1)], X)
        b.returns(out)
        fun = b.build()
        for cval in (0.0, 1.0):
            opt, stats = exec_and_compare(
                fun,
                x=np.arange(4, dtype=np.float32),
                big=np.zeros(8, dtype=np.float32),
                c=np.float32(cval),
            )
        assert opt.sc_stats.committed == 1
        assert stats.copy_traffic() == 0
