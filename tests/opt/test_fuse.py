"""Producer-consumer fusion: semantics, accounting, and rejection paths.

The positive tests run a fixed corpus of randomly generated two-stage map
pipelines (see conftest) through both the fused and the ``fuse=False``
ablation pipeline and require *bit-identical* outputs on both executor
tiers -- fusion changes where the intermediate lives, never a single
floating-point operation -- plus a strict simulated-traffic decrease.

The negative tests pin each legality gate to the program shape that
trips it: an escaping intermediate, a multiply-consumed one, a consumer
that is not a map, a read the range prover cannot bound, and a write to
the producer's input between the two maps.
"""

import numpy as np
import pytest

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32
from repro.mem.codegen import generate_code
from repro.mem.exec import MemExecutor
from repro.symbolic import Var

n = Var("n")
N = 11


def _gather(ex, val):
    return ex.mem[val.mem][val.ixfn.gather_offsets({})]


def _run(cf, xs, vectorize):
    ex = MemExecutor(cf.fun, vectorize=vectorize)
    (val,), stats = ex.run(n=len(xs), xs=xs.copy())
    return _gather(ex, val), stats


def _simple_pipeline():
    """xs -> (xs[i] * xs[i]) -> (+1): the minimal fusion candidate."""
    b = FunBuilder("pipe")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    v = mp.index(xs, [mp.idx])
    mp.returns(mp.binop("*", v, v))
    (inter,) = mp.end()
    mc = b.map_(n, index="j")
    mc.returns(mc.binop("+", mc.index(inter, [mc.idx]), 1.0))
    (out,) = mc.end()
    b.returns(out)
    return b.build()


# ----------------------------------------------------------------------
# Property-style corpus: fusion is output-preserving
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(30))
def test_fusion_preserves_outputs_on_random_pipelines(seed, gen_pipeline):
    rng = np.random.RandomState(seed)
    fun = gen_pipeline(rng)
    xs = rng.randn(N).astype(np.float32)

    fused = compile_fun(fun, verify=True)
    unfused = compile_fun(fun, fuse=False)
    assert fused.fuse_stats.committed == 1, fused.fuse_stats.summary()
    assert all(r.ok for r in fused.verify_reports.values())

    outs = {}
    for label, cf in (("fused", fused), ("unfused", unfused)):
        for vec in (False, True):
            outs[(label, vec)], _ = _run(cf, xs, vec)
    for vec in (False, True):
        assert np.array_equal(outs[("fused", vec)], outs[("unfused", vec)])
    # All four runs agree (tier equivalence holds within each pipeline too).
    assert np.array_equal(outs[("fused", False)], outs[("fused", True)])

    _, dry_f = MemExecutor(fused.fun, mode="dry").run(n=64)
    _, dry_u = MemExecutor(unfused.fun, mode="dry").run(n=64)
    assert dry_f.bytes_total < dry_u.bytes_total


@pytest.mark.parametrize("seed", range(30))
def test_mapnest_fusion_preserves_outputs_on_random_dags(
    seed, gen_mapnest_pipeline
):
    """Rank-2 producers, 1-2 consumers: four-way bit equality + verifier.

    The four-way grid is (fused | unfused) x (interpreted | vectorized);
    every cell must agree bitwise on every output, the verifier (incl.
    FU03's per-site hash audit) must pass on the fused program, and the
    simulated traffic must strictly drop.
    """
    rng = np.random.RandomState(seed)
    fun = gen_mapnest_pipeline(rng)
    n_outs = len(fun.body.result)
    xs = rng.randn(N * N).astype(np.float32)

    fused = compile_fun(fun, verify=True)
    unfused = compile_fun(fun, fuse=False)
    assert fused.fuse_stats.committed == 1, fused.fuse_stats.summary()
    assert fused.fuse_stats.duplicated == n_outs - 1
    assert all(r.ok for r in fused.verify_reports.values())

    outs = {}
    for label, cf in (("fused", fused), ("unfused", unfused)):
        for vec in (False, True):
            ex = MemExecutor(cf.fun, vectorize=vec)
            vals, _ = ex.run(n=N, xs=xs.copy())
            outs[(label, vec)] = [_gather(ex, v) for v in vals]
    for vec in (False, True):
        for a, b in zip(outs[("fused", vec)], outs[("unfused", vec)]):
            assert np.array_equal(a, b)
    for a, b in zip(outs[("fused", False)], outs[("fused", True)]):
        assert np.array_equal(a, b)

    _, dry_f = MemExecutor(fused.fun, mode="dry").run(n=16)
    _, dry_u = MemExecutor(unfused.fun, mode="dry").run(n=16)
    assert dry_f.bytes_total < dry_u.bytes_total


def test_fused_body_still_vectorizes():
    cf = compile_fun(_simple_pipeline())
    assert cf.fuse_stats.committed == 1
    xs = np.arange(8, dtype=np.float32)
    _, stats = _run(cf, xs, vectorize=True)
    assert stats.vec_launches == 1 and stats.interp_launches == 0


def test_fused_accounting_is_tier_and_mode_identical():
    cf = compile_fun(_simple_pipeline())
    xs = np.arange(8, dtype=np.float32)
    _, st_i = _run(cf, xs, vectorize=False)
    _, st_v = _run(cf, xs, vectorize=True)
    _, st_d = MemExecutor(cf.fun, mode="dry").run(n=8)
    for st in (st_i, st_v, st_d):
        assert st.fused_kernels == 1
        # One [8]f32 intermediate: 32 bytes written + 32 read back elided.
        assert st.bytes_elided_fusion == 64
    assert st_i.signature() == st_v.signature() == st_d.signature()


def test_codegen_marks_fused_kernel():
    code = generate_code(compile_fun(_simple_pipeline()).fun)
    assert "fused producer" in code
    assert code.count("__global__") == 1


# ----------------------------------------------------------------------
# Rejection paths
# ----------------------------------------------------------------------
def _expect_rejected(fun, reason):
    cf = compile_fun(fun)
    assert cf.fuse_stats.committed == 0, cf.fuse_stats.summary()
    assert reason in cf.fuse_stats.failures, cf.fuse_stats.summary()
    return cf


def test_escaping_intermediate_is_rejected():
    b = FunBuilder("escape")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xs, [mp.idx]), 2.0))
    (inter,) = mp.end()
    mc = b.map_(n, index="j")
    mc.returns(mc.binop("+", mc.index(inter, [mc.idx]), 1.0))
    (out,) = mc.end()
    b.returns(out, inter)  # the intermediate escapes as a result
    _expect_rejected(b.build(), "escapes-block-result")


def test_multi_consumer_intermediate_fuses_by_duplication():
    """Two cheap-map consumers: the producer body is duplicated into both."""
    b = FunBuilder("multiuse")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xs, [mp.idx]), 2.0))
    (inter,) = mp.end()
    outs = []
    for j, c in (("j", 1.0), ("k", 2.0)):
        mc = b.map_(n, index=j)
        mc.returns(mc.binop("+", mc.index(inter, [mc.idx]), c))
        outs.append(mc.end()[0])
    b.returns(*outs)
    cf = compile_fun(b.build(), verify=True)
    assert cf.fuse_stats.committed == 1, cf.fuse_stats.summary()
    assert all(r.ok for r in cf.verify_reports.values())
    recs = [
        rec
        for stmt in cf.fun.body.stmts
        for rec in stmt.fused
    ]
    assert len(recs) == 2
    assert sorted(r.duplicated for r in recs) == [False, True]
    assert all(r.site_hashes for r in recs)
    assert len({h for r in recs for h in r.site_hashes}) == 1

    xs_v = np.arange(6, dtype=np.float32)
    ex = MemExecutor(cf.fun)
    (o1, o2), stats = ex.run(n=6, xs=xs_v.copy())
    assert np.array_equal(_gather(ex, o1), xs_v * 2.0 + 1.0)
    assert np.array_equal(_gather(ex, o2), xs_v * 2.0 + 2.0)
    # 1 elided write + 2 elided reads of the [6]f32 intermediate: 3*24.
    assert stats.bytes_elided_fusion == 3 * 6 * 4


def test_expensive_multi_consumer_body_is_rejected():
    """Duplication is gated by the recompute cost model."""
    b = FunBuilder("costly")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    v = mp.index(xs, [mp.idx])
    for _ in range(20):  # > DUP_COST_LIMIT statements
        v = mp.binop("+", v, 1.0)
    mp.returns(v)
    (inter,) = mp.end()
    outs = []
    for j, c in (("j", 1.0), ("k", 2.0)):
        mc = b.map_(n, index=j)
        mc.returns(mc.binop("+", mc.index(inter, [mc.idx]), c))
        outs.append(mc.end()[0])
    b.returns(*outs)
    _expect_rejected(b.build(), "dup-too-costly")


def test_non_map_second_consumer_is_rejected():
    """A copy among the consumers blocks duplication (multi-use)."""
    b = FunBuilder("mixeduse")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xs, [mp.idx]), 2.0))
    (inter,) = mp.end()
    mc = b.map_(n, index="j")
    mc.returns(mc.binop("+", mc.index(inter, [mc.idx]), 1.0))
    (out,) = mc.end()
    b.returns(out, b.copy(inter))
    _expect_rejected(b.build(), "multi-use")


def test_non_map_consumer_is_rejected():
    b = FunBuilder("copyuse")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xs, [mp.idx]), 2.0))
    (inter,) = mp.end()
    b.returns(b.copy(inter))
    _expect_rejected(b.build(), "consumer-not-map")


def test_unprovable_read_range_is_rejected():
    """A reordering read the prover cannot bound within the producer."""
    b = FunBuilder("oob")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xs, [mp.idx]), 2.0))
    (inter,) = mp.end()
    mc = b.map_(n, index="j")
    mc.returns(mc.binop("+", mc.index(inter, [mc.idx + 1]), 1.0))
    (out,) = mc.end()
    b.returns(out)
    _expect_rejected(b.build(), "read-out-of-range")


def test_intervening_write_to_producer_input_is_rejected():
    b = FunBuilder("interleave")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    xc = b.copy(xs)
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xc, [mp.idx]), 2.0))
    (inter,) = mp.end()
    upd = b.update_point(xc, [0], b.lit(7.0, "f32"))
    mc = b.map_(n, index="j")
    mc.returns(mc.binop("+", mc.index(inter, [mc.idx]), 1.0))
    (out,) = mc.end()
    b.returns(out, upd)
    _expect_rejected(b.build(), "intervening-write")


def test_reflected_read_is_still_fused():
    """n-1-j stays provably in range: reordering alone is not a blocker."""
    b = FunBuilder("reflect")
    b.size_param("n")
    xs = b.param("xs", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(xs, [mp.idx]), 2.0))
    (inter,) = mp.end()
    mc = b.map_(n, index="j")
    mc.returns(mc.binop("+", mc.index(inter, [n - 1 - mc.idx]), 1.0))
    (out,) = mc.end()
    b.returns(out)
    cf = compile_fun(b.build())
    assert cf.fuse_stats.committed == 1
    xs_v = np.arange(6, dtype=np.float32)
    got, _ = _run(cf, xs_v, vectorize=False)
    assert np.array_equal(got, (xs_v * 2.0)[::-1] + 1.0)
