"""The polyhedral fallback tier recovers previously-rejected sites.

The headline case is NW: its two widened-slice candidates used to die on
``non-invertible-layout`` because the structural prover cannot discharge
the leftover-region obligation of a widened rebase.  The relation
engine's per-face emptiness proof can, so the full compile now commits
all 6 candidates (2 widened; the per-diagonal similarity-table staging
contributes 2 structural ones) with the extra commits attributed to the
polyhedral tier -- and the optimized program must stay observably
identical: bit-identical outputs, identical traffic signature across
both executor tiers, verifier-clean under every pipeline preset.
"""

import numpy as np
import pytest

from repro.analysis.verifier import verify_fun
from repro.bench.harness import materialize
from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun
from repro.mem.exec import MemExecutor

BENCH = all_benchmarks()
PRESETS = ("unopt", "sc", "sc+fuse", "full")


def _outputs(fun, inputs, vectorize=True):
    ex = MemExecutor(fun, vectorize=vectorize)
    inp = {
        k: (v.copy() if hasattr(v, "copy") else v) for k, v in inputs.items()
    }
    vals, stats = ex.run(**inp)
    return [
        np.asarray(materialize(ex, v), dtype=np.float64) for v in vals
    ], stats


def test_nw_widened_sites_recovered_by_polyhedral_tier():
    opt = compile_fun(BENCH["nw"].build())
    st = opt.sc_stats
    assert st.committed == 6, st.summary()
    assert st.widened_candidates == 2, st.summary()
    assert st.tiers.get("polyhedral", 0) >= 2, st.summary()
    # The structural-era rejection reason must be gone entirely.
    assert "non-invertible-layout" not in st.failures, st.failures


def test_nw_recovery_preserves_outputs_and_traffic():
    mod = BENCH["nw"]
    inputs = mod.inputs_for(*mod.TEST_DATASETS["tiny"])
    opt = compile_fun(mod.build())
    unopt = compile_fun(mod.build(), pipeline="unopt")

    vec_out, vec_stats = _outputs(opt.fun, inputs)
    ref_out, _ = _outputs(unopt.fun, inputs)
    for a, b in zip(vec_out, ref_out):
        assert np.array_equal(a, b)

    # Tier equivalence: the interpreted executor agrees bit-for-bit and
    # byte-for-byte with the vectorized engine on the optimized program.
    interp_out, interp_stats = _outputs(opt.fun, inputs, vectorize=False)
    for a, b in zip(vec_out, interp_out):
        assert np.array_equal(a, b)
    assert vec_stats.traffic_signature() == interp_stats.traffic_signature()


@pytest.mark.parametrize("preset", PRESETS)
def test_nw_verifier_clean_under_every_preset(preset):
    res = compile_fun(BENCH["nw"].build(), pipeline=preset, verify=True)
    report = verify_fun(res.fun)
    assert report.ok(), report.render()
