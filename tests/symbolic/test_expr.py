"""Unit tests for the polynomial normal form (repro.symbolic.expr)."""

import pytest

from repro.symbolic import Const, SymExpr, Var, sym


a, b, c = Var("a"), Var("b"), Var("c")


class TestConstruction:
    def test_const_zero_has_no_terms(self):
        assert Const(0).is_zero()
        assert Const(0).terms == {}

    def test_const_value(self):
        assert Const(7).as_int() == 7
        assert Const(-3).as_int() == -3

    def test_var_is_not_constant(self):
        assert not a.is_constant()
        assert a.as_int() is None

    def test_sym_coerces_int(self):
        assert sym(5) == Const(5)

    def test_sym_idempotent_on_expr(self):
        assert sym(a) is a

    def test_sym_rejects_bool(self):
        with pytest.raises(TypeError):
            sym(True)

    def test_sym_rejects_float(self):
        with pytest.raises(TypeError):
            sym(1.5)

    def test_var_rejects_empty_name(self):
        with pytest.raises(TypeError):
            SymExpr.var("")


class TestRingLaws:
    def test_add_commutative(self):
        assert a + b == b + a

    def test_mul_commutative(self):
        assert a * b == b * a

    def test_distributive(self):
        assert a * (b + c) == a * b + a * c

    def test_difference_of_squares(self):
        assert (a + b) * (a - b) == a * a - b * b

    def test_add_int_both_sides(self):
        assert 1 + a == a + 1

    def test_sub_int_left(self):
        assert 5 - a == Const(5) - a

    def test_mul_int(self):
        assert 3 * a == a * 3
        assert (3 * a).terms == {(("a", 1),): 3}

    def test_neg(self):
        assert -(a - b) == b - a

    def test_cancellation(self):
        assert (a + b - a - b).is_zero()

    def test_pow_zero_is_one(self):
        assert a**0 == Const(1)

    def test_pow_expansion(self):
        assert (a + 1) ** 2 == a * a + 2 * a + 1

    def test_pow_negative_rejected(self):
        with pytest.raises(ValueError):
            a ** (-1)

    def test_zero_annihilates(self):
        assert (a * 0).is_zero()


class TestInspection:
    def test_free_vars(self):
        assert (a * b + c + 1).free_vars() == frozenset({"a", "b", "c"})

    def test_free_vars_constant(self):
        assert Const(4).free_vars() == frozenset()

    def test_degree(self):
        assert (a * a * b + c).degree() == 3
        assert Const(0).degree() == 0

    def test_degree_in(self):
        e = a * a * b + a * c + b
        assert e.degree_in("a") == 2
        assert e.degree_in("b") == 1
        assert e.degree_in("z") == 0

    def test_constant_term(self):
        assert (a + 7).constant_term() == 7
        assert a.constant_term() == 0

    def test_coefficients_in(self):
        e = 3 * a * a + b * a + 5
        coeffs = e.coefficients_in("a")
        assert coeffs[2] == Const(3)
        assert coeffs[1] == b
        assert coeffs[0] == Const(5)

    def test_coefficients_in_reconstruct(self):
        e = a * a * b - 4 * a + c + 2
        coeffs = e.coefficients_in("a")
        rebuilt = sum(
            (coeff * a**p for p, coeff in coeffs.items()), Const(0)
        )
        assert rebuilt == e

    def test_content(self):
        assert (6 * a + 9 * b).content() == 3
        assert Const(0).content() == 0


class TestDivision:
    def test_divide_by_const(self):
        assert (6 * a + 4).div_exact(2) == 3 * a + 2

    def test_divide_by_const_inexact(self):
        assert (6 * a + 3).div_exact(2) is None

    def test_divide_by_var(self):
        assert (a * b + a).div_exact(a) == b + 1

    def test_divide_by_var_inexact(self):
        assert (a * b + 1).div_exact(a) is None

    def test_divide_by_poly(self):
        e = (a + b) * (a - b)
        assert e.div_exact(a + b) == a - b

    def test_divide_by_zero(self):
        assert a.div_exact(0) is None

    def test_divide_self(self):
        e = a * b + 3 * c
        assert e.div_exact(e) == Const(1)

    def test_divide_zero_by_anything(self):
        assert Const(0).div_exact(a + 1) == Const(0)


class TestSubstitution:
    def test_substitute_const(self):
        assert (a * b + 1).substitute({"a": 2}) == 2 * b + 1

    def test_substitute_expr(self):
        n, q = Var("n"), Var("q")
        assert (n * n).substitute({"n": q + 1}) == q * q + 2 * q + 1

    def test_substitute_simultaneous(self):
        # a -> b and b -> a simultaneously, not sequentially.
        e = a + 2 * b
        assert e.substitute({"a": b, "b": a}) == b + 2 * a

    def test_substitute_empty(self):
        e = a + b
        assert e.substitute({}) is e

    def test_evaluate(self):
        e = a * a * b - 3
        assert e.evaluate({"a": 2, "b": 5}) == 17

    def test_evaluate_missing_var(self):
        with pytest.raises(KeyError):
            a.evaluate({})


class TestIdentity:
    def test_eq_int(self):
        assert Const(3) == 3
        assert Const(3) != 4

    def test_hash_consistency(self):
        assert hash(a + b) == hash(b + a)

    def test_usable_as_dict_key(self):
        d = {a + b: 1}
        assert d[b + a] == 1

    def test_no_truthiness(self):
        with pytest.raises(TypeError):
            bool(a)

    def test_str_roundtrip_sanity(self):
        assert str(Const(0)) == "0"
        assert "a" in str(a + 1)
        s = str(2 * a * a - b + 1)
        assert "2*a^2" in s and "- b" in s

    def test_repr(self):
        assert "SymExpr" in repr(a)
