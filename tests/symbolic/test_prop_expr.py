"""Property-based tests: SymExpr arithmetic must agree with integer evaluation.

These are the load-bearing invariants: the entire non-overlap prover is built
on polynomial arithmetic, so a single wrong coefficient would silently break
short-circuiting legality.  Hypothesis generates random expressions and random
integer environments and cross-checks every operation against plain ints.
"""


from hypothesis import given, settings, strategies as st

from repro.symbolic import Const, Context, Prover, SymExpr, Var

VARS = ["a", "b", "c", "d"]


@st.composite
def exprs(draw, max_depth: int = 4):
    """Random SymExpr built from a small operator grammar."""
    depth = draw(st.integers(0, max_depth))
    if depth == 0:
        if draw(st.booleans()):
            return Var(draw(st.sampled_from(VARS)))
        return Const(draw(st.integers(-20, 20)))
    op = draw(st.sampled_from(["add", "sub", "mul", "neg", "pow"]))
    left = draw(exprs(max_depth=depth - 1))
    if op == "neg":
        return -left
    if op == "pow":
        return left ** draw(st.integers(0, 2))
    right = draw(exprs(max_depth=depth - 1))
    if op == "add":
        return left + right
    if op == "sub":
        return left - right
    return left * right


envs = st.fixed_dictionaries({v: st.integers(-10, 10) for v in VARS})


@given(exprs(), exprs(), envs)
def test_add_matches_int_eval(e1, e2, env):
    assert (e1 + e2).evaluate(env) == e1.evaluate(env) + e2.evaluate(env)


@given(exprs(), exprs(), envs)
def test_sub_matches_int_eval(e1, e2, env):
    assert (e1 - e2).evaluate(env) == e1.evaluate(env) - e2.evaluate(env)


@given(exprs(max_depth=3), exprs(max_depth=3), envs)
def test_mul_matches_int_eval(e1, e2, env):
    assert (e1 * e2).evaluate(env) == e1.evaluate(env) * e2.evaluate(env)


@given(exprs(), envs)
def test_neg_matches_int_eval(e, env):
    assert (-e).evaluate(env) == -e.evaluate(env)


@given(exprs(max_depth=2), st.integers(0, 3), envs)
def test_pow_matches_int_eval(e, p, env):
    assert (e**p).evaluate(env) == e.evaluate(env) ** p


@given(exprs(), exprs())
def test_normal_form_is_canonical(e1, e2):
    """Structurally different constructions of equal polynomials compare equal."""
    assert (e1 + e2) - e2 == e1
    assert e1 - e1 == Const(0)


@given(exprs(max_depth=3), exprs(max_depth=3), envs)
def test_div_exact_is_inverse_of_mul(e1, e2, env):
    product = e1 * e2
    if not e2.is_zero():
        quotient = product.div_exact(e2)
        # Exact division may conservatively fail (None) but when it answers
        # it must be the true quotient.
        if quotient is not None:
            assert (quotient * e2) == product
            assert quotient.evaluate(env) * e2.evaluate(env) == product.evaluate(env)


@given(exprs(max_depth=3), envs)
def test_substitute_then_eval_matches_extended_eval(e, env):
    """Substituting x := a+1 then evaluating == evaluating with x = a+1."""
    sub = e.substitute({"a": Var("b") + 1})
    env2 = dict(env)
    env2["a"] = env["b"] + 1
    assert sub.evaluate(env) == e.evaluate(env2)


@given(exprs(max_depth=3))
def test_hash_eq_contract(e):
    clone = SymExpr(dict(e.terms))
    assert clone == e
    assert hash(clone) == hash(e)


@given(exprs(max_depth=3), envs)
def test_content_divides_all_coefficients(e, env):
    g = e.content()
    if g:
        assert all(c % g == 0 for c in e.terms.values())


@settings(max_examples=60)
@given(
    st.integers(0, 5),
    st.integers(0, 5),
    st.integers(1, 5),
    st.integers(1, 5),
)
def test_prover_soundness_on_samples(alo, blo, aval_off, bval_off):
    """If the prover says e >= 0 under bounds, it must hold at sample points."""
    a, b = Var("a"), Var("b")
    ctx = Context().assume_lower("a", alo).assume_lower("b", blo)
    p = Prover(ctx)
    candidates = [
        a * b - alo * blo,
        a - alo,
        b - blo,
        a + b - alo - blo,
        a * a - alo * alo,
        a - alo - 1,  # not always provable/true
    ]
    env = {"a": alo + aval_off - 1, "b": blo + bval_off - 1}
    # Sample points satisfying the bounds only:
    if env["a"] < alo or env["b"] < blo:
        return
    for e in candidates:
        if p.nonneg(e):
            assert e.evaluate(env) >= 0, f"unsound: {e} at {env}"
