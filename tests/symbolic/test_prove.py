"""Tests for the assumption context and inequality prover."""

import pytest

from repro.symbolic import Const, Context, Prover, Sign, Var
from repro.symbolic import prove_eq, prove_le, prove_lt, prove_nonneg, prove_pos

a, b, q, n, i = Var("a"), Var("b"), Var("q"), Var("n"), Var("i")


class TestContext:
    def test_define_and_normalize(self):
        ctx = Context()
        ctx.define("n", q * b + 1)
        assert ctx.normalize(n) == q * b + 1

    def test_normalize_fixpoint_chain(self):
        ctx = Context()
        ctx.define("a", b + 1)
        ctx.define("b", q * 2)
        assert ctx.normalize(a) == 2 * q + 1

    def test_define_rejects_self_reference(self):
        ctx = Context()
        with pytest.raises(ValueError):
            ctx.define("a", a + 1)

    def test_child_sees_parent_facts(self):
        parent = Context().define("n", q + 1)
        child = parent.extended()
        assert child.normalize(n) == q + 1

    def test_child_additions_invisible_to_parent(self):
        parent = Context()
        child = parent.extended()
        child.define("n", q)
        assert parent.normalize(n) == n

    def test_numeric_range_const(self):
        assert Context().numeric_range(Const(5)) == (5, 5)

    def test_numeric_range_bounded_var(self):
        ctx = Context().assume_range("a", 2, 10)
        assert ctx.numeric_range(a) == (2, 10)
        assert ctx.numeric_range(3 * a + 1) == (7, 31)

    def test_numeric_range_one_sided(self):
        ctx = Context().assume_lower("a", 1)
        lo, hi = ctx.numeric_range(a)
        assert lo == 1 and hi is None
        lo, hi = ctx.numeric_range(-a)
        assert lo is None and hi == -1

    def test_numeric_range_product_nonneg(self):
        ctx = Context().assume_lower("a", 2).assume_lower("b", 3)
        lo, hi = ctx.numeric_range(a * b)
        assert lo == 6 and hi is None

    def test_numeric_range_symbolic_bound(self):
        # i <= n - 1, n <= 10  =>  i <= 9
        ctx = Context().assume_range("i", 0, n - 1).assume_range("n", 1, 10)
        lo, hi = ctx.numeric_range(i)
        assert lo == 0 and hi == 9

    def test_even_power_nonneg(self):
        ctx = Context()  # 'a' totally unknown
        lo, _ = ctx.numeric_range(a * a)
        assert lo == 0

    def test_bound_merging_tightens(self):
        ctx = Context().assume_lower("a", 1).assume_lower("a", 5)
        assert ctx.numeric_range(a)[0] == 5

    def test_repr_mentions_facts(self):
        ctx = Context().define("n", q).assume_lower("q", 2)
        s = repr(ctx)
        assert "n=q" in s and "q" in s


class TestProverBasics:
    def test_constant_signs(self):
        p = Prover()
        assert p.nonneg(Const(0))
        assert p.nonneg(Const(3))
        assert not p.nonneg(Const(-1))
        assert p.pos(Const(1))
        assert not p.pos(Const(0))

    def test_unknown_var_unprovable(self):
        p = Prover()
        assert not p.nonneg(a)
        assert not p.nonpos(a)
        assert p.sign(a) is Sign.UNKNOWN

    def test_square_nonneg(self):
        assert Prover().nonneg(a * a)

    def test_interval_strategy(self):
        ctx = Context().assume_range("a", 1, 5)
        p = Prover(ctx)
        assert p.pos(a)
        assert p.nonneg(5 - a)
        assert p.sign(a - 6) is Sign.NEGATIVE

    def test_eq_via_normalization(self):
        ctx = Context().define("n", q * b + 1)
        p = Prover(ctx)
        assert p.eq(n - 1, q * b)
        assert p.eq_zero(n - q * b - 1)
        assert not p.eq(n, q * b)

    def test_le_lt(self):
        ctx = Context().assume_range("i", 0, n - 1).assume_lower("n", 1)
        p = Prover(ctx)
        assert p.le(i, n - 1)
        assert p.lt(i, n)
        assert p.nonneg(i)


class TestBoundSubstitution:
    """The strategy that goes beyond interval arithmetic."""

    def test_symbolic_lower_bound(self):
        # q >= 2, b >= 1: q*b - b + 1 > 0 needs substitution q := 2.
        ctx = Context().assume_lower("q", 2).assume_lower("b", 1)
        assert Prover(ctx).pos(q * b - b + 1)

    def test_upper_bound_substitution(self):
        # i <= q - 1 (symbolic upper bound): (q-1)*b - i*b >= 0.
        ctx = (
            Context()
            .assume_range("i", 0, q - 1)
            .assume_lower("q", 1)
            .assume_lower("b", 0)
        )
        assert Prover(ctx).nonneg((q - 1) * b - i * b)

    def test_nested_substitution(self):
        # n = q*b + 1 with q >= 2, b >= 1:  n - b - 1 >= 0 (since qb >= 2b > b).
        ctx = (
            Context()
            .define("n", q * b + 1)
            .assume_lower("q", 2)
            .assume_lower("b", 1)
        )
        assert Prover(ctx).nonneg(n - b - 1)

    def test_nw_stride_dominance(self):
        """The inequality at the heart of the NW proof (paper fig. 9):

        stride n*b - b must exceed the span (b-1)*n + b of the inner dims.
        """
        ctx = (
            Context()
            .define("n", q * b + 1)
            .assume_lower("q", 2)
            .assume_lower("b", 1)
        )
        p = Prover(ctx)
        span = (b - 1) * n + b
        assert p.sign((n * b - b) - span) is Sign.POSITIVE

    def test_unprovable_stays_unprovable(self):
        # a >= 0 does not imply a - b >= 0.
        ctx = Context().assume_lower("a", 0)
        assert not Prover(ctx).nonneg(a - b)

    def test_soundness_under_true_negatives(self):
        # a in [0, 1], claim a - 2 >= 0 is false and must not be proven.
        ctx = Context().assume_range("a", 0, 1)
        assert not Prover(ctx).nonneg(a - 2)


class TestModuleConveniences:
    def test_prove_nonneg(self):
        assert prove_nonneg(Const(2))
        assert not prove_nonneg(a)

    def test_prove_pos(self):
        ctx = Context().assume_lower("a", 3)
        assert prove_pos(a, ctx)

    def test_prove_eq(self):
        assert prove_eq(a + a, 2 * a)

    def test_prove_le_lt(self):
        ctx = Context().assume_range("a", 0, 4)
        assert prove_le(a, 4, ctx)
        assert prove_lt(a, 5, ctx)
        assert not prove_lt(a, 4, ctx)
