"""Golden tests for the pretty-printer."""


from repro import FunBuilder, compile_fun, f32, pretty_fun
from repro.ir.lastuse import analyze_last_uses
from repro.lmad import lmad
from repro.symbolic import Var

n = Var("n")


def test_golden_simple_program():
    b = FunBuilder("f")
    b.size_param("n")
    A = b.param("A", f32(n * n))
    diag = b.lmad_slice(A, lmad(0, [(n, n + 1)]), name="diag")
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx], name="d")
    s = mp.binop("+", d, 1.0, name="s")
    mp.returns(s)
    (X,) = mp.end()
    A2 = b.update_lmad(A, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    fun = b.build()
    expected = """\
fun f(n : i64, A : [n^2]f32) =
  let (diag : [n]f32) = A[0 + {(n : n + 1)}]
  let (t_1 : *[n]f32) =
    map (i < n) {
      let (d : f32) = diag[i]
      let (s : f32) = d + 1.0
      in (s)
    }
  let (A2 : *[n^2]f32) = A with [0 + {(n : n + 1)}] = t_1
  in (A2)"""
    assert pretty_fun(fun) == expected


def test_annotations_and_last_uses_render():
    b = FunBuilder("f")
    x = b.param("x", f32(n))
    c = b.copy(x, name="c")
    b.returns(c)
    fun = b.build()
    compiled = compile_fun(fun, short_circuit=False)
    analyze_last_uses(compiled.fun)
    text = pretty_fun(compiled.fun)
    assert "alloc" in text
    assert "@ mem" in text  # the memory binding add-on
    assert "-- last use" in text


def test_all_expression_forms_render():
    """Every expression kind has a printable form (no <...> fallbacks)."""
    b = FunBuilder("f")
    x = b.param("x", f32(4, 4))
    y = b.param("y", f32(4))
    b.iota(4, name="i0")
    b.scratch("f32", [4], name="s0")
    b.replicate([4], 1.0, name="r0")
    cp = b.copy(y, name="c0")
    b.concat("c0", "r0", name="cc")
    b.index(x, [0, 0], name="v0")
    b.slice(x, [(0, 2, 1), (0, 2, 1)], name="sl")
    b.transpose(x, name="tr")
    b.reshape(x, [16], name="rs")
    b.reverse(y, 0, name="rv")
    b.update_point("s0", [0], 1.0, name="u0")
    b.reduce("+", y, name="rd")
    b.argmin(y, names=("am", "ai"))
    b.binop("<", "rd", 1.0, name="cond")
    ih = b.if_(("cond"))
    t = ih.then_builder.lit(1.0)
    ih.then_builder.returns(t)
    e = ih.else_builder.lit(2.0)
    ih.else_builder.returns(e)
    ih.end()
    b.returns("cc")
    text = pretty_fun(b.build())
    assert "<" not in text.replace("(i <", "").replace("x <", "") or "<Exp" not in text
    for needle in (
        "iota 4", "scratch [4] f32", "replicate [4] 1.0", "copy y",
        "concat c0 r0", "x[0, 0]", "x[0:2:1, 0:2:1]", "rearrange (1, 0) x",
        "reshape [16] x", "reverse@0 y", "with [0] = 1.0", "reduce (+) y",
        "argmin y", "if cond then",
    ):
        assert needle in text, needle
