"""Tests for the type checker, alias analysis and last-use analysis."""

import pytest

from repro.ir import (
    FunBuilder,
    analyze_aliases,
    analyze_last_uses,
    f32,
    TypeError_,
)
from repro.ir import ast as A
from repro.ir.typecheck import typecheck_fun
from repro.lmad import lmad
from repro.symbolic import Var

n = Var("n")


def _diag_fun():
    """Fig. 1 (left): two LMAD slices, a map, and a diagonal update."""
    b = FunBuilder("diag")
    b.size_param("n")
    Aname = b.param("A", f32(n * n))
    diag = b.lmad_slice(Aname, lmad(0, [(n, n + 1)]), name="diag")
    row0 = b.lmad_slice(Aname, lmad(0, [(n, 1)]), name="row0")
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx])
    r = mp.index(row0, [mp.idx])
    s = mp.binop("+", d, r)
    mp.returns(s)
    (X,) = mp.end()
    A2 = b.update_lmad(Aname, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    return b.build(), X


class TestTypecheck:
    def test_valid_program_passes(self):
        fun, _ = _diag_fun()
        assert typecheck_fun(fun)  # returns result types

    def test_unbound_variable_rejected(self):
        b = FunBuilder("f")
        with pytest.raises((TypeError_, KeyError)):
            b.index("nope", [0])

    def test_rank_mismatch_rejected(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(n, n))
        with pytest.raises(TypeError_):
            b.index(Aname, [0])  # rank-2 array, one index

    def test_lmad_slice_needs_rank1(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(n, n))
        with pytest.raises(TypeError_):
            b.lmad_slice(Aname, lmad(0, [(n, 1)]))

    def test_bad_permutation_rejected(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(n, n))
        with pytest.raises(TypeError_):
            b.rearrange(Aname, (0, 0))

    def test_use_after_consume_rejected(self):
        """The uniqueness discipline of paper section II-C."""
        b = FunBuilder("f")
        Aname = b.param("A", f32(4))
        v = b.lit(1.0)
        b.update_point(Aname, [0], v, name="A2")
        # Using the *old* A after the update is an error.
        b.index(Aname, [1], name="bad")
        b.returns("bad")
        with pytest.raises(TypeError_):
            b.build()

    def test_alias_use_after_consume_rejected(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(4))
        s = b.slice(Aname, [(0, 2, 1)], name="s")  # aliases A
        v = b.lit(1.0)
        b.update_point(Aname, [0], v, name="A2")
        b.index(s, [0], name="bad")  # s aliases the consumed A
        b.returns("bad")
        with pytest.raises(TypeError_):
            b.build()

    def test_update_result_usable(self):
        fun, _ = _diag_fun()  # returns A2, derived from consumed A
        typecheck_fun(fun)

    def test_derived_from_update_result_usable(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(4))
        v = b.lit(1.0)
        A2 = b.update_point(Aname, [0], v, name="A2")
        s = b.slice(A2, [(0, 2, 1)], name="s2")
        x = b.index(s, [0])
        b.returns(x)
        b.build()  # must not raise

    def test_if_branch_arity_checked(self):
        b = FunBuilder("f")
        c = b.binop("<", 1, 2)
        ih = b.if_(c)
        x = ih.then_builder.lit(1.0)
        ih.then_builder.returns(x)
        y1 = ih.else_builder.lit(1.0)
        y2 = ih.else_builder.lit(2.0)
        ih.else_builder.returns(y1, y2)
        with pytest.raises(TypeError_):
            ih.end()


class TestAliases:
    def test_slices_alias_source(self):
        fun, _ = _diag_fun()
        info = analyze_aliases(fun)
        assert info.may_alias("diag", "A")
        assert info.may_alias("row0", "A")
        assert info.may_alias("diag", "row0")  # transitively through A

    def test_update_result_aliases_source(self):
        fun, _ = _diag_fun()
        info = analyze_aliases(fun)
        assert info.may_alias("A2", "A")

    def test_map_result_is_fresh(self):
        fun, X = _diag_fun()
        info = analyze_aliases(fun)
        assert not info.may_alias(X, "A")

    def test_copy_is_fresh(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(4))
        c = b.copy(Aname, name="c")
        b.returns(c)
        info = analyze_aliases(b.build())
        assert not info.may_alias("c", "A")

    def test_if_result_aliases_branches(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(4))
        Bname = b.param("B", f32(4))
        c = b.binop("<", 1, 2)
        ih = b.if_(c)
        s1 = ih.then_builder.slice(Aname, [(0, 4, 1)], name="s1")
        ih.then_builder.returns(s1)
        s2 = ih.else_builder.slice(Bname, [(0, 4, 1)], name="s2")
        ih.else_builder.returns(s2)
        (r,) = ih.end()
        b.returns(r)
        info = analyze_aliases(b.build())
        assert info.may_alias(r, "A")
        assert info.may_alias(r, "B")

    def test_loop_result_aliases_init(self):
        b = FunBuilder("f")
        Aname = b.param("A", f32(4))
        lp = b.loop(count=2, carried=[("Ac", Aname)], index="i")
        v = lp.lit(1.0)
        A2 = lp.update_point(lp["Ac"], [lp.idx], v)
        lp.returns(A2)
        (res,) = lp.end()
        b.returns(res)
        info = analyze_aliases(b.build())
        assert info.may_alias(res, "A")


class TestLastUse:
    def test_x_lastly_used_at_update(self):
        """The circuit-point precondition: X is dead at `A[W] = X`."""
        fun, X = _diag_fun()
        analyze_last_uses(fun)
        update_stmt = fun.body.stmts[-1]
        assert isinstance(update_stmt.exp, A.Update)
        assert X in update_stmt.last_uses

    def test_aliased_source_not_lastly_used_early(self):
        """diag aliases A, and A is used later, so reading diag inside the
        map is not a last use of diag."""
        fun, _ = _diag_fun()
        analyze_last_uses(fun)
        map_stmt = fun.body.stmts[2]
        assert isinstance(map_stmt.exp, A.Map)
        body = map_stmt.exp.lam.body
        reads = [s for s in body.stmts if isinstance(s.exp, A.Index)]
        for r in reads:
            assert r.exp.src not in r.last_uses

    def test_free_vars_live_inside_loop(self):
        """A variable used only inside a loop body is not last-used there
        (the next iteration will read it again)."""
        b = FunBuilder("f")
        Aname = b.param("A", f32(4))
        Bname = b.param("B", f32(4))
        acc0 = b.lit(0.0)
        lp = b.loop(count=3, carried=[("acc", acc0)], index="i")
        x = lp.index(Bname, [lp.idx])  # B free in body
        acc2 = lp.binop("+", lp["acc"], x)
        lp.returns(acc2)
        (res,) = lp.end()
        b.returns(res)
        fun = b.build()
        analyze_last_uses(fun)
        loop_stmt = fun.body.stmts[-1]
        body = loop_stmt.exp.body
        read = body.stmts[0]
        assert "B" not in read.last_uses

    def test_local_binding_lastly_used_in_body(self):
        b = FunBuilder("f")
        b.size_param("n")
        mp = b.map_(n, index="i")
        local = mp.iota(n, name="local")
        s = mp.reduce("+", local)
        mp.returns(s)
        (X,) = mp.end()
        b.returns(X)
        fun = b.build()
        analyze_last_uses(fun)
        body = fun.body.stmts[0].exp.lam.body
        reduce_stmt = body.stmts[-1]
        assert "local" in reduce_stmt.last_uses
