"""Tests for the LMAD slice safety checks (paper section III-B)."""

import numpy as np
import pytest

from repro.ir.slicecheck import (
    SliceCheckError,
    check_slice_bounds,
    check_update_lmad,
    concrete_offsets,
    static_update_safe,
)
from repro.lmad import lmad
from repro.symbolic import Context, Prover, Var

n = Var("n")


class TestStatic:
    def test_diagonal_statically_safe(self):
        p = Prover(Context().assume_lower("n", 1))
        assert static_update_safe(lmad(0, [(n, n + 1)]), p)

    def test_zero_stride_statically_unsafe(self):
        assert not static_update_safe(lmad(0, [(4, 0)]))

    def test_nw_write_set_statically_safe(self):
        q, b, i = Var("q"), Var("b"), Var("i")
        ctx = (
            Context()
            .define("n", q * b + 1)
            .assume_lower("q", 2)
            .assume_lower("b", 2)
            .assume_range("i", 0, q - 1)
        )
        w = lmad(i * b + n + 1, [(i + 1, n * b - b), (b, n), (b, 1)])
        assert static_update_safe(w, Prover(ctx))


class TestDynamic:
    def test_offsets_shape(self):
        offs = concrete_offsets(lmad(1, [(3, 4)]), {})
        assert list(offs) == [1, 5, 9]

    def test_bounds_ok(self):
        offs = check_slice_bounds(lmad(0, [(4, 1)]), 4, {})
        assert offs.max() == 3

    def test_bounds_violation(self):
        with pytest.raises(SliceCheckError):
            check_slice_bounds(lmad(2, [(4, 1)]), 4, {})

    def test_update_distinct_points_ok(self):
        check_update_lmad(lmad(0, [(3, 5)]), 16, {})

    def test_update_overlapping_points_rejected(self):
        with pytest.raises(SliceCheckError):
            check_update_lmad(lmad(0, [(3, 2), (4, 1)]), 16, {})

    def test_update_zero_stride_rejected(self):
        with pytest.raises(SliceCheckError):
            check_update_lmad(lmad(0, [(4, 0)]), 16, {})

    def test_symbolic_env(self):
        offs = check_update_lmad(lmad(0, [(n, n + 1)]), 16, {"n": 4})
        assert list(offs) == [0, 5, 10, 15]

    def test_static_implies_dynamic(self):
        """Property link: statically-safe concrete LMADs always pass the
        dynamic check."""
        rng = np.random.RandomState(0)
        for _ in range(50):
            dims = [
                (int(rng.randint(1, 5)), int(rng.randint(-6, 7)))
                for _ in range(rng.randint(1, 3))
            ]
            l = lmad(int(rng.randint(0, 10)), dims)
            offsets = l.enumerate_offsets({})
            if min(offsets) < 0:
                continue  # injectivity says distinct, not in-bounds
            if static_update_safe(l):
                check_update_lmad(l, max(offsets) + 1, {})  # must not raise
