"""Tests for the textual front end (repro.ir.parser)."""

import numpy as np
import pytest

from repro.bench.programs import all_benchmarks
from repro.ir import run_fun
from repro.ir import ast as A
from repro.ir.parser import ParseError, parse_fun
from repro.ir.pretty import pretty_fun
from repro.ir.typecheck import typecheck_fun
from repro.symbolic import Var


class TestBasics:
    def test_minimal_fun(self):
        fun = parse_fun("fun f(x : [n]f32) = let (y : *[n]f32) = copy x in (y)")
        assert fun.name == "f"
        assert isinstance(fun.body.stmts[0].exp, A.Copy)
        typecheck_fun(fun)

    def test_types(self):
        fun = parse_fun(
            "fun f(a : i64, b : [n][m]f64, c : *[n^2]f32) =\n"
            "  let (y : *[n][m]f64) = copy b in (y)"
        )
        assert fun.params[0].type.dtype == "i64"
        assert fun.params[1].type.rank == 2
        assert fun.params[2].type.unique
        assert fun.params[2].type.shape[0] == Var("n") * Var("n")

    def test_scalar_polynomial(self):
        fun = parse_fun(
            "fun f(q : i64) = let (s : i64) = q^2 + 2*q - 1 in (s)"
        )
        (out,) = run_fun(fun, q=5)
        assert out == 34

    def test_literals(self):
        fun = parse_fun(
            "fun f() =\n"
            "  let (a : f32) = 2.5f32\n"
            "  let (b : bool) = truebool\n"
            "  in (a, b)"
        )
        a, b = run_fun(fun)
        assert float(a) == 2.5 and b is np.True_ or b is True

    def test_binop_floats(self):
        fun = parse_fun(
            "fun f(x : f32) =\n"
            "  let (y : f32) = x * 3.0\n"
            "  let (z : f32) = y max 1.0\n"
            "  in (z)"
        )
        (z,) = run_fun(fun, x=np.float32(2.0))
        assert float(z) == 6.0

    def test_unop(self):
        fun = parse_fun(
            "fun f(x : f64) = let (y : f64) = sqrt x in (y)"
        )
        (y,) = run_fun(fun, x=np.float64(9.0))
        assert float(y) == 3.0

    def test_parse_error_reports(self):
        with pytest.raises(ParseError):
            parse_fun("fun f( = let")


class TestArrays:
    def test_index_and_slices(self):
        fun = parse_fun(
            "fun f(x : [n][m]f32) =\n"
            "  let (v : f32) = x[1, 2]\n"
            "  let (s : [2][m]f32) = x[0:2:1, 0:m:1]\n"
            "  let (c : *[2][m]f32) = copy s\n"
            "  in (c, v)"
        )
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        c, v = run_fun(fun, x=arr)
        assert v == arr[1, 2]
        assert (c == arr[0:2]).all()

    def test_lmad_slice(self):
        fun = parse_fun(
            "fun f(x : [n^2]f32) =\n"
            "  let (d : [n]f32) = x[0 + {(n : n + 1)}]\n"
            "  let (c : *[n]f32) = copy d\n"
            "  in (c)"
        )
        arr = np.arange(16, dtype=np.float32)
        (c,) = run_fun(fun, x=arr, n=4)
        assert list(c) == [0, 5, 10, 15]

    def test_update_with_lmad(self):
        fun = parse_fun(
            "fun f(x : [n^2]f32, v : [n]f32) =\n"
            "  let (y : *[n^2]f32) = x with [0 + {(n : n + 1)}] = v\n"
            "  in (y)"
        )
        arr = np.zeros(9, dtype=np.float32)
        (y,) = run_fun(fun, x=arr, v=np.ones(3, dtype=np.float32), n=3)
        assert y.reshape(3, 3).trace() == 3.0

    def test_layout_ops(self):
        fun = parse_fun(
            "fun f(x : [a][b]f32) =\n"
            "  let (t : [b][a]f32) = rearrange (1, 0) x\n"
            "  let (r : [b][a]f32) = reverse@0 t\n"
            "  let (s : [a*b]f32) = reshape [a*b] r\n"
            "  let (c : *[a*b]f32) = copy s\n"
            "  in (c)"
        )
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        (c,) = run_fun(fun, x=arr)
        assert (c == arr.T[::-1].reshape(-1)).all()

    def test_constructors(self):
        fun = parse_fun(
            "fun f() =\n"
            "  let (i : [5]i64) = iota 5\n"
            "  let (z : *[2][3]f32) = scratch [2, 3] f32\n"
            "  let (r : *[4]f32) = replicate [4] 7.5\n"
            "  in (i, r)"
        )
        i, r = run_fun(fun)
        assert list(i) == [0, 1, 2, 3, 4]
        assert (r == 7.5).all()

    def test_reduce_argmin(self):
        fun = parse_fun(
            "fun f(x : [n]f32) =\n"
            "  let (s : f32) = reduce (+) x\n"
            "  let (v : f32, ix : i64) = argmin x\n"
            "  in (s, v, ix)"
        )
        s, v, ix = run_fun(fun, x=np.array([3, 1, 2], dtype=np.float32))
        assert s == 6.0 and v == 1.0 and ix == 1


class TestCompound:
    def test_map(self):
        fun = parse_fun(
            "fun f(x : [n]f32) =\n"
            "  let (y : *[n]f32) =\n"
            "    map (i < n) {\n"
            "      let (v : f32) = x[i]\n"
            "      let (w : f32) = v * 2.0\n"
            "      in (w)\n"
            "    }\n"
            "  in (y)"
        )
        (y,) = run_fun(fun, x=np.arange(3, dtype=np.float32))
        assert list(y) == [0, 2, 4]

    def test_loop(self):
        fun = parse_fun(
            "fun f(q : i64) =\n"
            "  let (acc0 : f64) = 1.0f64\n"
            "  let (r : f64) =\n"
            "    loop (acc = acc0) for x < q do {\n"
            "      let (k : i64) = x + 1\n"
            "      let (kf : f64) = f64 k\n"
            "      let (acc2 : f64) = acc * kf\n"
            "      in (acc2)\n"
            "    }\n"
            "  in (r)"
        )
        (r,) = run_fun(fun, q=5)
        assert float(r) == 120.0

    def test_if(self):
        fun = parse_fun(
            "fun f(q : i64) =\n"
            "  let (c : bool) = q < 10\n"
            "  let (r : f32) =\n"
            "    if c then {\n"
            "      let (a : f32) = 1.0f32\n"
            "      in (a)\n"
            "    } else {\n"
            "      let (b : f32) = 2.0f32\n"
            "      in (b)\n"
            "    }\n"
            "  in (r)"
        )
        assert float(run_fun(fun, q=5)[0]) == 1.0
        assert float(run_fun(fun, q=15)[0]) == 2.0


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(all_benchmarks()))
    def test_benchmark_roundtrip(self, name):
        """pretty -> parse -> pretty is a fixpoint for every benchmark,
        and the re-parsed program computes the same values."""
        mod = all_benchmarks()[name]
        fun = mod.build()
        text = pretty_fun(fun)
        parsed = parse_fun(text)
        text2 = pretty_fun(parsed)
        assert text2 == pretty_fun(parse_fun(text2))
        args = mod.TEST_DATASETS["tiny"]
        inp = mod.inputs_for(*args)

        def run(f):
            return run_fun(
                f,
                **{
                    k: (v.copy() if hasattr(v, "copy") else v)
                    for k, v in inp.items()
                },
            )

        for a, b in zip(run(fun), run(parsed)):
            assert np.allclose(
                np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
            )

    def test_annotations_are_discarded(self):
        """Pretty output of a *memory-annotated* program parses back to the
        plain source (the add-on property of paper section I)."""
        from repro.compiler import compile_fun
        from repro.bench.programs import nw

        fun = nw.build()
        compiled = compile_fun(fun)
        text = pretty_fun(compiled.fun)
        assert "@" in text  # annotations are printed...
        parsed = parse_fun(text)
        for stmt in parsed.body.stmts:
            for pe in stmt.pattern:
                assert pe.mem is None  # ...but not parsed back
