"""Property test: the parser round-trips randomly generated programs.

Reuses the random-program grammar from the semantics property suite: for
every generated program, pretty-printing, parsing the text back and
interpreting must produce the same values -- i.e. the surface syntax is a
faithful serialization of the IR.
"""

import numpy as np
from hypothesis import given, settings

from repro.ir import run_fun
from repro.ir.parser import parse_fun
from repro.ir.pretty import pretty_fun

from tests.opt.test_prop_semantics import N, programs


@settings(max_examples=50, deadline=None)
@given(programs())
def test_parse_pretty_roundtrip_semantics(fun):
    text = pretty_fun(fun)
    parsed = parse_fun(text)
    # Idempotence of the round trip.
    assert pretty_fun(parsed) == pretty_fun(parse_fun(pretty_fun(parsed)))
    # Semantic equivalence.
    x = np.arange(N, dtype=np.float32) - 2
    (a,) = run_fun(fun, n=N, x=x.copy())
    (b,) = run_fun(parsed, n=N, x=x.copy())
    assert np.allclose(a, b)
