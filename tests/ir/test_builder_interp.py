"""Tests for the builder + reference interpreter (functional semantics)."""

import numpy as np
import pytest

from repro.ir import FunBuilder, f32, f64, run_fun
from repro.ir.interp import InterpError
from repro.lmad import lmad
from repro.symbolic import Var

n = Var("n")


class TestScalars:
    def test_lit_and_binop(self):
        b = FunBuilder("f")
        x = b.lit(2.0, "f32")
        y = b.binop("*", x, 3.0)
        b.returns(y)
        (out,) = run_fun(b.build())
        assert out == pytest.approx(6.0)

    def test_scalar_expr(self):
        b = FunBuilder("f")
        q = b.size_param("q")
        s = b.scalar(q * q + 1, name="s")
        b.returns("s")
        (out,) = run_fun(b.build(), q=5)
        assert out == 26

    def test_comparison_and_if(self):
        b = FunBuilder("f")
        q = b.size_param("q")
        c = b.binop("<", q, 10)
        ih = b.if_(c)
        t1 = ih.then_builder.lit(1.0)
        ih.then_builder.returns(t1)
        t2 = ih.else_builder.lit(2.0)
        ih.else_builder.returns(t2)
        (r,) = ih.end()
        b.returns(r)
        fun = b.build()
        assert run_fun(fun, q=5)[0] == pytest.approx(1.0)
        assert run_fun(fun, q=15)[0] == pytest.approx(2.0)

    def test_unops(self):
        b = FunBuilder("f")
        x = b.lit(4.0, "f64")
        s = b.unop("sqrt", x)
        e = b.unop("neg", s)
        b.returns(e)
        (out,) = run_fun(b.build())
        assert out == pytest.approx(-2.0)


class TestArrays:
    def test_iota(self):
        b = FunBuilder("f")
        q = b.size_param("q")
        x = b.iota(q)
        b.returns(x)
        (out,) = run_fun(b.build(), q=4)
        assert (out == np.arange(4)).all()

    def test_scratch_is_deterministic(self):
        b = FunBuilder("f")
        x = b.scratch("f32", [3, 3])
        b.returns(x)
        (out,) = run_fun(b.build())
        assert out.shape == (3, 3)

    def test_replicate(self):
        b = FunBuilder("f")
        x = b.replicate([4], 7.5)
        b.returns(x)
        (out,) = run_fun(b.build())
        assert (out == 7.5).all()

    def test_concat(self):
        b = FunBuilder("f")
        x = b.iota(3)
        y = b.iota(2)
        z = b.concat(x, y)
        b.returns(z)
        (out,) = run_fun(b.build())
        assert list(out) == [0, 1, 2, 0, 1]

    def test_copy_is_fresh(self):
        b = FunBuilder("f")
        A = b.param("A", f32(n))
        c = b.copy(A)
        b.returns(c)
        arr = np.ones(3, dtype=np.float32)
        (out,) = run_fun(b.build(), n=3, A=arr)
        out[0] = 5
        assert arr[0] == 1.0


class TestChangeOfLayout:
    def test_transpose(self):
        b = FunBuilder("f")
        A = b.param("A", f32(2, 3))
        t = b.transpose(A)
        b.returns(t)
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        (out,) = run_fun(b.build(), A=arr)
        assert (out == arr.T).all()

    def test_slice_triplet_negative_step(self):
        b = FunBuilder("f")
        A = b.param("A", f32(6))
        s = b.slice(A, [(5, 3, -2)])
        b.returns(s)
        arr = np.arange(6, dtype=np.float32)
        (out,) = run_fun(b.build(), A=arr)
        assert list(out) == [5, 3, 1]

    def test_lmad_slice_diagonal(self):
        b = FunBuilder("f")
        nn = b.size_param("n")
        A = b.param("A", f32(n * n))
        d = b.lmad_slice(A, lmad(0, [(n, n + 1)]))
        b.returns(d)
        arr = np.arange(16, dtype=np.float32)
        (out,) = run_fun(b.build(), n=4, A=arr)
        assert list(out) == [0, 5, 10, 15]

    def test_reshape_reverse(self):
        b = FunBuilder("f")
        A = b.param("A", f32(6))
        r = b.reshape(A, [2, 3])
        v = b.reverse(r, 1)
        b.returns(v)
        arr = np.arange(6, dtype=np.float32)
        (out,) = run_fun(b.build(), A=arr)
        assert (out == arr.reshape(2, 3)[:, ::-1]).all()

    def test_flatten(self):
        b = FunBuilder("f")
        A = b.param("A", f32(2, 3))
        f = b.flatten(A)
        b.returns(f)
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        (out,) = run_fun(b.build(), A=arr)
        assert (out == arr.reshape(-1)).all()

    def test_out_of_bounds_slice_raises(self):
        b = FunBuilder("f")
        A = b.param("A", f32(4))
        s = b.slice(A, [(2, 4, 1)])
        b.returns(s)
        with pytest.raises(InterpError):
            run_fun(b.build(), A=np.zeros(4, dtype=np.float32))


class TestUpdates:
    def test_point_update(self):
        b = FunBuilder("f")
        A = b.param("A", f32(4))
        v = b.lit(9.0)
        A2 = b.update_point(A, [2], v)
        b.returns(A2)
        arr = np.zeros(4, dtype=np.float32)
        (out,) = run_fun(b.build(), A=arr)
        assert list(out) == [0, 0, 9, 0]
        assert arr[2] == 0  # functional semantics: input untouched

    def test_triplet_update(self):
        b = FunBuilder("f")
        A = b.param("A", f32(6))
        X = b.param("X", f32(3))
        A2 = b.update_slice(A, [(0, 3, 2)], X)
        b.returns(A2)
        arr = np.zeros(6, dtype=np.float32)
        x = np.array([1, 2, 3], dtype=np.float32)
        (out,) = run_fun(b.build(), A=arr, X=x)
        assert list(out) == [1, 0, 2, 0, 3, 0]

    def test_lmad_update_diagonal(self):
        b = FunBuilder("f")
        nn = b.size_param("n")
        A = b.param("A", f32(n * n))
        X = b.param("X", f32(n))
        A2 = b.update_lmad(A, lmad(0, [(n, n + 1)]), X)
        b.returns(A2)
        arr = np.zeros(9, dtype=np.float32)
        x = np.array([1, 2, 3], dtype=np.float32)
        (out,) = run_fun(b.build(), n=3, A=arr, X=x)
        assert (out.reshape(3, 3).diagonal() == x).all()

    def test_lmad_update_overlap_dynamic_check(self):
        """Paper section III-B: overlapping update points are rejected."""
        b = FunBuilder("f")
        A = b.param("A", f32(8))
        X = b.param("X", f32(4))
        A2 = b.update_lmad(A, lmad(0, [(4, 0)]), X)  # stride 0: all collide
        b.returns(A2)
        with pytest.raises(InterpError):
            run_fun(b.build(), A=np.zeros(8, np.float32), X=np.ones(4, np.float32))


class TestCompound:
    def test_map_square(self):
        b = FunBuilder("f")
        A = b.param("A", f32(n))
        mp = b.map_(n, index="i")
        x = mp.index(A, [mp.idx])
        y = mp.binop("*", x, x)
        mp.returns(y)
        (X,) = mp.end()
        b.returns(X)
        arr = np.array([1, 2, 3], dtype=np.float32)
        (out,) = run_fun(b.build(), n=3, A=arr)
        assert list(out) == [1, 4, 9]

    def test_map_array_result(self):
        """Per-thread array results stack into a matrix (mapnest)."""
        b = FunBuilder("f")
        nn = b.size_param("n")
        mp = b.map_(n, index="i")
        row = mp.iota(n)
        mp.returns(row)
        (X,) = mp.end()
        b.returns(X)
        (out,) = run_fun(b.build(), n=3)
        assert out.shape == (3, 3)
        assert (out == np.tile(np.arange(3), (3, 1))).all()

    def test_map_multi_result(self):
        b = FunBuilder("f")
        A = b.param("A", f32(n))
        mp = b.map_(n, index="i")
        x = mp.index(A, [mp.idx])
        y = mp.binop("+", x, 1.0)
        z = mp.binop("*", x, 2.0)
        mp.returns(y, z)
        ys, zs = mp.end()
        b.returns(ys, zs)
        a, bb = run_fun(b.build(), n=2, A=np.array([1, 2], dtype=np.float32))
        assert list(a) == [2, 3] and list(bb) == [2, 4]

    def test_loop_factorial(self):
        """n! via loop, as in paper section II-C."""
        b = FunBuilder("f")
        q = b.size_param("q")
        acc0 = b.lit(1.0, "f64")
        lp = b.loop(count=q, carried=[("acc", acc0)], index="x")
        nxt = lp.scalar(lp.idx + 1)
        nxtf = lp.unop("f64", nxt)
        acc2 = lp.binop("*", lp["acc"], nxtf)
        lp.returns(acc2)
        (res,) = lp.end()
        b.returns(res)
        (out,) = run_fun(b.build(), q=5)
        assert out == pytest.approx(120.0)

    def test_loop_carrying_array(self):
        b = FunBuilder("f")
        A = b.param("A", f32(4))
        lp = b.loop(count=3, carried=[("Ac", A)], index="i")
        v = lp.index(lp["Ac"], [lp.idx])
        v2 = lp.binop("+", v, 1.0)
        A2 = lp.update_point(lp["Ac"], [lp.idx], v2)
        lp.returns(A2)
        (res,) = lp.end()
        b.returns(res)
        (out,) = run_fun(b.build(), A=np.zeros(4, dtype=np.float32))
        assert list(out) == [1, 1, 1, 0]

    def test_reduce_and_argmin(self):
        b = FunBuilder("f")
        A = b.param("A", f32(n))
        s = b.reduce("+", A)
        v, i = b.argmin(A)
        b.returns(s, v, i)
        arr = np.array([3.0, 1.0, 2.0], dtype=np.float32)
        s_, v_, i_ = run_fun(b.build(), n=3, A=arr)
        assert s_ == pytest.approx(6.0)
        assert v_ == pytest.approx(1.0)
        assert i_ == 1

    def test_nested_map_in_loop(self):
        b = FunBuilder("f")
        A = b.param("A", f32(4))
        lp = b.loop(count=2, carried=[("Ac", A)], index="t")
        mp = lp.map_(4, index="j")
        x = mp.index(lp["Ac"], [mp.idx])
        y = mp.binop("*", x, 2.0)
        mp.returns(y)
        (doubled,) = mp.end()
        lp.returns(doubled)
        (res,) = lp.end()
        b.returns(res)
        (out,) = run_fun(b.build(), A=np.ones(4, dtype=np.float32))
        assert (out == 4.0).all()
