"""Tests for the device models and the roofline cost model."""

import pytest

from repro.gpu import A100, MI100, CostModel, simulate_time
from repro.mem.stats import ExecStats, KernelStat


def stats_with(kind="map", launches=1, br=0, bw=0, flops=0) -> ExecStats:
    st = ExecStats()
    k = st.kernel(1, kind, "k")
    k.launches = launches
    k.bytes_read = br
    k.bytes_written = bw
    k.flops = flops
    return st


class TestDevices:
    def test_a100_faster_memory_than_mi100(self):
        assert A100.stream_bandwidth > MI100.stream_bandwidth

    def test_mi100_higher_launch_overhead(self):
        assert MI100.launch_overhead > A100.launch_overhead

    def test_effective_below_peak(self):
        for d in (A100, MI100):
            assert d.stream_bandwidth < d.peak_bandwidth
            assert d.effective_flops < d.peak_flops


class TestCostModel:
    def test_memory_bound_kernel(self):
        cm = CostModel(A100)
        st = stats_with(br=10**9, bw=10**9)
        t = cm.total_time(st)
        expected_mem = 2e9 / (
            0.7 * A100.stream_bandwidth + 0.3 * A100.strided_bandwidth
        )
        assert t == pytest.approx(expected_mem + A100.launch_overhead, rel=1e-6)

    def test_compute_bound_kernel(self):
        cm = CostModel(A100)
        st = stats_with(br=8, flops=10**12)
        t = cm.total_time(st)
        assert t == pytest.approx(
            1e12 / A100.effective_flops + A100.launch_overhead, rel=1e-6
        )

    def test_copy_kernels_use_stream_bandwidth(self):
        cm = CostModel(A100)
        t_copy = cm.kernel_time(KernelStat("copy", "c", None, 1, 10**9, 10**9, 0))
        t_map = cm.kernel_time(KernelStat("map", "m", None, 1, 10**9, 10**9, 0))
        assert t_copy < t_map  # contiguous copies stream faster

    def test_launch_overhead_scales_with_launches(self):
        cm = CostModel(A100)
        t1 = cm.total_time(stats_with(launches=1))
        t100 = cm.total_time(stats_with(launches=100))
        assert t100 == pytest.approx(100 * t1, rel=1e-6)

    def test_empty_stats_cost_zero(self):
        assert simulate_time(ExecStats(), A100) == 0.0

    def test_sequential_reference_model(self):
        """NN's Rodinia model: per-element latency dominates large inputs."""
        cm = CostModel(A100)
        fast = cm.time_of_traffic(10**6, 10**6, launches=1)
        slow = cm.time_of_traffic(10**6, 10**6, launches=1, sequential_elems=10**6)
        assert slow > 10 * fast

    def test_same_stats_slower_on_mi100(self):
        st = stats_with(br=10**9, bw=10**9, flops=10**6)
        assert simulate_time(st, MI100) > simulate_time(st, A100)
