"""LMAD / index-function to relation conversions, against ground truth.

``IndexFn.gather_offsets`` is the executor's concrete addressing and
therefore the ground truth: for every index function a benchmark kernel
actually carries after optimization, the access relation built by the
bridge must classify exactly the (index tuple, address) pairs that
``gather_offsets`` produces.
"""

import numpy as np
import pytest

from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun
from repro.isl.bridge import (
    ixfn_to_relation,
    lift_parameters,
    lmad_to_relation,
    overlap_set,
    slice_box_difference,
)
from repro.isl.emptiness import Verdict, basic_empty
from repro.isl.terms import BasicSet, Constraint
from repro.lmad import IndexFn
from repro.lmad.lmad import Lmad, LmadDim
from repro.mem.memir import iter_stmts
from repro.symbolic import Context, Prover, SymExpr, sym

BENCHMARKS = all_benchmarks()

#: Round-trip enumeration caps: skip concrete instances larger than this
#: (the point of the test is exactness, not scale).
MAX_POINTS = 512


def _benchmark_ixfns(name):
    """Every index function installed on the optimized kernel's bindings."""
    fun = compile_fun(BENCHMARKS[name].build(), short_circuit=True).fun
    seen = set()
    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            if getattr(pe, "ixfn", None) is not None:
                seen.add(pe.ixfn)
        pb = getattr(getattr(stmt.exp, "body", None), "param_bindings", None)
        if pb:
            for b in pb.values():
                seen.add(b.ixfn)
    return sorted(seen, key=str)


def _env_for(name, ixfn):
    """Concrete values: tiny-dataset scalars, small values for indices."""
    mod = BENCHMARKS[name]
    inp = mod.inputs_for(*mod.TEST_DATASETS["tiny"])
    env = {
        k: int(v) for k, v in inp.items() if isinstance(v, (int, np.integer))
    }
    for v in sorted(ixfn.free_vars()):
        env.setdefault(v, 1)
    return env


def _concrete_shape(ixfn, env):
    try:
        dims = [int(sym(e).evaluate(env)) for e in ixfn.shape]
    except Exception:
        return None
    if any(d <= 0 for d in dims) or int(np.prod(dims)) > MAX_POINTS:
        return None
    return tuple(dims)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_ixfn_relation_round_trip(name):
    ixfns = _benchmark_ixfns(name)
    assert ixfns, name
    validated = 0
    for ixfn in ixfns:
        env = _env_for(name, ixfn)
        shape = _concrete_shape(ixfn, env)
        if shape is None:
            continue
        offs = ixfn.gather_offsets(env)
        single = ixfn.as_single()
        if single is None:
            continue
        rel = lmad_to_relation(single).as_set()
        for idx in np.ndindex(*shape):
            addr = int(offs[idx])
            assert rel.contains_point(tuple(idx) + (addr,), env), (
                name, str(ixfn), idx, addr,
            )
            assert not rel.contains_point(tuple(idx) + (addr + 1,), env)
        validated += 1
    assert validated > 0, (name, [str(i) for i in ixfns])


def test_composed_ixfn_relation_matches_unranking():
    """A two-LMAD composition: the relation's address set must equal the
    executor's unravel-then-stride ground truth."""
    inner = Lmad(sym(0), (LmadDim(sym(6), sym(1)),))
    outer = Lmad(
        sym(2), (LmadDim(sym(2), sym(10)), LmadDim(sym(3), sym(1)))
    )
    ixfn = IndexFn((outer, inner))
    assert ixfn.as_single() is None
    truth = set(int(a) for a in ixfn.gather_offsets({}).ravel())
    rel = ixfn_to_relation(ixfn)
    img = rel.range()
    for addr in range(-1, 30):
        assert img.contains_point((addr,), exist_bound=8) == (
            addr in truth
        ), addr


def test_overlap_set_reflects_shared_addresses():
    p = Prover(Context())
    evens = Lmad(sym(0), (LmadDim(sym(4), sym(2)),))  # {0,2,4,6}
    odds = Lmad(sym(1), (LmadDim(sym(4), sym(2)),))  # {1,3,5,7}
    low = Lmad(sym(0), (LmadDim(sym(3), sym(1)),))  # {0,1,2}
    assert basic_empty(overlap_set(evens, odds), p) is Verdict.EMPTY
    assert basic_empty(overlap_set(evens, low), p) is Verdict.NONEMPTY


def test_slice_box_difference_enumerates_leftover():
    """4x4 row-major widened layout minus the [1:3, 1:3] box."""
    widened = Lmad(
        sym(0), (LmadDim(sym(4), sym(4)), LmadDim(sym(4), sym(1)))
    )
    extra = slice_box_difference(
        widened, (sym(1), sym(1)), (sym(2), sym(2))
    )
    inside = {r * 4 + c for r in (1, 2) for c in (1, 2)}
    expected = set(range(16)) - inside
    got = {
        a for a in range(16) if extra.contains_point((a,), exist_bound=8)
    }
    assert got == expected


def test_lift_parameters_uses_context_bounds():
    """x == i with 0 <= i <= 9 and x <= -1: empty only via lifting."""
    ctx = Context()
    ctx.assume_range("i", 0, 9)
    bare = Prover(Context())
    x, i = SymExpr.var("x"), SymExpr.var("i")
    s = BasicSet(
        ("x",), (Constraint.eq(x - i), Constraint.ge(-x - 1))
    )
    # A prover ignorant of i's range cannot decide the original set...
    assert basic_empty(s, bare) is not Verdict.EMPTY
    lifted, did = lift_parameters(s, ctx)
    assert did
    # ...but the lifted set carries i's bounds as explicit constraints.
    assert basic_empty(lifted, bare) is Verdict.EMPTY


def test_lift_parameters_skips_stride_symbols():
    """A parameter used as a coefficient must not become a dimension."""
    ctx = Context()
    ctx.assume_range("n", 1, 100)
    x, n = SymExpr.var("x"), SymExpr.var("n")
    s = BasicSet(("x",), (Constraint.eq(x - 2 * n * x),))
    lifted, _ = lift_parameters(s, ctx)
    assert "n" not in lifted.exists
    assert lifted.is_affine()
