"""Exactness of the emptiness decision, checked against brute force.

The contract (DESIGN.md §11): ``EMPTY`` is always exact, ``NONEMPTY``
is exact because every generated set here is affine with concrete
coefficients (no parameter lifting involved), and ``UNKNOWN`` is an
allowed answer for anything.  The randomized differential enforces the
two directions that matter:

* no false ``EMPTY`` -- an enumerated witness refutes it immediately;
* no false ``NONEMPTY`` -- every generated set carries explicit box
  bounds, so an exhaustive grid scan is a complete witness search.
"""

import random

import pytest

from repro.isl.emptiness import Verdict, basic_empty, set_empty
from repro.isl.terms import BasicSet, Constraint, IntSet, stride_constraint
from repro.symbolic import Context, Prover, SymExpr

x = SymExpr.var("x")
y = SymExpr.var("y")

BOUND = 6  # every random set lives in [-BOUND, BOUND]^2


def prover():
    return Prover(Context())


def boxed(constraints, exists=()):
    base = [
        Constraint.ge(x + BOUND),
        Constraint.ge(BOUND - x),
        Constraint.ge(y + BOUND),
        Constraint.ge(BOUND - y),
    ]
    return BasicSet(("x", "y"), tuple(base) + tuple(constraints), exists)


def enumerate_members(s: BasicSet):
    return [
        (i, j)
        for i in range(-BOUND, BOUND + 1)
        for j in range(-BOUND, BOUND + 1)
        if s.contains_point((i, j), exist_bound=4 * BOUND)
    ]


class TestKnownSets:
    def test_empty_box(self):
        s = BasicSet(
            ("x",), (Constraint.ge(x - 5), Constraint.ge(3 - x))
        )
        assert basic_empty(s, prover()) is Verdict.EMPTY

    def test_nonempty_box(self):
        s = BasicSet(
            ("x",), (Constraint.ge(x), Constraint.ge(3 - x))
        )
        assert basic_empty(s, prover()) is Verdict.NONEMPTY

    def test_dark_shadow_integer_gap(self):
        """2x == 1 has a rational solution but no integer one."""
        s = BasicSet(("x",), (Constraint.eq(2 * x - 1),))
        assert basic_empty(s, prover()) is Verdict.EMPTY

    def test_stride_gap(self):
        """x even and x odd simultaneously: empty over Z."""
        k1, c1 = stride_constraint(x, 2)
        k2, c2 = stride_constraint(x, 2, 1)
        s = BasicSet(("x",), (c1, c2), (k1, k2))
        assert basic_empty(s, prover()) is Verdict.EMPTY

    def test_strides_meet(self):
        """Multiples of 2 and of 3 share 6k: nonempty."""
        k1, c1 = stride_constraint(x, 2)
        k2, c2 = stride_constraint(x, 3)
        s = BasicSet(
            ("x",),
            (c1, c2, Constraint.ge(x - 1), Constraint.ge(12 - x)),
            (k1, k2),
        )
        assert basic_empty(s, prover()) is Verdict.NONEMPTY

    def test_symbolic_parameter_empty(self):
        """0 <= x <= n-1 and x >= n is empty for every n."""
        n = SymExpr.var("n")
        s = BasicSet(
            ("x",),
            (
                Constraint.ge(x),
                Constraint.ge(n - 1 - x),
                Constraint.ge(x - n),
            ),
        )
        assert basic_empty(s, prover()) is Verdict.EMPTY

    def test_union_emptiness(self):
        both_empty = IntSet.of(
            BasicSet(("x",), (Constraint.ge(x - 5), Constraint.ge(3 - x))),
            BasicSet(("x",), (Constraint.eq(2 * x - 1),)),
        )
        assert set_empty(both_empty, prover()) is Verdict.EMPTY
        one_full = both_empty.union(
            IntSet.of(BasicSet(("x",), (Constraint.eq(x - 2),)))
        )
        assert set_empty(one_full, prover()) is Verdict.NONEMPTY


def random_basic_set(rng: random.Random) -> BasicSet:
    cons = []
    exists = []
    for _ in range(rng.randint(1, 3)):
        a, b = rng.randint(-3, 3), rng.randint(-3, 3)
        c = rng.randint(-6, 6)
        expr = a * x + b * y + c
        cons.append(
            Constraint.eq(expr) if rng.random() < 0.25 else Constraint.ge(expr)
        )
    if rng.random() < 0.4:
        m = rng.randint(2, 4)
        k, c = stride_constraint(
            rng.choice([x, y, x + y]), m, rng.randint(0, m - 1)
        )
        cons.append(c)
        exists.append(k)
    return boxed(cons, tuple(exists))


@pytest.mark.parametrize("seed", range(8))
def test_randomized_differential(seed):
    rng = random.Random(1000 + seed)
    p = prover()
    checked = {Verdict.EMPTY: 0, Verdict.NONEMPTY: 0, Verdict.UNKNOWN: 0}
    for _ in range(25):
        s = random_basic_set(rng)
        verdict = basic_empty(s, p)
        members = enumerate_members(s)
        if verdict is Verdict.EMPTY:
            assert not members, (str(s), members[:3])
        elif verdict is Verdict.NONEMPTY:
            assert members, str(s)
        checked[verdict] += 1
    # The generator must exercise both exact verdicts, or the test is
    # vacuous for one direction.
    assert checked[Verdict.EMPTY] > 0
    assert checked[Verdict.NONEMPTY] > 0


@pytest.mark.parametrize("seed", range(4))
def test_randomized_differential_pairs(seed):
    """Intersections of two random sets: the emptiness the passes ask."""
    rng = random.Random(9000 + seed)
    p = prover()
    for _ in range(12):
        a, b = random_basic_set(rng), random_basic_set(rng)
        both = a.intersect(b)
        verdict = basic_empty(both, p)
        members = enumerate_members(both)
        if verdict is Verdict.EMPTY:
            assert not members, str(both)
        elif verdict is Verdict.NONEMPTY:
            assert members, str(both)
