"""Unit tests for the affine set/relation term language (DESIGN.md §11)."""

from repro.isl.terms import (
    BasicRel,
    BasicSet,
    Constraint,
    IntSet,
    stride_constraint,
)
from repro.symbolic import SymExpr

x = SymExpr.var("x")
y = SymExpr.var("y")


def box(lo, hi, var=x, name="x"):
    return BasicSet(
        (name,), (Constraint.ge(var - lo), Constraint.ge(hi - var))
    )


class TestConstraint:
    def test_negation_of_inequality(self):
        (neg,) = Constraint.ge(x).negated()
        # not (x >= 0)  ==  -x - 1 >= 0  ==  x <= -1
        assert neg.expr.evaluate({"x": -1}) == 0
        assert neg.expr.evaluate({"x": 0}) == -1

    def test_negation_of_equality_is_two_armed(self):
        arms = Constraint.eq(x).negated()
        assert len(arms) == 2
        # x == 1 satisfies one arm, x == -1 the other, x == 0 neither.
        assert sum(a.expr.evaluate({"x": 1}) >= 0 for a in arms) == 1
        assert sum(a.expr.evaluate({"x": -1}) >= 0 for a in arms) == 1
        assert all(a.expr.evaluate({"x": 0}) < 0 for a in arms)

    def test_affinity_check(self):
        assert Constraint.ge(x * 3 + y - 1).is_affine_in(["x", "y"])
        assert not Constraint.ge(x * x).is_affine_in(["x"])
        assert not Constraint.ge(x * y).is_affine_in(["x", "y"])
        # A parameter coefficient is fine: n*x is affine in x alone.
        n = SymExpr.var("n")
        assert Constraint.ge(n * x).is_affine_in(["x"])

    def test_stride_constraint_membership(self):
        k, c = stride_constraint(x, 3)
        s = BasicSet(("x",), (c,), (k,))
        assert s.contains_point((6,))
        assert s.contains_point((0,))
        assert not s.contains_point((7,))

    def test_stride_constraint_with_residue(self):
        k, c = stride_constraint(x, 4, 1)
        s = BasicSet(("x",), (c,), (k,))
        assert s.contains_point((5,))
        assert not s.contains_point((4,))


class TestBasicSet:
    def test_contains_point(self):
        s = box(0, 9)
        assert s.contains_point((0,)) and s.contains_point((9,))
        assert not s.contains_point((10,)) and not s.contains_point((-1,))

    def test_contains_point_with_env_parameters(self):
        n = SymExpr.var("n")
        s = BasicSet(
            ("x",), (Constraint.ge(x), Constraint.ge(n - 1 - x))
        )
        assert s.contains_point((3,), env={"n": 4})
        assert not s.contains_point((4,), env={"n": 4})

    def test_intersect_requires_same_dims(self):
        import pytest

        with pytest.raises(ValueError):
            box(0, 1).intersect(box(0, 1, var=y, name="y"))

    def test_intersect_refreshes_clashing_existentials(self):
        k1, c1 = stride_constraint(x, 2)
        a = BasicSet(("x",), (c1,), (k1,))
        # Reuse the *same* existential name in the second set: even = both.
        b = BasicSet(
            ("x",),
            (Constraint.eq(x - SymExpr.var(k1) * 3),),
            (k1,),
        )
        both = a.intersect(b)
        assert len(set(both.exists)) == 2
        assert both.contains_point((6,))  # 6 = 2*3 = 3*2
        assert not both.contains_point((2,))  # even but not a multiple of 3

    def test_project_onto_exists(self):
        s = BasicSet(
            ("x", "y"),
            (Constraint.eq(y - 2 * x), Constraint.ge(x), Constraint.ge(2 - x)),
        )
        img = s.project_onto_exists(["x"])
        assert img.dims == ("y",)
        assert img.contains_point((4,))
        assert not img.contains_point((3,))


class TestIntSet:
    def test_difference_is_union_of_negated_atoms(self):
        whole = IntSet.of(box(0, 9))
        hole = box(3, 5)
        diff = whole.difference(hole)
        for p in range(0, 10):
            assert diff.contains_point((p,)) == (p < 3 or p > 5), p
        assert not diff.contains_point((10,))

    def test_difference_rejects_quantified_subtrahend(self):
        import pytest

        k, c = stride_constraint(x, 2)
        evens = BasicSet(("x",), (c,), (k,))
        with pytest.raises(ValueError):
            IntSet.of(box(0, 9)).difference(evens)

    def test_union_membership(self):
        u = IntSet.of(box(0, 1)).union(IntSet.of(box(5, 6)))
        assert u.contains_point((1,)) and u.contains_point((5,))
        assert not u.contains_point((3,))


class TestBasicRel:
    def rel_scale(self, factor, lo=0, hi=9):
        """{ [x] -> [y] : y == factor*x and lo <= x <= hi }"""
        return BasicRel(
            ("x",),
            ("y",),
            (
                Constraint.eq(y - factor * x),
                Constraint.ge(x - lo),
                Constraint.ge(hi - x),
            ),
        )

    def test_range_existentializes_inputs(self):
        img = self.rel_scale(3).range()
        assert img.dims == ("y",)
        assert img.contains_point((9,))
        assert not img.contains_point((8,))

    def test_compose_chains_maps(self):
        double = self.rel_scale(2)
        triple = self.rel_scale(3, hi=18).rename({"x": "u", "y": "v"})
        six = double.compose(triple)
        assert six.in_dims == ("x",)
        # x -> 6x through an existential middle; 12 = 6*2 reachable.
        assert six.as_set().contains_point((2, 12), exist_bound=20)
        assert not six.as_set().contains_point((2, 13), exist_bound=20)

    def test_compose_arity_mismatch(self):
        import pytest

        two_out = BasicRel(("x",), ("a", "b"))
        with pytest.raises(ValueError):
            two_out.compose(self.rel_scale(2))

    def test_intersect_domain_renames(self):
        r = self.rel_scale(2, hi=100)
        dom = box(0, 3, var=SymExpr.var("d"), name="d")
        rd = r.intersect_domain(dom)
        assert rd.as_set().contains_point((3, 6))
        assert not rd.as_set().contains_point((4, 8))
