"""Tests for the pseudo-CUDA code generator (paper section IV-A).

The generator's purpose is demonstrative -- "code similar to what
imperative users would write" -- so these tests check structural
properties of the text: inlined flat-offset expressions, kernel counts,
and copies that disappear under short-circuiting.
"""


from repro import FunBuilder, compile_fun, f32
from repro.lmad import lmad
from repro.mem.codegen import generate_code
from repro.symbolic import Var

n = Var("n")


def diag_fun():
    b = FunBuilder("diag_add")
    b.size_param("n")
    A = b.param("A", f32(n * n))
    diag = b.lmad_slice(A, lmad(0, [(n, n + 1)]), name="diag")
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx])
    r = mp.index(A, [mp.idx])
    mp.returns(mp.binop("+", d, r))
    (X,) = mp.end()
    A2 = b.update_lmad(A, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    return b.build()


class TestFlatIndexing:
    def test_lmad_offsets_inlined(self):
        """Paper IV-A: array accesses compile to flat offset expressions."""
        code = generate_code(compile_fun(diag_fun(), short_circuit=False).fun)
        assert "A_mem[i*(n + 1)]" in code  # the diagonal read
        assert "A_mem[i]" in code  # the first-row read

    def test_views_emit_no_code(self):
        code = generate_code(compile_fun(diag_fun(), short_circuit=False).fun)
        assert "no data movement" in code


class TestShortCircuitVisible:
    def test_unopt_has_copy_kernel_and_malloc(self):
        code = generate_code(compile_fun(diag_fun(), short_circuit=False).fun)
        assert "copy kernel" in code
        assert "malloc" in code
        assert code.count("__global__") == 2  # map + update copy

    def test_opt_has_single_kernel_no_malloc(self):
        code = generate_code(compile_fun(diag_fun(), short_circuit=True).fun)
        assert code.count("__global__") == 1  # just the map
        assert "malloc" not in code  # dead allocation removed
        assert "short-circuited" in code

    def test_opt_map_writes_destination_in_place(self):
        code = generate_code(compile_fun(diag_fun(), short_circuit=True).fun)
        # The kernel's implicit result write targets A's memory directly,
        # at the diagonal's flat offset.
        kernel = code.split("// generated")[0]
        assert "A_mem[i*(n + 1)" in kernel


class TestCompoundForms:
    def test_loop_and_concat(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        mp1 = b.map_(n, index="i")
        mp1.returns(mp1.binop("*", mp1.index(x, [mp1.idx]), 2.0))
        (a1,) = mp1.end()
        mp2 = b.map_(n, index="i")
        mp2.returns(mp2.binop("+", mp2.index(x, [mp2.idx]), 1.0))
        (a2,) = mp2.end()
        cc = b.concat(a1, a2)
        b.returns(cc)
        fun = b.build()
        un = generate_code(compile_fun(fun, short_circuit=False).fun)
        op = generate_code(compile_fun(fun, short_circuit=True).fun)
        assert un.count("__global__") == 4  # 2 maps + 2 concat copies
        assert op.count("__global__") == 2  # copies gone
        assert op.count("short-circuited") == 2

    def test_all_benchmarks_generate(self):
        """Code generation must succeed for every paper benchmark."""
        from repro.bench.programs import all_benchmarks

        for name, mod in all_benchmarks().items():
            code = generate_code(compile_fun(mod.build()).fun)
            assert "__global__" in code, name
            assert "void" in code, name
