"""Per-space peak accounting: the four implementations must agree.

Mirrors ``tests/reuse/test_footprint.py``'s total-peak agreement at the
per-space granularity: the interpreted executor, the vectorized engine,
dry mode, and the static estimator each maintain a live/peak counter
*per memory space*, and the dicts must match exactly on every benchmark
under both pipelines.  A second test pins that the placement actually
uses the scratchpad: kernel-local intermediates land in ``scratch``
somewhere in the corpus, so the agreement is not vacuous.
"""

import pytest

from repro.bench.harness import compile_both
from repro.bench.programs import all_benchmarks
from repro.mem.exec import MemExecutor
from repro.reuse import estimate_peak

BENCHMARKS = all_benchmarks()


def _fresh(inp):
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}


def _nonzero(d):
    return {k: v for k, v in d.items() if v}


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_space_peak_agreement_across_tiers_and_estimator(name):
    module = BENCHMARKS[name]
    args = module.TEST_DATASETS["small"]
    for compiled in compile_both(module):
        inp = module.inputs_for(*args)
        ex_i = MemExecutor(compiled.fun, vectorize=False)
        ex_i.run(**_fresh(inp))
        ex_v = MemExecutor(compiled.fun)
        ex_v.run(**_fresh(inp))
        _, dry = MemExecutor(compiled.fun, mode="dry").run(
            **module.dry_inputs_for(*args)
        )
        est = estimate_peak(compiled.fun, inp)
        four = [
            _nonzero(ex_i.stats.space_peak_bytes),
            _nonzero(ex_v.stats.space_peak_bytes),
            _nonzero(dry.space_peak_bytes),
            _nonzero(est.space_peaks),
        ]
        assert four[0] == four[1] == four[2] == four[3], (name, four)
        # Every per-space peak is bounded by the total high-water mark,
        # and the inputs alone put the hbm peak at param_bytes or more.
        for sp, peak in four[0].items():
            assert 0 < peak <= ex_i.stats.peak_bytes, (name, sp, peak)
        assert four[0].get("hbm", 0) >= est.param_bytes, (name, four[0])


def test_scratch_is_used_somewhere():
    """Kernel-local intermediates are placed in scratch; at least the
    block-recurrence benchmarks keep some through the full pipeline."""
    with_scratch = set()
    for name, module in BENCHMARKS.items():
        args = module.TEST_DATASETS["small"]
        for label, compiled in zip(("unopt", "opt"), compile_both(module)):
            est = estimate_peak(compiled.fun, module.inputs_for(*args))
            if est.space_peaks.get("scratch"):
                with_scratch.add((name, label))
    assert len({n for n, _ in with_scratch}) >= 3, with_scratch
