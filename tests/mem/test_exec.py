"""Tests for the memory-IR executor: correctness vs. the reference
interpreter, traffic accounting, elision rule, and dry-run scaling."""

import numpy as np

from repro.ir import FunBuilder, f32, run_fun
from repro.ir import ast as A
from repro.lmad import IndexFn, lmad
from repro.mem import introduce_memory
from repro.mem.exec import MemExecutor, RuntimeArray
from repro.mem.memir import MemBinding
from repro.symbolic import Var

n = Var("n")


def materialize(ex: MemExecutor, val: RuntimeArray) -> np.ndarray:
    return ex.mem[val.mem][val.ixfn.gather_offsets({})]


def check_against_interp(fun, **inputs):
    """Run both semantics; array results must agree element-wise."""
    refs = run_fun(fun, **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inputs.items()})
    mfun = introduce_memory(fun)
    ex = MemExecutor(mfun)
    vals, stats = ex.run(**inputs)
    for ref, val in zip(refs, vals):
        if isinstance(val, RuntimeArray):
            assert np.allclose(materialize(ex, val), ref)
        else:
            assert np.allclose(val, ref)
    return stats


def diag_fun():
    b = FunBuilder("diag_add")
    b.size_param("n")
    Aname = b.param("A", f32(n * n))
    diag = b.lmad_slice(Aname, lmad(0, [(n, n + 1)]), name="diag")
    row0 = b.lmad_slice(Aname, lmad(0, [(n, 1)]), name="row0")
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx])
    r = mp.index(row0, [mp.idx])
    s = mp.binop("+", d, r)
    mp.returns(s)
    (X,) = mp.end()
    A2 = b.update_lmad(Aname, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    return b.build()


class TestAgreementWithInterpreter:
    def test_diag_program(self):
        check_against_interp(diag_fun(), n=6, A=np.arange(36, dtype=np.float32))

    def test_concat_program(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        y = b.param("y", f32(n))
        dx = b.copy(x)
        dy = b.copy(y)
        z = b.concat(dx, dy)
        b.returns(z)
        check_against_interp(
            b.build(),
            x=np.arange(4, dtype=np.float32),
            y=np.arange(4, 8).astype(np.float32),
        )

    def test_layout_chain_program(self):
        b = FunBuilder("f")
        x = b.param("x", f32(4, 6))
        t = b.transpose(x)
        s = b.slice(t, [(1, 2, 2), (0, 4, 1)])
        c = b.copy(s)
        b.returns(c)
        check_against_interp(
            b.build(), x=np.arange(24, dtype=np.float32).reshape(4, 6)
        )

    def test_triplet_update_program(self):
        b = FunBuilder("f")
        x = b.param("x", f32(8))
        v = b.iota(4)
        vf = b.map_(4, index="i")
        e = vf.index(v, [vf.idx])
        ef = vf.unop("f32", e)
        vf.returns(ef)
        (vv,) = vf.end()
        x2 = b.update_slice(x, [(0, 4, 2)], vv)
        b.returns(x2)
        check_against_interp(b.build(), x=np.zeros(8, dtype=np.float32))

    def test_loop_program(self):
        b = FunBuilder("f")
        x = b.param("x", f32(5))
        lp = b.loop(count=5, carried=[("xc", x)], index="i")
        val = lp.index(lp["xc"], [lp.idx])
        v2 = lp.binop("+", val, 1.0)
        x2 = lp.update_point(lp["xc"], [lp.idx], v2)
        lp.returns(x2)
        (res,) = lp.end()
        b.returns(res)
        check_against_interp(b.build(), x=np.zeros(5, dtype=np.float32))

    def test_map_with_local_array(self):
        """fig. 6b-style mapnest with a per-thread sequential loop."""
        b = FunBuilder("f")
        b.size_param("n")
        asrc = b.param("as_", f32(n, n))
        mp = b.map_(n, index="i")
        rs0 = mp.scratch("f32", [n], name="rs0")
        a0 = mp.index(asrc, [mp.idx, 0])
        rs1 = mp.update_point(rs0, [0], a0, name="rs1")
        lp = mp.loop(count=n - 1, carried=[("rs", rs1)], index="k")
        prev = lp.index(lp["rs"], [lp.idx])
        cur = lp.index(asrc, [Var("i"), lp.idx + 1])
        sq = lp.unop("sqrt", prev)
        tot = lp.binop("+", cur, sq)
        rs2 = lp.update_point(lp["rs"], [lp.idx + 1], tot)
        lp.returns(rs2)
        (rsf,) = lp.end()
        mp.returns(rsf)
        (xss,) = mp.end()
        b.returns(xss)
        check_against_interp(
            b.build(),
            n=4,
            as_=np.abs(np.random.RandomState(0).randn(4, 4)).astype(np.float32),
        )


class TestTrafficAccounting:
    def test_update_copy_counted(self):
        stats = check_against_interp(
            diag_fun(), n=6, A=np.arange(36, dtype=np.float32)
        )
        # map kernel + update kernel
        assert stats.launches == 2
        assert stats.copy_traffic() == 2 * 6 * 4  # read X + write diag slice

    def test_elision_rule(self):
        fun = diag_fun()
        mfun = introduce_memory(fun)
        map_stmt = [s for s in mfun.body.stmts if isinstance(s.exp, A.Map)][0]
        map_stmt.pattern[0].mem = MemBinding(
            "A_mem", IndexFn.row_major([n * n]).lmad_slice(lmad(0, [(n, n + 1)]))
        )
        Ain = np.arange(36, dtype=np.float32)
        (ref,) = run_fun(fun, n=6, A=Ain.copy())
        ex = MemExecutor(mfun)
        vals, stats = ex.run(n=6, A=Ain.copy())
        assert np.allclose(materialize(ex, vals[0]), ref)
        assert stats.elided_copies == 1
        assert stats.copy_traffic() == 0
        assert stats.launches == 1

    def test_scratch_writes_nothing(self):
        b = FunBuilder("f")
        s = b.scratch("f32", [100], name="s")
        b.returns(s)
        mfun = introduce_memory(b.build())
        _, stats = MemExecutor(mfun).run()
        assert stats.bytes_written == 0

    def test_iota_writes_size(self):
        b = FunBuilder("f")
        x = b.iota(10, name="x")
        b.returns(x)
        mfun = introduce_memory(b.build())
        _, stats = MemExecutor(mfun).run()
        assert stats.bytes_written == 10 * 8  # i64

    def test_map_reads_attributed_to_kernel(self):
        stats = check_against_interp(
            diag_fun(), n=6, A=np.arange(36, dtype=np.float32)
        )
        maps = [k for k in stats.kernels.values() if k.kind == "map"]
        assert len(maps) == 1
        assert maps[0].bytes_read == 2 * 6 * 4  # diag + row0 reads
        assert maps[0].bytes_written == 6 * 4  # X
        assert maps[0].flops == 6


class TestDryRun:
    def test_dry_matches_real_traffic(self):
        """Dry-run traffic must equal real traffic at the same size."""
        fun = diag_fun()
        mfun = introduce_memory(fun)
        _, real = MemExecutor(mfun).run(n=8, A=np.zeros(64, dtype=np.float32))
        _, dry = MemExecutor(mfun, mode="dry").run(n=8)
        assert dry.bytes_read == real.bytes_read
        assert dry.bytes_written == real.bytes_written
        assert dry.flops == real.flops
        assert dry.launches == real.launches

    def test_dry_scales_to_huge_sizes(self):
        fun = diag_fun()
        mfun = introduce_memory(fun)
        _, dry = MemExecutor(mfun, mode="dry").run(n=32768)
        # map reads 2 f32 per thread; update copies n f32 both ways
        assert dry.bytes_read == 2 * 32768 * 4 + 32768 * 4
        assert dry.bytes_written == 32768 * 4 * 2

    def test_dry_loop_iterates(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        lp = b.loop(count=7, carried=[("xc", x)], index="i")
        c = lp.copy(lp["xc"])
        lp.returns(c)
        (res,) = lp.end()
        b.returns(res)
        mfun = introduce_memory(b.build())
        _, dry = MemExecutor(mfun, mode="dry").run(n=100)
        copies = [k for k in dry.kernels.values() if k.kind == "copy"]
        assert sum(k.launches for k in copies) == 7
        assert sum(k.bytes_read for k in copies) == 7 * 100 * 4
