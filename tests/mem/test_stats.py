"""Tests for execution statistics and their scaling arithmetic."""

from repro.mem.stats import ExecStats, KernelStat


class TestKernelStat:
    def test_bytes_total(self):
        k = KernelStat("map", "k", None, 1, 10, 20, 5)
        assert k.bytes_total == 30

    def test_merge_scaled_preserves_launches(self):
        a = KernelStat("map", "k", None, 2, 10, 10, 10)
        b = KernelStat("map", "k", None, 3, 100, 100, 100)
        a.merge_scaled(b, 4)
        assert a.launches == 5  # launches never scale with threads
        assert a.bytes_read == 10 + 400


class TestExecStats:
    def test_kernel_registry_aggregates_by_site(self):
        st = ExecStats()
        k1 = st.kernel(1, "map", "a")
        k2 = st.kernel(1, "map", "a")
        assert k1 is k2
        assert st.kernel(2, "map", "b") is not k1
        assert st.kernel(1, "copy", "a") is not k1  # kind is part of the key

    def test_key_recorded(self):
        st = ExecStats()
        k = st.kernel(7, "copy", "c")
        assert k.key == (7, "copy")

    def test_totals(self):
        st = ExecStats()
        a = st.kernel(1, "map", "a")
        a.launches, a.bytes_read, a.bytes_written, a.flops = 2, 10, 20, 5
        b = st.kernel(2, "copy", "b")
        b.launches, b.bytes_read, b.bytes_written = 1, 7, 7
        assert st.bytes_read == 17
        assert st.bytes_written == 27
        assert st.bytes_total == 44
        assert st.flops == 5
        assert st.launches == 3
        assert st.copy_traffic() == 14  # only the copy-kind kernel

    def test_merge_scaled_fractional(self):
        main = ExecStats()
        sub = ExecStats()
        k = sub.kernel(1, "map", "a")
        k.bytes_read = 100
        sub.elided_copies = 2
        main.merge_scaled(sub, 2.5)
        assert main.bytes_read == 250
        assert main.elided_copies == 5

    def test_summary_renders(self):
        st = ExecStats()
        st.kernel(1, "map", "a").bytes_read = 1024
        text = st.summary()
        assert "bytes read" in text and "1,024" in text
