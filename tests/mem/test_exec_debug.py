"""The executor's debug shadow memory (bounds + poison tracking)."""

import numpy as np
import pytest

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32
from repro.lmad import IndexFn, lmad
from repro.mem.exec import (
    MemExecutor,
    OutOfBoundsError,
    UninitializedReadError,
)
from repro.mem.memir import MemBinding, binding_of, iter_stmts
from repro.ir import ast as A
from repro.symbolic import SymExpr, Var

n = Var("n")


def _double_map():
    b = FunBuilder("f")
    x = b.param("x", f32(n))
    mp = b.map_(n, index="i")
    mp.returns(mp.binop("*", mp.index(x, [mp.idx]), 2.0))
    (X,) = mp.end()
    b.returns(X)
    return b.build()


def _map_pat(fun):
    for stmt in iter_stmts(fun.body):
        if isinstance(stmt.exp, A.Map):
            return stmt.pattern[0]
    raise AssertionError


def test_debug_mode_matches_normal_execution():
    fun = compile_fun(_double_map()).fun
    x = np.arange(8, dtype=np.float32)
    plain = MemExecutor(fun)
    vplain, _ = plain.run(x=x.copy())
    dbg = MemExecutor(fun, debug=True)
    vdbg, _ = dbg.run(x=x.copy())
    got_p = plain.mem[vplain[0].mem][vplain[0].ixfn.gather_offsets({})]
    got_d = dbg.mem[vdbg[0].mem][vdbg[0].ixfn.gather_offsets({})]
    assert np.array_equal(got_p, got_d)
    assert np.array_equal(got_d, x * 2)


def test_dry_debug_runs_bounds_only():
    # Dry mode has no data to shadow, but debug=True still bounds-checks
    # every region analytically; a clean program passes.
    fun = compile_fun(_double_map()).fun
    MemExecutor(fun, mode="dry", debug=True).run(n=1 << 20)


def test_dry_debug_negative_offset_is_out_of_bounds():
    # The analytic bounds check works at paper-scale extents where real
    # shadow memory would be prohibitive.
    fun = compile_fun(_double_map(), short_circuit=False).fun
    pe = _map_pat(fun)
    b = binding_of(pe)
    pe.mem = MemBinding(b.mem, IndexFn((lmad(-1, [(SymExpr.var("n"), 1)]),)))
    MemExecutor(fun, mode="dry").run(n=1 << 24)  # unnoticed without debug
    with pytest.raises(OutOfBoundsError):
        MemExecutor(fun, mode="dry", debug=True).run(n=1 << 24)


def test_dry_debug_offset_past_end_is_out_of_bounds():
    fun = compile_fun(_double_map(), short_circuit=False).fun
    pe = _map_pat(fun)
    b = binding_of(pe)
    pe.mem = MemBinding(b.mem, IndexFn((lmad(1, [(SymExpr.var("n"), 1)]),)))
    with pytest.raises(OutOfBoundsError):
        MemExecutor(fun, mode="dry", debug=True).run(n=1 << 24)


def test_dry_debug_copy_region_checked():
    b = FunBuilder("f")
    x = b.param("x", f32(n))
    c = b.copy(x)
    b.returns(c)
    fun = compile_fun(b.build(), short_circuit=False).fun
    for stmt in iter_stmts(fun.body):
        if isinstance(stmt.exp, A.Copy):
            pe = stmt.pattern[0]
            bd = binding_of(pe)
            pe.mem = MemBinding(
                bd.mem, IndexFn((lmad(1, [(SymExpr.var("n"), 1)]),))
            )
            break
    else:
        raise AssertionError("no copy survived")
    with pytest.raises(OutOfBoundsError):
        MemExecutor(fun, mode="dry", debug=True).run(n=1 << 24)


def test_negative_offset_is_out_of_bounds():
    # NumPy silently wraps buf[-1]; the shadow memory must not.
    fun = compile_fun(_double_map(), short_circuit=False).fun
    pe = _map_pat(fun)
    b = binding_of(pe)
    pe.mem = MemBinding(b.mem, IndexFn((lmad(-1, [(SymExpr.var("n"), 1)]),)))
    x = np.arange(4, dtype=np.float32)
    # Without debug the wraparound goes unnoticed...
    MemExecutor(fun).run(x=x.copy())
    # ...with debug it is an error.
    with pytest.raises(OutOfBoundsError):
        MemExecutor(fun, debug=True).run(x=x.copy())


def test_offset_past_end_is_out_of_bounds():
    fun = compile_fun(_double_map(), short_circuit=False).fun
    pe = _map_pat(fun)
    b = binding_of(pe)
    pe.mem = MemBinding(b.mem, IndexFn((lmad(1, [(SymExpr.var("n"), 1)]),)))
    with pytest.raises(OutOfBoundsError):
        MemExecutor(fun, debug=True).run(x=np.arange(4, dtype=np.float32))


def test_scratch_read_is_uninitialized():
    b = FunBuilder("f")
    b.param("x", f32(n))
    s = b.scratch("f32", [n])
    v = b.index(s, [0])
    b.returns(v)
    fun = compile_fun(b.build(), short_circuit=False).fun
    x = np.arange(4, dtype=np.float32)
    MemExecutor(fun).run(x=x.copy())  # deterministic zeros without debug
    with pytest.raises(UninitializedReadError):
        MemExecutor(fun, debug=True).run(x=x.copy())


def test_copy_propagates_poison_instead_of_raising():
    # Copying a scratch buffer is legal; only the scalar read of the
    # copied poison is an error (valgrind semantics).
    b = FunBuilder("f")
    b.param("x", f32(n))
    s = b.scratch("f32", [n])
    c = b.copy(s)
    v = b.index(c, [0])
    b.returns(v)
    fun = compile_fun(b.build(), short_circuit=False).fun
    with pytest.raises(UninitializedReadError):
        MemExecutor(fun, debug=True).run(x=np.arange(4, dtype=np.float32))


def test_initialized_data_flows_through_copies():
    b = FunBuilder("f")
    x = b.param("x", f32(n))
    c = b.copy(x)
    v = b.index(c, [1])
    b.returns(v)
    fun = compile_fun(b.build()).fun
    vals, _ = MemExecutor(fun, debug=True).run(
        x=np.arange(4, dtype=np.float32)
    )
    assert vals[0] == 1.0
