"""Tests for the memory introduction pass (paper section IV-C)."""

import numpy as np

from repro.ir import FunBuilder, f32, run_fun
from repro.ir import ast as A
from repro.lmad import IndexFn, lmad
from repro.mem import introduce_memory, hoist_allocations
from repro.mem.hoist import remove_dead_allocations
from repro.mem.memir import binding_of
from repro.symbolic import Var

n, m = Var("n"), Var("m")


def _find(fun, name):
    from repro.mem.memir import iter_stmts

    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            if pe.name == name:
                return stmt, pe
    raise KeyError(name)


class TestFreshArrays:
    def test_copy_gets_alloc_and_rowmajor(self):
        """The paper's `let y = copy x` example of section IV-C."""
        b = FunBuilder("f")
        x = b.param("x", f32(n, m))
        y = b.copy(x, name="y")
        b.returns(y)
        mfun = introduce_memory(b.build())
        stmt, pe = _find(mfun, "y")
        bind = binding_of(pe)
        assert bind is not None
        assert bind.ixfn == IndexFn.row_major([n, m])
        allocs = [s for s in mfun.body.stmts if isinstance(s.exp, A.Alloc)]
        assert len(allocs) == 1
        assert allocs[0].exp.size == n * m
        assert allocs[0].names[0] == bind.mem

    def test_iota_scratch_concat_allocs(self):
        b = FunBuilder("f")
        x = b.iota(n, name="x")
        y = b.scratch("i64", [n], name="y")
        z = b.concat(x, y, name="z")
        b.returns(z)
        mfun = introduce_memory(b.build())
        allocs = [s for s in mfun.body.stmts if isinstance(s.exp, A.Alloc)]
        assert len(allocs) == 3
        _, pz = _find(mfun, "z")
        assert binding_of(pz).ixfn.shape[0] == n + n

    def test_param_binding_implicit(self):
        from repro.mem.memir import array_bindings

        b = FunBuilder("f")
        x = b.param("x", f32(n))
        c = b.copy(x, name="c")
        b.returns(c)
        mfun = introduce_memory(b.build())
        binds = array_bindings(mfun)
        assert binds["x"].mem == "x_mem"


class TestChangeOfLayout:
    def test_transpose_same_mem(self):
        """Paper: `let z = transpose y` stays in y's memory, column-major."""
        b = FunBuilder("f")
        x = b.param("x", f32(n, m))
        y = b.copy(x, name="y")
        z = b.transpose(y, name="z")
        b.returns(z)
        mfun = introduce_memory(b.build())
        _, py = _find(mfun, "y")
        _, pz = _find(mfun, "z")
        assert binding_of(pz).mem == binding_of(py).mem
        assert binding_of(pz).ixfn == IndexFn.row_major([n, m]).transpose()

    def test_slice_offsets_into_source(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n, m))
        s = b.slice(x, [(1, 2, 1), (0, m, 1)], name="s")
        b.returns(s)
        mfun = introduce_memory(b.build())
        _, ps = _find(mfun, "s")
        bind = binding_of(ps)
        assert bind.mem == "x_mem"
        assert bind.ixfn.inner.offset == m

    def test_lmad_slice_binding(self):
        b = FunBuilder("f")
        b.size_param("n")
        x = b.param("x", f32(n * n))
        d = b.lmad_slice(x, lmad(0, [(n, n + 1)]), name="d")
        b.returns(d)
        mfun = introduce_memory(b.build())
        _, pd = _find(mfun, "d")
        assert binding_of(pd).ixfn.inner == lmad(0, [(n, n + 1)])

    def test_update_result_shares_memory(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        v = b.lit(1.0)
        x2 = b.update_point(x, [0], v, name="x2")
        b.returns(x2)
        mfun = introduce_memory(b.build())
        _, p2 = _find(mfun, "x2")
        assert binding_of(p2).mem == "x_mem"


class TestIfAntiUnification:
    def _branchy(self, make_else_colmajor: bool):
        b = FunBuilder("f")
        x = b.param("x", f32(n, m))
        c = b.param("c", f32())  # runtime float to build a condition from
        cb = b.binop("<", c, 0.5)
        ih = b.if_(cb)
        t1 = ih.then_builder.copy(x, name="tcopy")
        ih.then_builder.returns(t1)
        if make_else_colmajor:
            e0 = ih.else_builder.copy(x, name="ecopy")
            e1 = ih.else_builder.transpose(e0, name="etr")
            e2 = ih.else_builder.transpose(e1, name="etr2")
            ih.else_builder.returns(e2)
        else:
            e1 = ih.else_builder.copy(x, name="ecopy")
            ih.else_builder.returns(e1)
        (r,) = ih.end()
        b.returns(r)
        return b.build()

    def test_same_layout_different_mem_gets_existential(self):
        fun = self._branchy(False)
        mfun = introduce_memory(fun)
        if_stmt = [s for s in mfun.body.stmts if isinstance(s.exp, A.If)][0]
        # Pattern extended with an existential memory element.
        assert len(if_stmt.pattern) == 2
        arr_pe = if_stmt.pattern[0]
        bind = binding_of(arr_pe)
        assert bind.mem == if_stmt.pattern[1].name
        # Branch results extended with the two branch memory names.
        assert len(if_stmt.exp.then_block.result) == 2

    def test_execution_through_existential(self):
        fun = self._branchy(False)
        mfun = introduce_memory(fun)
        from repro.mem.exec import MemExecutor

        xin = np.arange(6, dtype=np.float32).reshape(2, 3)
        for cval in (0.0, 1.0):
            (ref,) = run_fun(fun, x=xin, c=np.float32(cval))
            ex = MemExecutor(mfun)
            vals, _ = ex.run(x=xin, c=np.float32(cval))
            got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
            assert np.allclose(got, ref)

    def test_paper_lgg_example(self):
        """Row-major vs column-major branches: lgg with 2 existential
        strides (paper section IV-C)."""
        b = FunBuilder("f")
        x = b.param("x", f32(n, m))
        c = b.param("c", f32())
        cb = b.binop("<", c, 0.5)
        ih = b.if_(cb)
        t1 = ih.then_builder.copy(x, name="tc")
        ih.then_builder.returns(t1)
        # col-major y: copy of transpose, then transposed view
        e0 = ih.else_builder.transpose(x, name="etr")
        e1 = ih.else_builder.copy(e0, name="ec")
        e2 = ih.else_builder.transpose(e1, name="etr2")
        ih.else_builder.returns(e2)
        (r,) = ih.end()
        b.returns(r)
        mfun = introduce_memory(b.build())
        if_stmt = [s for s in mfun.body.stmts if isinstance(s.exp, A.If)][0]
        # existential mem + 2 existential strides
        assert len(if_stmt.pattern) == 4
        bind = binding_of(if_stmt.pattern[0])
        single = bind.ixfn.as_single()
        assert single is not None
        assert single.dims[0].shape == n
        # both strides are existential variables now
        assert len(single.dims[0].stride.free_vars()) == 1
        # executions agree with the reference on both paths
        xin = np.arange(6, dtype=np.float32).reshape(2, 3)
        from repro.mem.exec import MemExecutor

        for cval in (0.0, 1.0):
            (ref,) = run_fun(b.build(), x=xin, c=np.float32(cval))
            ex = MemExecutor(mfun)
            vals, _ = ex.run(x=xin, c=np.float32(cval))
            got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
            assert np.allclose(got, ref)


class TestLoopNormalization:
    def test_loop_param_existential_binding(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        lp = b.loop(count=3, carried=[("xc", x)], index="i")
        v = lp.lit(1.0)
        x2 = lp.update_point(lp["xc"], [lp.idx], v)
        lp.returns(x2)
        (res,) = lp.end()
        b.returns(res)
        mfun = introduce_memory(b.build())
        loop_stmt = [s for s in mfun.body.stmts if isinstance(s.exp, A.Loop)][0]
        pb = getattr(loop_stmt.exp.body, "param_bindings")
        assert "xc" in pb

    def test_nondirect_init_copied(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n, m))
        tr = b.transpose(x, name="tr")  # non-direct layout
        lp = b.loop(count=2, carried=[("xc", tr)], index="i")
        lp.returns(lp["xc"])
        (res,) = lp.end()
        b.returns(res)
        mfun = introduce_memory(b.build())
        copies = [
            s
            for s in mfun.body.stmts
            if isinstance(s.exp, A.Copy) and s.exp.src == "tr"
        ]
        assert len(copies) == 1

    def test_loop_executes_correctly(self):
        b = FunBuilder("f")
        x = b.param("x", f32(4))
        lp = b.loop(count=4, carried=[("xc", x)], index="i")
        v = lp.index(lp["xc"], [lp.idx])
        v2 = lp.binop("*", v, 2.0)
        x2 = lp.update_point(lp["xc"], [lp.idx], v2)
        lp.returns(x2)
        (res,) = lp.end()
        b.returns(res)
        fun = b.build()
        mfun = introduce_memory(fun)
        from repro.mem.exec import MemExecutor

        xin = np.array([1, 2, 3, 4], dtype=np.float32)
        (ref,) = run_fun(fun, x=xin.copy())
        ex = MemExecutor(mfun)
        vals, _ = ex.run(x=xin.copy())
        got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
        assert np.allclose(got, ref)


class TestHoisting:
    def test_allocs_hoisted_to_front(self):
        b = FunBuilder("f")
        b.size_param("n")
        x = b.param("x", f32(n))
        y = b.copy(x, name="y")  # alloc depends only on n
        z = b.copy(y, name="z")
        b.returns(z)
        mfun = introduce_memory(b.build())
        hoist_allocations(mfun)
        kinds = [type(s.exp).__name__ for s in mfun.body.stmts]
        assert kinds[0] == "Alloc" and kinds[1] == "Alloc"

    def test_hoist_respects_size_dependencies(self):
        b = FunBuilder("f")
        b.size_param("n")
        k = b.scalar(n * 2, name="k")
        y = b.scratch("f32", [k], name="y")
        b.returns(y)
        mfun = introduce_memory(b.build())
        hoist_allocations(mfun)
        stmts = mfun.body.stmts
        k_pos = next(i for i, s in enumerate(stmts) if "k" in s.names)
        alloc_pos = next(
            i for i, s in enumerate(stmts) if isinstance(s.exp, A.Alloc)
        )
        assert alloc_pos > k_pos

    def test_dead_alloc_removed_after_rebasing(self):
        b = FunBuilder("f")
        x = b.param("x", f32(n))
        y = b.copy(x, name="y")
        b.returns(y)
        mfun = introduce_memory(b.build())
        # Simulate short-circuiting: rebase y into x_mem.
        from repro.mem.memir import MemBinding

        stmt, pe = _find(mfun, "y")
        pe.mem = MemBinding("x_mem", IndexFn.row_major([n]))
        removed = remove_dead_allocations(mfun)
        assert removed == 1
        assert not any(isinstance(s.exp, A.Alloc) for s in mfun.body.stmts)
