"""Tests for the vectorized kernel engine (``repro.mem.vectorize``).

The engine's contract is *tier equivalence*: for any program it accepts,
it must produce bit-identical outputs and a bit-identical
``ExecStats.signature()`` relative to the interpreted per-thread path.
Programs it cannot express must fall back, silently and correctly.
"""

import importlib

import numpy as np
import pytest

from repro.bench.harness import compile_both, materialize
from repro.ir import FunBuilder, f32
from repro.mem import introduce_memory
from repro.mem.exec import MemExecutor
from repro.symbolic import Var

n = Var("n")

BENCHMARKS = ["nw", "lud", "hotspot", "lbm", "optionpricing", "locvolcalib", "nn"]


def run_tiers(fun, inputs):
    """Run ``fun`` under both executor tiers on identical inputs."""

    def fresh():
        return {
            k: (v.copy() if hasattr(v, "copy") else v) for k, v in inputs.items()
        }

    ex_i = MemExecutor(fun, vectorize=False)
    vals_i, _ = ex_i.run(**fresh())
    ex_v = MemExecutor(fun)
    vals_v, _ = ex_v.run(**fresh())
    return ex_i, vals_i, ex_v, vals_v


def assert_tier_equivalent(ex_i, vals_i, ex_v, vals_v):
    for a, b in zip(vals_i, vals_v):
        ga = np.asarray(materialize(ex_i, a))
        gb = np.asarray(materialize(ex_v, b))
        assert np.array_equal(ga, gb), "outputs differ between tiers"
    assert ex_i.stats.signature() == ex_v.stats.signature(), (
        "simulated stats differ between tiers"
    )


# ----------------------------------------------------------------------
# Differential: every benchmark, both pipelines
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_benchmark_tiers_agree(self, name):
        mod = importlib.import_module(f"repro.bench.programs.{name}")
        inputs = mod.inputs_for(*mod.TEST_DATASETS["small"])
        for compiled in compile_both(mod):
            ex_i, vals_i, ex_v, vals_v = run_tiers(compiled.fun, inputs)
            assert_tier_equivalent(ex_i, vals_i, ex_v, vals_v)
            assert ex_v.stats.vec_launches > 0, "engine never engaged"
            assert ex_i.stats.vec_launches == 0


# ----------------------------------------------------------------------
# Fallback paths
# ----------------------------------------------------------------------
def rowsum_fun():
    """Map body containing a Reduce: the plan must reject it."""
    b = FunBuilder("rowsum")
    b.size_param("n")
    X = b.param("X", f32(n, n))
    mp = b.map_(n, index="i")
    row = mp.slice(X, [(mp.idx, 1, 1), (0, n, 1)])
    s = mp.reduce("+", row)
    mp.returns(s)
    (out,) = mp.end()
    b.returns(out)
    return b.build()


def lane_varying_loop_fun():
    """Map body with a thread-dependent trip count (triangular loop)."""
    b = FunBuilder("tri")
    b.size_param("n")
    X = b.param("X", f32(n))
    mp = b.map_(n, index="i")
    x0 = mp.index(X, [mp.idx])
    lp = mp.loop(mp.idx, [("acc", x0)], index="j")
    nxt = lp.binop("+", lp["acc"], lp["acc"])
    lp.returns(nxt)
    (acc,) = lp.end()
    mp.returns(acc)
    (out,) = mp.end()
    b.returns(out)
    return b.build()


class TestFallback:
    def test_reduce_body_falls_back(self):
        fun = introduce_memory(rowsum_fun())
        inputs = dict(n=5, X=np.arange(25, dtype=np.float32).reshape(5, 5))
        ex_i, vals_i, ex_v, vals_v = run_tiers(fun, inputs)
        assert ex_v.stats.vec_launches == 0
        assert ex_v.stats.interp_launches > 0
        assert_tier_equivalent(ex_i, vals_i, ex_v, vals_v)

    def test_lane_varying_loop_count_falls_back(self):
        fun = introduce_memory(lane_varying_loop_fun())
        inputs = dict(n=6, X=np.arange(6, dtype=np.float32))
        ex_i, vals_i, ex_v, vals_v = run_tiers(fun, inputs)
        assert ex_v.stats.vec_launches == 0
        assert ex_v.stats.interp_launches > 0
        assert_tier_equivalent(ex_i, vals_i, ex_v, vals_v)

    def test_debug_mode_forces_interpreted(self):
        mod = importlib.import_module("repro.bench.programs.nw")
        _, opt = compile_both(mod)
        inputs = mod.inputs_for(*mod.TEST_DATASETS["tiny"])
        ex = MemExecutor(opt.fun, debug=True)
        ex.run(**{k: (v.copy() if hasattr(v, "copy") else v)
                  for k, v in inputs.items()})
        assert ex.stats.vec_launches == 0
        assert ex.stats.interp_launches > 0

    def test_vectorize_flag_off(self):
        mod = importlib.import_module("repro.bench.programs.nw")
        _, opt = compile_both(mod)
        inputs = mod.inputs_for(*mod.TEST_DATASETS["tiny"])
        ex = MemExecutor(opt.fun, vectorize=False)
        ex.run(**{k: (v.copy() if hasattr(v, "copy") else v)
                  for k, v in inputs.items()})
        assert ex.stats.vec_launches == 0
        assert ex.stats.vec_hit_rate == 0.0


# ----------------------------------------------------------------------
# Nested maps run in the composite lane space
# ----------------------------------------------------------------------
def nested_map_fun():
    b = FunBuilder("outer_product")
    b.size_param("n")
    x = b.param("x", f32(n))
    y = b.param("y", f32(n))
    mo = b.map_(n, index="i")
    xi = mo.index(x, [mo.idx])
    mi = mo.map_(n, index="j")
    yj = mi.index(y, [mi.idx])
    p = mi.binop("*", xi, yj)
    mi.returns(p)
    (row,) = mi.end()
    mo.returns(row)
    (out,) = mo.end()
    b.returns(out)
    return b.build()


class TestNestedMap:
    def test_outer_product_vectorizes(self):
        fun = introduce_memory(nested_map_fun())
        x = np.arange(1, 7, dtype=np.float32)
        y = np.arange(2, 8, dtype=np.float32)
        inputs = dict(n=6, x=x, y=y)
        ex_i, vals_i, ex_v, vals_v = run_tiers(fun, inputs)
        assert ex_v.stats.vec_launches == 1
        assert ex_v.stats.interp_launches == 0
        assert_tier_equivalent(ex_i, vals_i, ex_v, vals_v)
        got = np.asarray(materialize(ex_v, vals_v[0]))
        assert np.array_equal(got, np.outer(x, y).reshape(got.shape))


# ----------------------------------------------------------------------
# The --json bench report
# ----------------------------------------------------------------------
class TestBenchJson:
    def test_json_report_written(self, tmp_path, monkeypatch, capsys):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        rc = main(["nn", "--quick", "--json"])
        assert rc == 0
        out_files = list((tmp_path / "benchmarks" / "results").glob("BENCH_*.json"))
        assert len(out_files) == 1
        import json

        payload = json.loads(out_files[0].read_text())
        assert payload["quick"] is True
        entry = payload["benchmarks"]["nn"]
        assert entry["validated"] is True
        engine = entry["engine"]
        assert engine["outputs_equal"] and engine["stats_equal"]
        assert engine["vec_hit_rate"] > 0
        assert engine["speedup"] > 1.0
        assert entry["rows"], "simulated table rows missing"
