"""Tests for index functions, including the paper's fig. 3 walkthrough."""

import numpy as np
import pytest

from repro.lmad import IndexFn, Lmad, lmad
from repro.symbolic import Prover, Var, sym

n, m = Var("n"), Var("m")


@pytest.fixture
def prover():
    return Prover()


class TestBasics:
    def test_row_major_shape(self):
        f = IndexFn.row_major([n, m])
        assert f.shape == (n, m)
        assert f.rank == 2
        assert f.is_single()

    def test_is_direct(self, prover):
        assert IndexFn.row_major([4, 5]).is_direct(prover)
        assert not IndexFn.row_major([4, 5], offset=3).is_direct(prover)
        assert not IndexFn.col_major([4, 5]).is_direct(prover)
        assert not IndexFn.row_major([4, 5]).transpose().is_direct(prover)

    def test_apply_symbolic_single(self):
        f = IndexFn.row_major([n, m])
        i, j = Var("i"), Var("j")
        assert f.apply_symbolic([i, j]) == i * m + j

    def test_apply_symbolic_composed_raises(self, prover):
        f = IndexFn.col_major([4, 5]).reshape([20], prover)
        assert not f.is_single()
        with pytest.raises(ValueError):
            f.apply_symbolic([sym(3)])

    def test_needs_at_least_one_lmad(self):
        with pytest.raises(ValueError):
            IndexFn(())

    def test_substitute(self):
        f = IndexFn.row_major([n, m]).substitute({"n": 4, "m": 5})
        assert f.shape[0].as_int() == 4


class TestAgainstNumPy:
    """gather_offsets must agree with numpy's own view semantics."""

    def test_transpose(self):
        arr = np.arange(20)
        f = IndexFn.row_major([4, 5]).transpose()
        assert (arr[f.gather_offsets({})] == arr.reshape(4, 5).T).all()

    def test_triplet_slice(self):
        arr = np.arange(42)
        f = IndexFn.row_major([6, 7]).slice_triplets([(1, 2, 2), (3, 4, 1)])
        ref = arr.reshape(6, 7)[1:5:2, 3:7]
        assert (arr[f.gather_offsets({})] == ref).all()

    def test_negative_step_slice(self):
        arr = np.arange(10)
        f = IndexFn.row_major([10]).slice_triplets([(9, 10, -1)])
        assert (arr[f.gather_offsets({})] == arr[::-1]).all()

    def test_reverse(self):
        arr = np.arange(12)
        f = IndexFn.row_major([3, 4]).reverse(1)
        assert (arr[f.gather_offsets({})] == arr.reshape(3, 4)[:, ::-1]).all()

    def test_fix_dim(self):
        arr = np.arange(12)
        f = IndexFn.row_major([3, 4]).fix_dim(0, 2)
        assert (arr[f.gather_offsets({})] == arr.reshape(3, 4)[2]).all()

    def test_reshape_direct(self, ):
        p = Prover()
        arr = np.arange(24)
        f = IndexFn.row_major([6, 4]).reshape([2, 12], p)
        assert f.is_single()
        assert (arr[f.gather_offsets({})] == arr.reshape(2, 12)).all()

    def test_reshape_composed_colmajor_flatten(self):
        """Flattening a column-major matrix needs a composition (paper IV-B)."""
        p = Prover()
        arr = np.arange(20)
        f = IndexFn.col_major([4, 5]).flatten(p)
        assert not f.is_single()
        ref = arr.reshape(5, 4).T.flatten()  # col-major 4x5 of flat data
        assert (arr[f.gather_offsets({})] == ref).all()

    def test_chain_with_symbolic_env(self):
        arr = np.arange(30)
        f = IndexFn.row_major([n, m]).transpose().fix_dim(0, 1)
        env = {"n": 5, "m": 6}
        ref = arr.reshape(5, 6).T[1]
        assert (arr[f.gather_offsets(env)] == ref).all()


class TestFig3:
    """The paper's fig. 3, line by line, ending at es[5] -> flat offset 59."""

    @pytest.fixture
    def es(self, prover):
        as_ = IndexFn.row_major([64])  # let as = 0..63
        bs = as_.reshape([8, 8], prover)  # unflatten 8 8 as
        cs = bs.transpose()  # transpose bs
        ds = cs.slice_triplets([(1, 2, 2), (4, 4, 1)])  # cs[1:3:2, 4:8:1]
        return ds.flatten(prover).slice_triplets([(2, 6, 1)])  # (flatten ds)[2:]

    def test_bs_ixfn(self, prover):
        bs = IndexFn.row_major([64]).reshape([8, 8], prover)
        assert bs.is_single()
        assert bs.inner == Lmad.row_major([8, 8])

    def test_cs_ixfn(self, prover):
        cs = IndexFn.row_major([64]).reshape([8, 8], prover).transpose()
        assert cs.inner == lmad(0, [(8, 1), (8, 8)])

    def test_ds_ixfn(self, prover):
        ds = (
            IndexFn.row_major([64])
            .reshape([8, 8], prover)
            .transpose()
            .slice_triplets([(1, 2, 2), (4, 4, 1)])
        )
        assert ds.inner == lmad(33, [(2, 2), (4, 8)])

    def test_es_is_composed(self, es):
        assert len(es.lmads) == 2
        assert es.lmads[1] == lmad(2, [(6, 1)])  # L1
        assert es.lmads[0] == lmad(33, [(2, 2), (4, 8)])  # L2

    def test_es_5_is_59(self, es):
        assert es.apply_concrete([5], {}) == 59

    def test_es_full_contents(self, es):
        arr = np.arange(64)
        ref = arr.reshape(8, 8).T[1:5:2, 4:8].flatten()[2:]
        assert (arr[es.gather_offsets({})] == ref).all()

    def test_no_manifestation(self, es):
        """All of fig. 3 is O(1) metadata: two LMADs, no data movement."""
        assert len(es.lmads) == 2

    def test_str_shows_composition(self, es):
        assert " o " in str(es)


class TestLmadSlice:
    def test_nw_slice_on_flat(self):
        """LMAD slicing extracts all NW anti-diagonal vertical bars at once."""
        nv, bv, iv = 7, 2, 1  # n = q*b+1 with q=3
        arr = np.arange(nv * nv)
        rvert = lmad(
            sym(iv) * bv, [(iv + 1, nv * bv - bv), (bv + 1, nv)]
        )
        f = IndexFn.row_major([nv * nv]).lmad_slice(rvert)
        got = arr[f.gather_offsets({})]
        assert got.shape == (iv + 1, bv + 1)
        # First vertical bar starts at flat i*b = 2, column stride n.
        assert list(got[0]) == [2, 9, 16]


class TestInstanceMemoization:
    """Derivation results are cached on the (frozen) instance: the hot
    executor paths re-derive the same handful of index functions per
    thread/iteration, so repeated calls must return the same object."""

    def test_fix_dim_is_cached(self):
        f = IndexFn.row_major([n, m])
        assert f.fix_dim(0, 3) is f.fix_dim(0, 3)
        assert f.fix_dim(0, 3) is not f.fix_dim(0, 4)

    def test_substitute_is_cached(self):
        f = IndexFn.row_major([n])
        assert f.substitute({"n": 8}) is f.substitute({"n": 8})
        assert f.substitute({"n": 8}) is not f.substitute({"n": 9})

    def test_lmad_slice_is_cached(self):
        f = IndexFn.row_major([sym(64)])
        s = lmad(0, [(8, 2)])
        assert f.lmad_slice(s) is f.lmad_slice(s)

    def test_caches_do_not_affect_equality_or_hash(self):
        a = IndexFn.row_major([n])
        b = IndexFn.row_major([n])
        a.fix_dim(0, 1)  # populate a cache on one side only
        assert a == b and hash(a) == hash(b)
