"""ProverPool: memo LRU bound, counters, query log, tier bookkeeping."""

import pytest

from repro.isl.engine import PolyEngine
from repro.lmad.lmad import Lmad, LmadDim
from repro.lmad.overlap import NonOverlapChecker, ProverPool, TieredChecker
from repro.symbolic import Context, sym


def L(off, *dims):
    return Lmad(sym(off), tuple(LmadDim(sym(s), sym(st)) for s, st in dims))


#: Disjoint, and provably so by the structural (interval) checker.
STRUCTURAL_PAIR = (L(0, (4, 1)), L(4, (4, 1)))
#: {0,6,12} vs {1,5,9}: mismatched strides defeat the sums-of-intervals
#: conversion, but 6i == 1 + 4j has no integer solution (gcd test).
POLYHEDRAL_PAIR = (L(0, (3, 6)), L(1, (3, 4)))
#: Genuinely overlapping.
OVERLAP_PAIR = (L(0, (4, 1)), L(2, (4, 1)))


class TestPooling:
    def test_prover_identity_and_counters(self):
        pool = ProverPool()
        ctx = Context()
        p1 = pool.prover_for(ctx)
        assert pool.misses == 1 and pool.hits == 0
        assert pool.prover_for(ctx) is p1
        assert pool.hits == 1
        # A different context gets its own prover.
        assert pool.prover_for(Context()) is not p1
        assert pool.misses == 2

    def test_checker_keyed_by_splitting_flag(self):
        pool = ProverPool()
        ctx = Context()
        strong = pool.checker_for(ctx)
        weak = pool.checker_for(ctx, enable_splitting=False)
        assert strong is not weak
        assert strong.enable_splitting and not weak.enable_splitting
        # Both flavors share the one pooled prover for the context.
        assert strong.prover is weak.prover
        assert pool.checker_for(ctx) is strong

    def test_lru_bound_evicts_oldest(self):
        pool = ProverPool(max_entries=3)
        ctxs = [Context() for _ in range(5)]
        for ctx in ctxs:
            pool.checker_for(ctx)
        assert len(pool) == 3
        misses = pool.misses
        # The oldest contexts were evicted: asking again is a miss...
        pool.prover_for(ctxs[0])
        assert pool.misses == misses + 1
        # ...while the newest is still resident.
        hits = pool.hits
        pool.prover_for(ctxs[-1])
        assert pool.hits == hits + 1

    def test_eviction_drops_dependent_checkers(self):
        pool = ProverPool(max_entries=1)
        a, b = Context(), Context()
        chk_a = pool.checker_for(a)
        pool.checker_for(b)  # evicts a's prover and checker
        assert pool.checker_for(a) is not chk_a


class TestTieredChecker:
    def test_structural_tier_records(self):
        pool = ProverPool()
        pool.set_client("sc")
        chk = pool.checker_for(Context())
        assert chk.check(*STRUCTURAL_PAIR)
        assert pool.tiers["sc"]["structural"] == 1
        assert pool.tiers["sc"]["polyhedral"] == 0

    def test_polyhedral_fallback_recovers_gcd_disjointness(self):
        pool = ProverPool()
        pool.set_client("sc")
        ctx = Context()
        # The structural tier alone cannot prove this pair...
        assert not NonOverlapChecker(pool.prover_for(ctx)).check(
            *POLYHEDRAL_PAIR
        )
        # ...the tiered checker can, and attributes the proof correctly.
        assert pool.checker_for(ctx).check(*POLYHEDRAL_PAIR)
        assert pool.tiers["sc"]["polyhedral"] == 1
        (rec,) = [r for r in pool.query_log if r.tier == "polyhedral"]
        assert rec.result and not rec.structural

    def test_overlap_is_unknown_not_disjoint(self):
        pool = ProverPool()
        pool.set_client("fuse")
        assert not pool.checker_for(Context()).check(*OVERLAP_PAIR)
        assert pool.tiers["fuse"]["unknown"] == 1
        (rec,) = pool.query_log
        assert rec.client == "fuse" and not rec.result

    def test_query_log_cap_counts_drops(self):
        pool = ProverPool(log_cap=2)
        chk = pool.checker_for(Context())
        for off in range(4):
            chk.check(L(off * 10, (2, 1)), L(off * 10 + 5, (2, 1)))
        assert len(pool.query_log) == 2
        assert pool.log_dropped == 2

    def test_tier_totals_aggregates_clients(self):
        pool = ProverPool()
        ctx = Context()
        pool.set_client("a")
        pool.checker_for(ctx).check(*STRUCTURAL_PAIR)
        pool.set_client("b")
        pool.checker_for(ctx).check(*POLYHEDRAL_PAIR)
        totals = pool.tier_totals()
        assert totals["structural"] == 1 and totals["polyhedral"] == 1


class TestTieredInjectivity:
    def test_structural_injective(self):
        pool = ProverPool()
        pool.set_client("r")
        assert pool.injective(Context(), L(0, (4, 4), (4, 1)))
        assert pool.tiers["r"]["structural"] == 1

    def test_non_injective_is_unknown(self):
        pool = ProverPool()
        pool.set_client("r")
        # Stride 0: every index maps to the same address.
        assert not pool.injective(Context(), L(0, (4, 0)))
        assert pool.tiers["r"]["unknown"] == 1

    def test_polyhedral_injectivity_fallback(self):
        """Overlapping-looking strides (3, 2) over shapes (2, 2): the
        addresses {0,2,3,5} are pairwise distinct, but the structural
        span condition 3 > 1*2 fails... it holds; use (2, 3)x(3, 2):
        strides sorted (2,3) spans -- pick a genuinely structural-hard
        one: shape (2, 3), strides (3, 2) -> {0,2,4,3,5,7}: distinct."""
        pool = ProverPool()
        pool.set_client("r")
        ctx = Context()
        l = Lmad(
            sym(0),
            (LmadDim(sym(2), sym(3)), LmadDim(sym(3), sym(2))),
        )
        from repro.lmad.overlap import lmad_injective

        if lmad_injective(l, pool.prover_for(ctx)):
            pytest.skip("structural tier got stronger; pick a harder lmad")
        assert pool.injective(ctx, l)
        assert pool.tiers["r"]["polyhedral"] == 1


class TestEngineSharing:
    def test_checker_engine_is_pooled(self):
        pool = ProverPool()
        ctx = Context()
        chk = pool.checker_for(ctx)
        assert isinstance(chk, TieredChecker)
        assert isinstance(chk.engine, PolyEngine)
        assert pool.engine_for(ctx) is chk.engine
