"""Tests for the LMAD non-overlap test (paper fig. 8 / section V-C)."""

import itertools

import pytest

from repro.lmad import Lmad, NonOverlapChecker, lmad, lmads_nonoverlapping
from repro.lmad.overlap import lmad_injective
from repro.symbolic import Context, Prover, Var


class TestConcreteCases:
    def test_disjoint_ranges(self):
        a = lmad(0, [(10, 1)])
        b = lmad(10, [(10, 1)])
        assert lmads_nonoverlapping(a, b)

    def test_adjacent_touching_not_overlapping(self):
        a = lmad(0, [(5, 1)])
        b = lmad(5, [(5, 1)])
        assert lmads_nonoverlapping(a, b)

    def test_overlapping_ranges_not_proven(self):
        a = lmad(0, [(10, 1)])
        b = lmad(5, [(10, 1)])
        assert not lmads_nonoverlapping(a, b)

    def test_interleaved_strides(self):
        """Evens vs odds: same span, stride 2, offsets 0/1 -> disjoint."""
        a = lmad(0, [(8, 2)])
        b = lmad(1, [(8, 2)])
        assert lmads_nonoverlapping(a, b)

    def test_same_lmad_not_proven(self):
        a = lmad(0, [(8, 2)])
        assert not lmads_nonoverlapping(a, a)

    def test_2d_row_blocks(self):
        """Two row blocks of a 10-column matrix."""
        top = lmad(0, [(3, 10), (10, 1)])
        bottom = lmad(30, [(3, 10), (10, 1)])
        assert lmads_nonoverlapping(top, bottom)

    def test_2d_column_blocks(self):
        left = lmad(0, [(4, 10), (5, 1)])
        right = lmad(5, [(4, 10), (5, 1)])
        assert lmads_nonoverlapping(left, right)

    def test_column_vs_rest_of_matrix(self):
        col0 = lmad(0, [(4, 10)])
        col3 = lmad(3, [(4, 10)])
        assert lmads_nonoverlapping(col0, col3)

    def test_empty_lmad_trivially_disjoint(self):
        empty = lmad(0, [(0, 1)])
        other = lmad(0, [(10, 1)])
        assert lmads_nonoverlapping(empty, other)


class TestSymbolicCases:
    def test_disjoint_halves_symbolic(self):
        n = Var("n")
        ctx = Context().assume_lower("n", 1)
        p = Prover(ctx)
        a = lmad(0, [(n, 1)])
        b = lmad(n, [(n, 1)])
        assert lmads_nonoverlapping(a, b, p)

    def test_rows_i_and_i_plus_1(self):
        n, i = Var("n"), Var("i")
        ctx = Context().assume_lower("n", 1).assume_range("i", 0, n - 2)
        p = Prover(ctx)
        row_i = lmad(i * n, [(n, 1)])
        row_next = lmad((i + 1) * n, [(n, 1)])
        assert lmads_nonoverlapping(row_i, row_next, p)

    def test_unknown_relation_not_proven(self):
        n, mvar = Var("n"), Var("m")
        p = Prover(Context().assume_lower("n", 1).assume_lower("m", 1))
        a = lmad(0, [(n, 1)])
        b = lmad(mvar, [(n, 1)])  # m could be < n
        assert not lmads_nonoverlapping(a, b, p)

    def test_diagonal_vs_first_row_fig1(self):
        """Paper fig. 1 (left): diagonal (stride n+1) vs row 0 (stride 1).

        They share element (0,0), so non-overlap must NOT be proven; the
        paper handles fig. 1 via last-use (the row read happens before the
        diagonal write in the same map), not via disjointness.
        """
        n = Var("n")
        p = Prover(Context().assume_lower("n", 2))
        diag = lmad(0, [(n, n + 1)])
        row0 = lmad(0, [(n, 1)])
        assert not lmads_nonoverlapping(diag, row0, p)

    def test_diagonal_vs_second_row(self):
        """Diagonal except (1,1) does not meet row 1... but (1,1) is on both:
        again must not be proven."""
        n = Var("n")
        p = Prover(Context().assume_lower("n", 2))
        diag = lmad(0, [(n, n + 1)])
        row1 = lmad(n, [(n, 1)])
        assert not lmads_nonoverlapping(diag, row1, p)


class TestNWFig9:
    """The full NW proof of paper fig. 9."""

    @pytest.fixture
    def prover(self):
        n, q, b, i = Var("n"), Var("q"), Var("b"), Var("i")
        ctx = Context()
        ctx.define("n", q * b + 1)
        ctx.assume_lower("q", 2)
        ctx.assume_lower("b", 2)
        ctx.assume_range("i", 0, q - 1)
        return Prover(ctx)

    @pytest.fixture
    def slices(self):
        n, b, i = Var("n"), Var("b"), Var("i")
        w = lmad(i * b + n + 1, [(i + 1, n * b - b), (b, n), (b, 1)])
        rvert = lmad(i * b, [(i + 1, n * b - b), (b + 1, n)])
        rhoriz = lmad(i * b + 1, [(i + 1, n * b - b), (b, 1)])
        return w, rvert, rhoriz

    def test_w_vs_rvert(self, prover, slices):
        w, rvert, _ = slices
        assert lmads_nonoverlapping(w, rvert, prover)

    def test_w_vs_rhoriz(self, prover, slices):
        w, _, rhoriz = slices
        assert lmads_nonoverlapping(w, rhoriz, prover)

    def test_w_vs_w_not_proven(self, prover, slices):
        w, _, _ = slices
        assert not lmads_nonoverlapping(w, w, prover)

    def test_requires_splitting(self, prover, slices):
        """The paper's extension over Hoeflinger et al. [9]: without
        dimension splitting the NW proof fails."""
        w, rvert, _ = slices
        assert not lmads_nonoverlapping(
            w, rvert, prover, enable_splitting=False
        )

    def test_trace_records_splits(self, prover, slices):
        w, rvert, _ = slices
        chk = NonOverlapChecker(prover)
        assert chk.check(w, rvert)
        assert any("split" in line for line in chk.trace)

    def test_concrete_grid_agrees(self, slices):
        """Ground truth: enumerate offsets for a grid of (q, b, i)."""
        w, rvert, rhoriz = slices
        for qv, bv in itertools.product(range(2, 5), range(2, 4)):
            nv = qv * bv + 1
            for iv in range(qv):
                env = {"q": qv, "b": bv, "n": nv, "i": iv}
                ws = set(w.enumerate_offsets(env))
                assert ws.isdisjoint(rvert.enumerate_offsets(env))
                assert ws.isdisjoint(rhoriz.enumerate_offsets(env))


class TestInjectivity:
    def test_row_major_injective(self):
        assert lmad_injective(Lmad.row_major([4, 5]))

    def test_diagonal_injective(self):
        n = Var("n")
        p = Prover(Context().assume_lower("n", 1))
        assert lmad_injective(lmad(0, [(n, n + 1)]), p)

    def test_zero_stride_not_injective(self):
        assert not lmad_injective(lmad(0, [(4, 0)]))

    def test_overlapping_dims_not_injective(self):
        # stride 2 with inner span 3: {0,1,2,3} x {0,2,4}: 2 reachable twice
        assert not lmad_injective(lmad(0, [(3, 2), (4, 1)]))

    def test_symbolic_blocked_injective(self):
        n, b = Var("n"), Var("b")
        ctx = Context().assume_lower("n", 1).assume_lower("b", 1)
        # blocks of b at stride n*b needs n*b > (b-1)*1, i.e. always true
        p = Prover(ctx)
        assert lmad_injective(lmad(0, [(n, n * b), (b, 1)]), p)
