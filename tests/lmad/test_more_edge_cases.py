"""Additional edge-case coverage for the LMAD layer."""

import numpy as np

from repro.lmad import IndexFn, lmad, lmads_nonoverlapping
from repro.lmad.aggregate import aggregate_over_loop
from repro.lmad.interval import synthesize_strides, stride_sort_key
from repro.symbolic import Context, Prover, Var, sym

n, m, i, j = Var("n"), Var("m"), Var("i"), Var("j")


class TestSyntheticStrides:
    """The offset-term distribution extension (paper footnote 14/27)."""

    def test_point_pair_needs_synthesis(self):
        ctx = Context().assume_lower("n", 1)
        ctx.assume_range("i", 0, n - 1)
        ctx.assume_range("j", i + 1, n - 1)
        p = Prover(ctx)
        # Point (i, i) vs point (0, j) of an n x n matrix: disjoint.
        a = lmad(i * (n + 1), [])
        b = lmad(j, [])
        assert lmads_nonoverlapping(a, b, p)

    def test_synthesis_requires_bounded_multiplier(self):
        p = Prover(Context())  # no bounds on anything
        out = synthesize_strides((Var("i") * n), [sym(1)], p)
        assert out == []  # i unbounded: nothing synthesized

    def test_synthesis_extracts_stride(self):
        ctx = Context().assume_range("i", 0, n - 1)
        p = Prover(ctx)
        out = synthesize_strides(Var("i") * n, [sym(1)], p)
        assert out == [n]

    def test_well_matched_terms_not_synthesized(self):
        ctx = Context().assume_range("i", 0, n - 1)
        p = Prover(ctx)
        out = synthesize_strides(Var("i") * n + 3, [sym(1), n], p)
        assert out == []


class TestStrideOrderingEdge:
    def test_mixed_constants_and_symbolic(self):
        strides = [n * n, sym(16), sym(1), n]
        ordered = sorted(strides, key=stride_sort_key)
        assert ordered[0] == sym(1)
        assert ordered[1] == sym(16)
        assert ordered[-1] == n * n


class TestAggregationEdge:
    def test_aggregate_preserves_concrete_union_3d(self):
        p = Prover(Context().assume_lower("n", 1))
        acc = lmad(i * 7, [(2, 3), (3, 1)])
        agg = aggregate_over_loop(acc, "i", 4, p)
        assert agg is not None
        concrete = set()
        for iv in range(4):
            concrete |= set(acc.substitute({"i": iv}).enumerate_offsets({}))
        assert set(agg.enumerate_offsets({})) == concrete

    def test_count_zero_loop(self):
        p = Prover()
        agg = aggregate_over_loop(lmad(i * 4, [(2, 1)]), "i", 0, p)
        assert agg is not None
        assert agg.enumerate_offsets({}) == []


class TestIndexFnEdge:
    def test_rank0_fix_dim_apply(self):
        f = IndexFn.row_major([5]).fix_dim(0, 3)
        assert f.rank == 0
        assert f.apply_concrete([], {}) == 3

    def test_unit_extent_slices(self):
        arr = np.arange(12)
        f = IndexFn.row_major([3, 4]).slice_triplets([(1, 1, 1), (0, 4, 1)])
        assert (arr[f.gather_offsets({})] == arr.reshape(3, 4)[1:2]).all()

    def test_zero_extent_gather(self):
        f = IndexFn.row_major([4]).slice_triplets([(0, 0, 1)])
        assert f.gather_offsets({}).size == 0

    def test_double_reshape_composition_depth(self):
        p = Prover()
        f = IndexFn.col_major([3, 4]).flatten(p)  # composed
        g = f.reshape([4, 3], p)  # reshape of a composition
        arr = np.arange(12)
        ref = arr.reshape(4, 3).T.reshape(-1).reshape(4, 3)
        assert (arr[g.gather_offsets({})] == ref).all()

    def test_reverse_of_slice_of_transpose(self):
        arr = np.arange(30)
        f = (
            IndexFn.row_major([5, 6])
            .transpose()
            .slice_triplets([(1, 4, 1), (0, 5, 1)])
            .reverse(1)
        )
        ref = arr.reshape(5, 6).T[1:5, 0:5][:, ::-1]
        assert (arr[f.gather_offsets({})] == ref).all()


class TestOverlapRegressions:
    def test_touching_3d_blocks(self):
        p = Prover(Context().assume_lower("n", 4))
        a = lmad(0, [(2, n * n), (2, n), (2, 1)])
        b = lmad(2, [(2, n * n), (2, n), (2, 1)])
        assert lmads_nonoverlapping(a, b, p)

    def test_interleaved_rows_not_columns(self):
        # Even rows vs odd rows of an n-column matrix.
        p = Prover(Context().assume_lower("n", 1).assume_lower("m", 1))
        even = lmad(0, [(m, 2 * n), (n, 1)])
        odd = lmad(n, [(m, 2 * n), (n, 1)])
        assert lmads_nonoverlapping(even, odd, p)

    def test_same_region_different_shape_not_proven(self):
        p = Prover()
        a = lmad(0, [(4, 4), (4, 1)])  # dense 16
        b = lmad(0, [(16, 1)])  # dense 16, rank 1
        assert not lmads_nonoverlapping(a, b, p)
