"""Tests for loop aggregation (section II-B) and anti-unification (IV-C)."""


from repro.lmad import (
    IndexFn,
    Lmad,
    aggregate_over_loop,
    antiunify_ixfns,
    lmad,
    union_lmads,
)
from repro.symbolic import Const, Context, Prover, Var, sym

t, m, n, k, i, j = (Var(v) for v in ["t", "m", "n", "k", "i", "j"])


class TestAggregation:
    def test_paper_ii_b_inner_loop(self):
        """W_i = t + i*m + {(n : k)} aggregated over j is the example's W_i;
        here we aggregate the point access t + i*m + j*k over j."""
        p = Prover(Context().assume_lower("n", 1))
        point = Lmad(t + i * m + j * k, ())
        wi = aggregate_over_loop(point, "j", n, p)
        assert wi is not None
        assert wi == lmad(t + i * m, [(n, k)])

    def test_paper_ii_b_outer_loop(self):
        """W = union_i W_i = t + {(m:m), (n:k)} (paper section II-B)."""
        p = Prover(Context().assume_lower("n", 1).assume_lower("m", 1))
        wi = lmad(t + i * m, [(n, k)])
        w = aggregate_over_loop(wi, "i", m, p)
        assert w is not None
        assert w == lmad(t, [(m, m), (n, k)])

    def test_concrete_union_matches_enumeration(self):
        p = Prover()
        env = {"t": 1, "m": 8, "n": 3, "k": 2}
        wi = lmad(t + i * m, [(n, k)])
        w = aggregate_over_loop(wi, "i", m, p)
        expected = set()
        for iv in range(env["m"]):
            expected |= set(
                wi.substitute({"i": iv}).enumerate_offsets(env)
            )
        assert set(w.enumerate_offsets(env)) == expected

    def test_loop_invariant_access(self):
        p = Prover()
        acc = lmad(t, [(n, 1)])
        w = aggregate_over_loop(acc, "i", m, p)
        assert w == acc  # does not move with the loop

    def test_nonaffine_offset_fails(self):
        p = Prover()
        acc = Lmad(i * i, ())  # quadratic in the loop index
        assert aggregate_over_loop(acc, "i", m, p) is None

    def test_index_in_stride_fails(self):
        p = Prover()
        acc = lmad(0, [(n, i)])
        assert aggregate_over_loop(acc, "i", m, p) is None

    def test_index_in_cardinality_overestimates(self):
        """Footnote 8: substitute the bound that maximizes the cardinal."""
        p = Prover(Context().assume_lower("m", 1))
        acc = lmad(i * 10, [(i + 1, 1)])  # triangular: grows with i
        w = aggregate_over_loop(acc, "i", m, p)
        assert w is not None
        # cardinality overestimated at i = m-1:
        assert w.dims[1].shape == m
        # superset check, concretely:
        env = {"m": 4}
        union = set()
        for iv in range(4):
            union |= set(acc.substitute({"i": iv}).enumerate_offsets(env))
        assert union <= set(w.enumerate_offsets(env))

    def test_union_lmads_dedup(self):
        p = Prover()
        a = lmad(0, [(4, 1)])
        b = lmad(0, [(4, 1)])
        c = lmad(4, [(4, 1)])
        out = union_lmads([a, b, c], p)
        assert len(out) == 2


class TestAntiUnification:
    def test_paper_iv_c_example(self):
        """lgg of R(n,m) and C(n,m) is 0 + {(n:a)(m:b)} (paper section IV-C)."""
        f1 = IndexFn.row_major([n, m])
        f2 = IndexFn.col_major([n, m])
        res = antiunify_ixfns(f1, f2)
        assert res is not None
        g = res.ixfn.as_single()
        assert g.offset == Const(0)
        assert g.dims[0].shape == n
        assert g.dims[1].shape == m
        # Strides generalized to two fresh variables:
        assert len(res.bindings) == 2
        (v1, then1, else1), (v2, then2, else2) = res.bindings
        assert (then1, else1) == (m, sym(1))
        assert (then2, else2) == (sym(1), n)
        assert g.dims[0].stride == Var(v1)
        assert g.dims[1].stride == Var(v2)

    def test_identical_ixfns_no_bindings(self):
        f = IndexFn.row_major([n, m])
        res = antiunify_ixfns(f, f)
        assert res is not None
        assert res.bindings == ()
        assert res.ixfn == f

    def test_shared_subexpression_same_variable(self):
        """The same differing pair maps to the same fresh variable (lgg)."""
        f1 = IndexFn((lmad(n, [(4, n)]),))
        f2 = IndexFn((lmad(m, [(4, m)]),))
        res = antiunify_ixfns(f1, f2)
        g = res.ixfn.as_single()
        assert len(res.bindings) == 1
        assert g.offset == g.dims[0].stride

    def test_offset_generalization(self):
        f1 = IndexFn.row_major([n], offset=0)
        f2 = IndexFn.row_major([n], offset=n * 2)
        res = antiunify_ixfns(f1, f2)
        assert len(res.bindings) == 1
        name, a, b = res.bindings[0]
        assert (a, b) == (sym(0), n * 2)

    def test_rank_mismatch_fails(self):
        assert antiunify_ixfns(IndexFn.row_major([n]), IndexFn.row_major([n, m])) is None

    def test_lmad_count_mismatch_fails(self):
        p = Prover()
        composed = IndexFn.col_major([4, 5]).flatten(p)
        single = IndexFn.row_major([20])
        assert antiunify_ixfns(single, composed) is None

    def test_instantiation_recovers_branches(self):
        """Substituting a branch's bindings into the lgg yields its ixfn."""
        f1 = IndexFn.row_major([n, m])
        f2 = IndexFn.col_major([n, m])
        res = antiunify_ixfns(f1, f2)
        then_env = {name: a for name, a, _ in res.bindings}
        else_env = {name: b for name, _, b in res.bindings}
        assert res.ixfn.substitute(then_env) == f1
        assert res.ixfn.substitute(else_env) == f2
