"""Property-based tests for LMAD machinery.

The critical soundness property: whenever the static checker proves two
LMADs disjoint, their concretely enumerated offset sets must be disjoint.
A violation here would mean short-circuiting could corrupt user data.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.lmad import IndexFn, lmad, lmads_nonoverlapping
from repro.lmad.overlap import lmad_injective
from repro.symbolic import Prover


@st.composite
def concrete_lmads(draw, max_rank=3, max_extent=5, max_stride=8, max_offset=30):
    rank = draw(st.integers(1, max_rank))
    dims = [
        (
            draw(st.integers(1, max_extent)),
            draw(st.integers(-max_stride, max_stride)),
        )
        for _ in range(rank)
    ]
    return lmad(draw(st.integers(0, max_offset)), dims)


@given(concrete_lmads(), concrete_lmads())
@settings(max_examples=200)
def test_nonoverlap_soundness(l1, l2):
    """Prover says disjoint => concretely disjoint."""
    if lmads_nonoverlapping(l1, l2):
        s1 = set(l1.enumerate_offsets({}))
        s2 = set(l2.enumerate_offsets({}))
        assert s1.isdisjoint(s2), f"unsound: {l1} vs {l2}"


@given(concrete_lmads())
@settings(max_examples=150)
def test_injectivity_soundness(l):
    """Prover says injective => all enumerated offsets distinct."""
    if lmad_injective(l):
        offsets = l.enumerate_offsets({})
        assert len(offsets) == len(set(offsets)), f"unsound: {l}"


@given(concrete_lmads())
@settings(max_examples=100)
def test_normalize_positive_preserves_set(l):
    p = Prover()
    norm = l.normalize_positive(p)
    assert norm is not None  # concrete strides always have provable signs
    assert sorted(norm.enumerate_offsets({})) == sorted(l.enumerate_offsets({}))


@given(concrete_lmads())
@settings(max_examples=100)
def test_self_overlap_never_proven(l):
    """A non-empty LMAD always intersects itself."""
    assume(all(d.shape.as_int() >= 1 for d in l.dims))
    assert not lmads_nonoverlapping(l, l)


@st.composite
def transformation_chains(draw):
    """A random chain of change-of-layout ops applied to a fresh 2-D array."""
    h = draw(st.integers(2, 6))
    w = draw(st.integers(2, 6))
    arr = np.arange(h * w)
    view = arr.reshape(h, w)
    f = IndexFn.row_major([h, w])
    for _ in range(draw(st.integers(0, 4))):
        if view.ndim != 2:
            break
        op = draw(st.sampled_from(["transpose", "reverse0", "reverse1", "slice"]))
        if op == "transpose":
            view = view.T
            f = f.transpose()
        elif op == "reverse0":
            view = view[::-1]
            f = f.reverse(0)
        elif op == "reverse1":
            view = view[:, ::-1]
            f = f.reverse(1)
        else:
            if view.shape[0] < 2 or view.shape[1] < 2:
                continue
            r0 = draw(st.integers(1, view.shape[0]))
            r1 = draw(st.integers(1, view.shape[1]))
            view = view[:r0, :r1]
            f = f.slice_triplets([(0, r0, 1), (0, r1, 1)])
    return arr, view, f


@given(transformation_chains())
@settings(max_examples=150)
def test_gather_matches_numpy_views(chain):
    """Index functions agree with numpy view semantics on random op chains."""
    arr, view, f = chain
    assert (arr[f.gather_offsets({})] == view).all()


@given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5))
def test_reshape_preserves_elements(a, b, c):
    """reshape (possibly composed) visits the same elements in C order."""
    p = Prover()
    arr = np.arange(a * b * c)
    # Start from a transposed (non-contiguous) layout to force composition.
    f = IndexFn.row_major([a, b * c]).transpose().reshape([b * c * a], p)
    ref = arr.reshape(a, b * c).T.reshape(-1)
    assert (arr[f.gather_offsets({})] == ref).all()
