"""Unit tests for the LMAD data type (repro.lmad.lmad)."""

import numpy as np
import pytest

from repro.lmad import Lmad, LmadDim, dim, lmad
from repro.symbolic import Const, Prover, Var, sym

n, m, k, t, i = Var("n"), Var("m"), Var("k"), Var("t"), Var("i")


class TestConstructors:
    def test_row_major_strides(self):
        l = Lmad.row_major([n, m])
        assert l.offset == Const(0)
        assert l.dims[0] == LmadDim(n, m)
        assert l.dims[1] == LmadDim(m, sym(1))

    def test_col_major_strides(self):
        l = Lmad.col_major([n, m])
        assert l.dims[0] == LmadDim(n, sym(1))
        assert l.dims[1] == LmadDim(m, n)

    def test_row_major_3d(self):
        l = Lmad.row_major([2, 3, 4])
        assert [d.stride.as_int() for d in l.dims] == [12, 4, 1]

    def test_lmad_helper(self):
        l = lmad(t, [(n, m), (m, 1)])
        assert l.offset == t
        assert l.rank == 2

    def test_dim_helper_coerces_ints(self):
        d = dim(3, 4)
        assert d.shape == Const(3)
        assert d.stride == Const(4)


class TestQueries:
    def test_shape_and_size(self):
        l = lmad(0, [(n, m), (m, 1)])
        assert l.shape == (n, m)
        assert l.size() == n * m

    def test_free_vars(self):
        l = lmad(t, [(n, k)])
        assert l.free_vars() == frozenset({"t", "n", "k"})

    def test_apply_row_major(self):
        l = Lmad.row_major([n, m])
        assert l.apply([i, k]) == i * m + k

    def test_apply_rank_mismatch(self):
        with pytest.raises(ValueError):
            Lmad.row_major([n, m]).apply([i])

    def test_max_offset(self):
        l = Lmad.row_major([3, 4])
        assert l.max_offset().as_int() == 11


class TestTransformations:
    def test_permute_identity(self):
        l = Lmad.row_major([n, m])
        assert l.permute([0, 1]) == l

    def test_transpose_swaps_dims(self):
        l = Lmad.row_major([n, m]).transpose()
        assert l.dims[0] == LmadDim(m, sym(1))
        assert l.dims[1] == LmadDim(n, m)

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Lmad.row_major([n, m]).permute([0, 0])

    def test_slice_triplets_column_extraction(self):
        """Paper section IV-B: column i of row-major n x m matrix."""
        l = Lmad.row_major([n, m]).slice_triplets([(0, n, 1), (i, 1, 0)])
        assert l.offset == i
        assert l.dims[0] == LmadDim(n, m)
        assert l.dims[1] == LmadDim(sym(1), sym(0))

    def test_slice_triplets_requires_all_dims(self):
        with pytest.raises(ValueError):
            Lmad.row_major([n, m]).slice_triplets([(0, n, 1)])

    def test_fix_dim_drops_rank(self):
        l = Lmad.row_major([n, m]).fix_dim(0, i)
        assert l.rank == 1
        assert l.offset == i * m

    def test_reverse_1d(self):
        """Paper footnote 13: L_rev = n-1 + {(n : -1)}."""
        l = Lmad.row_major([n]).reverse(0)
        assert l.offset == n - 1
        assert l.dims[0].stride == Const(-1)

    def test_compose_slice_nw_vertical_bars(self):
        """NW R_vert slice of a flat array (paper section III-B)."""
        b, q = Var("b"), Var("q")
        flat = Lmad.row_major([n * n])
        rvert = lmad(i * b, [(i + 1, n * b - b), (b + 1, n)])
        sliced = flat.compose_slice(rvert)
        assert sliced.offset == i * b
        assert sliced.dims[0] == LmadDim(i + 1, n * b - b)
        assert sliced.dims[1] == LmadDim(b + 1, n)

    def test_compose_slice_respects_base_stride(self):
        base = lmad(t, [(n, 2)])  # every-other-element view
        s = lmad(1, [(3, 5)])
        out = base.compose_slice(s)
        assert out.offset == t + 2
        assert out.dims[0] == LmadDim(sym(3), sym(10))

    def test_compose_slice_rejects_rank2(self):
        with pytest.raises(ValueError):
            Lmad.row_major([n, m]).compose_slice(lmad(0, [(2, 1)]))


class TestReshape:
    def test_coalesce_row_major(self):
        p = Prover()
        flat = Lmad.row_major([4, 5]).coalesce_all(p)
        assert flat is not None
        assert flat.dims[0] == LmadDim(sym(20), sym(1))

    def test_coalesce_symbolic(self):
        p = Prover()
        flat = Lmad.row_major([n, m]).coalesce_all(p)
        assert flat is not None
        assert flat.dims[0].shape == n * m

    def test_coalesce_fails_on_transposed(self):
        p = Prover()
        assert Lmad.row_major([4, 5]).transpose().coalesce_all(p) is None

    def test_coalesce_rank0(self):
        p = Prover()
        flat = Lmad(sym(7), ()).coalesce_all(p)
        assert flat is not None and flat.rank == 1

    def test_split_into(self):
        p = Prover()
        l = Lmad.row_major([24]).split_into([2, 3, 4], p)
        assert l is not None
        assert [d.stride.as_int() for d in l.dims] == [12, 4, 1]

    def test_split_rejects_wrong_size(self):
        p = Prover()
        assert Lmad.row_major([24]).split_into([2, 3, 5], p) is None

    def test_reshape_roundtrip(self):
        p = Prover()
        l = Lmad.row_major([6, 4]).reshape([3, 8], p)
        assert l is not None
        arr = np.arange(24)
        got = np.array(l.enumerate_offsets({})).reshape(3, 8)
        assert (arr.reshape(6, 4).reshape(3, 8) == arr[got]).all()

    def test_reshape_of_colmajor_fails(self):
        p = Prover()
        assert Lmad.col_major([4, 5]).reshape([20], p) is None


class TestSetOperations:
    def test_normalize_positive_noop(self):
        p = Prover()
        l = Lmad.row_major([4, 5])
        assert l.normalize_positive(p) == l

    def test_normalize_positive_reversed(self):
        p = Prover()
        rev = Lmad.row_major([5]).reverse(0)
        norm = rev.normalize_positive(p)
        assert norm is not None
        assert norm.offset == Const(0)
        assert norm.dims[0].stride == Const(1)
        # Same abstract set:
        assert sorted(rev.enumerate_offsets({})) == sorted(
            norm.enumerate_offsets({})
        )

    def test_normalize_unknown_sign_fails(self):
        p = Prover()
        l = lmad(0, [(4, k)])  # sign of k unknown
        assert l.normalize_positive(p) is None

    def test_drop_unit_dims(self):
        p = Prover()
        l = lmad(3, [(1, 9), (4, 1)]).drop_unit_dims(p)
        assert l.rank == 1

    def test_is_contiguous(self):
        p = Prover()
        assert Lmad.row_major([4, 5]).is_contiguous(p)
        assert not Lmad.row_major([4, 5]).transpose().is_contiguous(p)
        assert not lmad(0, [(4, 2)]).is_contiguous(p)


class TestConcrete:
    def test_enumerate_offsets_row_major(self):
        l = Lmad.row_major([2, 3])
        assert l.enumerate_offsets({}) == [0, 1, 2, 3, 4, 5]

    def test_enumerate_offsets_strided(self):
        l = lmad(1, [(3, 4)])
        assert l.enumerate_offsets({}) == [1, 5, 9]

    def test_enumerate_with_env(self):
        l = lmad(t, [(n, 2)])
        assert l.enumerate_offsets({"t": 10, "n": 3}) == [10, 12, 14]

    def test_concrete_shape(self):
        l = lmad(0, [(n, 1)])
        assert l.concrete_shape({"n": 7}) == (7,)

    def test_concrete_shape_unbound_raises(self):
        l = lmad(0, [(n, 1)])
        with pytest.raises((ValueError, KeyError)):
            l.concrete_shape({})

    def test_paper_ii_b_aggregated_write_set(self):
        """Section II-B: W = t + {(m:m),(n:k)} covers the loop's writes."""
        tv, mv, nv, kv = 1, 8, 3, 2
        env = {"t": tv, "m": mv, "n": nv, "k": kv}
        w = lmad(t, [(m, m), (n, k)])
        expected = sorted(
            tv + iv * mv + jv * kv for iv in range(mv) for jv in range(nv)
        )
        assert sorted(w.enumerate_offsets(env)) == expected

    def test_str_rendering(self):
        assert str(lmad(t, [(n, 1)])) == "t + {(n : 1)}"
