"""Tests for sum-of-strided-intervals conversion and offset distribution."""

from repro.lmad import lmad
from repro.lmad.interval import (
    StridedInterval,
    distribute_offset,
    pair_to_sums_of_intervals,
    stride_sort_key,
)
from repro.symbolic import Const, Context, Prover, Var, sym

n, b, q, i = Var("n"), Var("b"), Var("q"), Var("i")


def nw_prover():
    ctx = Context()
    ctx.define("n", q * b + 1)
    ctx.assume_lower("q", 2)
    ctx.assume_lower("b", 2)
    ctx.assume_range("i", 0, q - 1)
    return Prover(ctx)


class TestStridedInterval:
    def test_shift(self):
        iv = StridedInterval(sym(0), b, n)
        s = iv.shifted(1)
        assert s.lo == Const(1)
        assert s.hi == b + 1

    def test_span(self):
        iv = StridedInterval(sym(1), b, n)
        assert iv.span() == b * n

    def test_str(self):
        assert "[0..3]" in str(StridedInterval(sym(0), sym(3), sym(2)))


class TestStrideOrdering:
    def test_constants_before_symbolic(self):
        assert stride_sort_key(sym(1)) < stride_sort_key(n)

    def test_degree_order(self):
        assert stride_sort_key(n) < stride_sort_key(n * b)

    def test_consistent_total_order(self):
        strides = [sym(1), n, n * b - b, sym(4)]
        assert sorted(strides, key=stride_sort_key) == [
            sym(1),
            sym(4),
            n,
            n * b - b,
        ]


class TestDistribution:
    def test_zero_delta(self):
        p = Prover()
        pos, neg = distribute_offset(sym(0), [sym(1), n], p)
        assert pos == {} and neg == {}

    def test_constant_to_stride1(self):
        p = Prover()
        pos, neg = distribute_offset(sym(3), [sym(1), n], p)
        assert pos == {0: sym(3)} and neg == {}

    def test_negative_constant_to_other_side(self):
        p = Prover()
        pos, neg = distribute_offset(sym(-2), [sym(1), n], p)
        assert pos == {} and neg == {0: sym(2)}

    def test_footnote_27_example(self):
        """delta = n*b - b - n - 1 over strides (n*b - b, n, 1):
        +1 on the n*b-b interval of I1, +1 on n and +1 on 1 of I2."""
        p = nw_prover()
        strides = [sym(1), n, n * b - b]
        pos, neg = distribute_offset(n * b - b - n - 1, strides, p)
        assert pos == {2: sym(1)}
        assert neg == {1: sym(1), 0: sym(1)}

    def test_reconstruction_identity(self):
        p = nw_prover()
        strides = [sym(1), n, n * b - b]
        delta = n + 1
        pos, neg = distribute_offset(delta, strides, p)
        total = sym(0)
        for k, amt in pos.items():
            total = total + amt * strides[k]
        for k, amt in neg.items():
            total = total - amt * strides[k]
        assert total == delta

    def test_unmatchable_fails(self):
        p = Prover()
        # No stride matches the variable q at all; only stride is n.
        assert distribute_offset(q, [n], p) is None


class TestPairConversion:
    def test_nw_matches_fig9(self):
        """The converted pair must be exactly fig. 9's W and Rvert sums."""
        p = nw_prover()
        w = lmad(i * b + n + 1, [(i + 1, n * b - b), (b, n), (b, 1)])
        rvert = lmad(i * b, [(i + 1, n * b - b), (b + 1, n)])
        i1, i2 = pair_to_sums_of_intervals(w, rvert, p)
        # ascending stride order: 1, n, n*b-b
        assert i1.intervals[0].lo == Const(1) and i1.intervals[0].hi == b
        assert i1.intervals[1].lo == Const(1) and i1.intervals[1].hi == b
        assert i1.intervals[2].lo == Const(0) and i1.intervals[2].hi == i
        assert i2.intervals[0].lo == Const(0) and i2.intervals[0].hi == Const(0)
        assert i2.intervals[1].lo == Const(0) and i2.intervals[1].hi == b
        assert i2.intervals[2].lo == Const(0) and i2.intervals[2].hi == i

    def test_unit_dims_dropped(self):
        p = Prover()
        a = lmad(0, [(1, 100), (4, 1)])
        bb = lmad(4, [(4, 1)])
        i1, i2 = pair_to_sums_of_intervals(a, bb, p)
        assert len(i1.intervals) == len(i2.intervals)

    def test_negative_strides_normalized(self):
        p = Prover()
        a = lmad(3, [(4, -1)])  # {3,2,1,0}
        bb = lmad(4, [(4, 1)])  # {4,5,6,7}
        pair = pair_to_sums_of_intervals(a, bb, p)
        assert pair is not None
        i1, i2 = pair
        assert i1.intervals[0].lo == Const(0)

    def test_unknown_stride_sign_fails(self):
        p = Prover()
        a = lmad(0, [(4, Var("s"))])
        bb = lmad(0, [(4, 1)])
        assert pair_to_sums_of_intervals(a, bb, p) is None
