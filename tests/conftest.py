"""Shared fixtures: isolate every test from the persistent caches.

``compile_fun`` is cache-hitting (:mod:`repro.runtime`), and several
tests rely on compilations actually *running* -- monkeypatched pass
seams, ``REPRO_PRINT_AFTER`` side effects, verification-failure
injection.  Clearing the in-process cache before each test keeps those
observable; the cache's own behavior is tested explicitly in
``tests/runtime``.

The native kernel cache (:mod:`repro.backend.build`) is redirected to a
per-session temporary directory so test runs never populate the
checked-out ``benchmarks/results/.nativecache/`` -- mirroring the
program-cache isolation above.  Compiled-kernel artifacts are keyed by
content, so sharing one directory across the session is sound and keeps
the suite from invoking cc hundreds of times.
"""

import pytest

from repro.runtime import clear_caches


@pytest.fixture(scope="session", autouse=True)
def _isolated_native_cache(tmp_path_factory):
    import repro.backend.build as build

    d = tmp_path_factory.mktemp("nativecache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_NATIVE_CACHE", str(d))
    build.clear_memo()
    yield
    mp.undo()
    build.clear_memo()


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    clear_caches()
    yield
