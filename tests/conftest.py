"""Shared fixtures: isolate every test from the persistent program cache.

``compile_fun`` is cache-hitting (:mod:`repro.runtime`), and several
tests rely on compilations actually *running* -- monkeypatched pass
seams, ``REPRO_PRINT_AFTER`` side effects, verification-failure
injection.  Clearing the in-process cache before each test keeps those
observable; the cache's own behavior is tested explicitly in
``tests/runtime``.
"""

import pytest

from repro.runtime import clear_caches


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    clear_caches()
    yield
