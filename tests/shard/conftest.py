"""Shard tests share the in-process program cache.

The root conftest clears the compile cache before every test so that
pass-internal monkeypatching stays observable.  Nothing in this package
patches compiler internals, and the NW rectangle program's
short-circuit proof search is the most expensive compile in the repo
(~30s); shadowing the autouse fixture here lets every sharding test
reuse one compilation, exactly as the serving runtime would.
"""

import pytest


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    yield
