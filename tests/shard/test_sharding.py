"""Multi-device sharding: bit-identity, halo accounting, scaling.

The sharded decompositions only move *where* a cell is computed -- the
f32 expression tree per cell is the same -- so outputs must be
bit-identical across device counts, and identical to the original
(unsharded) benchmark program.  Halo traffic is only the cross-device
payload: a 1-device run performs the same ghost refreshes (periodic
wraps, edge replication) but moves nothing over the link.
"""

import numpy as np
import pytest

from repro.compiler import compile_fun
from repro.mem.exec import MemExecutor, RuntimeArray
from repro.shard import SHARDED, build_halo_copy, run_sharded, scaling_report

#: Small-but-interesting datasets: every device gets a non-trivial slab
#: and at least one cross-device exchange happens per step.
DATASETS = {"hotspot": (16, 3), "lbm": (8, 4), "nw": (4, 16)}


def _materialize(ex, val):
    if isinstance(val, RuntimeArray):
        return np.asarray(ex.mem[val.mem][val.ixfn.gather_offsets({})])
    return np.asarray(val)


def _original_output(name, args):
    from repro.bench.programs import all_benchmarks

    module = all_benchmarks()[name]
    compiled = compile_fun(module.build(), short_circuit=True, fuse=True)
    inp = module.inputs_for(*args)
    ex = MemExecutor(compiled.fun)
    vals, _ = ex.run(**inp)
    return _materialize(ex, vals[0]).reshape(-1)


def test_halo_copy_is_a_strided_copy():
    """The halo program scatters a strided gather: D[doff + k*dstr] =
    S[soff + k*sstr], leaving the rest of D untouched."""
    compiled = compile_fun(build_halo_copy(), short_circuit=True, fuse=True)
    rng = np.random.RandomState(0)
    S = rng.randn(40).astype(np.float32)
    D = rng.randn(50).astype(np.float32)
    soff, sstr, doff, dstr, cnt = 3, 2, 1, 5, 8
    expect = D.copy()
    expect[doff : doff + cnt * dstr : dstr] = S[soff : soff + cnt * sstr : sstr]
    ex = MemExecutor(compiled.fun)
    vals, st = ex.run(
        ls=S.size, ld=D.size, soff=soff, sstr=sstr, doff=doff, dstr=dstr,
        cnt=cnt, S=S.copy(), D=D.copy(),
    )
    assert np.array_equal(_materialize(ex, vals[0]), expect)
    # Short-circuiting lands the gather in the destination block: the
    # exchange costs one read + one write of the payload, nothing more.
    assert st.elided_copies >= 1


@pytest.mark.parametrize("name", sorted(SHARDED))
def test_one_device_matches_original_program(name):
    args = DATASETS[name]
    res = run_sharded(name, args, 1)
    assert np.array_equal(
        res.outputs[0].reshape(-1), _original_output(name, args)
    )
    # Same-device ghost refreshes move nothing across the link.
    assert res.halo_bytes == 0
    assert res.stats.halo_bytes == 0


@pytest.mark.parametrize("name", sorted(SHARDED))
def test_two_devices_bit_identical_with_halo_traffic(name):
    rep = scaling_report(name, DATASETS[name], 2)
    assert rep["outputs_identical"], rep
    assert rep["halo_bytes"] > 0
    assert rep["halo_exchanges"] > 0
    assert rep["base_halo_bytes"] == 0
    assert 0.0 < rep["efficiency"] <= 1.0, rep


@pytest.mark.parametrize("name,devices", [("hotspot", 4), ("lbm", 4)])
def test_four_devices_still_identical(name, devices):
    rep = scaling_report(name, DATASETS[name], devices)
    assert rep["outputs_identical"], rep
    assert rep["halo_bytes"] > 0


def test_indivisible_grid_is_rejected():
    with pytest.raises(ValueError):
        run_sharded("hotspot", (16, 2), 3)
    with pytest.raises(KeyError):
        run_sharded("nn", (16,), 2)


def test_halo_bytes_excluded_from_signature():
    """halo_bytes is provenance (who moved the bytes), not semantics:
    two runs differing only in halo tally must compare equal."""
    res = run_sharded("hotspot", DATASETS["hotspot"], 2)
    sig = res.stats.signature()
    res.stats.halo_bytes = 0
    assert res.stats.signature() == sig
