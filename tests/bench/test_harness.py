"""Tests for the table harness itself."""

import pytest

from repro.bench.harness import (
    BenchReport,
    Row,
    compile_both,
    measure_dataset,
    measure_fusion,
    row_for,
    run_table,
    validate,
)
from repro.bench.programs import hotspot, nn, nw
from repro.gpu import A100, MI100


@pytest.fixture(scope="module")
def nw_compiled():
    return compile_both(nw)


class TestMeasurement:
    def test_unopt_slower_than_opt(self, nw_compiled):
        stats = measure_dataset(nw, (8, 8), nw_compiled)
        row = row_for(nw, "t", (8, 8), A100, stats)
        assert row.unopt_ms > row.opt_ms
        assert row.impact == pytest.approx(row.unopt_ms / row.opt_ms)

    def test_mi100_slower_than_a100(self, nw_compiled):
        stats = measure_dataset(nw, (8, 8), nw_compiled)
        a = row_for(nw, "t", (8, 8), A100, stats)
        m = row_for(nw, "t", (8, 8), MI100, stats)
        assert m.opt_ms > a.opt_ms

    def test_loop_sampling_matches_exact(self, nw_compiled):
        exact = measure_dataset(nw, (16, 8), nw_compiled)
        sampled = measure_dataset(nw, (16, 8), nw_compiled, loop_sample=4)
        assert exact[1].bytes_total == sampled[1].bytes_total
        assert exact[0].launches == sampled[0].launches

    def test_validate_runs_both_pipelines(self, nw_compiled):
        assert validate(nw, "tiny", nw_compiled)


class TestReport:
    def test_run_table_structure(self):
        rep = run_table(hotspot, datasets={"32": (32, 2)}, do_validate=False)
        assert isinstance(rep, BenchReport)
        assert len(rep.rows) == 2  # one per device
        assert {r.device for r in rep.rows} == {"A100", "MI100"}
        assert rep.sc_committed == 8

    def test_render_contains_all_columns(self):
        rep = BenchReport("x", rows=[Row("A100", "d", 1.0, 0.5, 1.0, 2.0)])
        text = rep.render()
        assert "0.50x" in text and "2.00x" in text and "1.00ms" in text


class TestFusionDifferential:
    def test_measure_fusion_on_staged_benchmark(self):
        out = measure_fusion(nn, nn.TEST_DATASETS["small"])
        assert out["committed"] == 1
        assert out["outputs_equal"]
        assert out["fused_traffic"] < out["unfused_traffic"]
        assert out["no_vec_fallback"]
        assert out["fused_kernels"] >= 1 and out["bytes_elided"] > 0
        assert out["ok"]

    def test_measure_fusion_without_candidates(self):
        # Every real benchmark is now staged to fuse, so the
        # nothing-to-fuse contract (traffic must be *identical*) is
        # checked on a stub module with a single map and no intermediate.
        import types

        import numpy as np

        from repro.ir import FunBuilder, f32
        from repro.symbolic import Var

        nv = Var("n")

        def build():
            b = FunBuilder("plain")
            b.size_param("n")
            xs = b.param("xs", f32(nv))
            mp = b.map_(nv, index="i")
            mp.returns(mp.binop("+", mp.index(xs, [mp.idx]), 1.0))
            (out,) = mp.end()
            b.returns(out)
            return b.build()

        stub = types.SimpleNamespace(
            build=build,
            inputs_for=lambda k: {
                "n": k,
                "xs": np.arange(k, dtype=np.float32),
            },
            dry_inputs_for=lambda k: {"n": k},
        )
        out = measure_fusion(stub, (16,))
        assert out["committed"] == 0
        assert out["fused_traffic"] == out["unfused_traffic"]
        assert out["ok"]
