"""The serve regression baseline stays in sync with the harness."""

import json
from pathlib import Path

from repro.bench.__main__ import SERVE_BASELINE
from repro.bench.programs import all_benchmarks

BASELINE = Path(__file__).resolve().parents[2] / SERVE_BASELINE


def test_baseline_file_has_all_benchmarks():
    recorded = json.loads(BASELINE.read_text())
    assert set(recorded) == set(all_benchmarks())
    for row in recorded.values():
        assert {
            "dataset",
            "requests",
            "workers",
            "warm_cold_ratio",
            "pool_hit_rate",
            "throughput_rps",
        } <= set(row)


def test_baseline_meets_the_acceptance_bar():
    """The committed numbers must themselves satisfy the gate the bench
    harness enforces: 100 warm calls under 25% of 100 cold ones."""
    recorded = json.loads(BASELINE.read_text())
    for name, row in recorded.items():
        assert row["requests"] == 100, name
        assert row["warm_cold_ratio"] < 0.25, (name, row)
        assert row["throughput_rps"] > 0, name
        assert 0.0 <= row["pool_hit_rate"] <= 1.0, name
