"""Integration tests for all seven benchmark programs.

For each benchmark, at a scaled-down dataset:

1. the reference interpreter agrees with the NumPy reference
   implementation (the IR program is a correct algorithm);
2. both memory pipelines execute to the same values (the harness's own
   ``validate``);
3. dry-run traffic equals real-run traffic (the paper-scale measurements
   are trustworthy);
4. the expected short-circuiting opportunities are found, and the
   optimized program moves strictly fewer bytes.
"""

import numpy as np
import pytest

from repro.bench.harness import compile_both, validate, _reference_of
from repro.bench.programs import all_benchmarks
from repro.ir import run_fun
from repro.mem.exec import MemExecutor

BENCH = all_benchmarks()

#: Expected committed short-circuits (+reuses) per benchmark.  nw's two
#: extra commits are widened-slice recoveries and lud's ninth is a
#: cross-iteration proof -- all decided by the polyhedral fallback tier.
EXPECTED_SC = {
    # The staged fusion producers (README "Kernel fusion") add their own
    # short-circuit sites on top of each benchmark's classic kernels.
    "nw": 6,
    "lud": 15,
    "hotspot": 8,
    "lbm": 2,
    "optionpricing": 2,
    "locvolcalib": 3,
    "nn": 0,  # NN's win is the dead-copy reuse, counted separately
}
EXPECTED_REUSE = {"nn": 1}


@pytest.fixture(scope="module")
def compiled():
    return {name: compile_both(mod) for name, mod in BENCH.items()}


@pytest.mark.parametrize("name", sorted(BENCH))
def test_interpreter_matches_numpy_reference(name):
    mod = BENCH[name]
    args = mod.TEST_DATASETS["tiny"]
    inp = mod.inputs_for(*args)
    expected = _reference_of(mod, args, inp)
    fun = mod.build()
    outs = run_fun(
        fun, **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}
    )
    for got, exp in zip(outs, expected):
        assert np.allclose(
            np.asarray(got, dtype=np.float64),
            np.asarray(exp, dtype=np.float64),
            rtol=1e-3,
            atol=1e-3,
        ), name


@pytest.mark.parametrize("name", sorted(BENCH))
def test_both_pipelines_validate(name, compiled):
    assert validate(BENCH[name], "small", compiled[name]), name


@pytest.mark.parametrize("name", sorted(BENCH))
def test_short_circuit_opportunities_found(name, compiled):
    opt = compiled[name][1]
    assert opt.sc_stats.committed == EXPECTED_SC[name], opt.sc_stats.summary()
    assert opt.sc_stats.reused_copies == EXPECTED_REUSE.get(name, 0)


@pytest.mark.parametrize("name", sorted(BENCH))
def test_optimization_reduces_traffic(name, compiled):
    mod = BENCH[name]
    unopt, opt = compiled[name]
    inp = mod.dry_inputs_for(*mod.TEST_DATASETS["small"])
    _, st_un = MemExecutor(unopt.fun, mode="dry").run(**dict(inp))
    _, st_op = MemExecutor(opt.fun, mode="dry").run(**dict(inp))
    assert st_op.bytes_total < st_un.bytes_total, name
    assert st_op.elided_copies > 0, name


@pytest.mark.parametrize("name", sorted(BENCH))
def test_dry_equals_real_traffic(name, compiled):
    mod = BENCH[name]
    _, opt = compiled[name]
    args = mod.TEST_DATASETS["small"]
    real_inp = mod.inputs_for(*args)
    _, st_real = MemExecutor(opt.fun).run(
        **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in real_inp.items()}
    )
    _, st_dry = MemExecutor(opt.fun, mode="dry").run(**dict(mod.dry_inputs_for(*args)))
    assert st_dry.bytes_read == st_real.bytes_read, name
    assert st_dry.bytes_written == st_real.bytes_written, name
    assert st_dry.launches == st_real.launches, name


def test_nw_requires_dimension_splitting():
    """The baseline [9]-style *structural* test loses NW's circuits.

    Without dimension splitting the fig. 8 theorem proves none of NW's
    candidates; every commit that survives is decided by the polyhedral
    fallback tier (relation emptiness needs no splitting, so it recovers
    the full strong-compile count).
    """
    from repro.compiler import compile_fun

    fun = BENCH["nw"].build()
    weak = compile_fun(fun, enable_splitting=False)
    assert weak.sc_stats.committed == 6, weak.sc_stats.summary()
    assert weak.sc_stats.tiers.get("structural", 0) == 0, (
        weak.sc_stats.summary()
    )
    assert weak.sc_stats.tiers.get("polyhedral", 0) > 0, (
        weak.sc_stats.summary()
    )


def test_tables_render(compiled):
    from repro.bench.harness import run_table
    from repro.bench.programs import hotspot

    rep = run_table(hotspot, datasets={"64": (64, 2)}, do_validate=False)
    text = rep.render()
    assert "hotspot" in text and "A100" in text and "MI100" in text
    assert all(r.impact >= 1.0 for r in rep.rows)
