"""The prover-tier regression baseline stays in sync with the compiler."""

import json
from pathlib import Path

from repro.bench.__main__ import PROVER_BASELINE, _prover_tiers
from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun

BASELINE = Path(__file__).resolve().parents[2] / PROVER_BASELINE


def test_baseline_file_has_all_benchmarks():
    recorded = json.loads(BASELINE.read_text())
    assert set(recorded) == set(all_benchmarks())
    for tallies in recorded.values():
        assert {"structural", "polyhedral", "unknown"} <= set(tallies)


def test_current_compile_meets_baseline():
    """The gate ``python -m repro.bench`` enforces, replicated: the
    compiler must decide at least as many queries as recorded, and must
    not leave more undecided."""
    recorded = json.loads(BASELINE.read_text())
    for name in ("nw", "lud"):
        opt = compile_fun(all_benchmarks()[name].build())
        now = _prover_tiers(opt)
        base = recorded[name]
        assert (
            now["structural"] + now["polyhedral"]
            >= base["structural"] + base["polyhedral"]
        ), (name, now, base)
        assert now["unknown"] <= base["unknown"], (name, now, base)


def test_polyhedral_recoveries_are_recorded():
    """The headline result -- nw's and lud's polyhedral recoveries --
    must be visible in the committed baseline."""
    recorded = json.loads(BASELINE.read_text())
    assert recorded["nw"]["polyhedral"] >= 2
    assert recorded["lud"]["polyhedral"] >= 4
