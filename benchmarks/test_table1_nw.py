"""Table I: NW performance (paper section VI-B).

Paper (1000 runs): impact 1.17x-1.31x on A100, 1.13x-1.24x on MI100; the
optimized code outperforms the hand-written Rodinia kernel on the largest
datasets.  The fig. 9 non-overlap proof must succeed for both skewed loops
(2 short-circuits committed)."""

from conftest import table_benchmark

from repro.bench.programs import nw


def test_table1_nw(benchmark):
    rep = table_benchmark(
        benchmark, nw, paper_impacts=(1.13, 1.31), loop_sample=4
    )
    # Both halves' updates must short-circuit (the paper's NW story).
    assert rep.sc_committed == 2
