"""Figure 9: the static NW non-overlap proof W cap R_vert = {}.

Reproduces the derivation: conversion to sums-of-intervals with the offset
distributed (footnote 27), dimension splitting on both sides, and the
four disjoint sub-pairs -- all under the dataset invariant n = q*b + 1."""

from conftest import save_result

from repro.lmad import NonOverlapChecker, lmad, lmads_nonoverlapping
from repro.symbolic import Context, Prover, Var


def nw_setting():
    n, q, b, i = Var("n"), Var("q"), Var("b"), Var("i")
    ctx = Context()
    ctx.define("n", q * b + 1)
    ctx.assume_lower("q", 2)
    ctx.assume_lower("b", 2)
    ctx.assume_range("i", 0, q - 1)
    w = lmad(i * b + n + 1, [(i + 1, n * b - b), (b, n), (b, 1)])
    rvert = lmad(i * b, [(i + 1, n * b - b), (b + 1, n)])
    rhoriz = lmad(i * b + 1, [(i + 1, n * b - b), (b, 1)])
    return Prover(ctx), w, rvert, rhoriz


def test_fig9_nonoverlap(benchmark):
    prover, w, rvert, rhoriz = nw_setting()

    def run():
        chk = NonOverlapChecker(prover)
        ok_v = chk.check(w, rvert)
        trace = list(chk.trace)
        ok_h = chk.check(w, rhoriz)
        return ok_v, ok_h, trace

    ok_v, ok_h, trace = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== fig9: NW non-overlap proof ==", f"W        = {w}",
             f"R_vert   = {rvert}", f"R_horiz  = {rhoriz}", ""]
    lines += ["proof trace (W vs R_vert):"] + ["  " + t for t in trace]
    lines += [
        "",
        f"W cap R_vert  = empty : {ok_v}",
        f"W cap R_horiz = empty : {ok_h}",
        f"W cap W proven disjoint (must be False): "
        f"{lmads_nonoverlapping(w, w, prover)}",
        f"provable without dimension splitting (paper: no): "
        f"{lmads_nonoverlapping(w, rvert, prover, enable_splitting=False)}",
    ]
    save_result("fig9_nonoverlap", "\n".join(lines))
    assert ok_v and ok_h
    assert not lmads_nonoverlapping(w, w, prover)
    assert not lmads_nonoverlapping(w, rvert, prover, enable_splitting=False)
