"""Table V: OptionPricing performance (paper section VI-F).

Paper (1000 runs): modest impact, 1.03x-1.21x -- the per-path local array
short-circuits into the paths matrix, but pricing work dilutes the
saving."""

from conftest import table_benchmark

from repro.bench.programs import optionpricing


def test_table5_optionpricing(benchmark):
    rep = table_benchmark(
        benchmark, optionpricing, paper_impacts=(1.03, 1.21), loop_sample=4
    )
    assert rep.sc_committed == 1
