"""Table VII: NN performance (paper section VI-H).

Paper (100 runs): impact 1.05x-1.55x, decreasing with dataset size; the
Futhark version is 5x-200x faster than the reference because Rodinia uses
a *sequential* reduction (modelled as per-element dependent latency in the
reference cost model).  The per-round conservative copy of the distances
is turned into a no-op by the dead-source memory reuse."""

from conftest import table_benchmark

from repro.bench.programs import nn


def test_table7_nn(benchmark):
    rep = table_benchmark(benchmark, nn, paper_impacts=(1.05, 1.55))
    # The dead-source memory reuse is the mechanism behind this table.
    assert rep.sc_reused_copies == 1
    for r in rep.rows:
        # The headline shape: Futhark beats the sequential-reduction ref
        # by a widening margin as the dataset grows.
        assert r.opt_rel > 2.0, f"NN should dominate the reference: {r}"
    a100 = {r.dataset: r.opt_rel for r in rep.rows if r.device == "A100"}
    rels = [a100[k] for k in sorted(a100, key=lambda s: int(s))]
    assert rels == sorted(rels), "ref-relative speedup should grow with size"
    # Divergence note (EXPERIMENTS.md): the paper's impact *decreases* with
    # size; ours increases because the conservative copy we model is O(n).
