"""Figure 3: composed index functions and run-time unranking.

The slicing/transposition/flattening chain produces an index function of
two LMADs; none of the operations manifest arrays in memory, and the flat
offset of ``es[5]`` is exactly the paper's 59."""

from conftest import save_result

import numpy as np

from repro.lmad import IndexFn
from repro.symbolic import Prover


def test_fig3_index_functions(benchmark):
    p = Prover()

    def run():
        as_ = IndexFn.row_major([64])
        bs = as_.reshape([8, 8], p)
        cs = bs.transpose()
        ds = cs.slice_triplets([(1, 2, 2), (4, 4, 1)])
        es = ds.flatten(p).slice_triplets([(2, 6, 1)])
        return as_, bs, cs, ds, es

    as_, bs, cs, ds, es = benchmark.pedantic(run, rounds=1, iterations=1)
    off = es.apply_concrete([5], {})
    lines = [
        "== fig3: index function computations ==",
        f"ixfn as = {as_}",
        f"ixfn bs = {bs}",
        f"ixfn cs = {cs}",
        f"ixfn ds = {ds}",
        f"ixfn es = {es}",
        f"flat offset of es[5] = {off}   (paper: 59)",
    ]
    save_result("fig3_ixfun", "\n".join(lines))
    assert off == 59
    assert len(es.lmads) == 2  # composition with run-time unranking
    arr = np.arange(64)
    ref = arr.reshape(8, 8).T[1:5:2, 4:8].flatten()[2:]
    assert (arr[es.gather_offsets({})] == ref).all()
