"""Section V-D: compile-time overhead of short-circuiting.

The paper reports ~10% overhead for most benchmarks, with NW and LUD as
outliers (17x for NW, attributable to the external SMT solver -- which this
reproduction replaces with the in-compiler symbolic engine the authors
said they were building, so our NW overhead is far smaller)."""

from conftest import save_result

from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun


def test_compile_time_overhead(benchmark):
    rows = {}

    def run():
        for name, module in all_benchmarks().items():
            fun = module.build()
            unopt = compile_fun(fun, short_circuit=False)
            opt = compile_fun(fun, short_circuit=True)
            rows[name] = (
                unopt.compile_seconds,
                opt.compile_seconds,
                opt.sc_seconds,
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "== compile-time overhead of short-circuiting (section V-D) ==",
        f"{'bench':14s} {'without':>9s} {'with':>9s} {'overhead':>9s} {'SC share':>9s}",
    ]
    for name, (t_un, t_op, t_sc) in rows.items():
        lines.append(
            f"{name:14s} {t_un*1e3:8.1f}ms {t_op*1e3:8.1f}ms "
            f"{t_op/t_un:8.2f}x {t_sc/t_op:8.1%}"
        )
    save_result("compile_time", "\n".join(lines))
    # Shape: overhead exists but compilation stays fast; NW/LUD are the
    # heaviest because of the non-overlap proofs.
    for name, (t_un, t_op, _) in rows.items():
        assert t_op >= t_un * 0.9
        assert t_op < 60.0, f"{name} compile blew up"
