"""Shared infrastructure for the paper-table benchmarks.

Each ``test_table*.py`` regenerates one table of the paper's evaluation
section through the full pipeline (compile twice, validate on real data at
small scale, dry-run at paper scale, apply the device cost models).  The
rendered tables are printed and also written to ``benchmarks/results/`` so
EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import pathlib
import warnings

import pytest

warnings.filterwarnings("ignore")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def table_benchmark(benchmark, module, paper_impacts, loop_sample=None,
                    datasets=None):
    """Run one table end-to-end under pytest-benchmark and sanity-check it.

    ``paper_impacts`` is (lo, hi): the paper's reported impact range; the
    reproduction asserts only the *shape* -- every measured impact >= 1.0
    (short-circuiting never loses) and the mean impact within a generous
    factor of the paper's band.
    """
    from repro.bench.harness import run_table

    report = {}

    def run():
        report["r"] = run_table(
            module, loop_sample=loop_sample, datasets=datasets
        )
        return report["r"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    rep = report["r"]
    text = rep.render()
    text += f"\nvalidated against reference: {rep.validated}"
    text += f"\nshort-circuits committed   : {rep.sc_committed}"
    text += f"\ndead-copy reuses           : {rep.sc_reused_copies}"
    save_result(rep.name, text)

    benchmark.extra_info["validated"] = rep.validated
    benchmark.extra_info["sc_committed"] = rep.sc_committed
    for r in rep.rows:
        benchmark.extra_info[f"{r.device}/{r.dataset}/impact"] = round(r.impact, 3)

    assert rep.validated, "optimized pipeline diverged from the reference"
    impacts = [r.impact for r in rep.rows]
    assert all(i >= 0.999 for i in impacts), f"impact below 1x: {impacts}"
    lo, hi = paper_impacts
    mean = sum(impacts) / len(impacts)
    assert mean >= 1.0 and mean <= hi * 2.5, (
        f"mean impact {mean:.2f} wildly off the paper's {lo}-{hi} band"
    )
    return rep
