"""Table VI: LocVolCalib performance (paper section VI-G).

Paper (10 runs): impact 1.04x-1.12x -- the per-step direction-alternation
copy and the per-thread solve chain short-circuit through the timestep
loop into the result matrix (fig. 5b + fig. 6b combined)."""

from conftest import table_benchmark

from repro.bench.programs import locvolcalib


def test_table6_locvolcalib(benchmark):
    rep = table_benchmark(
        benchmark, locvolcalib, paper_impacts=(1.04, 1.12), loop_sample=4
    )
    assert rep.sc_committed >= 2
