"""Memory-footprint ablation: the introduction's second promise.

The paper's introduction motivates memory optimizations with (1) copy
elimination and (2) "decreasing memory footprint by placing semantically
different arrays in the same memory blocks".  This benchmark measures the
second effect: total bytes allocated by each benchmark with and without
short-circuiting (re-homed arrays make their original allocations dead,
and the dead-allocation cleanup removes them)."""

from conftest import save_result

from repro.bench.programs import all_benchmarks
from repro.bench.harness import compile_both
from repro.mem.exec import MemExecutor


def test_allocation_footprint(benchmark):
    rows = {}

    def run():
        for name, module in all_benchmarks().items():
            unopt, opt = compile_both(module)
            inp = module.dry_inputs_for(*module.TEST_DATASETS["small"])
            _, st_un = MemExecutor(unopt.fun, mode="dry").run(**dict(inp))
            _, st_op = MemExecutor(opt.fun, mode="dry").run(**dict(inp))
            rows[name] = (st_un.alloc_bytes, st_op.alloc_bytes)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "== allocation footprint with vs. without short-circuiting ==",
        f"{'bench':14s} {'unopt bytes':>12s} {'opt bytes':>12s} {'saved':>8s}",
    ]
    for name, (un, op) in rows.items():
        saved = 1 - op / un if un else 0.0
        lines.append(f"{name:14s} {un:12,d} {op:12,d} {saved:7.1%}")
    save_result("footprint", "\n".join(lines))
    for name, (un, op) in rows.items():
        assert op <= un, f"{name}: optimization must not allocate more"
    # The headline benchmarks allocate substantially less.
    assert rows["hotspot"][1] < rows["hotspot"][0]
    assert rows["nw"][1] < rows["nw"][0]
