"""Table IV: LBM performance (paper section VI-E).

Paper (100 runs): impact 1.09x-1.10x on A100 and 1.59x-1.60x on MI100; the
mapnest's per-cell local distribution vector short-circuits into the next
grid (the fig. 6b implicit circuit point)."""

from conftest import table_benchmark

from repro.bench.programs import lbm


def test_table4_lbm(benchmark):
    rep = table_benchmark(
        benchmark, lbm, paper_impacts=(1.09, 1.60), loop_sample=4
    )
    assert rep.sc_committed == 1  # the mapnest implicit circuit
