"""Figure 1: the paper's introductory diagonal-update example.

Left: adding the first-row element to each diagonal element -- provably
race-free at each thread, so the map's result short-circuits into the
matrix and the update is a no-op.  Right: adding the js[i]-indirected
diagonal element -- possible WAR hazards, the analysis must (and does)
keep the copy.  Both variants stay correct."""

import numpy as np
from conftest import save_result

from repro.compiler import compile_fun
from repro.ir import FunBuilder, f32, i64, run_fun
from repro.lmad import lmad
from repro.mem.exec import MemExecutor
from repro.symbolic import Var

n = Var("n")


def diag_fun(indirect: bool):
    b = FunBuilder("diag")
    b.size_param("n")
    A = b.param("A", f32(n * n))
    if indirect:
        b.param("js", i64(n))
    diag = b.lmad_slice(A, lmad(0, [(n, n + 1)]), name="diag")
    mp = b.map_(n, index="i")
    d = mp.index(diag, [mp.idx])
    if indirect:
        mp.index("js", [mp.idx], name="jsi")
        r = mp.index(A, [Var("jsi") * (n + 1)])
    else:
        r = mp.index(A, [mp.idx])
    s = mp.binop("+", d, r)
    mp.returns(s)
    (X,) = mp.end()
    A2 = b.update_lmad(A, lmad(0, [(n, n + 1)]), X, name="A2")
    b.returns(A2)
    return b.build()


def run_variant(indirect: bool, nv: int = 64):
    fun = diag_fun(indirect)
    opt = compile_fun(fun)
    inputs = {"n": nv, "A": np.arange(nv * nv, dtype=np.float32)}
    if indirect:
        inputs["js"] = np.random.RandomState(0).randint(0, nv, nv)
    ref = run_fun(fun, **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inputs.items()})[0]
    ex = MemExecutor(opt.fun)
    vals, st = ex.run(**inputs)
    got = ex.mem[vals[0].mem][vals[0].ixfn.gather_offsets({})]
    assert np.allclose(got, ref)
    return opt.sc_stats, st


def test_fig1_diagonal(benchmark):
    out = {}

    def run():
        out["left"] = run_variant(indirect=False)
        out["right"] = run_variant(indirect=True)

    benchmark.pedantic(run, rounds=1, iterations=1)
    (sc_l, st_l), (sc_r, st_r) = out["left"], out["right"]
    text = "\n".join(
        [
            "== fig1: diagonal update ==",
            f"left  (direct):     committed={sc_l.committed}  "
            f"copy traffic={st_l.copy_traffic()}B  elided={st_l.elided_copies}",
            f"right (indirected): committed={sc_r.committed}  "
            f"copy traffic={st_r.copy_traffic()}B  elided={st_r.elided_copies}",
        ]
    )
    save_result("fig1_diagonal", text)
    assert sc_l.committed == 1 and st_l.copy_traffic() == 0
    assert sc_r.committed == 0 and st_r.copy_traffic() > 0
