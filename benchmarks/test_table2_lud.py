"""Table II: LUD performance (paper section VI-C).

Paper (10 runs): impact 1.19x-1.39x; Futhark beats Rodinia thanks to
register+block tiling.  The paper notes the diagonal (green) and one strip
(blue) are *not* computed in place for Futhark-specific reasons while the
others are -- the reproduction similarly short-circuits a subset of the
four phases per step (partial success, never a correctness loss)."""

from conftest import table_benchmark

from repro.bench.programs import lud


def test_table2_lud(benchmark):
    rep = table_benchmark(
        benchmark, lud, paper_impacts=(1.19, 1.39), loop_sample=4
    )
    assert rep.sc_committed >= 4  # the wide phases commit
