"""Table III: Hotspot performance (paper section VI-D).

Paper (10 runs): the largest impacts of the evaluation, 1.78x-2.05x: every
time step's boundary/interior parts are concatenated into the result, and
short-circuiting constructs them there directly."""

from conftest import table_benchmark

from repro.bench.programs import hotspot


def test_table3_hotspot(benchmark):
    rep = table_benchmark(
        benchmark, hotspot, paper_impacts=(1.78, 2.05), loop_sample=4
    )
    # The whole concat chain (3 outer operands + per-row chains) commits.
    assert rep.sc_committed >= 6
    for r in rep.rows:
        assert r.impact > 1.5, f"hotspot impact collapsed: {r}"
