"""Ablation: the dimension-splitting extension of the non-overlap test.

The paper's test extends Hoeflinger et al. [9] by splitting overlapping
dimensions instead of failing (section V-C).  This ablation compiles every
benchmark with splitting disabled and counts committed short-circuits:
NW's anti-diagonal proofs (fig. 9) require splitting, so its circuit
points must be lost; benchmarks with trivially disjoint regions keep
theirs."""

from conftest import save_result

from repro.bench.programs import all_benchmarks
from repro.compiler import compile_fun


def test_ablation_dimension_splitting(benchmark):
    rows = {}

    def run():
        for name, module in all_benchmarks().items():
            fun = module.build()
            with_split = compile_fun(fun, enable_splitting=True)
            without = compile_fun(fun, enable_splitting=False)
            rows[name] = (
                with_split.sc_stats.committed,
                without.sc_stats.committed,
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "== ablation: LMAD non-overlap dimension splitting ==",
        f"{'bench':14s} {'with':>6s} {'without':>8s}",
    ]
    for name, (w, wo) in rows.items():
        lines.append(f"{name:14s} {w:6d} {wo:8d}")
    save_result("ablation_splitting", "\n".join(lines))
    # NW's fig. 9 proofs need the splitting heuristic.
    assert rows["nw"][0] == 2 and rows["nw"][1] == 0
    # No benchmark gains circuits by disabling it.
    for name, (w, wo) in rows.items():
        assert wo <= w
