"""Ablation: allocation hoisting as the enabler of property (2).

Short-circuiting requires the destination block to be allocated before the
candidate's creation point (paper section V, property 2).  Compiling with
hoisting disabled shows which circuit points die for purely structural
reasons."""

from conftest import save_result

from repro.bench.programs import all_benchmarks
from repro.ir.lastuse import analyze_last_uses
from repro.mem.hoist import hoist_allocations
from repro.mem.introduce import introduce_memory
from repro.opt.shortcircuit import short_circuit_fun


def compile_sc(fun, hoist: bool):
    mfun = introduce_memory(fun)
    if hoist:
        hoist_allocations(mfun)
    analyze_last_uses(mfun)
    return short_circuit_fun(mfun)


def test_ablation_hoisting(benchmark):
    rows = {}

    def run():
        for name, module in all_benchmarks().items():
            fun = module.build()
            rows[name] = (
                compile_sc(fun, hoist=True).committed,
                compile_sc(fun, hoist=False).committed,
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "== ablation: allocation hoisting (property 2 enabler) ==",
        f"{'bench':14s} {'hoisted':>8s} {'unhoisted':>10s}",
    ]
    for name, (w, wo) in rows.items():
        lines.append(f"{name:14s} {w:8d} {wo:10d}")
    save_result("ablation_hoisting", "\n".join(lines))
    for name, (w, wo) in rows.items():
        assert wo <= w, f"{name}: hoisting should never hurt"
    # At least one benchmark depends on hoisting for some circuit point.
    assert any(wo < w for w, wo in rows.values())
