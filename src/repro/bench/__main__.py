"""Command-line entry point: regenerate the paper's tables.

    python -m repro.bench                 # all seven tables (slow: dry-runs
                                          # at the paper's dataset sizes)
    python -m repro.bench nw hotspot      # a subset
    python -m repro.bench nw --quick      # scaled-down datasets (seconds)
    python -m repro.bench --filter hot    # names containing "hot"
    python -m repro.bench --quick --json  # + executor-tier wall clock,
                                          # written to benchmarks/results/
    python -m repro.bench nw --explain    # per-pass pipeline trace
                                          # (timings, IR deltas,
                                          # rejection diagnostics,
                                          # per-space peaks)
    python -m repro.bench --devices 2     # shard hotspot/lbm/nw across
                                          # two simulated devices: halo
                                          # traffic + scaling efficiency
    python -m repro.bench --json --out p  # write the JSON report to p
    python -m repro.bench --list          # available benchmarks
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

from repro.bench.harness import (
    PERF_DATASETS,
    QUICK_DATASETS,
    compile_both,
    measure_engine,
    measure_footprint,
    measure_fusion,
    run_table,
)
from repro.bench.programs import all_benchmarks

#: Committed reference for the peak-footprint regression gate: CI fails
#: when a benchmark's optimized-pipeline peak (static estimate at the
#: PERF_DATASETS size) exceeds the recorded value.  Regenerate with
#: ``python -m repro.bench --write-footprint-baseline`` after a change
#: that legitimately alters the footprint.
FOOTPRINT_BASELINE = Path("benchmarks") / "results" / "footprint_baseline.json"

#: Committed reference for the traffic regression gate: CI fails when the
#: optimized pipeline's dry-run traffic (bytes read + written at the
#: PERF_DATASETS size) exceeds the recorded value -- e.g. when a fusion
#: or short-circuit opportunity is lost.  Regenerate with
#: ``python -m repro.bench --write-traffic-baseline``.
TRAFFIC_BASELINE = Path("benchmarks") / "results" / "traffic_baseline.json"

#: Committed reference for the prover-tier regression gate: CI fails
#: when the optimized pipeline *decides* (structural + polyhedral) fewer
#: disjointness/size queries than recorded, or leaves more undecided --
#: e.g. when a prover change silently demotes polyhedral recoveries back
#: to ``unknown``.  Regenerate with
#: ``python -m repro.bench --write-prover-baseline``.
PROVER_BASELINE = Path("benchmarks") / "results" / "prover_tier_baseline.json"

#: Committed reference for the serving regression gate: CI fails when a
#: benchmark's warm/cold amortization ratio reaches 0.25 (the acceptance
#: bar: 100 warm calls must cost under a quarter of 100 cold
#: compile+run calls) or its pool hit rate falls materially below the
#: recorded value.  Regenerate with
#: ``python -m repro.bench --write-serve-baseline``.
SERVE_BASELINE = Path("benchmarks") / "results" / "serve_baseline.json"

#: Committed reference for the native-tier regression gate: CI fails
#: when a benchmark's native kernel coverage (fraction of real-mode map
#: dispatches served by compiled C) falls below the recorded value, or
#: when fewer benchmarks beat the vectorized tier's warm wall clock than
#: recorded.  Skipped entirely when no C compiler is available.
#: Regenerate with ``python -m repro.bench --write-native-baseline``.
NATIVE_BASELINE = Path("benchmarks") / "results" / "native_baseline.json"

#: Committed reference for the sharding regression gate: CI fails when a
#: sharded benchmark's 2-device run stops producing bit-identical output,
#: stops exchanging halos, or its scaling efficiency falls below the
#: recorded value.  The simulation is deterministic, so only a small
#: slack (0.02) absorbs cost-model retuning.  Regenerate with
#: ``python -m repro.bench --write-shard-baseline``.
SHARD_BASELINE = Path("benchmarks") / "results" / "shard_baseline.json"

#: Datasets for the sharding simulation.  Chosen so the per-device slabs
#: stay interesting (nonzero halo traffic, efficiency well away from
#: both 0 and 1) while the wavefront benchmarks finish in under a
#: second -- NW's diagonal sweep at the PERF size takes half a minute.
SHARD_DATASETS = {"hotspot": (256, 3), "lbm": (128, 4), "nw": (8, 16)}


def _prover_tiers(opt) -> dict:
    """Deciding-tier tallies summed over the optimized compile's passes."""
    total = {"structural": 0, "polyhedral": 0, "unknown": 0}
    per_pass = {}
    for label, st in (
        ("short_circuit", opt.sc_stats),
        ("fuse", opt.fuse_stats),
        ("reuse", opt.reuse_stats),
    ):
        tiers = dict(getattr(st, "tiers", None) or {})
        if any(tiers.values()):
            per_pass[label] = {k: v for k, v in tiers.items() if v}
        for k, v in tiers.items():
            total[k] = total.get(k, 0) + v
    total["per_pass"] = per_pass
    return total


def main(argv=None) -> int:
    warnings.filterwarnings("ignore")
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument("benchmarks", nargs="*", help="subset to run")
    parser.add_argument("--filter", metavar="NAME",
                        help="run only benchmarks whose name contains NAME")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down datasets")
    parser.add_argument("--list", action="store_true",
                        help="list available benchmarks")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip the real-data validation run")
    parser.add_argument("--json", action="store_true",
                        help="measure executor tiers and write a "
                             "benchmarks/results/BENCH_<ts>.json report")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the --json report to PATH instead of "
                             "benchmarks/results/BENCH_<ts>.json")
    parser.add_argument("--devices", type=int, default=1, metavar="N",
                        help="simulate the sharded benchmarks (hotspot, "
                             "lbm, nw) split across N devices and report "
                             "halo traffic and scaling efficiency")
    parser.add_argument("--explain", action="store_true",
                        help="print each benchmark's optimized-pipeline "
                             "trace: per-pass timings, IR size/alloc "
                             "deltas, and rejection diagnostics")
    parser.add_argument("--write-footprint-baseline", action="store_true",
                        help="record current peak footprints as the "
                             "regression baseline "
                             "(benchmarks/results/footprint_baseline.json)")
    parser.add_argument("--write-traffic-baseline", action="store_true",
                        help="record current optimized-pipeline traffic as "
                             "the regression baseline "
                             "(benchmarks/results/traffic_baseline.json)")
    parser.add_argument("--write-prover-baseline", action="store_true",
                        help="record current deciding-tier tallies as the "
                             "regression baseline "
                             "(benchmarks/results/prover_tier_baseline.json)")
    parser.add_argument("--write-serve-baseline", action="store_true",
                        help="record current serving metrics as the "
                             "regression baseline "
                             "(benchmarks/results/serve_baseline.json)")
    parser.add_argument("--write-shard-baseline", action="store_true",
                        help="record current 2-device scaling efficiency "
                             "and halo traffic as the regression baseline "
                             "(benchmarks/results/shard_baseline.json)")
    parser.add_argument("--write-native-baseline", action="store_true",
                        help="record per-benchmark native-tier coverage "
                             "and wall-clock wins as the regression "
                             "baseline "
                             "(benchmarks/results/native_baseline.json)")
    parser.add_argument("--serve-requests", type=int, default=100,
                        metavar="N",
                        help="warm requests per benchmark in the serve "
                             "measurement (default 100)")
    parser.add_argument("--serve-workers", type=int, default=4, metavar="N",
                        help="concurrent serving workers (default 4)")
    args = parser.parse_args(argv)

    registry = all_benchmarks()
    if args.list:
        for name in registry:
            print(name)
        return 0

    names = args.benchmarks or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.filter:
        names = [n for n in names if args.filter in n]
        if not names:
            print(f"no benchmark matches --filter {args.filter!r}",
                  file=sys.stderr)
            return 2

    failed = []
    tier_failed = []
    footprint_failed = []
    fusion_failed = []
    traffic_failed = []
    baseline = {}
    if FOOTPRINT_BASELINE.exists():
        baseline = json.loads(FOOTPRINT_BASELINE.read_text())
    traffic_baseline = {}
    if TRAFFIC_BASELINE.exists():
        traffic_baseline = json.loads(TRAFFIC_BASELINE.read_text())
    prover_failed = []
    prover_baseline = {}
    if PROVER_BASELINE.exists():
        prover_baseline = json.loads(PROVER_BASELINE.read_text())
    serve_failed = []
    serve_baseline = {}
    if SERVE_BASELINE.exists():
        serve_baseline = json.loads(SERVE_BASELINE.read_text())
    native_failed = []
    native_baseline = {}
    if NATIVE_BASELINE.exists():
        native_baseline = json.loads(NATIVE_BASELINE.read_text())
    shard_failed = []
    shard_baseline = {}
    if SHARD_BASELINE.exists():
        shard_baseline = json.loads(SHARD_BASELINE.read_text())
    native_wins = 0
    native_measured = 0
    results = {}
    for name in names:
        module = registry[name]
        datasets = QUICK_DATASETS[name] if args.quick else None
        compiled = compile_both(module)
        t0 = time.perf_counter()
        report = run_table(
            module,
            datasets=datasets,
            do_validate=not args.no_validate,
            loop_sample=4,
            compiled=compiled,
        )
        table_s = time.perf_counter() - t0
        print(report.render())
        print(f"validated: {report.validated}  "
              f"short-circuits: {report.sc_committed}  "
              f"dead-copy reuses: {report.sc_reused_copies}")
        if report.sc_failures:
            rejected = ", ".join(
                f"{rule} x{count}"
                for rule, count in sorted(report.sc_failures.items())
            )
            print(f"sc candidates rejected: {rejected}")
        if report.validation_ran and not report.validated:
            failed.append(name)

        fst = compiled[1].fuse_stats
        if fst.failures:
            rejected = ", ".join(
                f"{rule} x{count}"
                for rule, count in sorted(fst.failures.items())
            )
            print(f"fuse candidates rejected: {rejected}")

        if args.explain:
            print(report.traces["opt"].render())
            if fst.failure_records:
                print("fuse rejections (optimized pipeline):")
                rows = [
                    (r.rule, r.producer or "-", r.consumer or "-", r.location)
                    for r in fst.failure_records
                ]
                widths = [
                    max(len(h), *(len(row[i]) for row in rows))
                    for i, h in enumerate(("rule", "producer", "consumer"))
                ]
                hdr = (f"  {'rule':<{widths[0]}}  {'producer':<{widths[1]}}  "
                       f"{'consumer':<{widths[2]}}  location")
                print(hdr)
                print("  " + "-" * (len(hdr) - 2))
                for rule, prod, cons, loc in rows:
                    print(f"  {rule:<{widths[0]}}  {prod:<{widths[1]}}  "
                          f"{cons:<{widths[2]}}  {loc}")
                if fst.repeat_failures:
                    print(f"  ({fst.repeat_failures} repeat rejection(s) of "
                          f"already-tallied sites suppressed)")

        footprint = measure_footprint(module, PERF_DATASETS[name], compiled)
        opt_fp = footprint["opt"]
        print(f"footprint (opt): peak {opt_fp['peak_bytes']:,} / "
              f"naive {opt_fp['naive_bytes']:,} bytes "
              f"({opt_fp['saving']:.0%} saved)")
        if args.explain:
            for label in ("unopt", "opt"):
                peaks = footprint[label].get("space_peaks") or {}
                per_space = "  ".join(
                    f"{sp} {peaks[sp]:,}" for sp in sorted(peaks)
                )
                print(f"  space peaks ({label}): {per_space or 'hbm 0'}")
        recorded = baseline.get(name, {}).get("opt_peak_bytes")
        if recorded is not None and opt_fp["peak_bytes"] > recorded:
            print(f"FOOTPRINT REGRESSION: peak {opt_fp['peak_bytes']:,} "
                  f"exceeds baseline {recorded:,}", file=sys.stderr)
            footprint_failed.append(name)

        fusion = measure_fusion(
            module, PERF_DATASETS[name], PERF_DATASETS[name], compiled[1]
        )
        if fusion["committed"]:
            saved = fusion["unfused_traffic"] - fusion["fused_traffic"]
            pct = saved / fusion["unfused_traffic"] if fusion["unfused_traffic"] else 0
            print(f"fusion: {fusion['committed']} producer(s) inlined, "
                  f"traffic {fusion['fused_traffic']:,} vs "
                  f"{fusion['unfused_traffic']:,} unfused (-{pct:.0%}), "
                  f"outputs identical: {fusion['outputs_equal']}")
        if not fusion["ok"]:
            print(f"FUSION DIFFERENTIAL FAILED: {fusion}", file=sys.stderr)
            fusion_failed.append(name)

        recorded_traffic = traffic_baseline.get(name, {}).get("opt_traffic_bytes")
        recorded_unfused = traffic_baseline.get(name, {}).get("unfused_traffic_bytes")
        if recorded_traffic is not None and fusion["fused_traffic"] > recorded_traffic:
            print(f"TRAFFIC REGRESSION: {fusion['fused_traffic']:,} bytes "
                  f"exceeds baseline {recorded_traffic:,}", file=sys.stderr)
            traffic_failed.append(name)
        elif (recorded_traffic is not None and recorded_unfused is not None
              and recorded_traffic < recorded_unfused
              and fusion["fused_traffic"] >= fusion["unfused_traffic"]):
            # Tighter than the absolute ceiling: where the baseline records
            # a strict fusion win, losing it (fusion silently no longer
            # committing) fails even if traffic stays under the ceiling.
            print(f"TRAFFIC REGRESSION: fusion win lost "
                  f"({fusion['fused_traffic']:,} >= "
                  f"{fusion['unfused_traffic']:,} unfused; baseline won "
                  f"{recorded_unfused - recorded_traffic:,} bytes)",
                  file=sys.stderr)
            traffic_failed.append(name)

        prover_tier = _prover_tiers(compiled[1])
        decided = prover_tier["structural"] + prover_tier["polyhedral"]
        if decided or prover_tier["unknown"]:
            print(f"prover tiers: structural {prover_tier['structural']} / "
                  f"polyhedral {prover_tier['polyhedral']} / "
                  f"unknown {prover_tier['unknown']}")
        rec_tiers = prover_baseline.get(name)
        if rec_tiers is not None:
            rec_decided = rec_tiers["structural"] + rec_tiers["polyhedral"]
            if decided < rec_decided or prover_tier["unknown"] > rec_tiers["unknown"]:
                print(f"PROVER TIER REGRESSION: decided {decided} "
                      f"(baseline {rec_decided}), unknown "
                      f"{prover_tier['unknown']} (baseline "
                      f"{rec_tiers['unknown']})", file=sys.stderr)
                prover_failed.append(name)

        engine = None
        if args.json or args.write_native_baseline:
            engine = measure_engine(module, PERF_DATASETS[name], compiled)
            print(f"engine: interp {engine['interp_s']:.2f}s / "
                  f"vec {engine['vec_s']:.2f}s = "
                  f"{engine['speedup']:.1f}x  "
                  f"(hit rate {engine['vec_hit_rate']:.2f})")
            if not (engine["outputs_equal"] and engine["stats_equal"]
                    and engine["vec_hit_rate"] > 0
                    and engine["footprint_equal"]):
                tier_failed.append(name)
            native = engine["native"]
            if native is not None:
                native_measured += 1
                if native["native_speedup"] > 1.0:
                    native_wins += 1
                print(f"native: {native['native_s'] * 1000:.2f}ms warm = "
                      f"{native['native_speedup']:.1f}x over vec  "
                      f"(coverage {native['native_hit_rate']:.2f}, "
                      f"{native['native_launches']} launches, "
                      f"codegen {native['codegen_s']:.2f}s)")
                if not (native["outputs_equal"] and native["stats_equal"]
                        and native["footprint_equal"]):
                    print(f"NATIVE DIFFERENTIAL FAILED: {native}",
                          file=sys.stderr)
                    native_failed.append(name)
                rec = native_baseline.get(name, {}).get("native_hit_rate")
                if rec is not None and native["native_hit_rate"] < rec:
                    print(f"NATIVE COVERAGE REGRESSION: hit rate "
                          f"{native['native_hit_rate']:.2f} below baseline "
                          f"{rec:.2f}", file=sys.stderr)
                    native_failed.append(name)

        serve = None
        if args.json or args.write_serve_baseline:
            from repro.runtime.serve import measure_serve

            serve = measure_serve(
                module, PERF_DATASETS[name],
                requests=args.serve_requests, workers=args.serve_workers,
            )
            print(f"serve: {serve['throughput_rps']:.0f} req/s "
                  f"(p50 {serve['p50_ms']:.2f}ms / p99 "
                  f"{serve['p99_ms']:.2f}ms, {serve['workers']} workers)  "
                  f"warm/cold {serve['warm_cold_ratio']:.3f}  "
                  f"pool hit rate {serve['pool_hit_rate']:.2f}  "
                  f"cache {serve['cache_state']}")
            if not serve["ok"]:
                print(f"SERVE DIFFERENTIAL FAILED: {serve}", file=sys.stderr)
                serve_failed.append(name)
            elif serve["warm_cold_ratio"] >= 0.25:
                print(f"SERVE AMORTIZATION REGRESSION: warm/cold "
                      f"{serve['warm_cold_ratio']:.3f} >= 0.25 "
                      f"(100 warm calls {serve['warm_100_s']:.2f}s vs "
                      f"100 cold {serve['cold_100_s']:.2f}s)",
                      file=sys.stderr)
                serve_failed.append(name)
            else:
                rec = serve_baseline.get(name, {}).get("pool_hit_rate")
                # 0.05 slack: hit rates depend on worker interleaving.
                if rec is not None and serve["pool_hit_rate"] < rec - 0.05:
                    print(f"SERVE POOL REGRESSION: hit rate "
                          f"{serve['pool_hit_rate']:.2f} below baseline "
                          f"{rec:.2f}", file=sys.stderr)
                    serve_failed.append(name)

        results[name] = {
            "fusion": fusion,
            "footprint": footprint,
            "validated": report.validated,
            "validation_ran": report.validation_ran,
            "table_wall_s": table_s,
            "compile_s": report.compile_seconds,
            "short_circuits": report.sc_committed,
            "dead_copy_reuses": report.sc_reused_copies,
            "sc_rejected": dict(report.sc_failures),
            "fuse_rejections": {
                "counts": dict(fst.failures),
                "repeat_suppressed": fst.repeat_failures,
                "records": [
                    {
                        "rule": r.rule,
                        "location": r.location,
                        "producer": r.producer,
                        "consumer": r.consumer,
                    }
                    for r in fst.failure_records
                ],
            },
            "prover_tier": prover_tier,
            "pipeline_trace": {
                label: trace.to_dict()
                for label, trace in report.traces.items()
            },
            "engine": engine,
            "serve": serve,
            "rows": [
                {
                    "device": r.device,
                    "dataset": r.dataset,
                    "ref_ms": r.ref_ms,
                    "unopt_ms": r.unopt_ms,
                    "opt_ms": r.opt_ms,
                    "unopt_rel": r.unopt_rel,
                    "opt_rel": r.opt_rel,
                    "impact": r.impact,
                }
                for r in report.rows
            ],
        }
        print()

    shard_results = {}
    if args.devices > 1 or args.write_shard_baseline:
        from repro.shard import scaling_report

        devices = args.devices if args.devices > 1 else 2
        for name in names:
            if name not in SHARD_DATASETS:
                continue
            dataset = SHARD_DATASETS[name]
            t0 = time.perf_counter()
            rep = scaling_report(name, dataset, devices)
            rep["wall_s"] = time.perf_counter() - t0
            shard_results[name] = rep
            print(f"shard ({name} x{devices}): "
                  f"identical {rep['outputs_identical']}  "
                  f"halo {rep['halo_bytes']:,} bytes / "
                  f"{rep['halo_exchanges']} exchanges  "
                  f"efficiency {rep['efficiency']:.3f} "
                  f"(speedup {rep['speedup']:.2f}x over 1 device)")
            if not rep["outputs_identical"]:
                print(f"SHARD DIFFERENTIAL FAILED: {name} x{devices} "
                      f"output differs from the 1-device run",
                      file=sys.stderr)
                shard_failed.append(name)
            elif rep["halo_bytes"] <= 0:
                print(f"SHARD HALO CHECK FAILED: {name} x{devices} "
                      f"exchanged no cross-device bytes", file=sys.stderr)
                shard_failed.append(name)
            rec = shard_baseline.get(name)
            if rec is not None and devices == rec.get("devices"):
                # Deterministic simulation: 0.02 slack only absorbs
                # deliberate cost-model retuning, not lost overlap.
                if rep["efficiency"] < rec["efficiency"] - 0.02:
                    print(f"SHARD SCALING REGRESSION: {name} efficiency "
                          f"{rep['efficiency']:.3f} below baseline "
                          f"{rec['efficiency']:.3f}", file=sys.stderr)
                    shard_failed.append(name)

    if args.write_shard_baseline:
        SHARD_BASELINE.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            name: {
                "dataset": shard_results[name]["dataset"],
                "devices": shard_results[name]["devices"],
                "halo_bytes": shard_results[name]["halo_bytes"],
                "halo_exchanges": shard_results[name]["halo_exchanges"],
                "efficiency": round(shard_results[name]["efficiency"], 4),
            }
            for name in shard_results
        }
        SHARD_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {SHARD_BASELINE}")

    if args.write_footprint_baseline:
        FOOTPRINT_BASELINE.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            name: {
                "dataset": results[name]["footprint"]["dataset"],
                "opt_peak_bytes": results[name]["footprint"]["opt"]["peak_bytes"],
                "opt_naive_bytes": results[name]["footprint"]["opt"]["naive_bytes"],
                "unopt_peak_bytes": results[name]["footprint"]["unopt"]["peak_bytes"],
            }
            for name in results
        }
        FOOTPRINT_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {FOOTPRINT_BASELINE}")

    if args.write_traffic_baseline:
        TRAFFIC_BASELINE.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            name: {
                "dataset": results[name]["fusion"]["dry_dataset"],
                "opt_traffic_bytes": results[name]["fusion"]["fused_traffic"],
                "unfused_traffic_bytes": results[name]["fusion"]["unfused_traffic"],
            }
            for name in results
        }
        TRAFFIC_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {TRAFFIC_BASELINE}")

    if args.write_prover_baseline:
        PROVER_BASELINE.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            name: results[name]["prover_tier"] for name in results
        }
        PROVER_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {PROVER_BASELINE}")

    if args.write_native_baseline:
        NATIVE_BASELINE.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            name: {
                "dataset": results[name]["engine"]["dataset"],
                "native_hit_rate":
                    results[name]["engine"]["native"]["native_hit_rate"],
                "native_launches":
                    results[name]["engine"]["native"]["native_launches"],
                "native_speedup_over_vec":
                    results[name]["engine"]["native"]["native_speedup"],
            }
            for name in results
            if (results[name]["engine"] or {}).get("native") is not None
        }
        payload["_wins_over_vec"] = native_wins
        NATIVE_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {NATIVE_BASELINE}")

    if args.write_serve_baseline:
        SERVE_BASELINE.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            name: {
                "dataset": results[name]["serve"]["dataset"],
                "requests": results[name]["serve"]["requests"],
                "workers": results[name]["serve"]["workers"],
                "warm_cold_ratio": results[name]["serve"]["warm_cold_ratio"],
                "pool_hit_rate": results[name]["serve"]["pool_hit_rate"],
                "throughput_rps": results[name]["serve"]["throughput_rps"],
            }
            for name in results
            if results[name]["serve"] is not None
        }
        SERVE_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {SERVE_BASELINE}")

    if args.json:
        ts = time.strftime("%Y%m%d-%H%M%S")
        if args.out:
            out_path = Path(args.out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
        else:
            out_dir = Path("benchmarks") / "results"
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"BENCH_{ts}.json"
        payload = {
            "timestamp": ts,
            "quick": args.quick,
            "benchmarks": results,
        }
        if shard_results:
            payload["sharding"] = shard_results
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out_path}")

    if failed:
        print(f"VALIDATION FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    if tier_failed:
        print(f"EXECUTOR TIER CHECK FAILED: {', '.join(tier_failed)}",
              file=sys.stderr)
        return 1
    if footprint_failed:
        print(f"FOOTPRINT REGRESSION: {', '.join(footprint_failed)}",
              file=sys.stderr)
        return 1
    if fusion_failed:
        print(f"FUSION DIFFERENTIAL FAILED: {', '.join(fusion_failed)}",
              file=sys.stderr)
        return 1
    if traffic_failed:
        print(f"TRAFFIC REGRESSION: {', '.join(traffic_failed)}",
              file=sys.stderr)
        return 1
    if prover_failed:
        print(f"PROVER TIER REGRESSION: {', '.join(prover_failed)}",
              file=sys.stderr)
        return 1
    if serve_failed:
        print(f"SERVE REGRESSION: {', '.join(serve_failed)}",
              file=sys.stderr)
        return 1
    if native_failed:
        print(f"NATIVE TIER REGRESSION: {', '.join(sorted(set(native_failed)))}",
              file=sys.stderr)
        return 1
    if shard_failed:
        print(f"SHARD CHECK FAILED: {', '.join(sorted(set(shard_failed)))}",
              file=sys.stderr)
        return 1
    rec_wins = native_baseline.get("_wins_over_vec")
    if (rec_wins is not None and native_measured >= len(registry)
            and native_wins < min(rec_wins, 3)):
        print(f"NATIVE WALL-CLOCK REGRESSION: only {native_wins} of "
              f"{native_measured} benchmarks beat the vectorized tier "
              f"(baseline {rec_wins})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
