"""Command-line entry point: regenerate the paper's tables.

    python -m repro.bench                 # all seven tables (slow: dry-runs
                                          # at the paper's dataset sizes)
    python -m repro.bench nw hotspot      # a subset
    python -m repro.bench nw --quick      # scaled-down datasets (seconds)
    python -m repro.bench --list          # available benchmarks
"""

from __future__ import annotations

import argparse
import sys
import warnings

from repro.bench.harness import run_table
from repro.bench.programs import all_benchmarks

#: Scaled-down datasets for --quick runs (same code paths, small sizes).
QUICK_DATASETS = {
    "nw": {"q64": (64, 16)},
    "lud": {"q32": (32, 16)},
    "hotspot": {"512": (512, 5)},
    "lbm": {"short": (128, 10)},
    "optionpricing": {"medium": (1024, 64)},
    "locvolcalib": {"small": (8, 128, 32)},
    "nn": {"855280": (855280,)},
}


def main(argv=None) -> int:
    warnings.filterwarnings("ignore")
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument("benchmarks", nargs="*", help="subset to run")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down datasets")
    parser.add_argument("--list", action="store_true",
                        help="list available benchmarks")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip the real-data validation run")
    args = parser.parse_args(argv)

    registry = all_benchmarks()
    if args.list:
        for name in registry:
            print(name)
        return 0

    names = args.benchmarks or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    failed = []
    for name in names:
        module = registry[name]
        datasets = QUICK_DATASETS[name] if args.quick else None
        report = run_table(
            module,
            datasets=datasets,
            do_validate=not args.no_validate,
            loop_sample=4,
        )
        print(report.render())
        print(f"validated: {report.validated}  "
              f"short-circuits: {report.sc_committed}  "
              f"dead-copy reuses: {report.sc_reused_copies}")
        if report.sc_failures:
            rejected = ", ".join(
                f"{rule} x{count}"
                for rule, count in sorted(report.sc_failures.items())
            )
            print(f"sc candidates rejected: {rejected}")
        if report.validation_ran and not report.validated:
            failed.append(name)
        print()
    if failed:
        print(f"VALIDATION FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
