"""Benchmark programs, reference implementations and the table harness.

One module per paper benchmark under :mod:`repro.bench.programs`, each
exposing:

* ``build()``        -- the IR program (shape-polymorphic, written with the
  :class:`repro.ir.FunBuilder` to mirror the paper's pseudo-code);
* ``reference(...)`` -- a hand-written NumPy implementation playing the
  role of the Rodinia/Parboil/FinPar reference;
* ``datasets()``     -- the paper's dataset sizes plus scaled-down sizes
  used for correctness validation;
* ``ref_traffic(...)`` -- an analytic minimal-traffic model of the
  hand-written GPU reference kernel, feeding the cost model's "Ref."
  column.

:mod:`repro.bench.harness` compiles each program with and without
short-circuiting, validates both against the reference at small sizes,
dry-runs them at paper scale, and renders the paper's tables.
"""
