"""The evaluation harness: regenerate the paper's tables I-VII.

For each benchmark and dataset the harness:

1. compiles the IR program twice (with and without short-circuiting);
2. validates both pipelines element-wise against the NumPy reference at a
   scaled-down size (real executor mode);
3. dry-runs both at the paper's dataset size, collecting exact traffic /
   flop / launch counts;
4. converts the counts to simulated time on the A100 and MI100 device
   models, and models the hand-written reference kernel analytically
   (each benchmark module's ``ref_traffic``);
5. renders a paper-style table: Ref. ms, Unopt./Opt. Futhark as
   ref-relative speed (ref_time / futhark_time, the paper's convention
   where >1x means faster than the reference), and Opt. Impact
   (unopt_time / opt_time -- the paper's headline column, which in this
   reproduction depends only on exactly-counted traffic).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler import CompiledFun, compile_fun
from repro.gpu import A100, MI100, CostModel, Device
from repro.mem.exec import MemExecutor, RuntimeArray
from repro.mem.stats import ExecStats
from repro.reuse import estimate_peak

#: Scaled-down datasets for --quick runs (same code paths, small sizes).
QUICK_DATASETS = {
    "nw": {"q64": (64, 16)},
    "lud": {"q32": (32, 16)},
    "hotspot": {"512": (512, 5)},
    "lbm": {"short": (128, 10)},
    "optionpricing": {"medium": (1024, 64)},
    "locvolcalib": {"small": (8, 128, 32)},
    "nn": {"855280": (855280,)},
}

#: Real-mode datasets for the executor-tier wall-clock comparison and the
#: serving harness (``--json`` / ``python -m repro.serve``).  Sized so
#: the interpreted tier finishes in seconds while the vectorized engine's
#: speedup is well past amortization -- these are the numbers the perf
#: trajectory tracks across PRs.
PERF_DATASETS = {
    "nw": (16, 16),
    "lud": (8, 8),
    "hotspot": (24, 3),
    "lbm": (16, 4),
    "optionpricing": (128, 32),
    "locvolcalib": (4, 16, 4),
    "nn": (5000,),
}


@dataclass
class Row:
    """One table row on one device."""

    device: str
    dataset: str
    ref_ms: float
    unopt_rel: float  # ref_time / unopt_time  (paper's "Unopt. Futhark")
    opt_rel: float  # ref_time / opt_time    (paper's "Opt. Futhark")
    impact: float  # unopt_time / opt_time  (paper's "Opt. Impact")
    unopt_ms: float = 0.0
    opt_ms: float = 0.0


@dataclass
class BenchReport:
    """All rows of one paper table, plus compile/validation metadata."""

    name: str
    rows: List[Row] = field(default_factory=list)
    validated: bool = False
    #: False when validation was skipped (``do_validate=False``), so a
    #: False ``validated`` can be told apart from "never checked".
    validation_ran: bool = False
    sc_committed: int = 0
    sc_reused_copies: int = 0
    #: Per-rule tallies of abandoned short-circuit candidates, plus the
    #: structured (rule, location) records behind them.
    sc_failures: Dict[str, int] = field(default_factory=dict)
    sc_failure_records: List = field(default_factory=list)
    compile_seconds: Dict[str, float] = field(default_factory=dict)
    #: Pipeline label ("unopt" / "opt") -> the compilation's structured
    #: :class:`repro.pipeline.PipelineTrace` (per-pass timings, IR
    #: deltas, rejection diagnostics); rendered by ``--explain`` and
    #: serialized into the ``--json`` report.
    traces: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        head = (
            f"{'Dev':6s} {'Dataset':>10s} {'Ref.':>10s} "
            f"{'Unopt.':>8s} {'Opt.':>8s} {'Impact':>8s}"
        )
        lines = [f"== {self.name} ==", head, "-" * len(head)]
        for r in self.rows:
            lines.append(
                f"{r.device:6s} {r.dataset:>10s} {r.ref_ms:9.2f}ms "
                f"{r.unopt_rel:7.2f}x {r.opt_rel:7.2f}x {r.impact:7.2f}x"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def compile_both(module, fuse: bool = True) -> Tuple[CompiledFun, CompiledFun]:
    """(unopt, opt) pipelines for a benchmark module.

    ``fuse`` applies to *both* pipelines: the paper tables compare
    short-circuiting on otherwise identical programs, so the fusion
    ablation is measured separately (:func:`measure_fusion`), not folded
    into the unopt column.
    """
    fun = module.build()
    return (
        compile_fun(fun, short_circuit=False, fuse=fuse),
        compile_fun(fun, short_circuit=True, fuse=fuse),
    )


def materialize(ex: MemExecutor, val):
    if isinstance(val, RuntimeArray):
        return ex.mem[val.mem][val.ixfn.gather_offsets({})]
    return val


def validate(module, dataset: str = "small", compiled=None) -> bool:
    """Run both pipelines on real data; compare against the interpreter-
    independent NumPy reference via the module's ``check`` protocol."""
    unopt, opt = compiled if compiled is not None else compile_both(module)
    args = module.TEST_DATASETS[dataset]
    inp = module.inputs_for(*args)
    expected = _reference_of(module, args, inp)
    for c in (unopt, opt):
        ex = MemExecutor(c.fun)
        vals, _ = ex.run(
            **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}
        )
        got = [materialize(ex, v) for v in vals]
        for g, e in zip(got, expected):
            if not np.allclose(np.asarray(g, dtype=np.float64),
                               np.asarray(e, dtype=np.float64),
                               rtol=1e-3, atol=1e-3):
                return False
    return True


def measure_engine(module, args: Sequence, compiled=None) -> Dict[str, object]:
    """Wall-clock the two real-mode executor tiers on one dataset.

    Runs the optimized pipeline once under the interpreted executor
    (``vectorize=False``) and once under the vectorized engine, on
    identical inputs, and checks the tier-equivalence invariant along the
    way: bit-identical outputs and an identical :meth:`ExecStats.signature`.
    The returned dict feeds the ``--json`` perf trajectory.
    """
    _, opt = compiled if compiled is not None else compile_both(module)
    inp = module.inputs_for(*args)

    def fresh():
        return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}

    ex_i = MemExecutor(opt.fun, vectorize=False)
    t0 = time.perf_counter()
    vals_i, _ = ex_i.run(**fresh())
    interp_s = time.perf_counter() - t0

    ex_v = MemExecutor(opt.fun)
    t0 = time.perf_counter()
    vals_v, _ = ex_v.run(**fresh())
    vec_s = time.perf_counter() - t0

    outputs_equal = all(
        np.array_equal(
            np.asarray(materialize(ex_i, a)), np.asarray(materialize(ex_v, b))
        )
        for a, b in zip(vals_i, vals_v)
    )
    est = estimate_peak(opt.fun, inp)
    out = {
        "dataset": list(args),
        "interp_s": interp_s,
        "vec_s": vec_s,
        "speedup": interp_s / vec_s if vec_s > 0 else float("inf"),
        "vec_hit_rate": ex_v.stats.vec_hit_rate,
        "vec_launches": ex_v.stats.vec_launches,
        "interp_launches": ex_v.stats.interp_launches,
        "outputs_equal": outputs_equal,
        "stats_equal": ex_i.stats.signature() == ex_v.stats.signature(),
        # Peak allocation footprint: both real tiers' runtime high-water
        # marks and the static estimator must agree exactly.
        "peak_bytes_interp": ex_i.stats.peak_bytes,
        "peak_bytes_vec": ex_v.stats.peak_bytes,
        "peak_bytes_est": est.peak_bytes,
        "naive_bytes": est.naive_bytes,
        "footprint_equal": (
            ex_i.stats.peak_bytes
            == ex_v.stats.peak_bytes
            == est.peak_bytes
        ),
        "native": None,
    }

    from repro.backend import maybe_engine

    eng = maybe_engine(warn=False)
    if eng is not None:
        # First run pays C emission + cc; the reported wall clock is a
        # warm launch into the cached shared objects (the serving path).
        ex_w = MemExecutor(opt.fun, native=eng)
        ex_w.run(**fresh())
        ex_n = MemExecutor(opt.fun, native=eng)
        t0 = time.perf_counter()
        vals_n, _ = ex_n.run(**fresh())
        native_s = time.perf_counter() - t0
        native_outputs_equal = all(
            np.array_equal(
                np.asarray(materialize(ex_i, a)),
                np.asarray(materialize(ex_n, b)),
            )
            for a, b in zip(vals_i, vals_n)
        )
        out["native"] = {
            "native_s": native_s,
            "native_speedup": vec_s / native_s if native_s > 0 else float("inf"),
            "native_hit_rate": ex_n.stats.native_hit_rate,
            "native_launches": ex_n.stats.native_launches,
            "codegen_s": eng.codegen_seconds,
            "outputs_equal": native_outputs_equal,
            "stats_equal": ex_i.stats.signature() == ex_n.stats.signature(),
            "peak_bytes_native": ex_n.stats.peak_bytes,
            "footprint_equal": ex_n.stats.peak_bytes == est.peak_bytes,
        }
    return out


def measure_fusion(
    module,
    real_args: Sequence,
    dry_args: Optional[Sequence] = None,
    compiled: Optional[CompiledFun] = None,
) -> Dict[str, object]:
    """Fuse-on / fuse-off differential for one benchmark.

    Compiles the optimized pipeline twice (``fuse=True`` / ``fuse=False``),
    runs both on identical real data under *both* executor tiers and
    requires bit-identical outputs (fusion only changes where intermediate
    values live, never what is computed), then dry-runs both at
    ``dry_args`` to measure the traffic the pass eliminated.  The
    vectorized tier's interpreted-launch count must not increase: a fused
    body that silently falls back to the interpreted path would trade
    traffic for wall clock.
    """
    fused = (
        compiled
        if compiled is not None
        else compile_fun(module.build(), short_circuit=True, fuse=True)
    )
    unfused = compile_fun(module.build(), short_circuit=True, fuse=False)
    inp = module.inputs_for(*real_args)

    def fresh():
        return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in inp.items()}

    outs: Dict[Tuple[str, bool], List[np.ndarray]] = {}
    tier_stats: Dict[Tuple[str, bool], ExecStats] = {}
    for label, c in (("fused", fused), ("unfused", unfused)):
        for vec in (False, True):
            ex = MemExecutor(c.fun, vectorize=vec)
            vals, st = ex.run(**fresh())
            outs[(label, vec)] = [np.asarray(materialize(ex, v)) for v in vals]
            tier_stats[(label, vec)] = st
    outputs_equal = all(
        np.array_equal(a, b)
        for vec in (False, True)
        for a, b in zip(outs[("fused", vec)], outs[("unfused", vec)])
    )

    dargs = dry_args if dry_args is not None else real_args
    dinp = module.dry_inputs_for(*dargs)
    _, dry_f = MemExecutor(fused.fun, mode="dry").run(**dict(dinp))
    _, dry_u = MemExecutor(unfused.fun, mode="dry").run(**dict(dinp))

    committed = fused.fuse_stats.committed if fused.fuse_stats else 0
    interp_f = tier_stats[("fused", True)].interp_launches
    interp_u = tier_stats[("unfused", True)].interp_launches
    traffic_ok = (
        dry_f.bytes_total < dry_u.bytes_total
        if committed
        else dry_f.bytes_total == dry_u.bytes_total
    )
    return {
        "real_dataset": list(real_args),
        "dry_dataset": list(dargs),
        "committed": committed,
        "outputs_equal": outputs_equal,
        "fused_traffic": dry_f.bytes_total,
        "unfused_traffic": dry_u.bytes_total,
        "traffic_ok": traffic_ok,
        "fused_kernels": dry_f.fused_kernels,
        "bytes_elided": dry_f.bytes_elided_fusion,
        "interp_launches_fused": interp_f,
        "interp_launches_unfused": interp_u,
        "no_vec_fallback": interp_f <= interp_u,
        "ok": outputs_equal and traffic_ok and interp_f <= interp_u,
    }


def measure_footprint(module, args: Sequence, compiled=None) -> Dict[str, object]:
    """Static peak-footprint estimates for both pipelines on one dataset.

    Uses :func:`repro.reuse.footprint.estimate_peak` only (no execution);
    ``measure_engine`` separately checks the estimator against both real
    executor tiers' high-water marks.
    """
    unopt, opt = compiled if compiled is not None else compile_both(module)
    inp = module.inputs_for(*args)
    out: Dict[str, object] = {"dataset": list(args)}
    for label, c in (("unopt", unopt), ("opt", opt)):
        est = estimate_peak(c.fun, inp)
        out[label] = {
            "peak_bytes": est.peak_bytes,
            "naive_bytes": est.naive_bytes,
            "param_bytes": est.param_bytes,
            "alloc_bytes": est.alloc_bytes,
            "alloc_count": est.alloc_count,
            "saving": est.saving,
            "space_peaks": dict(est.space_peaks),
        }
    return out


def _reference_of(module, args, inp) -> List[np.ndarray]:
    """Invoke the module's NumPy reference with the right signature."""
    name = module.__name__.rsplit(".", 1)[-1]
    if name == "nw":
        return [module.reference(inp["A"], inp["n"])]
    if name == "lud":
        return [module.reference(inp["A"], inp["n"])]
    if name == "hotspot":
        return [module.reference(inp["T"], inp["P"], inp["iters"])]
    if name == "lbm":
        return [module.reference(inp["f"], inp["n"], inp["steps"])]
    if name == "locvolcalib":
        return [module.reference(*args)]
    if name == "optionpricing":
        call, put = module.reference(*args)
        return [np.float32(call), np.float32(put)]
    if name == "nn":
        v, i = module.reference(inp["lat"], inp["lng"], inp["qlat"], inp["qlng"])
        return [v, i]
    raise KeyError(name)


# ----------------------------------------------------------------------
def measure_dataset(
    module,
    args: Sequence,
    compiled: Tuple[CompiledFun, CompiledFun],
    loop_sample: Optional[int] = None,
) -> Tuple[ExecStats, ExecStats]:
    """Dry-run both pipelines at one dataset size; returns (unopt, opt).

    ``loop_sample`` enables the executor's in-kernel loop sampling for
    paper-scale datasets (exact for the uniform/linear per-thread loops of
    these benchmarks; see tests/mem/test_exec.py for the equality check).
    """
    unopt, opt = compiled
    inputs = module.dry_inputs_for(*args)
    _, st_un = MemExecutor(unopt.fun, mode="dry", loop_sample=loop_sample).run(
        **dict(inputs)
    )
    _, st_op = MemExecutor(opt.fun, mode="dry", loop_sample=loop_sample).run(
        **dict(inputs)
    )
    return st_un, st_op


def row_for(
    module,
    label: str,
    args: Sequence,
    device: Device,
    stats: Tuple[ExecStats, ExecStats],
) -> Row:
    st_un, st_op = stats
    cm = CostModel(device)
    t_un = cm.total_time(st_un)
    t_op = cm.total_time(st_op)
    rt = module.ref_traffic(*args)
    seq = rt[2] if len(rt) > 2 else 0
    # The hand-written kernel does the same computation with about as many
    # launches as the optimized code and no redundant copies.
    t_ref = cm.time_of_traffic(
        rt[0],
        rt[1],
        flops=st_op.flops,
        launches=st_op.launches,
        sequential_elems=seq,
    )
    return Row(
        device=device.name,
        dataset=label,
        ref_ms=t_ref * 1e3,
        unopt_rel=t_ref / t_un,
        opt_rel=t_ref / t_op,
        impact=t_un / t_op,
        unopt_ms=t_un * 1e3,
        opt_ms=t_op * 1e3,
    )


def run_table(
    module,
    datasets: Optional[Dict[str, Sequence]] = None,
    devices: Sequence[Device] = (A100, MI100),
    do_validate: bool = True,
    loop_sample: Optional[int] = None,
    compiled: Optional[Tuple[CompiledFun, CompiledFun]] = None,
) -> BenchReport:
    """Regenerate one paper table for a benchmark module."""
    name = module.__name__.rsplit(".", 1)[-1]
    report = BenchReport(name=name)
    if compiled is None:
        compiled = compile_both(module)
    report.sc_committed = compiled[1].sc_stats.committed
    report.sc_reused_copies = compiled[1].sc_stats.reused_copies
    report.sc_failures = dict(compiled[1].sc_stats.failures)
    report.sc_failure_records = list(compiled[1].sc_stats.failure_records)
    report.compile_seconds = {
        "unopt": compiled[0].compile_seconds,
        "opt": compiled[1].compile_seconds,
    }
    report.traces = {
        "unopt": compiled[0].trace,
        "opt": compiled[1].trace,
    }
    if do_validate:
        report.validated = validate(module, "small", compiled)
        report.validation_ran = True
    table = datasets if datasets is not None else module.PAPER_DATASETS
    for label, args in table.items():
        stats = measure_dataset(module, args, compiled, loop_sample=loop_sample)
        for device in devices:
            report.rows.append(row_for(module, label, args, device, stats))
    return report
