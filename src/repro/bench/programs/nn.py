"""NN (Rodinia) -- k-nearest neighbours of one query among n records.

A distances map followed by k rounds of (arg-)minimum extraction.  The
functional formulation must separate the reduction (reading the distances)
from the invalidation of the found minimum (writing the distances), and
the conservative race-free version copies the distances before the
in-place invalidation -- the paper's "loop with a reduction whose result
is used in an in-place update, resulting in a copy" (section VI-H).

Short-circuiting recognizes that the copied distances can live in the dead
source's memory block (the copy's source is lastly used), turning the
per-round O(n) copy into a no-op.  The reference model additionally
charges Rodinia's *sequential* reduction (one dependent latency per
element), which is why the paper's table VII shows Futhark 5x-200x faster
than the reference.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import FunBuilder, f32, i64
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.symbolic import SymExpr, Var

INF = 1e30
K_NEIGHBOURS = 5

n = Var("n")


def build(k: int = K_NEIGHBOURS) -> Fun:
    bld = FunBuilder("nn")
    bld.param("n", ScalarType("i64"))
    lat = bld.param("lat", f32(n))
    lng = bld.param("lng", f32(n))
    bld.param("qlat", ScalarType("f32"))
    bld.param("qlng", ScalarType("f32"))
    bld.assume_lower("n", 1)

    # Squared distances and the square root are written as a two-stage
    # producer/consumer pipeline, as Rodinia's separate kernels would be;
    # fusion inlines the producer so the compiled program is exactly the
    # classic one-kernel distances map (fuse=False pays the sq round trip).
    mp = bld.map_(n, index="i")
    i = mp.idx
    dx = mp.binop("-", mp.index(lat, [i]), "qlat")
    dy = mp.binop("-", mp.index(lng, [i]), "qlng")
    sqd = mp.binop("+", mp.binop("*", dx, dx), mp.binop("*", dy, dy))
    mp.returns(sqd)
    (sq,) = mp.end()

    mc = bld.map_(n, index="i2")
    dist = mc.unop("sqrt", mc.index(sq, [mc.idx]))
    mc.returns(dist)
    (dists,) = mc.end()

    res0 = bld.scratch("f32", [k])
    idx0 = bld.scratch("i64", [k])
    lp = bld.loop(
        count=k, carried=[("res", res0), ("rix", idx0), ("ds", dists)], index="j"
    )
    v, ix = lp.argmin(lp["ds"])
    res2 = lp.update_point(lp["res"], [lp.idx], v)
    rix2 = lp.update_point(lp["rix"], [lp.idx], ix)
    # Conservative race-free invalidation: copy, then write the found slot.
    dcopy = lp.copy(lp["ds"])
    inf = lp.lit(INF, "f32")
    d2 = lp.update_point(dcopy, [SymExpr.var(ix)], inf)
    lp.returns(res2, rix2, d2)
    res, rix, _ = lp.end()
    bld.returns(res, rix)
    return bld.build()


# ----------------------------------------------------------------------
def reference(
    lat: np.ndarray, lng: np.ndarray, qlat: float, qlng: float, k: int = K_NEIGHBOURS
) -> Tuple[np.ndarray, np.ndarray]:
    d = np.sqrt((lat - np.float32(qlat)) ** 2 + (lng - np.float32(qlng)) ** 2).astype(
        np.float32
    )
    vals = np.empty(k, dtype=np.float32)
    idxs = np.empty(k, dtype=np.int64)
    work = d.copy()
    for j in range(k):
        ix = int(np.argmin(work))
        vals[j] = work[ix]
        idxs[j] = ix
        work[ix] = np.float32(INF)
    return vals, idxs


def make_inputs(nv: int, seed: int = 0) -> Dict[str, object]:
    rng = np.random.RandomState(seed)
    return {
        "n": nv,
        "lat": (rng.rand(nv) * 90).astype(np.float32),
        "lng": (rng.rand(nv) * 180).astype(np.float32),
        "qlat": np.float32(45.0),
        "qlng": np.float32(90.0),
    }


def inputs_for(nv: int) -> Dict[str, object]:
    return make_inputs(nv)


def dry_inputs_for(nv: int) -> Dict[str, object]:
    return {"n": nv, "qlat": np.float32(45.0), "qlng": np.float32(90.0)}


#: Paper datasets (table VII): Rodinia's hurricane record counts.
PAPER_DATASETS: Dict[str, Tuple[int]] = {
    "855280": (855280,),
    "8552800": (8552800,),
    "85528000": (85528000,),
}

TEST_DATASETS: Dict[str, Tuple[int]] = {
    "tiny": (23,),
    "small": (200,),
}


def ref_traffic(nv: int, k: int = K_NEIGHBOURS) -> Tuple[int, int, int]:
    """(bytes_read, bytes_written, sequential_elems) of Rodinia's version:
    distances kernel + a *sequential host-side* k-min scan."""
    reads = 2 * nv * 4 + k * nv * 4
    writes = nv * 4
    return (reads, writes, nv)
