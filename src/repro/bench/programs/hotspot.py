"""Hotspot (Rodinia) -- repeated 5-point stencil with boundary decomposition.

The paper's fig. 10b: corners/edges are handled separately from the
interior because their neighbour sets differ, and the parts are assembled
with ``concat`` at the end of every time step.  Without short-circuiting
each part lives in its own block and is copied into the result; with it,
every part is constructed directly in the result's memory, giving the
paper's largest impacts (1.78x - 2.05x, table III).

Structure per time step (2-D ``[n][n]`` grids):

    top    = map (c < n)   { boundary cell (0, c) }           -- edge row
    middle = map (r < n-2) {
        left  = boundary cell (r+1, 0)
        sums  = map (c < n-2) { up+down+left+right }          -- producer
        inner = map (c < n-2) { update from sums[c] }         -- consumer
        right = boundary cell (r+1, n-1)
        in concat (replicate 1 left) inner (replicate 1 right)-- row chain
    }
    bottom = map (c < n)   { boundary cell (n-1, c) }
    next   = concat (reshape [1,n] top) middle (reshape [1,n] bottom)

so the optimization must chain: row parts -> per-thread row -> map result
-> the outer concat -> the step's result (paper fig. 6a transitive
chaining, resolved over fixpoint rounds).

Update rule (Rodinia's explicit Euler step with edge replication):

    T'[r,c] = T[r,c] + K*(up + down + left + right - 4*T[r,c]) + C*P[r,c]
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import FunBuilder, f32
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.symbolic import SymExpr, Var

K = 0.1
C = 0.05

n = Var("n")


def _cell(bb, T: str, P: str, r, c, up, down, left, right) -> str:
    """Emit the update formula for cell (r, c) with given neighbour indices."""
    t = bb.index(T, [r, c])
    u = bb.index(T, up)
    d = bb.index(T, down)
    l = bb.index(T, left)
    rr = bb.index(T, right)
    p = bb.index(P, [r, c])
    s1 = bb.binop("+", u, d)
    s2 = bb.binop("+", l, rr)
    s3 = bb.binop("+", s1, s2)
    t4 = bb.binop("*", t, 4.0)
    diff = bb.binop("-", s3, t4)
    kd = bb.binop("*", diff, K)
    cp = bb.binop("*", p, C)
    out = bb.binop("+", t, bb.binop("+", kd, cp))
    return out


def _edge_row(parent, T: str, P: str, r, is_top: bool) -> str:
    """A full boundary row (row 0 or n-1) as a width-n map."""
    mp = parent.map_(n, index="c")
    c = mp.idx
    up = [r, c] if is_top else [r - 1, c]
    down = [r + 1, c] if is_top else [r, c]

    # Left/right neighbours need clamping at the row ends.
    cond_l = mp.binop("==", c, 0)
    ih = mp.if_(cond_l)
    lv = ih.then_builder.index(T, [r, c])
    ih.then_builder.returns(lv)
    lv2 = ih.else_builder.index(T, [r, c - 1])
    ih.else_builder.returns(lv2)
    (left,) = ih.end()

    cond_r = mp.binop("==", c, n - 1)
    ih2 = mp.if_(cond_r)
    rv = ih2.then_builder.index(T, [r, c])
    ih2.then_builder.returns(rv)
    rv2 = ih2.else_builder.index(T, [r, c + 1])
    ih2.else_builder.returns(rv2)
    (right,) = ih2.end()

    t = mp.index(T, [r, c])
    u = mp.index(T, up)
    d = mp.index(T, down)
    p = mp.index(P, [r, c])
    s3 = mp.binop("+", mp.binop("+", u, d), mp.binop("+", left, right))
    diff = mp.binop("-", s3, mp.binop("*", t, 4.0))
    out = mp.binop("+", t, mp.binop("+", mp.binop("*", diff, K), mp.binop("*", p, C)))
    mp.returns(out)
    (row,) = mp.end()
    return row


def build(iters: int | None = None) -> Fun:
    """The hotspot IR program; ``iters`` as a parameter when None."""
    bld = FunBuilder("hotspot")
    bld.param("n", ScalarType("i64"))
    bld.param("iters", ScalarType("i64"))
    T0 = bld.param("T", f32(n, n))
    P = bld.param("P", f32(n, n))
    bld.assume_lower("n", 4)
    bld.assume_lower("iters", 1)

    lp = bld.loop(count=Var("iters"), carried=[("Tc", T0)], index="t")
    T = lp["Tc"]

    top = _edge_row(lp, T, P, SymExpr.const(0), is_top=True)
    bottom = _edge_row(lp, T, P, n - 1, is_top=False)

    # Interior neighbour sums, staged as the separate whole-grid kernel a
    # naive stencil compiler emits: a rank-2 [n-2][n-2] mapnest producer
    # feeding the update consumer below.  Mapnest fusion inlines the
    # producer at its single (r, c) read site and restores the classic
    # one-kernel interior; fuse=False materializes the full interior sum
    # grid in global memory and pays its write+read round trip per step.
    sums = lp.map_(n - 2, index="rs")
    rr2 = sums.idx + 1
    srow = sums.map_(n - 2, index="cs")
    cc = srow.idx + 1
    u = srow.index(T, [rr2 - 1, cc])
    d = srow.index(T, [rr2 + 1, cc])
    lf = srow.index(T, [rr2, cc - 1])
    rt = srow.index(T, [rr2, cc + 1])
    s3p = srow.binop("+", srow.binop("+", u, d), srow.binop("+", lf, rt))
    srow.returns(s3p)
    (sumrow,) = srow.end()
    sums.returns(sumrow)
    (nsum,) = sums.end()

    mid = lp.map_(n - 2, index="r")
    ri = mid.idx
    r = mid.idx + 1  # actual row
    # Left edge cell of the row.
    left_cell = _cell(
        mid, T, P, r, SymExpr.const(0),
        [r - 1, SymExpr.const(0)], [r + 1, SymExpr.const(0)],
        [r, SymExpr.const(0)], [r, SymExpr.const(1)],
    )
    inner = mid.map_(n - 2, index="c")
    ci = inner.idx
    c = inner.idx + 1
    t = inner.index(T, [r, c])
    p = inner.index(P, [r, c])
    s3 = inner.index(nsum, [ri, ci])
    t4 = inner.binop("*", t, 4.0)
    diff = inner.binop("-", s3, t4)
    kd = inner.binop("*", diff, K)
    cp = inner.binop("*", p, C)
    val = inner.binop("+", t, inner.binop("+", kd, cp))
    inner.returns(val)
    (inner_row,) = inner.end()
    # Right edge cell of the row.
    right_cell = _cell(
        mid, T, P, r, n - 1,
        [r - 1, n - 1], [r + 1, n - 1], [r, n - 2], [r, n - 1],
    )
    la = mid.replicate([1], left_cell)
    ra = mid.replicate([1], right_cell)
    row = mid.concat(la, inner_row, ra)
    mid.returns(row)
    (middle,) = mid.end()

    top1 = lp.reshape(top, [1, n])
    bot1 = lp.reshape(bottom, [1, n])
    nxt = lp.concat(top1, middle, bot1)
    lp.returns(nxt)
    (res,) = lp.end()
    bld.returns(res)
    return bld.build()


def build_rect() -> Fun:
    """One time step on a row slab with explicit halo rows (sharding).

    The slab is ``[h+2][n]``: rows ``1..h`` are the device's own grid
    rows, rows ``0`` and ``h+1`` are ghost rows the shard runner fills
    before every step (neighbour exchange, or edge replication at the
    global boundary).  Every interior cell then uses the *uniform*
    5-point formula -- with ghost rows equal to the clamped neighbours,
    this is bit-identical to :func:`build`'s boundary-decomposed step,
    because every cell variant there shares the same f32 expression
    tree ``t + (K*((u+d)+(l+r) - 4t) + C*p)``.  Ghost rows pass through
    unchanged (identity slices), so the output has the slab's shape and
    the runner can chain steps.
    """
    bld = FunBuilder("hotspot_rect")
    bld.param("h", ScalarType("i64"))
    bld.param("n", ScalarType("i64"))
    h = Var("h")
    T = bld.param("T", f32(h + 2, n))
    P = bld.param("P", f32(h + 2, n))
    bld.assume_lower("h", 1)
    bld.assume_lower("n", 4)

    mid = bld.map_(h, index="ri")
    r = mid.idx + 1  # slab row of the cell being updated
    row = mid.map_(n, index="c")
    c = row.idx

    cond_l = row.binop("==", c, 0)
    ih = row.if_(cond_l)
    lv = ih.then_builder.index(T, [r, c])
    ih.then_builder.returns(lv)
    lv2 = ih.else_builder.index(T, [r, c - 1])
    ih.else_builder.returns(lv2)
    (left,) = ih.end()

    cond_r = row.binop("==", c, n - 1)
    ih2 = row.if_(cond_r)
    rv = ih2.then_builder.index(T, [r, c])
    ih2.then_builder.returns(rv)
    rv2 = ih2.else_builder.index(T, [r, c + 1])
    ih2.else_builder.returns(rv2)
    (right,) = ih2.end()

    t = row.index(T, [r, c])
    u = row.index(T, [r - 1, c])
    d = row.index(T, [r + 1, c])
    p = row.index(P, [r, c])
    s3 = row.binop("+", row.binop("+", u, d), row.binop("+", left, right))
    diff = row.binop("-", s3, row.binop("*", t, 4.0))
    out = row.binop(
        "+", t, row.binop("+", row.binop("*", diff, K), row.binop("*", p, C))
    )
    row.returns(out)
    (rowv,) = row.end()
    mid.returns(rowv)
    (interior,) = mid.end()

    top = bld.slice(T, [(0, 1, 1), (0, n, 1)])
    bot = bld.slice(T, [(h + 1, 1, 1), (0, n, 1)])
    nxt = bld.concat(top, interior, bot)
    bld.returns(nxt)
    return bld.build()


# ----------------------------------------------------------------------
def reference(T: np.ndarray, P: np.ndarray, iters: int) -> np.ndarray:
    """Vectorized NumPy stencil with edge replication."""
    cur = T.astype(np.float32).copy()
    Pf = P.astype(np.float32)
    for _ in range(iters):
        pad = np.pad(cur, 1, mode="edge")
        up = pad[:-2, 1:-1]
        down = pad[2:, 1:-1]
        left = pad[1:-1, :-2]
        right = pad[1:-1, 2:]
        cur = cur + np.float32(K) * (up + down + left + right - 4 * cur) + np.float32(C) * Pf
    return cur


def make_inputs(nv: int, seed: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.RandomState(seed)
    return {
        "T": (300 + 10 * rng.rand(nv, nv)).astype(np.float32),
        "P": rng.rand(nv, nv).astype(np.float32),
    }


def inputs_for(nv: int, iters: int) -> Dict[str, object]:
    out: Dict[str, object] = {"n": nv, "iters": iters}
    out.update(make_inputs(nv))
    return out


def dry_inputs_for(nv: int, iters: int) -> Dict[str, int]:
    return {"n": nv, "iters": iters}


#: Paper datasets (table III): label -> (n, iterations).
PAPER_DATASETS: Dict[str, Tuple[int, int]] = {
    "8192": (8192, 10),
    "16384": (16384, 10),
    "32768": (32768, 10),
}

TEST_DATASETS: Dict[str, Tuple[int, int]] = {
    "tiny": (6, 2),
    "small": (16, 3),
}


def ref_traffic(nv: int, iters: int) -> Tuple[int, int]:
    """Hand-written stencil: read grid + power, write grid, per step
    (neighbour reads hit cache)."""
    cells = nv * nv
    return (2 * cells * 4 * iters, cells * 4 * iters)
