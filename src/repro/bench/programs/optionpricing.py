"""OptionPricing (FinPar) -- Monte-Carlo pricing with a Brownian-bridge-style
path construction.

Substitution note (DESIGN.md): FinPar's engine drives Sobol quasi-random
numbers through a Brownian bridge and prices multi-date contracts.  We keep
the memory structure -- per path, a *local* vector of quasi-random draws
and a *local* path vector built by a sequential recurrence, materialized
into a paths matrix -- and substitute a deterministic integer hash for
Sobol and an AR(1) recurrence for the bridge (same per-thread local-array
build, which is what the optimization touches).

Two kernels:

1. ``paths = map (p < npaths) { local draws -> local path -> path }`` --
   the per-thread path vector short-circuits into the paths matrix
   (mapnest implicit circuit point);
2. ``spots = map (p) { map (d) { S0 * exp(sigma * path) } }`` -- the
   spot grid, staged as its own batched rank-2 kernel feeding *two*
   pricing consumers;
3. ``payoffs = map (p < npaths) { reduce over dates }`` twice -- once
   for the call leg and once for the put leg (a put-call pair priced
   off the same spot grid) -- then sum reductions.  Mapnest fusion
   duplicates the cheap spot computation into both consumers (one
   ``FusedRecord`` each, ``duplicated=True`` on the second), so the
   full [npaths][ndates] spot matrix is never materialized; the
   pricing step itself is unaffected by short-circuiting, which
   dilutes that pass's impact to the paper's modest 1.03-1.21x
   (table V).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import FunBuilder, f32
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.symbolic import SymExpr, Var

AR = 0.9  # path recurrence coefficient
SC = 0.5  # draw scale
S0 = 100.0
SIGMA = 0.2
STRIKE = 100.0

npaths, ndates = Var("npaths"), Var("ndates")


def _draw(bb, p, d):
    """Deterministic pseudo-draw in [-0.5, 0.5): hash of (path, date)."""
    h = bb.scalar(p * 2654435761 + d * 40503 + 12345)
    hm = bb.binop("%", h, 65536)
    hf = bb.unop("f32", hm)
    return bb.binop("-", bb.binop("/", hf, 65536.0), 0.5)


def build() -> Fun:
    bld = FunBuilder("optionpricing")
    bld.param("npaths", ScalarType("i64"))
    bld.param("ndates", ScalarType("i64"))
    bld.assume_lower("npaths", 1)
    bld.assume_lower("ndates", 1)

    # Kernel 1: build all paths.
    mp = bld.map_(npaths, index="p")
    p = mp.idx
    path0 = mp.scratch("f32", [ndates])
    z0 = _draw(mp, p, SymExpr.const(0))
    path1 = mp.update_point(path0, [0], mp.binop("*", z0, SC))
    walk = mp.loop(count=ndates - 1, carried=[("pt", path1)], index="d")
    d = walk.idx
    prev = walk.index(walk["pt"], [d])
    z = _draw(walk, p, d + 1)
    nxt = walk.binop("+", walk.binop("*", prev, AR), walk.binop("*", z, SC))
    path2 = walk.update_point(walk["pt"], [d + 1], nxt)
    walk.returns(path2)
    (path,) = walk.end()
    mp.returns(path)
    (paths,) = mp.end()

    # Kernel 2: the spot grid, a batched rank-2 producer read by both
    # pricing legs below.  The body is cheap (one exp), so fusion
    # duplicates it into each consumer instead of materializing the
    # [npaths][ndates] matrix; fuse=False pays its write plus two reads.
    sp = bld.map_(npaths, index="sp")
    sr = sp.map_(ndates, index="sd")
    bval = sr.index(paths, [sp.idx, sr.idx])
    sv = sr.binop("*", S0, sr.unop("exp", sr.binop("*", bval, SIGMA)))
    sr.returns(sv)
    (sprow,) = sr.end()
    sp.returns(sprow)
    (spots,) = sp.end()

    # Kernel 3a: call leg (average of date payoffs per path).
    pm = bld.map_(npaths, index="p")
    pp = pm.idx
    acc0 = pm.lit(0.0, "f32")
    pl = pm.loop(count=ndates, carried=[("acc", acc0)], index="d")
    spot = pl.index(spots, [pp, pl.idx])
    pay = pl.binop("max", pl.binop("-", spot, STRIKE), 0.0)
    acc2 = pl.binop("+", pl["acc"], pay)
    pl.returns(acc2)
    (total,) = pl.end()
    avg = pm.binop("/", total, pm.unop("f32", pm.scalar(ndates)))
    pm.returns(avg)
    (payoffs,) = pm.end()

    # Kernel 3b: put leg off the same spot grid.
    qm = bld.map_(npaths, index="p2")
    qp = qm.idx
    qacc0 = qm.lit(0.0, "f32")
    ql = qm.loop(count=ndates, carried=[("qacc", qacc0)], index="d2")
    spot2 = ql.index(spots, [qp, ql.idx])
    qpay = ql.binop("max", ql.binop("-", STRIKE, spot2), 0.0)
    qacc2 = ql.binop("+", ql["qacc"], qpay)
    ql.returns(qacc2)
    (qtotal,) = ql.end()
    qavg = qm.binop("/", qtotal, qm.unop("f32", qm.scalar(ndates)))
    qm.returns(qavg)
    (put_payoffs,) = qm.end()

    price = bld.reduce("+", payoffs)
    put_price = bld.reduce("+", put_payoffs)
    bld.returns(price, put_price)
    return bld.build()


# ----------------------------------------------------------------------
def reference(npathsv: int, ndatesv: int) -> Tuple[float, float]:
    p = np.arange(npathsv, dtype=np.int64)[:, None]
    d = np.arange(ndatesv, dtype=np.int64)[None, :]
    h = (p * 2654435761 + d * 40503 + 12345) % 65536
    z = (h.astype(np.float32) / np.float32(65536.0)) - np.float32(0.5)
    paths = np.empty((npathsv, ndatesv), dtype=np.float32)
    paths[:, 0] = z[:, 0] * np.float32(SC)
    for k in range(1, ndatesv):
        paths[:, k] = paths[:, k - 1] * np.float32(AR) + z[:, k] * np.float32(SC)
    spot = np.float32(S0) * np.exp(paths * np.float32(SIGMA))
    call = np.maximum(spot - np.float32(STRIKE), 0).astype(np.float32)
    put = np.maximum(np.float32(STRIKE) - spot, 0).astype(np.float32)
    return (
        float(call.mean(axis=1, dtype=np.float32).sum(dtype=np.float32)),
        float(put.mean(axis=1, dtype=np.float32).sum(dtype=np.float32)),
    )


def inputs_for(npathsv: int, ndatesv: int) -> Dict[str, object]:
    return {"npaths": npathsv, "ndates": ndatesv}


dry_inputs_for = inputs_for

#: Paper datasets (table V): FinPar's medium and large contracts.
PAPER_DATASETS: Dict[str, Tuple[int, int]] = {
    "medium": (32768, 256),
    "large": (262144, 128),
}

TEST_DATASETS: Dict[str, Tuple[int, int]] = {
    "tiny": (4, 5),
    "small": (16, 8),
}


def ref_traffic(npathsv: int, ndatesv: int) -> Tuple[int, int]:
    """Hand-written engine keeps paths in registers and prices both
    legs in one pass: write paths once, read once for pricing."""
    elems = npathsv * ndatesv * 4
    return (elems, elems)
