"""LUD (Rodinia) -- blocked LU decomposition (paper section VI-C, fig. 10a).

The matrix (flat, ``n = q*b``) is processed along the block diagonal; at
step ``k`` four phases run, each a mapnest whose result updates a region of
the matrix through a generalized LMAD slice:

1. **diagonal** (green): in-block LU of block (k,k), one thread;
2. **row strip** (one perimeter colour): forward-substitution of blocks
   (k, j) for j > k against the diagonal's L factor;
3. **column strip** (the other perimeter colour): back-substitution of
   blocks (i, k) against the diagonal's U factor;
4. **interior** (red): rank-b update ``A[i,j] -= L[i,k] @ U[k,j]`` over the
   (q-1-k)^2 remaining blocks, as a nested map (a 2-D kernel).

Every phase's ``let A[W] = X`` is a circuit point; phases read regions the
previous phases just wrote, so legality rests on the non-overlap proofs
between block regions (strips vs. interior etc.).  The paper reports the
yellow/red phases short-circuit while green/blue do not (for Futhark-
specific layout reasons); the corresponding shape here is that the wide
phases carry the traffic that matters.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import FunBuilder, f32
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.lmad import lmad
from repro.symbolic import Var

n, q, b = Var("n"), Var("q"), Var("b")


def _load_block(bb, A: str, row0, col0, name=None) -> str:
    """Copy a b x b block of the flat matrix into a local scratch array."""
    blk = bb.scratch("f32", [b, b], name=name)
    lr = bb.loop(count=b, carried=[("lb_r", blk)], index="r")
    lc = lr.loop(count=b, carried=[("lb_c", lr["lb_r"])], index="c")
    v = lc.index(A, [(row0 + lr.idx) * n + col0 + lc.idx])
    blk2 = lc.update_point(lc["lb_c"], [lr.idx, lc.idx], v)
    lc.returns(blk2)
    (blk3,) = lc.end()
    lr.returns(blk3)
    (blk4,) = lr.end()
    return blk4


def build() -> Fun:
    bld = FunBuilder("lud")
    bld.param("q", ScalarType("i64"))
    bld.param("b", ScalarType("i64"))
    bld.param("n", ScalarType("i64"))
    A0 = bld.param("A", f32(n * n))
    bld.define("n", q * b)
    bld.assume_lower("q", 2)
    bld.assume_lower("b", 2)

    lp = bld.loop(count=q, carried=[("Ak", A0)], index="k")
    k = lp.idx
    Ak = lp["Ak"]
    cnt = q - 1 - k
    diag0 = k * b * n + k * b  # flat offset of block (k,k)

    # ---- phase 1: in-block LU of the diagonal block -------------------
    p1 = lp.map_(1, index="z")
    blk = _load_block(p1, Ak, k * b, k * b)
    lu_c = p1.loop(count=b - 1, carried=[("lu", blk)], index="c")
    c = lu_c.idx
    piv = lu_c.index(lu_c["lu"], [c, c])
    lu_r = lu_c.loop(count=b - 1 - c, carried=[("lur", lu_c["lu"])], index="rr")
    r = lu_r.idx + c + 1
    lval = lu_r.binop("/", lu_r.index(lu_r["lur"], [r, c]), piv)
    s1 = lu_r.update_point(lu_r["lur"], [r, c], lval)
    el = lu_r.loop(count=b - 1 - c, carried=[("le", s1)], index="cc")
    c2 = el.idx + c + 1
    upd = el.binop(
        "-",
        el.index(el["le"], [r, c2]),
        el.binop("*", lval, el.index(el["le"], [c, c2])),
    )
    s2 = el.update_point(el["le"], [r, c2], upd)
    el.returns(s2)
    (s3,) = el.end()
    lu_r.returns(s3)
    (s4,) = lu_r.end()
    lu_c.returns(s4)
    (lu_done,) = lu_c.end()
    p1.returns(lu_done)
    (Xdiag,) = p1.end()
    Wdiag = lmad(diag0, [(1, 1), (b, n), (b, 1)])
    A1 = lp.update_lmad(Ak, Wdiag, Xdiag)

    # ---- phase 2: row strip (k, j) for j > k ---------------------------
    p2 = lp.map_(cnt, index="j")
    j = p2.idx
    col0 = (k + 1 + j) * b
    out0 = p2.scratch("f32", [b, b])
    oc = p2.loop(count=b, carried=[("rs_c", out0)], index="c")
    orow = oc.loop(count=b, carried=[("rs_r", oc["rs_c"])], index="r")
    r = orow.idx
    a0 = orow.index(Ak if False else A1, [(k * b + r) * n + col0 + oc.idx])
    acc = orow.loop(count=r, carried=[("acc", a0)], index="t")
    lv = acc.index(A1, [(k * b + r) * n + k * b + acc.idx])
    xv = acc.index(acc["rs_r"] if False else orow["rs_r"], [acc.idx, oc.idx])
    acc2 = acc.binop("-", acc["acc"], acc.binop("*", lv, xv))
    acc.returns(acc2)
    (sfin,) = acc.end()
    o2 = orow.update_point(orow["rs_r"], [r, oc.idx], sfin)
    orow.returns(o2)
    (o3,) = orow.end()
    oc.returns(o3)
    (o4,) = oc.end()
    p2.returns(o4)
    (Xrow,) = p2.end()
    Wrow = lmad(k * b * n + (k + 1) * b, [(cnt, b), (b, n), (b, 1)])
    A2 = lp.update_lmad(A1, Wrow, Xrow)

    # ---- phase 3: column strip (i, k) for i > k ------------------------
    p3 = lp.map_(cnt, index="i2")
    i2 = p3.idx
    row0 = (k + 1 + i2) * b
    cs0 = p3.scratch("f32", [b, b])
    pr = p3.loop(count=b, carried=[("cs_r", cs0)], index="r")
    pc = pr.loop(count=b, carried=[("cs_c", pr["cs_r"])], index="c")
    c = pc.idx
    a0 = pc.index(A2, [(row0 + pr.idx) * n + k * b + c])
    acc = pc.loop(count=c, carried=[("acc2", a0)], index="t")
    xv = acc.index(pc["cs_c"], [pr.idx, acc.idx])
    uv = acc.index(A2, [(k * b + acc.idx) * n + k * b + c])
    acc2 = acc.binop("-", acc["acc2"], acc.binop("*", xv, uv))
    acc.returns(acc2)
    (sfin,) = acc.end()
    udiag = pc.index(A2, [(k * b + c) * n + k * b + c])
    final = pc.binop("/", sfin, udiag)
    c2_ = pc.update_point(pc["cs_c"], [pr.idx, c], final)
    pc.returns(c2_)
    (c3,) = pc.end()
    pr.returns(c3)
    (c4,) = pr.end()
    p3.returns(c4)
    (Xcol,) = p3.end()
    Wcol = lmad((k + 1) * b * n + k * b, [(cnt, b * n), (b, n), (b, 1)])
    A3 = lp.update_lmad(A2, Wcol, Xcol)

    # ---- phase 4: interior rank-b update (nested 2-D map) -------------
    # The dot products ``L[i,k] @ U[k,j]``, staged as the separate
    # GEMM-like kernel a library call would be: a rank-4 [cnt][cnt][b][b]
    # mapnest producer whose innermost value is a scalar accumulation
    # loop over the two panel strips.  Mapnest fusion inlines it at its
    # single read site in the update kernel below -- legal only because
    # the per-read *footprint* proof narrows the producer's reads to the
    # row/column panel regions, which are disjoint from the interior
    # region the fused kernel writes (whole-array reasoning would see
    # A's block and give up).  fuse=False materializes all
    # (q-1-k)^2 * b^2 dot products and pays their write+read round trip
    # every step.
    dt = lp.map_(cnt, index="di")
    dro = (k + 1 + dt.idx) * b
    dtj = dt.map_(cnt, index="dj")
    dco = (k + 1 + dtj.idx) * b
    dtr = dtj.map_(b, index="dr")
    dtc = dtr.map_(b, index="dc")
    dz = dtc.lit(0.0, "f32")
    dacc = dtc.loop(count=b, carried=[("dsum", dz)], index="dt")
    dlv = dacc.index(A3, [(dro + dtr.idx) * n + k * b + dacc.idx])
    duv = dacc.index(A3, [(k * b + dacc.idx) * n + dco + dtc.idx])
    dacc2 = dacc.binop("+", dacc["dsum"], dacc.binop("*", dlv, duv))
    dacc.returns(dacc2)
    (dsum,) = dacc.end()
    dtc.returns(dsum)
    (dcrow,) = dtc.end()
    dtr.returns(dcrow)
    (dblk,) = dtr.end()
    dtj.returns(dblk)
    (dbrow,) = dtj.end()
    dt.returns(dbrow)
    (dots,) = dt.end()

    p4o = lp.map_(cnt, index="bi")
    bi = p4o.idx
    p4i = p4o.map_(cnt, index="bj")
    bj = p4i.idx
    r0 = (k + 1 + bi) * b
    c0 = (k + 1 + bj) * b
    int0 = p4i.scratch("f32", [b, b])
    ir = p4i.loop(count=b, carried=[("in_r", int0)], index="r")
    ic = ir.loop(count=b, carried=[("in_c", ir["in_r"])], index="c")
    a0 = ic.index(A3, [(r0 + ir.idx) * n + c0 + ic.idx])
    dv = ic.index(dots, [bi, bj, ir.idx, ic.idx])
    sfin = ic.binop("-", a0, dv)
    i2_ = ic.update_point(ic["in_c"], [ir.idx, ic.idx], sfin)
    ic.returns(i2_)
    (i3,) = ic.end()
    ir.returns(i3)
    (i4,) = ir.end()
    p4i.returns(i4)
    (inner_row,) = p4i.end()
    p4o.returns(inner_row)
    (Xint,) = p4o.end()
    Wint = lmad(
        (k + 1) * b * (n + 1), [(cnt, b * n), (cnt, b), (b, n), (b, 1)]
    )
    A4 = lp.update_lmad(A3, Wint, Xint)

    lp.returns(A4)
    (res,) = lp.end()
    bld.returns(res)
    return bld.build()


# ----------------------------------------------------------------------
def reference(A: np.ndarray, nv: int) -> np.ndarray:
    """In-place LU without pivoting (Doolittle), vectorized."""
    F = A.reshape(nv, nv).astype(np.float32).copy()
    for kk in range(nv - 1):
        F[kk + 1 :, kk] = (F[kk + 1 :, kk] / F[kk, kk]).astype(np.float32)
        F[kk + 1 :, kk + 1 :] -= np.outer(F[kk + 1 :, kk], F[kk, kk + 1 :]).astype(
            np.float32
        )
    return F.reshape(-1)


def make_input(nv: int, seed: int = 0) -> np.ndarray:
    """Diagonally dominant matrix (pivoting-free LU is stable on it)."""
    rng = np.random.RandomState(seed)
    A = rng.rand(nv, nv).astype(np.float32)
    A += np.eye(nv, dtype=np.float32) * nv
    return A.reshape(-1)


def inputs_for(qv: int, bv: int) -> Dict[str, object]:
    nv = qv * bv
    return {"q": qv, "b": bv, "n": nv, "A": make_input(nv)}


def dry_inputs_for(qv: int, bv: int) -> Dict[str, int]:
    return {"q": qv, "b": bv, "n": qv * bv}


#: Paper datasets (table II): label -> (q, b), n = q*b.
PAPER_DATASETS: Dict[str, Tuple[int, int]] = {
    "8192": (512, 16),
    "16384": (1024, 16),
    "32768": (2048, 16),
}

TEST_DATASETS: Dict[str, Tuple[int, int]] = {
    "tiny": (2, 3),
    "small": (3, 4),
}


def ref_traffic(qv: int, bv: int) -> Tuple[int, int]:
    """Rodinia LUD with block tiling: ~2 reads + 1 write per interior
    element per step k, summed over steps."""
    nv = qv * bv
    total = 0
    for kk in range(qv):
        rem = (qv - 1 - kk) * bv
        total += (rem + bv) ** 2
    return (2 * total * 4, total * 4)
