"""LBM -- Lattice-Boltzmann Method (Parboil) as a D2Q9 simulation.

Substitution note (DESIGN.md): Parboil's LBM is a 3-D D3Q19 solver over a
120x120x150 channel; we build the 2-D D2Q9 equivalent on an ``n x n``
periodic grid.  The code path the paper's optimization touches is
identical: a time-step loop around a mapnest whose per-thread result (the
9 distribution values of one cell) is built incrementally in a *local
array* through sequential loops -- the fig. 6b pattern.  Short-circuiting
re-homes that per-thread array (its whole scratch/update/loop chain) into
the result grid's memory, eliminating the per-cell private-array round
trip ("This has high impact on the LBM ... benchmarks", paper V-A-e).

State layout: ``f : [n*n][9]f32`` (cell-major, distributions contiguous).
Per step and cell: *stream* (gather each direction's distribution from the
upwind neighbour, periodic wrap) then *collide* (BGK relaxation towards
the D2Q9 equilibrium).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import FunBuilder, f32, i64
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.symbolic import SymExpr, Var

OMEGA = 1.2

#: D2Q9 direction vectors and weights.
DIRS = np.array(
    [[0, 0], [1, 0], [-1, 0], [0, 1], [0, -1], [1, 1], [-1, -1], [1, -1], [-1, 1]],
    dtype=np.int64,
)
WEIGHTS = np.array(
    [4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 36, 1 / 36, 1 / 36, 1 / 36],
    dtype=np.float32,
)

n = Var("n")


def build() -> Fun:
    bld = FunBuilder("lbm")
    bld.param("n", ScalarType("i64"))
    bld.param("steps", ScalarType("i64"))
    f0 = bld.param("f", f32(n * n, 9))
    dirs = bld.param("dirs", i64(9, 2))
    w = bld.param("w", f32(9))
    bld.assume_lower("n", 2)
    bld.assume_lower("steps", 1)

    lp = bld.loop(count=Var("steps"), carried=[("fc", f0)], index="t")
    fcur = lp["fc"]

    # --- stream, staged as Parboil's separate kernel: gather every
    # (cell, direction) upwind distribution into a streamed grid copy,
    # shaped as the rank-2 mapnest it really is ([n*n][9], cell rows).
    # Mapnest fusion inlines the gather at its single read site inside
    # the per-cell kernel below, restoring the classic one-kernel
    # stream+collide step (the row/column decomposition it recomputes
    # per read is arithmetic, not traffic); fuse=False materializes the
    # full [n*n][9] streamed grid and pays its write+read round trip
    # every time step.
    st = lp.map_(n * n, index="cl")
    cell2 = st.idx
    r2 = st.binop("//", cell2, SymExpr.var("n"))
    c2 = st.binop("%", cell2, SymExpr.var("n"))
    sd = st.map_(9, index="sdir")
    d2 = sd.idx
    dr = sd.index(dirs, [d2, 0])
    dc = sd.index(dirs, [d2, 1])
    # (r - dr + n) % n, (c - dc + n) % n  -- periodic upwind neighbour
    rsub = sd.binop("-", SymExpr.var(r2), dr)
    radd = sd.binop("+", rsub, SymExpr.var("n"))
    rn = sd.binop("%", radd, SymExpr.var("n"))
    csub = sd.binop("-", SymExpr.var(c2), dc)
    cadd = sd.binop("+", csub, SymExpr.var("n"))
    cn = sd.binop("%", cadd, SymExpr.var("n"))
    src = sd.binop("*", rn, SymExpr.var("n"))
    srcc = sd.binop("+", src, cn)
    sv = sd.index(fcur, [SymExpr.var(srcc), d2])
    sd.returns(sv)
    (srow,) = sd.end()
    st.returns(srow)
    (fstr,) = st.end()

    mp = lp.map_(n * n, index="cell")
    cell = mp.idx

    # --- pull the 9 streamed distributions into a local array ---
    fin0 = mp.scratch("f32", [9])
    s1 = mp.loop(count=9, carried=[("fin", fin0)], index="d")
    d = s1.idx
    v = s1.index(fstr, [cell, d])
    fin1 = s1.update_point(s1["fin"], [d], v)
    s1.returns(fin1)
    (fin,) = s1.end()

    # --- moments: density and momentum ---
    zero = mp.lit(0.0, "f32")
    m1 = mp.loop(count=9, carried=[("rho", zero), ("mx", zero), ("my", zero)], index="d")
    d = m1.idx
    fv = m1.index(fin, [d])
    drf = m1.unop("f32", m1.index(dirs, [d, 0]))
    dcf = m1.unop("f32", m1.index(dirs, [d, 1]))
    rho2 = m1.binop("+", m1["rho"], fv)
    mx2 = m1.binop("+", m1["mx"], m1.binop("*", drf, fv))
    my2 = m1.binop("+", m1["my"], m1.binop("*", dcf, fv))
    m1.returns(rho2, mx2, my2)
    rho, mx, my = m1.end()

    ux = mp.binop("/", mx, rho)
    uy = mp.binop("/", my, rho)
    usq = mp.binop("+", mp.binop("*", ux, ux), mp.binop("*", uy, uy))

    # --- collide: BGK relaxation towards equilibrium, in place ---
    c1 = mp.loop(count=9, carried=[("fout", fin)], index="d")
    d = c1.idx
    fv = c1.index(c1["fout"], [d])
    wv = c1.index(w, [d])
    drf = c1.unop("f32", c1.index(dirs, [d, 0]))
    dcf = c1.unop("f32", c1.index(dirs, [d, 1]))
    cu = c1.binop("+", c1.binop("*", drf, ux), c1.binop("*", dcf, uy))
    cu3 = c1.binop("*", cu, 3.0)
    cu45 = c1.binop("*", c1.binop("*", cu, cu), 4.5)
    us15 = c1.binop("*", usq, 1.5)
    inner = c1.binop("-", c1.binop("+", c1.binop("+", 1.0, cu3), cu45), us15)
    feq = c1.binop("*", c1.binop("*", wv, rho), inner)
    delta = c1.binop("*", c1.binop("-", feq, fv), OMEGA)
    nv = c1.binop("+", fv, delta)
    fo2 = c1.update_point(c1["fout"], [d], nv)
    c1.returns(fo2)
    (fout,) = c1.end()

    mp.returns(fout)
    (fnew,) = mp.end()
    lp.returns(fnew)
    (res,) = lp.end()
    bld.returns(res)
    return bld.build()


def build_rect() -> Fun:
    """One LBM step on a row slab with explicit halo rows (sharding).

    The slab is ``[(h+2)*n][9]`` cell-major: the first and last ``n``
    cells are ghost rows the shard runner fills before every step with
    the periodic neighbours (from the adjacent device, or wrapping
    within the device when there is only one).  The stream gather then
    reads ``row - dr`` *without* the row modulo -- ghosts supply the
    wrap -- while the column wrap stays local.  Streamed values are
    exact copies, so with ghosts equal to the periodic neighbours the
    collide arithmetic is bit-identical to :func:`build`'s.  Ghost cells
    pass through unchanged.
    """
    bld = FunBuilder("lbm_rect")
    bld.param("h", ScalarType("i64"))
    bld.param("n", ScalarType("i64"))
    h = Var("h")
    f0 = bld.param("f", f32((h + 2) * n, 9))
    dirs = bld.param("dirs", i64(9, 2))
    w = bld.param("w", f32(9))
    bld.assume_lower("h", 1)
    bld.assume_lower("n", 2)

    # Stream for the h*n interior cells (slab rows 1..h).
    st = bld.map_(h * n, index="cl")
    cell2 = st.idx
    r2 = st.binop("//", cell2, SymExpr.var("n"))
    c2 = st.binop("%", cell2, SymExpr.var("n"))
    sd = st.map_(9, index="sdir")
    d2 = sd.idx
    dr = sd.index(dirs, [d2, 0])
    dc = sd.index(dirs, [d2, 1])
    # slab row (r2 + 1) - dr: in [0, h+1], no wrap needed.
    rn = sd.binop("-", SymExpr.var(r2) + 1, dr)
    csub = sd.binop("-", SymExpr.var(c2), dc)
    cadd = sd.binop("+", csub, SymExpr.var("n"))
    cn = sd.binop("%", cadd, SymExpr.var("n"))
    src = sd.binop("*", rn, SymExpr.var("n"))
    srcc = sd.binop("+", src, cn)
    sv = sd.index(f0, [SymExpr.var(srcc), d2])
    sd.returns(sv)
    (srow,) = sd.end()
    st.returns(srow)
    (fstr,) = st.end()

    mp = bld.map_(h * n, index="cell")
    cell = mp.idx

    fin0 = mp.scratch("f32", [9])
    s1 = mp.loop(count=9, carried=[("fin", fin0)], index="d")
    d = s1.idx
    v = s1.index(fstr, [cell, d])
    fin1 = s1.update_point(s1["fin"], [d], v)
    s1.returns(fin1)
    (fin,) = s1.end()

    zero = mp.lit(0.0, "f32")
    m1 = mp.loop(
        count=9, carried=[("rho", zero), ("mx", zero), ("my", zero)], index="d"
    )
    d = m1.idx
    fv = m1.index(fin, [d])
    drf = m1.unop("f32", m1.index(dirs, [d, 0]))
    dcf = m1.unop("f32", m1.index(dirs, [d, 1]))
    rho2 = m1.binop("+", m1["rho"], fv)
    mx2 = m1.binop("+", m1["mx"], m1.binop("*", drf, fv))
    my2 = m1.binop("+", m1["my"], m1.binop("*", dcf, fv))
    m1.returns(rho2, mx2, my2)
    rho, mx, my = m1.end()

    ux = mp.binop("/", mx, rho)
    uy = mp.binop("/", my, rho)
    usq = mp.binop("+", mp.binop("*", ux, ux), mp.binop("*", uy, uy))

    c1 = mp.loop(count=9, carried=[("fout", fin)], index="d")
    d = c1.idx
    fv = c1.index(c1["fout"], [d])
    wv = c1.index(w, [d])
    drf = c1.unop("f32", c1.index(dirs, [d, 0]))
    dcf = c1.unop("f32", c1.index(dirs, [d, 1]))
    cu = c1.binop("+", c1.binop("*", drf, ux), c1.binop("*", dcf, uy))
    cu3 = c1.binop("*", cu, 3.0)
    cu45 = c1.binop("*", c1.binop("*", cu, cu), 4.5)
    us15 = c1.binop("*", usq, 1.5)
    inner = c1.binop("-", c1.binop("+", c1.binop("+", 1.0, cu3), cu45), us15)
    feq = c1.binop("*", c1.binop("*", wv, rho), inner)
    delta = c1.binop("*", c1.binop("-", feq, fv), OMEGA)
    nv = c1.binop("+", fv, delta)
    fo2 = c1.update_point(c1["fout"], [d], nv)
    c1.returns(fo2)
    (fout,) = c1.end()

    mp.returns(fout)
    (fnew,) = mp.end()

    top = bld.slice(f0, [(0, n, 1), (0, 9, 1)])
    bot = bld.slice(f0, [((h + 1) * n, n, 1), (0, 9, 1)])
    nxt = bld.concat(top, fnew, bot)
    bld.returns(nxt)
    return bld.build()


# ----------------------------------------------------------------------
def reference(f: np.ndarray, nv: int, steps: int) -> np.ndarray:
    """Vectorized NumPy D2Q9 with periodic boundaries."""
    cur = f.reshape(nv, nv, 9).astype(np.float32).copy()
    w = WEIGHTS
    for _ in range(steps):
        fin = np.empty_like(cur)
        for d in range(9):
            dr, dc = DIRS[d]
            fin[..., d] = np.roll(cur[..., d], shift=(dr, dc), axis=(0, 1))
        rho = fin.sum(axis=2)
        mx = (fin * DIRS[:, 0].astype(np.float32)).sum(axis=2)
        my = (fin * DIRS[:, 1].astype(np.float32)).sum(axis=2)
        ux, uy = mx / rho, my / rho
        usq = ux * ux + uy * uy
        out = np.empty_like(fin)
        for d in range(9):
            cu = DIRS[d, 0] * ux + DIRS[d, 1] * uy
            feq = w[d] * rho * (1 + 3 * cu + 4.5 * cu * cu - 1.5 * usq)
            out[..., d] = fin[..., d] + np.float32(OMEGA) * (feq - fin[..., d])
        cur = out.astype(np.float32)
    return cur.reshape(nv * nv, 9)


def make_f0(nv: int, seed: int = 0) -> np.ndarray:
    rng = np.random.RandomState(seed)
    rho = (1.0 + 0.01 * rng.rand(nv * nv, 1)).astype(np.float32)
    return (WEIGHTS[None, :] * rho).astype(np.float32)


def inputs_for(nv: int, steps: int) -> Dict[str, object]:
    return {
        "n": nv,
        "steps": steps,
        "f": make_f0(nv),
        "dirs": DIRS.copy(),
        "w": WEIGHTS.copy(),
    }


def dry_inputs_for(nv: int, steps: int) -> Dict[str, int]:
    return {"n": nv, "steps": steps}


#: Paper datasets (table IV): Parboil's short (100 steps) and long (3000
#: steps) runs; grid scaled so cell count ~ 120*120*150.
PAPER_DATASETS: Dict[str, Tuple[int, int]] = {
    "short": (1470, 100),
    "long": (1470, 3000),
}

TEST_DATASETS: Dict[str, Tuple[int, int]] = {
    "tiny": (4, 2),
    "small": (8, 3),
}


def ref_traffic(nv: int, steps: int) -> Tuple[int, int]:
    """Hand-written LBM: read 9 + write 9 f32 per cell per step."""
    per_step = nv * nv * 9 * 4
    return (per_step * steps, per_step * steps)
