"""LocVolCalib (FinPar) -- local-volatility calibration kernels.

Substitution note (DESIGN.md): FinPar's LocVolCalib runs, per outer
instance, ``numT`` time steps each consisting of directional implicit
sweeps (tridiagonal solves) over a 2-D price grid with transposition
between directions.  We build the 1-D equivalent: per instance a ``numX``
price vector, per time step one Thomas-algorithm tridiagonal solve whose
sweep direction alternates (the result is *reversed* between steps, a
change-of-layout view standing in for FinPar's between-sweep transposes).

The memory behaviour the paper exploits is preserved:

* per-step scratch arrays (rhs ``d``, sweep coefficients ``cp``/``dp``)
  are per-thread expanded allocations;
* the step result is a reversed **view**, so the step's value is not in
  normalized form and the memory pipeline must insert a copy -- the copy
  that short-circuiting then removes (rebasing the whole solve chain into
  the reversed region), mirroring the paper's modest 1.04-1.12x impacts;
* the per-thread final vector short-circuits into the result matrix
  through the timestep loop (fig. 5b + fig. 6b combined).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import FunBuilder, f32
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.symbolic import SymExpr, Var

#: Tridiagonal coefficients (diagonally dominant).
CA, CB, CC = 0.1, 0.8, 0.1

numX, numT, m = Var("numX"), Var("numT"), Var("m")


def build() -> Fun:
    bld = FunBuilder("locvolcalib")
    bld.param("m", ScalarType("i64"))
    bld.param("numX", ScalarType("i64"))
    bld.param("numT", ScalarType("i64"))
    bld.assume_lower("m", 1)
    bld.assume_lower("numX", 3)
    bld.assume_lower("numT", 1)

    mp = bld.map_(m, index="o")
    o = mp.idx

    # Initial condition: a call-option payoff parameterized by instance,
    # staged as FinPar stages it -- a grid-minus-strike producer feeding
    # the payoff clamp.  Fusion inlines the producer (one init kernel, as
    # the classic code); fuse=False materializes the per-thread
    # differences vector in expanded global memory.
    grid = mp.map_(numX, index="ig")
    xi = grid.binop("*", grid.unop("f32", grid.scalar(grid.idx)), 0.01)
    ko = grid.binop("*", grid.unop("f32", grid.scalar(o)), 0.02)
    dv = grid.binop("-", xi, ko)
    grid.returns(dv)
    (diffs,) = grid.end()

    init = mp.map_(numX, index="i")
    pay = init.binop("max", init.index(diffs, [init.idx]), 0.0)
    init.returns(pay)
    (u0,) = init.end()

    lp = mp.loop(count=numT, carried=[("u", u0)], index="t")
    u = lp["u"]

    # --- rhs d from the explicit part (reads of the iteration input) ---
    d0 = lp.scratch("f32", [numX])
    dl = lp.update_point(d0, [0], lp.index(u, [SymExpr.const(0)]))
    bd = lp.loop(count=numX - 2, carried=[("dc", dl)], index="i")
    i = bd.idx
    t1 = bd.binop("*", bd.index(u, [i]), CA)
    t2 = bd.binop("*", bd.index(u, [i + 1]), CB)
    t3 = bd.binop("*", bd.index(u, [i + 2]), CC)
    rhs = bd.binop("+", bd.binop("+", t1, t2), t3)
    d2 = bd.update_point(bd["dc"], [i + 1], rhs)
    bd.returns(d2)
    (d3,) = bd.end()
    dn = lp.update_point(d3, [numX - 1], lp.index(u, [numX - 1]))

    # --- forward sweep of the Thomas algorithm ---
    cp0 = lp.scratch("f32", [numX])
    dp0 = lp.scratch("f32", [numX])
    cp1 = lp.update_point(cp0, [0], lp.binop("/", CC, CB))
    dp1 = lp.update_point(dp0, [0], lp.binop("/", lp.index(dn, [SymExpr.const(0)]), CB))
    fw = lp.loop(count=numX - 1, carried=[("cp", cp1), ("dp", dp1)], index="i")
    i = fw.idx
    denom = fw.binop("-", CB, fw.binop("*", CA, fw.index(fw["cp"], [i])))
    minv = fw.binop("/", 1.0, denom)
    cp2 = fw.update_point(fw["cp"], [i + 1], fw.binop("*", CC, minv))
    dnum = fw.binop("-", fw.index(dn, [i + 1]), fw.binop("*", CA, fw.index(fw["dp"], [i])))
    dp2 = fw.update_point(fw["dp"], [i + 1], fw.binop("*", dnum, minv))
    fw.returns(cp2, dp2)
    cpf, dpf = fw.end()

    # --- backward substitution into a fresh vector ---
    w0 = lp.scratch("f32", [numX])
    w1 = lp.update_point(w0, [numX - 1], lp.index(dpf, [numX - 1]))
    bw = lp.loop(count=numX - 1, carried=[("w", w1)], index="i")
    i = bw.idx
    idx = numX - 2 - i
    wv = bw.binop(
        "-",
        bw.index(dpf, [idx]),
        bw.binop("*", bw.index(cpf, [idx]), bw.index(bw["w"], [idx + 1])),
    )
    w2 = bw.update_point(bw["w"], [idx], wv)
    bw.returns(w2)
    (wf,) = bw.end()

    # Alternate the sweep direction: the step result is a reversed view.
    urev = lp.reverse(wf, 0)
    lp.returns(urev)
    (ufinal,) = lp.end()
    mp.returns(ufinal)
    (res,) = mp.end()
    bld.returns(res)
    return bld.build()


# ----------------------------------------------------------------------
def reference(mv: int, numXv: int, numTv: int) -> np.ndarray:
    """Vectorized NumPy implementation across instances."""
    i = np.arange(numXv, dtype=np.float32)
    o = np.arange(mv, dtype=np.float32)[:, None]
    u = np.maximum(i[None, :] * np.float32(0.01) - o * np.float32(0.02), 0).astype(
        np.float32
    )
    a, b, c = np.float32(CA), np.float32(CB), np.float32(CC)
    for _ in range(numTv):
        d = np.empty_like(u)
        d[:, 0] = u[:, 0]
        d[:, -1] = u[:, -1]
        d[:, 1:-1] = a * u[:, :-2] + b * u[:, 1:-1] + c * u[:, 2:]
        cp = np.empty_like(u)
        dp = np.empty_like(u)
        cp[:, 0] = c / b
        dp[:, 0] = d[:, 0] / b
        for k in range(1, numXv):
            minv = np.float32(1.0) / (b - a * cp[:, k - 1])
            cp[:, k] = c * minv
            dp[:, k] = (d[:, k] - a * dp[:, k - 1]) * minv
        w = np.empty_like(u)
        w[:, -1] = dp[:, -1]
        for k in range(numXv - 2, -1, -1):
            w[:, k] = dp[:, k] - cp[:, k] * w[:, k + 1]
        u = w[:, ::-1].astype(np.float32)
    return u


def inputs_for(mv: int, numXv: int, numTv: int) -> Dict[str, object]:
    return {"m": mv, "numX": numXv, "numT": numTv}


dry_inputs_for = inputs_for

#: Paper datasets (table VI): FinPar's small/medium/large, with the 2-D
#: grids folded to 1-D solves of comparable footprint.
PAPER_DATASETS: Dict[str, Tuple[int, int, int]] = {
    "small": (16, 256, 256),
    "medium": (32, 256, 128),
    "large": (128, 256, 64),
}

TEST_DATASETS: Dict[str, Tuple[int, int, int]] = {
    "tiny": (2, 5, 2),
    "small": (3, 8, 3),
}


def ref_traffic(mv: int, numXv: int, numTv: int) -> Tuple[int, int]:
    """Hand-written ADI sweep: ~6 reads + 4 writes per element per step."""
    per_step = mv * numXv * 4
    return (6 * per_step * numTv, 4 * per_step * numTv)
