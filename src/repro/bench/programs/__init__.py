"""IR implementations of the paper's seven evaluation benchmarks.

Import benchmark modules directly (``from repro.bench.programs import nw``)
or use :func:`all_benchmarks` for the full registry.
"""

from typing import Dict


def all_benchmarks() -> Dict[str, object]:
    """Name -> benchmark module for the seven paper benchmarks."""
    from repro.bench.programs import (
        hotspot,
        lbm,
        locvolcalib,
        lud,
        nn,
        nw,
        optionpricing,
    )

    return {
        "nw": nw,
        "lud": lud,
        "hotspot": hotspot,
        "lbm": lbm,
        "optionpricing": optionpricing,
        "locvolcalib": locvolcalib,
        "nn": nn,
    }
