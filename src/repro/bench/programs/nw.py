"""Needleman-Wunsch (Rodinia) -- the paper's running example (sections III, VI-B).

The sequence-alignment DP fills an ``n x n`` score matrix where each cell
depends on its north, west and north-west neighbours.  Rodinia
parallelizes it by block tiling + loop skewing: the ``b x b`` blocks of an
anti-diagonal are independent (paper fig. 2).  Here, exactly as in paper
section III-A, the matrix is kept *flat* and the generalized LMAD slices
express, per anti-diagonal ``i``:

* ``R_vert  = i*b     + {(cnt : n*b-b), (b+1 : n)}`` -- the vertical bars,
* ``R_horiz = i*b + 1 + {(cnt : n*b-b), (b   : 1)}`` -- the horizontal bars,
* ``W = i*b + n+1 + {(cnt : n*b-b), (b : n), (b : 1)}`` -- the blocks.

``let X = map process_block ...`` then ``let A[W] = X`` is the circuit
point; proving ``W`` disjoint from the bars is the fig. 9 proof, which
requires the dimension-splitting extension of the non-overlap test.

The similarity score of global cell ``(r, c)`` is the data-independent
``((r + c) mod 3) - 1`` (a stand-in for Rodinia's BLOSUM lookup that both
the IR program and the NumPy reference share), with gap penalty 1.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir import FunBuilder, f32
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.lmad import lmad
from repro.symbolic import Var

PENALTY = 1.0

n, q, b = Var("n"), Var("q"), Var("b")


def build() -> Fun:
    """The NW IR program: two skewed loops over anti-diagonals."""
    bld = FunBuilder("nw")
    bld.param("q", ScalarType("i64"))
    bld.param("b", ScalarType("i64"))
    bld.param("n", ScalarType("i64"))
    A = bld.param("A", f32(n * n))
    bld.define("n", q * b + 1)
    bld.assume_lower("q", 2)
    bld.assume_lower("b", 2)

    def half(parent, Acur_name: str, first: bool) -> str:
        """One skewed loop (first or second half of the anti-diagonals)."""
        count = q if first else q - 1
        pname = "Ac1" if first else "Ac2"
        lp = parent.loop(count=count, carried=[(pname, Acur_name)], index="i")
        i = lp.idx
        cnt = i + 1 if first else q - 1 - i
        if first:
            w_off = i * b + n + 1
        else:
            w_off = ((i + 1) * b + 1) * n + (q - 1) * b + 1
        rv_off = w_off - n - 1
        rh_off = w_off - n
        diag = i if first else q + i  # global anti-diagonal index in blocks

        rv = lp.lmad_slice(
            lp[pname], lmad(rv_off, [(cnt, n * b - b), (b + 1, n)])
        )
        rh = lp.lmad_slice(lp[pname], lmad(rh_off, [(cnt, n * b - b), (b, 1)]))

        # Per-diagonal similarity table, staged as Rodinia stages its
        # BLOSUM ``reference`` matrix: a separate kernel materializes the
        # per-block similarity rows ([cnt][2b-1], one entry per interior
        # anti-diagonal of a block) that the DP sweep then reads per
        # cell.  Mapnest fusion inlines the (data-independent) lookup
        # back into the block kernel; fuse=False pays the table's
        # write+read round trip per anti-diagonal sweep.
        sims = lp.map_(cnt, index="sj")
        srow = sims.map_(b + b - 1, index="sk")
        sg = srow.scalar(diag * b + srow.idx + 2)  # global r + global c
        sgm = srow.binop("%", sg, 3)
        sv = srow.unop("f32", srow.binop("-", sgm, 1))
        srow.returns(sv)
        (simrow,) = srow.end()
        sims.returns(simrow)
        (simtab,) = sims.end()

        mp = lp.map_(cnt, index="j")
        jj = mp.idx
        blk = mp.scratch("f32", [b + 1, b + 1])
        # Fill the left column from the vertical bar.
        f1 = mp.loop(count=b + 1, carried=[("bkv", blk)], index="r")
        v = f1.index(rv, [jj, f1.idx])
        bk1 = f1.update_point(f1["bkv"], [f1.idx, 0], v)
        f1.returns(bk1)
        (blk1,) = f1.end()
        # Fill the top row from the horizontal bar.
        f2 = mp.loop(count=b, carried=[("bkh", blk1)], index="c")
        h = f2.index(rh, [jj, f2.idx])
        bk2 = f2.update_point(f2["bkh"], [0, f2.idx + 1], h)
        f2.returns(bk2)
        (blk2,) = f2.end()
        # The DP recurrence over the block interior.
        f3 = mp.loop(count=b, carried=[("bkr", blk2)], index="r")
        f4 = f3.loop(count=b, carried=[("bki", f3["bkr"])], index="c")
        r_, c_ = f3.idx, f4.idx
        nw_ = f4.index(f4["bki"], [r_, c_])
        up = f4.index(f4["bki"], [r_, c_ + 1])
        lf = f4.index(f4["bki"], [r_ + 1, c_])
        sim = f4.index(simtab, [jj, r_ + c_])
        t1 = f4.binop("+", nw_, sim)
        t2 = f4.binop("max", f4.binop("-", up, PENALTY), f4.binop("-", lf, PENALTY))
        val = f4.binop("max", t1, t2)
        bk3 = f4.update_point(f4["bki"], [r_ + 1, c_ + 1], val)
        f4.returns(bk3)
        (blk3,) = f4.end()
        f3.returns(blk3)
        (blk4,) = f3.end()
        out = mp.slice(blk4, [(1, b, 1), (1, b, 1)])
        mp.returns(out)
        (X,) = mp.end()

        W = lmad(w_off, [(cnt, n * b - b), (b, n), (b, 1)])
        A2 = lp.update_lmad(lp[pname], W, X)
        lp.returns(A2)
        (res,) = lp.end()
        return res

    A1 = half(bld, A, first=True)
    A2 = half(bld, A1, first=False)
    bld.returns(A2)
    return bld.build()


def build_rect() -> Fun:
    """One anti-diagonal sweep over a column band of the matrix (sharding).

    The shard runner partitions the ``q`` block-columns into per-device
    bands; a device's slab is ``[nr][w]`` (flat ``nr*w``) holding its
    ``w-1`` matrix columns plus one *ghost* column on the left -- the
    band boundary column the left neighbour owns and re-sends after
    every sweep.  One invocation processes ``cnt`` consecutive blocks of
    one global anti-diagonal ``gdiag``, starting at flat write offset
    ``woff`` (topmost-rightmost block first, stepping down-left by
    ``b*w - b``).  The generalized-LMAD bars and block kernel are the
    same shapes as :func:`build` with the row stride ``n`` replaced by
    the slab width ``w``; the per-cell DP expression tree is identical,
    so a sharded run is bit-identical to the unsharded one.
    """
    bld = FunBuilder("nw_rect")
    bld.param("b", ScalarType("i64"))
    bld.param("nr", ScalarType("i64"))
    bld.param("w", ScalarType("i64"))
    bld.param("cnt", ScalarType("i64"))
    bld.param("woff", ScalarType("i64"))
    bld.param("gdiag", ScalarType("i64"))
    wv, cnt, woff, gdiag = Var("w"), Var("cnt"), Var("woff"), Var("gdiag")
    A = bld.param("A", f32(Var("nr") * wv))
    bld.assume_lower("b", 2)
    bld.assume_lower("cnt", 1)
    bld.assume_lower("w", 3)
    bld.assume_lower("nr", 3)
    bld.assume_lower("woff", 0)
    bld.assume_lower("gdiag", 0)

    rv = bld.lmad_slice(A, lmad(woff - wv - 1, [(cnt, b * wv - b), (b + 1, wv)]))
    rh = bld.lmad_slice(A, lmad(woff - wv, [(cnt, b * wv - b), (b, 1)]))

    sims = bld.map_(cnt, index="sj")
    srow = sims.map_(b + b - 1, index="sk")
    sg = srow.scalar(gdiag * b + srow.idx + 2)
    sgm = srow.binop("%", sg, 3)
    sv = srow.unop("f32", srow.binop("-", sgm, 1))
    srow.returns(sv)
    (simrow,) = srow.end()
    sims.returns(simrow)
    (simtab,) = sims.end()

    mp = bld.map_(cnt, index="j")
    jj = mp.idx
    blk = mp.scratch("f32", [b + 1, b + 1])
    f1 = mp.loop(count=b + 1, carried=[("bkv", blk)], index="r")
    v = f1.index(rv, [jj, f1.idx])
    bk1 = f1.update_point(f1["bkv"], [f1.idx, 0], v)
    f1.returns(bk1)
    (blk1,) = f1.end()
    f2 = mp.loop(count=b, carried=[("bkh", blk1)], index="c")
    h = f2.index(rh, [jj, f2.idx])
    bk2 = f2.update_point(f2["bkh"], [0, f2.idx + 1], h)
    f2.returns(bk2)
    (blk2,) = f2.end()
    f3 = mp.loop(count=b, carried=[("bkr", blk2)], index="r")
    f4 = f3.loop(count=b, carried=[("bki", f3["bkr"])], index="c")
    r_, c_ = f3.idx, f4.idx
    nw_ = f4.index(f4["bki"], [r_, c_])
    up = f4.index(f4["bki"], [r_, c_ + 1])
    lf = f4.index(f4["bki"], [r_ + 1, c_])
    sim = f4.index(simtab, [jj, r_ + c_])
    t1 = f4.binop("+", nw_, sim)
    t2 = f4.binop(
        "max", f4.binop("-", up, PENALTY), f4.binop("-", lf, PENALTY)
    )
    val = f4.binop("max", t1, t2)
    bk3 = f4.update_point(f4["bki"], [r_ + 1, c_ + 1], val)
    f4.returns(bk3)
    (blk3,) = f4.end()
    f3.returns(blk3)
    (blk4,) = f3.end()
    out = mp.slice(blk4, [(1, b, 1), (1, b, 1)])
    mp.returns(out)
    (X,) = mp.end()

    W = lmad(woff, [(cnt, b * wv - b), (b, wv), (b, 1)])
    A2 = bld.update_lmad(A, W, X)
    bld.returns(A2)
    return bld.build()


# ----------------------------------------------------------------------
# Reference implementation (the role of Rodinia's hand-written kernel)
# ----------------------------------------------------------------------
def reference(A: np.ndarray, nv: int) -> np.ndarray:
    """Sequential NumPy NW: anti-diagonal vectorized DP sweep."""
    F = A.reshape(nv, nv).astype(np.float32).copy()
    # Vectorize along anti-diagonals of the (n-1)x(n-1) interior.
    for d in range(2, 2 * nv - 1):
        rs = np.arange(max(1, d - nv + 1), min(d - 1, nv - 1) + 1)
        cs = d - rs
        sim = (((rs + cs) % 3) - 1).astype(np.float32)
        F[rs, cs] = np.maximum(
            F[rs - 1, cs - 1] + sim,
            np.maximum(F[rs - 1, cs] - PENALTY, F[rs, cs - 1] - PENALTY),
        )
    return F.reshape(-1)


def make_input(nv: int, seed: int = 0) -> np.ndarray:
    """Boundary-initialized score matrix (first row/col hold gap scores)."""
    A = np.zeros((nv, nv), dtype=np.float32)
    A[0, :] = -np.arange(nv, dtype=np.float32)
    A[:, 0] = -np.arange(nv, dtype=np.float32)
    return A.reshape(-1)


def inputs_for(qv: int, bv: int) -> Dict[str, object]:
    nv = qv * bv + 1
    return {"q": qv, "b": bv, "n": nv, "A": make_input(nv)}


def dry_inputs_for(qv: int, bv: int) -> Dict[str, int]:
    return {"q": qv, "b": bv, "n": qv * bv + 1}


#: Paper datasets (table I): row label -> (q, b) with n = q*b + 1 ~ label.
PAPER_DATASETS: Dict[str, Tuple[int, int]] = {
    "8192": (512, 16),
    "16384": (1024, 16),
    "32768": (2048, 16),
}

#: Small datasets for correctness validation against the reference.
TEST_DATASETS: Dict[str, Tuple[int, int]] = {
    "tiny": (3, 4),
    "small": (4, 8),
}


def ref_traffic(qv: int, bv: int) -> Tuple[int, int]:
    """(bytes_read, bytes_written) of the hand-written reference.

    Rodinia's kernel streams each block's two input bars in and its b*b
    cells out, once per cell overall: ~2 reads + 1 write per cell of the
    interior (the in-place hand-written code has no extra copies).
    """
    nv = qv * bv + 1
    cells = (nv - 1) * (nv - 1)
    return (2 * cells * 4, cells * 4)
