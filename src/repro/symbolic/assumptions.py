"""Assumption contexts: what the compiler knows about program variables.

A :class:`Context` records two kinds of facts gathered while walking the IR:

* **equalities** -- ``n == q*b + 1`` style definitions, used as rewrite
  rules (applied to a fixpoint).  These arise from ``let`` bindings of
  scalar integer expressions and from dataset invariants (the NW benchmark's
  ``n = q*b + 1``).
* **bounds** -- one-sided inequalities ``lo <= v`` / ``v <= hi`` where the
  bound may itself be symbolic.  These arise from loop ranges
  (``0 <= i <= m-1``), array-shape positivity, and explicit benchmark
  assumptions (``q >= 2``).

Contexts are persistent-ish: :meth:`Context.extended` returns a cheap child
context, so the analysis can push/pop scopes without copying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.symbolic.expr import ExprLike, SymExpr, sym


@dataclass(frozen=True)
class Bound:
    """One-sided symbolic bounds for a variable (either side optional)."""

    lower: Optional[SymExpr] = None
    upper: Optional[SymExpr] = None

    def merged(self, other: "Bound") -> "Bound":
        """Combine two bounds for the same variable.

        With symbolic bounds we cannot always pick the tighter one, so we
        keep the incoming bound when both exist and they differ only if they
        are syntactically identical; otherwise prefer constants (decidable)
        over symbolic expressions.
        """

        def pick(a: Optional[SymExpr], b: Optional[SymExpr], want_max: bool):
            if a is None:
                return b
            if b is None:
                return a
            ai, bi = a.as_int(), b.as_int()
            if ai is not None and bi is not None:
                return sym(max(ai, bi) if want_max else min(ai, bi))
            # Prefer the constant bound: it is directly usable by interval
            # evaluation.  A symbolic bound is kept only when no constant
            # alternative exists.
            if ai is not None:
                return a
            if bi is not None:
                return b
            return b

        return Bound(
            lower=pick(self.lower, other.lower, want_max=True),
            upper=pick(self.upper, other.upper, want_max=False),
        )


class Context:
    """A scoped set of assumptions about integer program variables."""

    __slots__ = ("_eqs", "_bounds", "_parent")

    def __init__(self, parent: Optional["Context"] = None):
        self._eqs: Dict[str, SymExpr] = {}
        self._bounds: Dict[str, Bound] = {}
        self._parent = parent

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def define(self, var: str, value: ExprLike) -> "Context":
        """Record an equality ``var == value`` (a rewrite rule).

        Self-referential definitions are rejected: they would make the
        substitution fixpoint diverge.
        """
        value = sym(value)
        if var in value.free_vars():
            raise ValueError(f"self-referential definition of {var}: {value}")
        self._eqs[var] = value
        return self

    def assume_lower(self, var: str, lo: ExprLike) -> "Context":
        """Record ``var >= lo``."""
        self._merge_bound(var, Bound(lower=sym(lo)))
        return self

    def assume_upper(self, var: str, hi: ExprLike) -> "Context":
        """Record ``var <= hi``."""
        self._merge_bound(var, Bound(upper=sym(hi)))
        return self

    def assume_range(self, var: str, lo: ExprLike, hi: ExprLike) -> "Context":
        """Record ``lo <= var <= hi`` (both inclusive)."""
        self._merge_bound(var, Bound(lower=sym(lo), upper=sym(hi)))
        return self

    def _merge_bound(self, var: str, bound: Bound) -> None:
        existing = self._bounds.get(var) or self._lookup_bound_parent(var)
        self._bounds[var] = existing.merged(bound) if existing else bound

    def extended(self) -> "Context":
        """A child context; additions to it do not affect ``self``."""
        return Context(parent=self)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _lookup_eq(self, var: str) -> Optional[SymExpr]:
        ctx: Optional[Context] = self
        while ctx is not None:
            if var in ctx._eqs:
                return ctx._eqs[var]
            ctx = ctx._parent
        return None

    def _lookup_bound_parent(self, var: str) -> Optional[Bound]:
        ctx = self._parent
        while ctx is not None:
            if var in ctx._bounds:
                return ctx._bounds[var]
            ctx = ctx._parent
        return None

    def bound(self, var: str) -> Bound:
        ctx: Optional[Context] = self
        while ctx is not None:
            if var in ctx._bounds:
                return ctx._bounds[var]
            ctx = ctx._parent
        return Bound()

    def all_equalities(self) -> Dict[str, SymExpr]:
        out: Dict[str, SymExpr] = {}
        chain: List[Context] = []
        ctx: Optional[Context] = self
        while ctx is not None:
            chain.append(ctx)
            ctx = ctx._parent
        for c in reversed(chain):
            out.update(c._eqs)
        return out

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def normalize(self, expr: ExprLike, max_rounds: int = 32) -> SymExpr:
        """Apply equality rewrites to a fixpoint.

        Each round substitutes every defined variable simultaneously; the
        round count is bounded to guard against (rejected-by-construction
        but belt-and-braces) cyclic definitions.
        """
        e = sym(expr)
        eqs = self.all_equalities()
        if not eqs:
            return e
        for _ in range(max_rounds):
            fv = e.free_vars()
            applicable = {v: rhs for v, rhs in eqs.items() if v in fv}
            if not applicable:
                return e
            e2 = e.substitute(applicable)
            if e2 == e:
                return e
            e = e2
        return e

    def numeric_range(
        self, expr: ExprLike, depth: int = 6
    ) -> Tuple[Optional[int], Optional[int]]:
        """Numeric interval for ``expr`` under this context.

        Returns ``(lo, hi)`` where either side may be ``None`` (unbounded).
        Symbolic bounds are resolved recursively up to ``depth``.  Sound:
        the true value always lies within the returned interval.
        """
        e = self.normalize(expr)
        return self._range_of(e, depth)

    def _var_range(self, var: str, depth: int) -> Tuple[Optional[int], Optional[int]]:
        if depth <= 0:
            return (None, None)
        b = self.bound(var)
        lo = hi = None
        if b.lower is not None:
            lo_lo, _ = self._range_of(self.normalize(b.lower), depth - 1)
            lo = lo_lo
        if b.upper is not None:
            _, hi_hi = self._range_of(self.normalize(b.upper), depth - 1)
            hi = hi_hi
        return (lo, hi)

    def _range_of(self, e: SymExpr, depth: int) -> Tuple[Optional[int], Optional[int]]:
        const = e.as_int()
        if const is not None:
            return (const, const)
        total_lo: Optional[int] = 0
        total_hi: Optional[int] = 0
        for mono, coeff in e.terms.items():
            m_lo, m_hi = self._mono_range(mono, depth)
            if coeff >= 0:
                t_lo = None if m_lo is None else coeff * m_lo
                t_hi = None if m_hi is None else coeff * m_hi
            else:
                t_lo = None if m_hi is None else coeff * m_hi
                t_hi = None if m_lo is None else coeff * m_lo
            total_lo = None if (total_lo is None or t_lo is None) else total_lo + t_lo
            total_hi = None if (total_hi is None or t_hi is None) else total_hi + t_hi
        return (total_lo, total_hi)

    def _mono_range(self, mono, depth: int) -> Tuple[Optional[int], Optional[int]]:
        if not mono:
            return (1, 1)
        lo: Optional[int] = 1
        hi: Optional[int] = 1
        for var, power in mono:
            v_lo, v_hi = self._var_range(var, depth)
            p_lo, p_hi = _pow_range(v_lo, v_hi, power)
            lo, hi = _mul_range(lo, hi, p_lo, p_hi)
        return (lo, hi)

    def __repr__(self) -> str:
        eqs = ", ".join(f"{v}={e}" for v, e in self.all_equalities().items())
        bounds = []
        ctx: Optional[Context] = self
        seen = set()
        while ctx is not None:
            for v, b in ctx._bounds.items():
                if v in seen:
                    continue
                seen.add(v)
                lo = b.lower if b.lower is not None else "-inf"
                hi = b.upper if b.upper is not None else "+inf"
                bounds.append(f"{lo}<={v}<={hi}")
            ctx = ctx._parent
        return f"Context(eqs=[{eqs}], bounds=[{', '.join(bounds)}])"


def _pow_range(
    lo: Optional[int], hi: Optional[int], power: int
) -> Tuple[Optional[int], Optional[int]]:
    """Interval of ``x**power`` given an interval of ``x``."""
    if power == 1:
        return (lo, hi)
    candidates: List[Optional[int]] = []
    if lo is not None and hi is not None:
        candidates = [lo**power, hi**power]
        if lo < 0 < hi and power % 2 == 0:
            candidates.append(0)
        return (min(candidates), max(candidates))
    if power % 2 == 0:
        # Even power is non-negative; upper bound only from both ends.
        new_lo = 0
        if lo is not None and lo >= 0:
            new_lo = lo**power
        if hi is not None and hi <= 0:
            new_lo = hi**power
        return (new_lo, None)
    # Odd power is monotone.
    return (
        None if lo is None else lo**power,
        None if hi is None else hi**power,
    )


def _mul_range(
    a_lo: Optional[int],
    a_hi: Optional[int],
    b_lo: Optional[int],
    b_hi: Optional[int],
) -> Tuple[Optional[int], Optional[int]]:
    """Sound interval multiplication with open ends (None = unbounded)."""
    # Fast common case: everything finite.
    if None not in (a_lo, a_hi, b_lo, b_hi):
        vals = [a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi]
        return (min(vals), max(vals))

    # Special sound cases with one-sided info; otherwise give up on that side.
    # Both factors known non-negative:
    if (a_lo is not None and a_lo >= 0) and (b_lo is not None and b_lo >= 0):
        lo = a_lo * b_lo
        hi = None if (a_hi is None or b_hi is None) else a_hi * b_hi
        return (lo, hi)
    # Both factors known non-positive:
    if (a_hi is not None and a_hi <= 0) and (b_hi is not None and b_hi <= 0):
        lo = a_hi * b_hi
        hi = None if (a_lo is None or b_lo is None) else a_lo * b_lo
        return (lo, hi)
    # Mixed signs with open ends: unbounded both ways.
    return (None, None)
