"""Multivariate integer polynomials in canonical normal form.

``SymExpr`` is the single expression type used throughout the compiler for
LMAD offsets, strides and cardinalities.  An expression is stored as a
mapping from *monomials* to non-zero integer coefficients, where a monomial
is a sorted tuple of ``(variable_name, power)`` pairs.  The empty monomial
``()`` is the constant term.  This expanded normal form makes equality
syntactic (two equal polynomials have identical representations), which the
anti-unification and non-overlap machinery rely on.

Only the ring operations are total.  Exact division (:meth:`SymExpr.div_exact`)
is partial and returns ``None`` when the quotient is not a polynomial --
callers in the index-function inversion code treat that as "transformation
not invertible", again trading completeness for soundness.

Design notes
------------
* Instances are immutable and hashable; they are used as dict keys in the
  short-circuiting pass's symbol tables.
* Construction goes through :func:`sym` / :func:`Var` / :func:`Const`;
  arithmetic never mutates.
* We deliberately do not simplify with *semantic* information here (e.g.
  assumptions like ``n == q*b+1``); that lives in
  :mod:`repro.symbolic.assumptions` so the same expression can be interpreted
  under different contexts.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

#: A monomial: sorted tuple of (variable, power) pairs, powers >= 1.
Monomial = Tuple[Tuple[str, int], ...]

#: Anything accepted where an expression is expected.
ExprLike = Union["SymExpr", int]

_CONST_MONO: Monomial = ()


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    """Multiply two monomials by merging their power maps."""
    if not a:
        return b
    if not b:
        return a
    powers: Dict[str, int] = dict(a)
    for var, p in b:
        powers[var] = powers.get(var, 0) + p
    return tuple(sorted(powers.items()))


def _mono_degree(m: Monomial) -> int:
    return sum(p for _, p in m)


def _mono_divides(num: Monomial, den: Monomial) -> Optional[Monomial]:
    """Return ``num / den`` if ``den`` divides ``num``, else ``None``."""
    powers: Dict[str, int] = dict(num)
    for var, p in den:
        have = powers.get(var, 0)
        if have < p:
            return None
        if have == p:
            del powers[var]
        else:
            powers[var] = have - p
    return tuple(sorted(powers.items()))


class SymExpr:
    """An integer polynomial over named variables.

    Supports ``+ - * **`` with other expressions and with Python ints, plus
    unary negation.  ``==`` is *syntactic* polynomial equality (use the
    prover for semantic equality under assumptions).
    """

    __slots__ = ("_terms", "_hash", "_fv")

    def __init__(self, terms: Mapping[Monomial, int]):
        # Drop zero coefficients to keep the normal form canonical.
        self._terms: Dict[Monomial, int] = {
            m: c for m, c in terms.items() if c != 0
        }
        self._hash: Optional[int] = None
        self._fv: Optional[frozenset] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def const(value: int) -> "SymExpr":
        return SymExpr({_CONST_MONO: int(value)} if value else {})

    @staticmethod
    def var(name: str) -> "SymExpr":
        if not isinstance(name, str) or not name:
            raise TypeError(f"variable name must be a non-empty str: {name!r}")
        return SymExpr({((name, 1),): 1})

    @staticmethod
    def coerce(value: ExprLike) -> "SymExpr":
        if isinstance(value, SymExpr):
            return value
        if isinstance(value, (int,)) and not isinstance(value, bool):
            return SymExpr.const(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to SymExpr")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def terms(self) -> Mapping[Monomial, int]:
        """The monomial -> coefficient mapping (read-only view)."""
        return self._terms

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return all(m == _CONST_MONO for m in self._terms)

    def as_int(self) -> Optional[int]:
        """The integer value if constant, else ``None``."""
        if not self._terms:
            return 0
        if self.is_constant():
            return self._terms[_CONST_MONO]
        return None

    def constant_term(self) -> int:
        return self._terms.get(_CONST_MONO, 0)

    def free_vars(self) -> frozenset:
        # Cached: free-variable sets are queried on every symbolic
        # instantiation and prover normalization, and expressions are
        # immutable.
        fv = self._fv
        if fv is None:
            out = set()
            for m in self._terms:
                for var, _ in m:
                    out.add(var)
            fv = frozenset(out)
            self._fv = fv
        return fv

    def degree(self) -> int:
        if not self._terms:
            return 0
        return max(_mono_degree(m) for m in self._terms)

    def degree_in(self, var: str) -> int:
        """Highest power of ``var`` appearing in any monomial."""
        best = 0
        for m in self._terms:
            for v, p in m:
                if v == var and p > best:
                    best = p
        return best

    def coefficients_in(self, var: str) -> Dict[int, "SymExpr"]:
        """View the polynomial as a polynomial in ``var``.

        Returns a mapping from power of ``var`` to the coefficient expression
        (a polynomial not containing ``var``).  Used by the bound-substitution
        strategy of the prover and by exact division.
        """
        out: Dict[int, Dict[Monomial, int]] = {}
        for m, c in self._terms.items():
            power = 0
            rest = []
            for v, p in m:
                if v == var:
                    power = p
                else:
                    rest.append((v, p))
            bucket = out.setdefault(power, {})
            key = tuple(rest)
            bucket[key] = bucket.get(key, 0) + c
        return {p: SymExpr(t) for p, t in out.items()}

    # ------------------------------------------------------------------
    # Ring operations
    # ------------------------------------------------------------------
    def __add__(self, other: ExprLike) -> "SymExpr":
        other = SymExpr.coerce(other)
        terms = dict(self._terms)
        for m, c in other._terms.items():
            terms[m] = terms.get(m, 0) + c
        return SymExpr(terms)

    __radd__ = __add__

    def __neg__(self) -> "SymExpr":
        return SymExpr({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: ExprLike) -> "SymExpr":
        return self + (-SymExpr.coerce(other))

    def __rsub__(self, other: ExprLike) -> "SymExpr":
        return SymExpr.coerce(other) - self

    def __mul__(self, other: ExprLike) -> "SymExpr":
        other = SymExpr.coerce(other)
        terms: Dict[Monomial, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                m = _mono_mul(m1, m2)
                terms[m] = terms.get(m, 0) + c1 * c2
        return SymExpr(terms)

    __rmul__ = __mul__

    def __pow__(self, power: int) -> "SymExpr":
        if not isinstance(power, int) or power < 0:
            raise ValueError("only non-negative integer powers are supported")
        result = SymExpr.const(1)
        base = self
        while power:
            if power & 1:
                result = result * base
            base = base * base
            power >>= 1
        return result

    # ------------------------------------------------------------------
    # Partial operations
    # ------------------------------------------------------------------
    def div_exact(self, divisor: ExprLike) -> Optional["SymExpr"]:
        """Exact polynomial division; ``None`` if not exactly divisible.

        Implemented as multivariate long division by the divisor's leading
        monomial (graded-lex order).  Exactness over the integers requires
        coefficient divisibility at every step.
        """
        divisor = SymExpr.coerce(divisor)
        if divisor.is_zero():
            return None
        dint = divisor.as_int()
        if dint is not None:
            terms = {}
            for m, c in self._terms.items():
                if c % dint != 0:
                    return None
                terms[m] = c // dint
            return SymExpr(terms)
        # Leading monomial in graded-lex order.  A proper monomial order is
        # required for long division to terminate on exact quotients: we use
        # total degree, then lexicographic on the exponent vector over a
        # fixed alphabetical variable order.
        var_order = sorted(self.free_vars() | divisor.free_vars())

        def order_key(item):
            m, _ = item
            powers = dict(m)
            return (
                _mono_degree(m),
                tuple(powers.get(v, 0) for v in var_order),
            )

        lead_m, lead_c = max(divisor._terms.items(), key=order_key)
        remainder = self
        quotient = SymExpr.const(0)
        # Bounded iteration: each step strictly removes the remainder's
        # leading monomial, so len(terms) * degree bounds the loop.
        for _ in range(64 + 4 * len(self._terms) * (1 + self.degree())):
            if remainder.is_zero():
                return quotient
            rm, rc = max(remainder._terms.items(), key=order_key)
            qm = _mono_divides(rm, lead_m)
            if qm is None or rc % lead_c != 0:
                return None
            qterm = SymExpr({qm: rc // lead_c})
            quotient = quotient + qterm
            remainder = remainder - qterm * divisor
        return None  # pragma: no cover - loop bound is generous

    def substitute(self, mapping: Mapping[str, ExprLike]) -> "SymExpr":
        """Simultaneously substitute expressions for variables."""
        if not mapping:
            return self
        fv = self.free_vars()
        if not any(v in fv for v in mapping):
            return self
        if all(
            isinstance(e, int) and not isinstance(e, bool)
            for e in mapping.values()
        ):
            # Fast path for concrete instantiation (the executor's hot
            # loop): fold integer values directly into the coefficients
            # instead of going through polynomial multiplication.
            terms: Dict[Monomial, int] = {}
            for m, c in self._terms.items():
                rest = []
                for var, p in m:
                    val = mapping.get(var)
                    if val is None:
                        rest.append((var, p))
                    else:
                        c *= val**p
                key = tuple(rest)
                acc = terms.get(key, 0) + c
                if acc:
                    terms[key] = acc
                elif key in terms:
                    del terms[key]
            return SymExpr(terms)
        coerced = {v: SymExpr.coerce(e) for v, e in mapping.items()}
        result = SymExpr.const(0)
        for m, c in self._terms.items():
            term = SymExpr.const(c)
            for var, p in m:
                if var in coerced:
                    term = term * (coerced[var] ** p)
                else:
                    term = term * (SymExpr.var(var) ** p)
            result = result + term
        return result

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate to an integer; raises ``KeyError`` on unbound variables."""
        total = 0
        for m, c in self._terms.items():
            val = c
            for var, p in m:
                val *= env[var] ** p
            total += val
        return total

    def content(self) -> int:
        """GCD of all coefficients (0 for the zero polynomial)."""
        g = 0
        for c in self._terms.values():
            g = math.gcd(g, abs(c))
        return g

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, int) and not isinstance(other, bool):
            other = SymExpr.const(other)
        if not isinstance(other, SymExpr):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __bool__(self) -> bool:
        # Forbid accidental truthiness tests; expressions are not booleans.
        raise TypeError(
            "SymExpr has no truth value; use .is_zero() or the prover"
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"SymExpr({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"

        def mono_str(m: Monomial) -> str:
            return "*".join(
                var if p == 1 else f"{var}^{p}" for var, p in m
            )

        # Stable ordering: by degree descending then lexicographic.
        items = sorted(
            self._terms.items(), key=lambda kv: (-_mono_degree(kv[0]), kv[0])
        )
        parts = []
        for m, c in items:
            if m == _CONST_MONO:
                body = str(abs(c))
            elif abs(c) == 1:
                body = mono_str(m)
            else:
                body = f"{abs(c)}*{mono_str(m)}"
            if not parts:
                parts.append(body if c > 0 else f"-{body}")
            else:
                parts.append(f"+ {body}" if c > 0 else f"- {body}")
        return " ".join(parts)


def Var(name: str) -> SymExpr:
    """Convenience constructor for a variable expression."""
    return SymExpr.var(name)


def Const(value: int) -> SymExpr:
    """Convenience constructor for a constant expression."""
    return SymExpr.const(value)


def sym(value: ExprLike) -> SymExpr:
    """Coerce an int or SymExpr to SymExpr (idempotent)."""
    return SymExpr.coerce(value)


def gcd_exprs(exprs: Iterable[ExprLike]) -> int:
    """GCD of the integer contents of several expressions."""
    g = 0
    for e in exprs:
        g = math.gcd(g, sym(e).content())
    return g
