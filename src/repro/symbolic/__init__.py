"""Symbolic integer algebra for compile-time index reasoning.

This package is the reproduction's stand-in for the external SMT solver the
paper used to discharge the inequalities produced by the LMAD non-overlap
test (SC22 paper, section V-C/V-D).  The authors note they were "working on
replacing this with a simpler symbolic algebra engine inside the compiler" --
this package *is* that engine.

The core objects are:

- :class:`~repro.symbolic.expr.SymExpr` -- multivariate integer polynomials in
  a canonical (expanded, sorted-monomial) normal form, with full operator
  overloading so compiler code can write ``i * b + n + 1`` directly.
- :class:`~repro.symbolic.assumptions.Context` -- a set of assumptions about
  program variables: equality substitutions (``n == q*b + 1``) and one-sided
  bounds (``q >= 2``, ``b >= 1``).
- :mod:`~repro.symbolic.prove` -- a sound-but-incomplete prover for sign
  questions (``e >= 0``?, ``e > 0``?, ``e == 0``?) under a context, built
  from equality saturation + bound substitution + interval evaluation.

Soundness contract: every ``prove_*`` function may answer ``False`` ("could
not prove") for a true fact, but never ``True`` for a false one.  The
short-circuiting pass treats "could not prove" as "keep the copy", so an
incomplete prover costs performance, never correctness -- exactly the
trade-off the paper describes in section III-D.
"""

from repro.symbolic.expr import SymExpr, Var, Const, sym, gcd_exprs
from repro.symbolic.assumptions import Context, Bound
from repro.symbolic.prove import (
    Prover,
    Sign,
    prove_nonneg,
    prove_pos,
    prove_eq,
    prove_le,
    prove_lt,
    compare,
)

__all__ = [
    "SymExpr",
    "Var",
    "Const",
    "sym",
    "gcd_exprs",
    "Context",
    "Bound",
    "Prover",
    "Sign",
    "prove_nonneg",
    "prove_pos",
    "prove_eq",
    "prove_le",
    "prove_lt",
    "compare",
]
