"""The :class:`Pass` protocol and the concrete pipeline passes.

A pass declares, besides its ``run`` method:

* ``mutates_ir`` -- whether it can change the memory IR (the manager
  measures IR-size deltas and honors verify checkpoints only for these);
* ``requires`` -- derived analyses (:data:`repro.pipeline.context.
  ANALYSES`) that must be valid before it runs; the manager re-runs any
  that an earlier pass invalidated;
* ``preserves`` -- analyses that stay valid across the pass;
* ``establishes`` -- analyses guaranteed valid *after* the pass (e.g.
  short-circuiting's fixpoint loop ends with a fresh last-use analysis);
* everything else is implicitly invalidated (see :attr:`Pass.invalidates`).

``run(ctx, fun)`` returns a :class:`PassStats` (changed flag, structured
detail counters, per-rule rejection tallies); the manager fills in the
unique stage key, wall-clock time and IR deltas.

The stage *callables* (``introduce_memory``, ``hoist_allocations``, ...)
are resolved through :mod:`repro.compiler`'s module namespace at run
time, which keeps the long-standing test seam working: monkeypatching
``repro.compiler.introduce_memory`` still sabotages the pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.pipeline.context import ANALYSES, CompileContext
from repro.pipeline.trace import KIND_ANALYSIS, KIND_PASS, PassRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir import ast as A

#: Passes return a :class:`~repro.pipeline.trace.PassRecord`; the alias
#: is the name the Pass protocol uses for it.
PassStats = PassRecord


def _compiler():
    """The :mod:`repro.compiler` module, resolved late (import cycle +
    monkeypatch seam)."""
    import repro.compiler as compiler

    return compiler


def _pool_detail(ctx: CompileContext, tiers: Dict[str, int]) -> Dict[str, object]:
    """PassRecord detail entries for the prover pool's deciding-tier
    tallies and (cumulative) memo hit/miss counters."""
    detail: Dict[str, object] = {}
    if any(tiers.values()):
        detail["tiers"] = {k: v for k, v in tiers.items() if v}
    pool = getattr(ctx, "provers", None)
    if pool is not None:
        detail["pool_hits"] = pool.hits
        detail["pool_misses"] = pool.misses
    return detail


def _count_stmts(fun: Optional["A.Fun"]) -> Tuple[int, int]:
    """(total statements, alloc statements) of a memory function."""
    if fun is None:
        return -1, -1
    from repro.ir import ast as A
    from repro.mem.memir import iter_stmts

    total = allocs = 0
    for stmt in iter_stmts(fun.body):
        total += 1
        if isinstance(stmt.exp, A.Alloc):
            allocs += 1
    return total, allocs


class Pass:
    """Base pass: subclasses override the class attributes and ``run``."""

    name: str = "?"
    kind: str = KIND_PASS
    mutates_ir: bool = True
    requires: Tuple[str, ...] = ()
    preserves: Tuple[str, ...] = ()
    establishes: Tuple[str, ...] = ()

    def __init__(
        self,
        verify_label: Optional[str] = None,
        condition: Optional[Callable[[CompileContext], bool]] = None,
    ):
        #: Verifier checkpoint label; the manager verifies the IR under
        #: this label right after the pass (even when its condition
        #: skipped it) when compiling with ``verify=True``.
        self.verify_label = verify_label
        #: Occurrence gate: when it returns False the occurrence is
        #: recorded as skipped (e.g. the dead-alloc sweep after a fusion
        #: round that committed nothing).
        self.condition = condition

    @property
    def invalidates(self) -> Tuple[str, ...]:
        """Analyses this pass does *not* carry over (derived)."""
        if not self.mutates_ir:
            return ()
        kept = set(self.preserves) | set(self.establishes)
        return tuple(a for a in ANALYSES if a not in kept)

    def stats(self, changed: bool, **detail) -> PassStats:
        return PassRecord(
            kind=self.kind, name=self.name, key="", changed=changed,
            detail=detail,
        )

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Concrete passes, in pipeline order
# ----------------------------------------------------------------------
class TypecheckPass(Pass):
    """Type/uniqueness checking of the *source* function (pure check)."""

    name = "typecheck"
    mutates_ir = False

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        _compiler().typecheck_fun(ctx.source)
        return self.stats(changed=False)


class IntroduceMemoryPass(Pass):
    """Memory introduction: source IR -> memory-annotated deep copy."""

    name = "introduce_memory"

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        ctx.mfun = _compiler().introduce_memory(ctx.source)
        return self.stats(changed=True)


class HoistPass(Pass):
    """Hoist allocations upward within their blocks."""

    name = "hoist"
    preserves = ("alias",)  # moves allocs; value aliasing is untouched

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        moved = _compiler().hoist_allocations(fun)
        return self.stats(changed=moved > 0, moved=moved)


class AnalysisPass(Pass):
    """Explicitly scheduled run of a derived analysis (``last_use``,
    ``mem_frees``).  The manager also instantiates these automatically
    when a pass requires an invalidated analysis."""

    kind = KIND_ANALYSIS
    mutates_ir = False

    def __init__(self, analysis: str, **kw):
        super().__init__(**kw)
        if analysis not in ANALYSES:
            raise ValueError(f"unknown analysis {analysis!r}")
        self.name = analysis
        self.establishes = (analysis,)

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        value = ctx.ensure_analysis(self.name)
        detail: Dict[str, object] = {}
        if self.name == "mem_frees":
            detail["annotations"] = value
        return self.stats(changed=False, **detail)


class ShortCircuitPass(Pass):
    """Array short-circuiting (paper section V)."""

    name = "short_circuit"
    requires = ("last_use",)
    # The fixpoint loop's final round runs a fresh last-use analysis and
    # commits no further rebase, so both come out valid.
    preserves = ("alias", "last_use")
    establishes = ("alias", "last_use")

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        from repro.opt.shortcircuit import short_circuit_fun

        st = short_circuit_fun(
            fun, enable_splitting=ctx.enable_splitting, shared=ctx
        )
        ctx.results[self.name] = st
        rec = self.stats(
            changed=st.committed > 0 or st.reused_copies > 0,
            attempted=st.attempted,
            committed=st.committed,
            reused_copies=st.reused_copies,
            rounds=st.rounds,
            **_pool_detail(ctx, st.tiers),
        )
        rec.rejections = dict(st.failures)
        return rec


class DeadAllocsPass(Pass):
    """Drop allocations no binding references any more."""

    name = "dead_allocs"
    # Removes whole Alloc statements only: value aliasing and the
    # last-use annotations of surviving statements are untouched.
    preserves = ("alias", "last_use")

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        removed = _compiler().remove_dead_allocations(fun)
        return self.stats(changed=removed > 0, removed=removed)


class FusePass(Pass):
    """Producer-consumer kernel fusion (inline sole-last-use producers)."""

    name = "fuse"
    requires = ("last_use",)
    preserves = ("alias", "last_use")
    establishes = ("alias", "last_use")  # re-analyzed at fixpoint exit

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        from repro.opt.fuse import fuse_fun

        st = fuse_fun(fun, shared=ctx)
        ctx.results[self.name] = st
        rec = self.stats(
            changed=st.committed > 0,
            attempted=st.attempted,
            committed=st.committed,
            rounds=st.rounds,
            duplicated=st.duplicated,
            chained=st.chained,
            **_pool_detail(ctx, st.tiers),
        )
        rec.rejections = dict(st.failures)
        return rec


class ReusePass(Pass):
    """Allocation coalescing: merge provably disjoint live ranges."""

    name = "reuse"
    # Rewrites memory bindings only; value-level analyses survive.
    preserves = ("alias", "last_use")

    def run(self, ctx: CompileContext, fun: "A.Fun") -> PassStats:
        from repro.reuse import reuse_allocations

        st = reuse_allocations(fun, shared=ctx)
        ctx.results[self.name] = st
        rec = self.stats(
            changed=bool(st.mapping),
            merged=st.merged,
            widened=st.widened,
            **_pool_detail(ctx, st.tiers),
        )
        rec.rejections = dict(st.rejected)
        return rec
