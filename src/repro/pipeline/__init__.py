"""repro.pipeline: the first-class compilation pipeline.

The historical ``compile_fun`` grew one boolean flag and one inline
``timed()`` thunk per optimization; this package replaces that with an
explicit architecture (DESIGN.md section 10):

* :class:`Pass` -- the pass protocol: a name, ``run(ctx, fun) ->
  PassStats``, and declared ``requires``/``preserves``/``establishes``
  sets over the derived analyses (last-use, aliasing, ``mem_frees``);
* :class:`PassManager` -- runs a pipeline, auto re-runs invalidated
  analyses, honors verify checkpoints, and emits a uniquely-keyed,
  per-occurrence-timed :class:`PipelineTrace`;
* :class:`CompileContext` -- the shared state of one compilation: the
  memory IR under construction, the validity ledger, and the pooled
  Prover/NonOverlapChecker memos every pass shares
  (:class:`repro.lmad.ProverPool`);
* :mod:`~repro.pipeline.presets` -- named pipelines reproducing the
  paper's configurations: ``unopt``, ``sc``, ``sc+fuse``, ``full``.

``repro.compiler.compile_fun`` is now a thin, kwarg-compatible wrapper
over these pieces.
"""

from repro.pipeline.context import ANALYSES, CompileContext
from repro.pipeline.manager import PRINT_AFTER_ENV, PassManager
from repro.pipeline.passes import (
    AnalysisPass,
    DeadAllocsPass,
    FusePass,
    HoistPass,
    IntroduceMemoryPass,
    Pass,
    PassStats,
    ReusePass,
    ShortCircuitPass,
    TypecheckPass,
)
from repro.pipeline.presets import (
    PRESETS,
    build_pipeline,
    preset_for_flags,
    preset_pass_names,
    preset_pipeline,
)
from repro.pipeline.trace import PassRecord, PipelineTrace

__all__ = [
    "ANALYSES",
    "CompileContext",
    "PassManager",
    "PRINT_AFTER_ENV",
    "Pass",
    "PassStats",
    "PassRecord",
    "PipelineTrace",
    "AnalysisPass",
    "DeadAllocsPass",
    "FusePass",
    "HoistPass",
    "IntroduceMemoryPass",
    "ReusePass",
    "ShortCircuitPass",
    "TypecheckPass",
    "PRESETS",
    "build_pipeline",
    "preset_pipeline",
    "preset_pass_names",
    "preset_for_flags",
]
