"""Named pipeline presets reproducing the paper's configurations.

========== =============================================================
``unopt``  the paper's "Unopt. Futhark" baseline: memory introduction,
           hoisting and last-use analysis only
``sc``     + array short-circuiting (paper section V)
``sc+fuse`` + producer-consumer kernel fusion
``full``   + memory reuse (allocation coalescing and ``mem_frees``
           lifetime annotations) -- identical to ``compile_fun``'s
           defaults
========== =============================================================

:func:`build_pipeline` constructs the ordered pass list for any flag
combination (the eight ``compile_fun`` kwarg combinations are a superset
of the four presets); :func:`preset_pipeline` instantiates a preset by
name and :func:`preset_pass_names` exposes the expected schedule for
tests and ``--explain``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pipeline.context import CompileContext
from repro.pipeline.passes import (
    AnalysisPass,
    DeadAllocsPass,
    FusePass,
    HoistPass,
    IntroduceMemoryPass,
    Pass,
    ReusePass,
    ShortCircuitPass,
    TypecheckPass,
)

#: Preset name -> the ``compile_fun`` flag combination it stands for.
PRESETS: Dict[str, Dict[str, bool]] = {
    "unopt": {"short_circuit": False, "fuse": False, "reuse": False},
    "sc": {"short_circuit": True, "fuse": False, "reuse": False},
    "sc+fuse": {"short_circuit": True, "fuse": True, "reuse": False},
    "full": {"short_circuit": True, "fuse": True, "reuse": True},
}


def _fuse_committed(ctx: CompileContext) -> bool:
    st = ctx.fuse_stats
    return st is not None and bool(st.committed)


def _reuse_merged(ctx: CompileContext) -> bool:
    st = ctx.reuse_stats
    return st is not None and bool(st.mapping)


def build_pipeline(
    short_circuit: bool = True,
    fuse: bool = True,
    reuse: bool = True,
    typecheck: bool = True,
) -> List[Pass]:
    """The ordered pass list for one flag combination.

    Verify checkpoints carry the labels ``compile_fun(verify=True)`` has
    always produced (``introduce_memory``, ``hoist+last_use``,
    ``short_circuit``, ``fuse``, ``reuse``); the dead-allocation sweeps
    after fusion and reuse are gated on those passes having changed
    anything, exactly like the historical inline pipeline.
    """
    pipe: List[Pass] = []
    if typecheck:
        pipe.append(TypecheckPass())
    pipe.append(IntroduceMemoryPass(verify_label="introduce_memory"))
    pipe.append(HoistPass())
    pipe.append(AnalysisPass("last_use", verify_label="hoist+last_use"))
    if short_circuit:
        pipe.append(ShortCircuitPass())
        pipe.append(DeadAllocsPass(verify_label="short_circuit"))
    if fuse:
        pipe.append(FusePass())
        pipe.append(
            DeadAllocsPass(verify_label="fuse", condition=_fuse_committed)
        )
    if reuse:
        pipe.append(ReusePass())
        pipe.append(DeadAllocsPass(condition=_reuse_merged))
        pipe.append(AnalysisPass("mem_frees", verify_label="reuse"))
    return pipe


def preset_pipeline(name: str, typecheck: bool = True) -> List[Pass]:
    """Instantiate the pass list of a named preset."""
    try:
        flags = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline preset {name!r} "
            f"(available: {', '.join(PRESETS)})"
        ) from None
    return build_pipeline(typecheck=typecheck, **flags)


def preset_pass_names(name: str, typecheck: bool = True) -> List[str]:
    """The ordered pass/analysis names a preset schedules."""
    return [p.name for p in preset_pipeline(name, typecheck=typecheck)]


def preset_for_flags(
    short_circuit: bool, fuse: bool, reuse: bool
) -> Optional[str]:
    """The preset name matching a flag combination, if any."""
    flags = {"short_circuit": short_circuit, "fuse": fuse, "reuse": reuse}
    for name, preset in PRESETS.items():
        if preset == flags:
            return name
    return None
