"""The :class:`PassManager`: runs a pipeline of passes over one
:class:`~repro.pipeline.CompileContext`.

Responsibilities:

* **Scheduling** -- run the pass list in order; an occurrence whose
  ``condition`` says no is recorded as skipped (with its verify
  checkpoint still honored).
* **Derived analyses** -- before a pass that ``requires`` an analysis a
  previous pass invalidated, automatically insert and time a re-run;
  after each pass, update the validity ledger from its declared
  ``preserves``/``establishes`` sets.
* **Verification** -- with ``verify=True`` on the context, run the
  :mod:`repro.analysis` verifier at every pass that declares a
  ``verify_label`` and raise :class:`repro.analysis.VerificationError`
  naming the offending stage on the first report with errors.
* **Observability** -- emit one uniquely-keyed, individually timed
  :class:`~repro.pipeline.trace.PassRecord` per event (a pass that runs
  three times gets three keys: ``dead_allocs``, ``dead_allocs#2``,
  ``dead_allocs#3``), with IR statement / allocation deltas for mutating
  passes, collected into a :class:`~repro.pipeline.PipelineTrace`.
* **Snapshots** -- when the ``REPRO_PRINT_AFTER`` environment variable
  names a pass (by name or unique key; ``all`` matches everything), the
  pretty-printed IR is dumped to stderr right after that pass runs.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.pipeline.context import CompileContext
from repro.pipeline.passes import AnalysisPass, Pass
from repro.pipeline.trace import KIND_VERIFY, PassRecord, PipelineTrace

#: Environment variable: comma-separated pass names/keys (or ``all``)
#: after which to dump the IR to stderr.
PRINT_AFTER_ENV = "REPRO_PRINT_AFTER"


class PassManager:
    """Run ``passes`` in order against a compile context."""

    def __init__(self, passes: Sequence[Pass], name: str = "custom"):
        self.passes: List[Pass] = list(passes)
        self.name = name

    # ------------------------------------------------------------------
    def run(self, ctx: CompileContext) -> PipelineTrace:
        trace = PipelineTrace(pipeline=self.name, fun_name=ctx.source.name)
        used_keys: Dict[str, int] = {}
        print_after = self._print_after_tokens()

        for p in self.passes:
            for need in p.requires:
                if need not in ctx.valid_analyses:
                    self._execute(AnalysisPass(need), ctx, trace, used_keys,
                                  print_after)
            self._execute(p, ctx, trace, used_keys, print_after)
        return trace

    # ------------------------------------------------------------------
    def _execute(
        self,
        p: Pass,
        ctx: CompileContext,
        trace: PipelineTrace,
        used_keys: Dict[str, int],
        print_after,
    ) -> None:
        from repro.pipeline.passes import _count_stmts

        if p.condition is not None and not p.condition(ctx):
            rec = PassRecord(kind=p.kind, name=p.name, key="", skipped=True)
            rec.key = self._unique_key(p.name, used_keys)
            trace.records.append(rec)
        else:
            measure = p.mutates_ir and ctx.mfun is not None
            before = _count_stmts(ctx.mfun) if measure else (-1, -1)
            t0 = time.perf_counter()
            rec = p.run(ctx, ctx.mfun if ctx.mfun is not None else ctx.source)
            rec.seconds = time.perf_counter() - t0
            rec.key = self._unique_key(p.name, used_keys)
            if p.mutates_ir and ctx.mfun is not None:
                after = _count_stmts(ctx.mfun)
                rec.stmts_before, rec.allocs_before = before
                rec.stmts_after, rec.allocs_after = after
            trace.records.append(rec)
            if p.mutates_ir:
                ctx.valid_analyses = (
                    ctx.valid_analyses & set(p.preserves)
                ) | set(p.establishes)
            else:
                ctx.valid_analyses |= set(p.establishes)
            self._maybe_print(p, rec, ctx, print_after)
        if p.verify_label is not None and ctx.verify:
            self._verify(p.verify_label, ctx, trace, used_keys)

    # ------------------------------------------------------------------
    def _verify(
        self,
        label: str,
        ctx: CompileContext,
        trace: PipelineTrace,
        used_keys: Dict[str, int],
    ) -> None:
        from repro.analysis import VerificationError, verify_fun

        t0 = time.perf_counter()
        report = verify_fun(ctx.mfun, stage=label, pool=ctx.provers)
        seconds = time.perf_counter() - t0
        ctx.verify_reports[label] = report
        name = f"verify[{label}]"
        detail = {
            "checks": report.checks,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "notes": len(report.notes),
        }
        if report.tiers:
            detail["tiers"] = dict(report.tiers)
        rec = PassRecord(
            kind=KIND_VERIFY,
            name=name,
            key=self._unique_key(name, used_keys),
            seconds=seconds,
            detail=detail,
        )
        trace.records.append(rec)
        if not report.ok():
            raise VerificationError(label, report)

    # ------------------------------------------------------------------
    @staticmethod
    def _unique_key(name: str, used: Dict[str, int]) -> str:
        n = used.get(name, 0) + 1
        used[name] = n
        return name if n == 1 else f"{name}#{n}"

    # ------------------------------------------------------------------
    @staticmethod
    def _print_after_tokens() -> Optional[set]:
        raw = os.environ.get(PRINT_AFTER_ENV, "").strip()
        if not raw:
            return None
        return {tok.strip() for tok in raw.split(",") if tok.strip()}

    def _maybe_print(self, p: Pass, rec: PassRecord, ctx, tokens) -> None:
        if not tokens or ctx.mfun is None:
            return
        if not ({"all", p.name, rec.key} & tokens):
            return
        from repro.ir.pretty import pretty_fun

        print(
            f"-- IR after {rec.key} ({self.name} pipeline, "
            f"fun {ctx.source.name}) --",
            file=sys.stderr,
        )
        print(pretty_fun(ctx.mfun), file=sys.stderr)
