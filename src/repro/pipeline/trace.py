"""Structured per-compilation observability: the :class:`PipelineTrace`.

The :class:`~repro.pipeline.PassManager` appends one :class:`PassRecord`
per event it runs -- optimization passes, auto-scheduled analysis
(re-)runs, and verifier checkpoints -- carrying wall-clock time and the
IR size / allocation-count deltas the pass produced, plus the pass's own
structured rejection diagnostics (the per-rule tallies of
``ShortCircuitStats`` / ``FuseStats`` / ``ReuseStats``).

The whole trace is JSON-serializable (:meth:`PipelineTrace.to_dict` /
:meth:`from_dict` round-trip losslessly) and is surfaced by
``python -m repro.bench --json`` for the perf trajectory and by
``python -m repro.bench --explain`` as a human-readable table
(:meth:`PipelineTrace.render`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: Record kinds, in the order they typically appear.
KIND_PASS = "pass"
KIND_ANALYSIS = "analysis"
KIND_VERIFY = "verify"


@dataclass
class PassRecord:
    """One pipeline event: a pass run, an analysis run, or a verify stop.

    ``key`` is the unique stage key (``dead_allocs``, ``dead_allocs#2``,
    ...): a pass that runs several times gets one record -- and one
    timing -- per occurrence, so the sum of all record timings is the
    exact compile time (no occurrence silently overwrites another).
    """

    kind: str  # "pass" | "analysis" | "verify"
    name: str  # the pass / analysis / verify-label name
    key: str  # unique stage key within the trace
    seconds: float = 0.0
    #: Did the pass change the IR?  (False for analyses and verify runs.)
    changed: bool = False
    #: True when the occurrence was scheduled but its condition held it off
    #: (e.g. the dead-alloc sweep after a fusion round that committed
    #: nothing).
    skipped: bool = False
    #: IR statement count before/after (mutating passes only; -1 = n/a).
    stmts_before: int = -1
    stmts_after: int = -1
    #: Alloc statement count before/after (mutating passes only; -1 = n/a).
    allocs_before: int = -1
    allocs_after: int = -1
    #: Pass-specific counters (committed, merged, checks, errors, ...).
    detail: Dict[str, object] = field(default_factory=dict)
    #: Per-rule rejection tallies aggregated from the pass's stats object.
    rejections: Dict[str, int] = field(default_factory=dict)

    @property
    def stmts_delta(self) -> int:
        if self.stmts_before < 0 or self.stmts_after < 0:
            return 0
        return self.stmts_after - self.stmts_before

    @property
    def allocs_delta(self) -> int:
        if self.allocs_before < 0 or self.allocs_after < 0:
            return 0
        return self.allocs_after - self.allocs_before

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "key": self.key,
            "seconds": self.seconds,
            "changed": self.changed,
            "skipped": self.skipped,
            "stmts_before": self.stmts_before,
            "stmts_after": self.stmts_after,
            "allocs_before": self.allocs_before,
            "allocs_after": self.allocs_after,
            "detail": dict(self.detail),
            "rejections": dict(self.rejections),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "PassRecord":
        return cls(**d)  # type: ignore[arg-type]


@dataclass
class PipelineTrace:
    """Everything one :class:`~repro.pipeline.PassManager` run observed."""

    pipeline: str  # preset name, or "custom"
    fun_name: str = ""
    records: List[PassRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def compile_seconds(self) -> float:
        """Exact total: every occurrence of every stage, once each."""
        return sum(r.seconds for r in self.records)

    def stage_seconds(self) -> Dict[str, float]:
        """Unique stage key -> seconds (insertion-ordered)."""
        return {r.key: r.seconds for r in self.records}

    def pass_names(self, kinds=(KIND_PASS,)) -> List[str]:
        """Ordered names of the records of the given kinds (occurrences
        included, skipped ones too -- the *scheduled* pipeline)."""
        return [r.name for r in self.records if r.kind in kinds]

    def executed_pass_names(self) -> List[str]:
        """Ordered names of pass records that actually ran."""
        return [
            r.name
            for r in self.records
            if r.kind == KIND_PASS and not r.skipped
        ]

    def record(self, key: str) -> Optional[PassRecord]:
        for r in self.records:
            if r.key == key:
                return r
        return None

    def rejections(self) -> Dict[str, Dict[str, int]]:
        """Pass name -> per-rule rejection tallies, aggregated over
        occurrences (the structured diagnostics of --explain)."""
        out: Dict[str, Dict[str, int]] = {}
        for r in self.records:
            if not r.rejections:
                continue
            tally = out.setdefault(r.name, {})
            for rule, count in r.rejections.items():
                tally[rule] = tally.get(rule, 0) + count
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "pipeline": self.pipeline,
            "fun_name": self.fun_name,
            "compile_seconds": self.compile_seconds,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "PipelineTrace":
        return cls(
            pipeline=str(d["pipeline"]),
            fun_name=str(d.get("fun_name", "")),
            records=[
                PassRecord.from_dict(r) for r in d.get("records", [])
            ],  # type: ignore[union-attr]
        )

    def to_json(self, **kw) -> str:
        return json.dumps(self.to_dict(), **kw)

    @classmethod
    def from_json(cls, s: str) -> "PipelineTrace":
        return cls.from_dict(json.loads(s))

    # ------------------------------------------------------------------
    # Pretty-printing (--explain)
    # ------------------------------------------------------------------
    def render(self) -> str:
        head = (
            f"{'key':<24s} {'kind':<8s} {'ms':>8s} "
            f"{'Δstmts':>7s} {'Δallocs':>8s}  notes"
        )
        lines = [
            f"== pipeline {self.pipeline!r} on {self.fun_name or '?'} -- "
            f"{self.compile_seconds * 1e3:.2f}ms, "
            f"{len([r for r in self.records if r.kind == KIND_PASS])} passes, "
            f"{len([r for r in self.records if r.kind == KIND_ANALYSIS])} "
            f"analyses, "
            f"{len([r for r in self.records if r.kind == KIND_VERIFY])} "
            f"verify points ==",
            head,
            "-" * len(head),
        ]
        for r in self.records:
            if r.skipped:
                note = "(skipped)"
            else:
                bits = [
                    f"{k}={v}"
                    for k, v in r.detail.items()
                    if not isinstance(v, (dict, list))
                ]
                if r.rejections:
                    bits.append(f"rejected={sum(r.rejections.values())}")
                note = " ".join(bits)
            ds = f"{r.stmts_delta:+d}" if r.stmts_before >= 0 else ""
            da = f"{r.allocs_delta:+d}" if r.allocs_before >= 0 else ""
            lines.append(
                f"{r.key:<24s} {r.kind:<8s} {r.seconds * 1e3:8.2f} "
                f"{ds:>7s} {da:>8s}  {note}"
            )
        rej = self.rejections()
        if rej:
            lines.append("rejections:")
            for name, tally in sorted(rej.items()):
                rendered = ", ".join(
                    f"{rule} x{count}" for rule, count in sorted(tally.items())
                )
                lines.append(f"  {name}: {rendered}")
        return "\n".join(lines)
