"""The shared per-compilation state: :class:`CompileContext`.

One :class:`CompileContext` lives for exactly one :func:`~repro.compiler.
compile_fun` invocation.  It owns

* the source function and the memory-annotated function being grown;
* the **shared prover pool** (:class:`repro.lmad.ProverPool`) and the
  **shared root assumption context**, handed to every pass (short-
  circuiting, fusion, reuse) so Prover/NonOverlapChecker memo tables and
  normalization work amortize across the whole pipeline instead of being
  rebuilt per pass;
* the validity ledger for **derived analyses** (``last_use``, ``alias``,
  ``mem_frees``): passes declare what they preserve and invalidate, and
  the :class:`~repro.pipeline.PassManager` re-runs an invalidated
  analysis automatically before the next pass that requires it;
* the accumulated pass payloads (``ShortCircuitStats``, ``FuseStats``,
  ``ReuseStats``) and verifier reports.

Passes receive the whole context; the ``opt``/``reuse`` passes also
accept it directly as their ``shared=`` parameter (duck-typed: they only
touch :attr:`provers` and :meth:`root_context`), keeping those modules
importable without :mod:`repro.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.lmad import ProverPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.analysis.diagnostics import Report
    from repro.ir import ast as A
    from repro.symbolic import Context

#: The derived analyses the manager knows how to (re-)run.  Values are
#: computed lazily by :meth:`CompileContext.ensure_analysis`.
ANALYSES = ("alias", "last_use", "mem_frees")


@dataclass
class CompileContext:
    """Shared state threaded through one pipeline run."""

    #: The (never mutated) source function handed to ``compile_fun``.
    source: "A.Fun"
    #: The memory-annotated function the passes transform in place
    #: (``None`` until memory introduction has run).
    mfun: Optional["A.Fun"] = None
    #: Run the :mod:`repro.analysis` verifier at the declared checkpoints.
    verify: bool = False
    #: Plumbed into every NonOverlapChecker the pipeline creates.
    enable_splitting: bool = True

    #: Shared Prover/NonOverlapChecker memos (see ProverPool).
    provers: ProverPool = field(default_factory=ProverPool)

    #: Analyses currently known valid for :attr:`mfun`.
    valid_analyses: Set[str] = field(default_factory=set)
    #: Last computed value per analysis (kept even when invalidated, for
    #: debugging; only :attr:`valid_analyses` membership grants reuse).
    analysis_values: Dict[str, object] = field(default_factory=dict)

    #: Pass payloads by pass name (e.g. ``"short_circuit"`` ->
    #: ShortCircuitStats).  A pass that runs multiple times keeps its
    #: latest payload.
    results: Dict[str, object] = field(default_factory=dict)
    #: Verify label -> :class:`repro.analysis.Report`.
    verify_reports: Dict[str, "Report"] = field(default_factory=dict)

    _root_ctx: Optional["Context"] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Shared symbolic state
    # ------------------------------------------------------------------
    def root_context(self) -> "Context":
        """The compilation's shared root assumption context.

        Built once from the function's declared assumptions and shapes;
        every pass that previously called ``fun.build_context()`` uses
        this object instead, so the pooled root prover's memo table
        survives from short-circuiting through fusion into reuse.  The
        only mutations passes apply to it are ``define``s of top-level
        scalar SSA equalities -- globally true facts, re-derived
        identically by every pass, so sharing is sound (see
        :class:`repro.lmad.ProverPool`).
        """
        if self._root_ctx is None:
            fun = self.mfun if self.mfun is not None else self.source
            self._root_ctx = fun.build_context()
        return self._root_ctx

    # ------------------------------------------------------------------
    # Derived-analysis ledger
    # ------------------------------------------------------------------
    def ensure_analysis(self, name: str) -> object:
        """Compute ``name`` if not currently valid; return its value."""
        if name not in ANALYSES:
            raise KeyError(f"unknown analysis {name!r} (have {ANALYSES})")
        if name in self.valid_analyses:
            return self.analysis_values[name]
        value = self._run_analysis(name)
        self.analysis_values[name] = value
        self.valid_analyses.add(name)
        return value

    def _run_analysis(self, name: str) -> object:
        assert self.mfun is not None, "analyses run on the memory IR"
        if name == "alias":
            from repro.ir.alias import analyze_aliases

            return analyze_aliases(self.mfun)
        if name == "last_use":
            from repro.ir.lastuse import analyze_last_uses

            info = analyze_last_uses(self.mfun)
            # Last-use analysis recomputes aliasing as its first step.
            self.analysis_values["alias"] = info.aliases
            self.valid_analyses.add("alias")
            return info
        if name == "mem_frees":
            from repro.reuse import annotate_frees

            return annotate_frees(self.mfun)
        raise KeyError(name)

    def invalidate(self, names) -> None:
        for name in names:
            self.valid_analyses.discard(name)

    def invalidate_all_except(self, preserved) -> None:
        self.valid_analyses &= set(preserved)

    # ------------------------------------------------------------------
    # Payload conveniences (typed accessors for the common stats)
    # ------------------------------------------------------------------
    @property
    def sc_stats(self):
        return self.results.get("short_circuit")

    @property
    def fuse_stats(self):
        return self.results.get("fuse")

    @property
    def reuse_stats(self):
        return self.results.get("reuse")
