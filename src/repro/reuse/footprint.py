"""Static peak-footprint estimation over the memory IR.

An abstract interpreter that walks a memory-annotated function the same
way :class:`repro.mem.exec.MemExecutor` does -- same binding resolution,
same existential indirection, same per-iteration loop freshness -- but
tracks only one thing: how many bytes of allocation are *live* at each
point.  Data values are replaced by an :data:`UNKNOWN` sentinel unless
they are scalars computable from the inputs (shapes, loop counts,
allocation sizes all are, in every benchmark).

The lifetime model is exactly the executor's accounting model:

* input parameter blocks are live for the whole run;
* an ``alloc`` creates a fresh instance each time it executes;
* blocks allocated inside a ``map`` die wholesale when the outermost
  kernel ends (per-thread growth is scaled by the map width first --
  every thread's scratch coexists on the simulated GPU, which is also
  what the vectorized engine's ``width * size`` buffers make concrete);
* at host level, an instance dies at its ``Let.mem_frees`` annotation
  (:mod:`repro.reuse.liveranges`), and instances allocated inside a host
  loop die at each iteration's end unless reachable from the carried
  state (the double-buffering rotation);
* an ``if`` with a statically-unknown condition takes the branch with
  the larger live footprint -- the only place the estimate can exceed
  the runtime high-water mark (no benchmark has one).

The estimate is exact -- equal to ``ExecStats.peak_bytes`` of a real-mode
run -- whenever map bodies allocate uniformly across threads, which the
vectorized engine independently requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.ir import ast as A
from repro.ir.interp import Interpreter
from repro.ir.types import ArrayType, DTYPE_INFO
from repro.mem.memir import MemBinding, binding_of, param_mem_name
from repro.symbolic import SymExpr


class FootprintError(Exception):
    """The estimator hit a quantity it cannot evaluate statically
    (an allocation size or trip count depending on array contents)."""


class _Unknown:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "UNKNOWN"


#: Sentinel for data-dependent scalar values.
UNKNOWN = _Unknown()


class _Inst:
    """One runtime instance of an allocation (or an input block)."""

    __slots__ = ("static", "nbytes", "freed", "space")

    def __init__(self, static: str, nbytes: int, space: str = "hbm"):
        self.static = static
        self.nbytes = nbytes
        self.freed = False
        self.space = space


@dataclass(frozen=True)
class _MemVal:
    """Abstract value of a memory-block binding."""

    inst: Optional[_Inst]


@dataclass(frozen=True)
class _ArrVal:
    """Abstract array value: just the instance it lives in."""

    inst: Optional[_Inst]
    dtype: str


@dataclass(frozen=True)
class FootprintEstimate:
    """Symbolically-derived allocation footprint of one run."""

    #: High-water mark of live bytes (input blocks + live allocations).
    peak_bytes: int
    #: Bytes held by the input parameter blocks (live throughout).
    param_bytes: int
    #: Total bytes ever allocated (matches ``ExecStats.alloc_bytes``).
    alloc_bytes: int
    #: Total allocation count (matches ``ExecStats.alloc_count``).
    alloc_count: int
    #: Per-space high-water marks (matches ``ExecStats.space_peak_bytes``
    #: of a real-mode run, with the same caveats as ``peak_bytes``).
    space_peaks: Dict[str, int] = field(default_factory=dict)

    @property
    def naive_bytes(self) -> int:
        """Footprint of the no-reuse model where every allocation lives
        forever -- the paper's baseline an allocator-free backend pays."""
        return self.param_bytes + self.alloc_bytes

    @property
    def saving(self) -> float:
        """Fraction of the naive footprint the lifetime model avoids."""
        if self.naive_bytes == 0:
            return 0.0
        return 1.0 - self.peak_bytes / self.naive_bytes


class _Estimator:
    def __init__(self, fun: A.Fun, inputs: Mapping[str, object]):
        self.fun = fun
        self.inputs = inputs
        self.live = 0
        self.peak = 0
        self.live_by_space: Dict[str, int] = {}
        self.peak_by_space: Dict[str, int] = {}
        self.param_bytes = 0
        self.alloc_total = 0
        self.alloc_count = 0
        self.depth = 0  # kernel (map) nesting depth
        self.kernel_insts: List[_Inst] = []
        self.kernel_baseline = 0
        self.kernel_baseline_by_space: Dict[str, int] = {}
        self.alloc_log: List[_Inst] = []
        self.by_name: Dict[str, List[_Inst]] = {}
        self.param_insts: Dict[str, _Inst] = {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _bump(self, nbytes: int, space: str = "hbm") -> None:
        self.live += nbytes
        if self.live > self.peak:
            self.peak = self.live
        live = self.live_by_space.get(space, 0) + nbytes
        self.live_by_space[space] = live
        if live > self.peak_by_space.get(space, 0):
            self.peak_by_space[space] = live

    def _note_alloc(self, static: str, nbytes: int, space: str = "hbm") -> _Inst:
        inst = _Inst(static, nbytes, space)
        self._bump(nbytes, space)
        self.alloc_total += nbytes
        self.alloc_count += 1
        self.alloc_log.append(inst)
        self.by_name.setdefault(static, []).append(inst)
        if self.depth:
            self.kernel_insts.append(inst)
        return inst

    def _free_inst(self, inst: _Inst) -> None:
        if inst.freed:
            return
        inst.freed = True
        self.live -= inst.nbytes
        self.live_by_space[inst.space] = (
            self.live_by_space.get(inst.space, 0) - inst.nbytes
        )
        lst = self.by_name.get(inst.static)
        if lst and inst in lst:
            lst.remove(inst)

    def _free_name(self, static: str) -> None:
        for inst in list(self.by_name.get(static, ())):
            self._free_inst(inst)

    # Snapshots let an unknown-condition ``if`` explore both branches.
    def _snap(self):
        return (
            self.live,
            self.alloc_total,
            self.alloc_count,
            list(self.alloc_log),
            [i.freed for i in self.alloc_log],
            {k: list(v) for k, v in self.by_name.items()},
            list(self.kernel_insts),
            dict(self.live_by_space),
        )

    def _restore(self, snap) -> None:
        (
            self.live,
            self.alloc_total,
            self.alloc_count,
            log,
            freed,
            by_name,
            kernel_insts,
            live_by_space,
        ) = snap
        self.live_by_space = dict(live_by_space)
        self.alloc_log = list(log)
        for inst, f in zip(self.alloc_log, freed):
            inst.freed = f
        self.by_name = {k: list(v) for k, v in by_name.items()}
        self.kernel_insts = list(kernel_insts)

    # ------------------------------------------------------------------
    # Scalar evaluation (UNKNOWN-propagating)
    # ------------------------------------------------------------------
    def _eval_sym(self, expr: SymExpr, env: Mapping[str, object]):
        vals: Dict[str, int] = {}
        for v in expr.free_vars():
            val = env.get(v, UNKNOWN)
            if isinstance(val, np.generic):
                val = val.item()
            if not isinstance(val, int) or isinstance(val, bool):
                return UNKNOWN
            vals[v] = val
        return expr.evaluate(vals)

    def _operand(self, op, env):
        if isinstance(op, str):
            return env.get(op, UNKNOWN)
        if isinstance(op, SymExpr):
            return self._eval_sym(op, env)
        return op

    def _require_int(self, val, what: str, stmt: A.Let) -> int:
        if isinstance(val, np.generic):
            val = val.item()
        if not isinstance(val, int) or isinstance(val, bool):
            raise FootprintError(
                f"{what} of {'/'.join(stmt.names)} is not statically known"
            )
        return val

    # ------------------------------------------------------------------
    # Binding resolution (mirrors MemExecutor)
    # ------------------------------------------------------------------
    @staticmethod
    def _inst_of(val) -> Optional[_Inst]:
        if isinstance(val, (_ArrVal, _MemVal)):
            return val.inst
        return None

    def _mem_inst(self, name: str, env: Mapping[str, object]) -> Optional[_Inst]:
        val = env.get(name)
        if isinstance(val, _MemVal):
            return val.inst
        pi = self.param_insts.get(name)
        if pi is not None:
            return pi
        return None

    def _binding_value(self, pe: A.PatElem, env) -> _ArrVal:
        b = binding_of(pe)
        assert b is not None and isinstance(pe.type, ArrayType)
        return _ArrVal(self._mem_inst(b.mem, env), pe.type.dtype)

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def run(self) -> FootprintEstimate:
        env: Dict[str, object] = {}
        declared = {p.name for p in self.fun.params}
        for k, v in self.inputs.items():
            if k not in declared and not hasattr(v, "shape"):
                env[k] = v
        for p in self.fun.params:
            if isinstance(p.type, ArrayType):
                self._bind_input_array(p, env)
            else:
                env[p.name] = self.inputs.get(p.name, UNKNOWN)
        self._block(self.fun.body, env)
        return FootprintEstimate(
            peak_bytes=self.peak,
            param_bytes=self.param_bytes,
            alloc_bytes=self.alloc_total,
            alloc_count=self.alloc_count,
            space_peaks=dict(self.peak_by_space),
        )

    def _bind_input_array(self, p: A.Param, env) -> None:
        t = p.type
        assert isinstance(t, ArrayType)
        given = self.inputs.get(p.name)
        if given is not None and hasattr(given, "shape"):
            # Unify symbolic shape vars with the concrete input shape,
            # exactly like MemExecutor._bind_input_array.
            for dim_expr, extent in zip(t.shape, np.shape(given)):
                fv = sorted(dim_expr.free_vars())
                if (
                    len(fv) == 1
                    and fv[0] not in env
                    and dim_expr == SymExpr.var(fv[0])
                ):
                    env[fv[0]] = int(extent)
        size = self._eval_sym(t.size(), env)
        if not isinstance(size, int):
            raise FootprintError(f"shape of input {p.name!r} is unknown")
        nbytes = size * DTYPE_INFO[t.dtype][1]
        inst = _Inst(param_mem_name(p.name), nbytes)
        self.param_bytes += nbytes
        self._bump(nbytes, "hbm")
        self.param_insts[param_mem_name(p.name)] = inst
        env[p.name] = _ArrVal(inst, t.dtype)

    # ------------------------------------------------------------------
    # Blocks and statements
    # ------------------------------------------------------------------
    def _block(self, block: A.Block, env: Dict[str, object]) -> List[object]:
        for stmt in block.stmts:
            self._stmt(stmt, env)
            if self.depth == 0:
                # Host-level lifetime ends (repro.reuse.liveranges).
                for m in stmt.mem_frees:
                    self._free_name(m)
        return [self._result(r, env) for r in block.result]

    def _result(self, name: str, env):
        if name in env:
            return env[name]
        pi = self.param_insts.get(name)
        if pi is not None:
            return _MemVal(pi)
        return UNKNOWN

    def _stmt(self, stmt: A.Let, env: Dict[str, object]) -> None:
        exp = stmt.exp

        if isinstance(exp, A.Alloc):
            size = self._require_int(
                self._eval_sym(exp.size, env), "allocation size", stmt
            )
            inst = self._note_alloc(
                stmt.names[0], size * DTYPE_INFO[exp.dtype][1], exp.space
            )
            env[stmt.names[0]] = _MemVal(inst)
            return

        if isinstance(exp, A.Lit):
            env[stmt.names[0]] = np.dtype(DTYPE_INFO[exp.dtype][0]).type(exp.value)
            return
        if isinstance(exp, A.ScalarE):
            env[stmt.names[0]] = self._eval_sym(exp.expr, env)
            return
        if isinstance(exp, (A.BinOp, A.UnOp)):
            x = self._operand(exp.x, env)
            y = self._operand(exp.y, env) if isinstance(exp, A.BinOp) else None
            if x is UNKNOWN or y is UNKNOWN:
                env[stmt.names[0]] = UNKNOWN
            else:
                try:
                    env[stmt.names[0]] = (
                        Interpreter._binop(exp.op, x, y)
                        if isinstance(exp, A.BinOp)
                        else Interpreter._unop(exp.op, x)
                    )
                except Exception:
                    env[stmt.names[0]] = UNKNOWN
            return

        if isinstance(exp, A.VarRef):
            pe = stmt.pattern[0]
            env[pe.name] = (
                self._binding_value(pe, env)
                if pe.is_array()
                else env.get(exp.name, UNKNOWN)
            )
            return

        if isinstance(
            exp,
            (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse,
             A.Iota, A.Replicate, A.Scratch, A.Copy, A.Concat),
        ):
            env[stmt.names[0]] = self._binding_value(stmt.pattern[0], env)
            return

        if isinstance(exp, A.Index):
            env[stmt.names[0]] = UNKNOWN
            return

        if isinstance(exp, A.Update):
            env[stmt.names[0]] = self._binding_value(stmt.pattern[0], env)
            return

        if isinstance(exp, A.Map):
            self._map(stmt, exp, env)
            return

        if isinstance(exp, A.Loop):
            self._loop(stmt, exp, env)
            return

        if isinstance(exp, A.If):
            self._if(stmt, exp, env)
            return

        if isinstance(exp, (A.Reduce, A.ArgMin)):
            for n in stmt.names:
                env[n] = UNKNOWN
            return

        raise FootprintError(f"unknown expression {type(exp).__name__}")

    # ------------------------------------------------------------------
    def _map(self, stmt: A.Let, exp: A.Map, env) -> None:
        width = self._require_int(
            self._operand(exp.width, env), "map width", stmt
        )
        dests = [
            self._binding_value(pe, env) if pe.is_array() else None
            for pe in stmt.pattern
        ]
        if self.depth == 0:
            self.kernel_baseline = self.live
            self.kernel_baseline_by_space = dict(self.live_by_space)
            self.kernel_insts = []
        self.depth += 1
        before = (self.alloc_total, self.alloc_count)
        before_by_space = dict(self.live_by_space)
        if width > 0:
            # One representative thread, growth scaled by the width: every
            # thread's scratch coexists for the duration of the kernel.
            child = dict(env)
            child[exp.lam.params[0]] = width // 2
            self._block(exp.lam.body, child)
            for sp in list(self.live_by_space):
                growth = self.live_by_space[sp] - before_by_space.get(sp, 0)
                if growth:
                    self._bump(growth * (width - 1), sp)
            self.alloc_total += (self.alloc_total - before[0]) * (width - 1)
            self.alloc_count += (self.alloc_count - before[1]) * (width - 1)
        self.depth -= 1
        if self.depth == 0:
            # Kernel scratch dies wholesale at the outermost map's end.
            for inst in self.kernel_insts:
                inst.freed = True
                lst = self.by_name.get(inst.static)
                if lst and inst in lst:
                    lst.remove(inst)
            self.kernel_insts = []
            self.live = self.kernel_baseline
            self.live_by_space = dict(self.kernel_baseline_by_space)
        for pe, dest in zip(stmt.pattern, dests):
            env[pe.name] = dest

    # ------------------------------------------------------------------
    def _loop(self, stmt: A.Let, exp: A.Loop, env) -> None:
        count = self._require_int(
            self._operand(exp.count, env), "loop count", stmt
        )
        state: List[object] = [env.get(init, UNKNOWN) for _, init in exp.carried]
        param_bindings: Dict[str, MemBinding] = getattr(
            exp.body, "param_bindings", {}
        )
        mark = len(self.alloc_log)
        for it in range(count):
            child = dict(env)
            child[exp.index] = it
            for (prm, _), val in zip(exp.carried, state):
                if isinstance(prm.type, ArrayType):
                    b = param_bindings.get(prm.name)
                    if b is not None:
                        if b.mem not in self.param_insts:
                            child[b.mem] = _MemVal(self._inst_of(val))
                        child[prm.name] = _ArrVal(
                            self._mem_inst(b.mem, child), prm.type.dtype
                        )
                    else:
                        child[prm.name] = val
                else:
                    child[prm.name] = val
            state = self._block(exp.body, child)
            if self.depth == 0:
                # Instances born in the loop die at iteration end unless
                # the carried state still reaches them (double-buffering
                # keeps exactly the rotating pair alive).
                reachable = {
                    id(i)
                    for i in (self._inst_of(v) for v in state)
                    if i is not None
                }
                for inst in self.alloc_log[mark:]:
                    if not inst.freed and id(inst) not in reachable:
                        self._free_inst(inst)
        self._bind_compound(stmt, state, env)

    # ------------------------------------------------------------------
    def _if(self, stmt: A.Let, exp: A.If, env) -> None:
        cond = self._operand(exp.cond, env)
        if cond is not UNKNOWN:
            block = exp.then_block if cond else exp.else_block
            vals = self._block(block, dict(env))
            self._bind_compound(stmt, vals, env)
            return
        # Statically unknown condition: explore both branches and keep
        # the heavier one (a safe over-approximation of either outcome).
        base = self._snap()
        vals_t = self._block(exp.then_block, dict(env))
        end_t = self._snap()
        self._restore(base)
        vals_e = self._block(exp.else_block, dict(env))
        if end_t[0] >= self.live:
            self._restore(end_t)
            vals = vals_t
        else:
            vals = vals_e
        self._bind_compound(stmt, vals, env)

    # ------------------------------------------------------------------
    def _bind_compound(self, stmt: A.Let, vals: List[object], env) -> None:
        for pe, val in zip(stmt.pattern, vals):
            if not pe.is_array():
                env[pe.name] = val
        for pe, val in zip(stmt.pattern, vals):
            if not pe.is_array():
                continue
            if pe.mem is not None:
                b = binding_of(pe)
                if b.mem not in self.param_insts and b.mem not in env:
                    env[b.mem] = _MemVal(self._inst_of(val))
                env[pe.name] = self._binding_value(pe, env)
            else:
                env[pe.name] = val


def estimate_peak(
    fun: A.Fun, inputs: Mapping[str, object]
) -> FootprintEstimate:
    """Estimate the peak allocation footprint of running ``fun``.

    ``inputs`` is the executor's input mapping (concrete arrays and/or
    the scalar shape variables); array contents are never inspected.
    """
    return _Estimator(fun, inputs).run()
