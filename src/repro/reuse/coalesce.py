"""Linear-scan coalescing of non-interfering memory blocks.

Walks every IR block and, for each allocation in first-touch order, tries
to re-home it into an earlier allocation of the same block whose live
range has already ended (no interference-graph edge).  The size relation
must be *provable* with :class:`repro.symbolic.Prover` under the block's
context (function assumptions + enclosing loop/map index ranges + local
scalar definitions):

* candidate <= survivor: the block simply fits;
* survivor <= candidate: the surviving ``alloc`` is widened to the
  candidate's size -- the max of the two, made explicit in the IR -- but
  only when every free variable of the new size is in scope at the
  surviving alloc's position;
* neither provable: the merge is rejected (``size`` in the stats), even
  if the sizes happen to coincide at run time.

Merging never crosses a block boundary, so per-iteration loop buffers
stay distinct (same soundness argument as :mod:`repro.mem.hoist`).  The
pass records a ``candidate -> survivor`` mapping and rewrites every
binding through :func:`repro.mem.hoist.rewrite_mem_bindings`; the
orphaned ``alloc`` statements are dropped by a following
``remove_dead_allocations`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir import ast as A
from repro.lmad import ProverPool
from repro.mem.hoist import rewrite_mem_bindings
from repro.reuse.interference import AllocNode, InterferenceGraph
from repro.reuse.liveranges import LiveRanges
from repro.symbolic import Context, Prover, SymExpr, sym


@dataclass
class ReuseStats:
    """What the coalescer did, and why candidates were passed over."""

    merged: int = 0
    widened: int = 0
    #: Deciding-tier tallies for this pass's size proofs (``structural``
    #: / ``polyhedral`` / ``unknown``), from the pool.
    tiers: Dict[str, int] = field(default_factory=dict)
    #: reason -> count for candidates that found no donor
    rejected: Dict[str, int] = field(default_factory=dict)
    #: (survivor, candidate, "equal" | "fits" | "widened")
    records: List[Tuple[str, str, str]] = field(default_factory=list)
    #: candidate -> survivor, after chain resolution
    mapping: Dict[str, str] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


def _operand_expr(op) -> SymExpr:
    return SymExpr.var(op) if isinstance(op, str) else sym(op)


class _Coalescer:
    def __init__(self, fun: A.Fun, shared=None):
        self.fun = fun
        #: Per-compilation shared state (duck-typed; see
        #: :class:`repro.pipeline.CompileContext`): supplies the shared
        #: root assumption context and the Prover memo pool the earlier
        #: passes already warmed up.
        self.shared = shared
        self._pool: ProverPool = (
            shared.provers if shared is not None else ProverPool()
        )
        self.ranges = LiveRanges(fun)
        self.stats = ReuseStats()
        self._engine = None

    def run(self) -> ReuseStats:
        self._pool.set_client("reuse")
        tier_base = dict(self._pool.tiers.get("reuse", {}))
        root = (
            self.shared.root_context()
            if self.shared is not None
            else self.fun.build_context()
        )
        self._block(
            self.fun.body,
            root,
            {p.name for p in self.fun.params},
        )
        if self.stats.mapping:
            rewrite_mem_bindings(self.fun, self.stats.mapping)
        tier_now = self._pool.tiers.get("reuse", {})
        self.stats.tiers = {
            k: tier_now.get(k, 0) - tier_base.get(k, 0)
            for k in set(tier_now) | set(tier_base)
        }
        return self.stats

    # ------------------------------------------------------------------
    def _block(self, block: A.Block, ctx: Context, outer: Set[str]) -> None:
        ctx = ctx.extended()
        # Scalar equalities anywhere in the block are facts for the whole
        # block (SSA names), so collect them before scanning for merges.
        for stmt in block.stmts:
            exp = stmt.exp
            if isinstance(exp, A.ScalarE):
                ctx.define(stmt.names[0], exp.expr)
            elif isinstance(exp, A.Lit) and exp.dtype == "i64":
                ctx.define(stmt.names[0], int(exp.value))
        self._coalesce_block(block, ctx, outer)

        defined = set(outer)
        for stmt in block.stmts:
            exp = stmt.exp
            if isinstance(exp, A.Map):
                mctx = ctx.extended()
                width = _operand_expr(exp.width)
                mctx.assume_range(exp.lam.params[0], 0, width - 1)
                self._block(
                    exp.lam.body, mctx, defined | set(exp.lam.params)
                )
            elif isinstance(exp, A.Loop):
                lctx = ctx.extended()
                count = _operand_expr(exp.count)
                lctx.assume_range(exp.index, 0, count - 1)
                bound = {exp.index} | {p.name for p, _ in exp.carried}
                self._block(exp.body, lctx, defined | bound)
            elif isinstance(exp, A.If):
                self._block(exp.then_block, ctx, set(defined))
                self._block(exp.else_block, ctx, set(defined))
            defined |= set(stmt.names)

    # ------------------------------------------------------------------
    def _coalesce_block(
        self, block: A.Block, ctx: Context, outer: Set[str]
    ) -> None:
        graph = InterferenceGraph(
            block, self.ranges.of_block(block)
        )
        scan = graph.ordered()
        if len(scan) < 2:
            return
        prover = self._pool.prover_for(ctx)
        self._engine = self._pool.engine_for(ctx)
        # Names defined before each statement, for the widening scope check.
        prefix: List[Set[str]] = []
        defined = set(outer)
        for stmt in block.stmts:
            prefix.append(set(defined))
            defined |= set(stmt.names)

        pool: List[AllocNode] = []
        for node in scan:
            donor = self._find_donor(node, pool, prover, prefix)
            if donor is None:
                pool.append(node)
                continue
            self.stats.mapping[node.mem] = donor.mem
            # The survivor inherits the candidate's remaining lifetime.
            donor.end = node.end

    def _find_donor(
        self,
        node: AllocNode,
        pool: List[AllocNode],
        prover: Prover,
        prefix: List[Set[str]],
    ) -> Optional[AllocNode]:
        saw_free = False
        for donor in sorted(pool, key=lambda n: n.pos):
            if InterferenceGraph.interferes(donor, node):
                continue
            if donor.dtype != node.dtype:
                saw_free = True
                self.stats.reject("dtype")
                continue
            if donor.stmt.exp.space != node.stmt.exp.space:
                # Coalescing across memory spaces would silently migrate
                # data between devices-within-the-device (MS02).
                saw_free = True
                self.stats.reject("space")
                continue
            mode = self._size_mode(donor, node, prover, prefix)
            if mode is None:
                saw_free = True
                self.stats.reject("size")
                continue
            if mode == "widened":
                donor.stmt.exp = A.Alloc(
                    node.size, donor.dtype, donor.stmt.exp.space
                )
                self.stats.widened += 1
            self.stats.merged += 1
            self.stats.records.append((donor.mem, node.mem, mode))
            return donor
        if pool and not saw_free:
            self.stats.reject("interference")
        return None

    def _size_mode(
        self,
        donor: AllocNode,
        node: AllocNode,
        prover: Prover,
        prefix: List[Set[str]],
    ) -> Optional[str]:
        widen_ok = node.size.free_vars() <= prefix[donor.pos]
        if prover.eq(node.size, donor.size):
            self._pool.record_tier("structural")
            return "equal"
        if prover.le(node.size, donor.size):
            self._pool.record_tier("structural")
            return "fits"
        if widen_ok and prover.le(donor.size, node.size):
            # max(donor, candidate) == candidate, provably: widening the
            # surviving alloc to the candidate's size covers both.
            self._pool.record_tier("structural")
            return "widened"
        # Polyhedral fallback: re-ask each inequality as the emptiness
        # of its negation (Fourier-Motzkin chains symbolic bounds the
        # interval prover's substitution strategies miss).
        if self._engine is not None:
            if self._engine.entails_nonneg(
                sym(donor.size) - sym(node.size)
            ):
                self._pool.record_tier("polyhedral")
                return "fits"
            if widen_ok and self._engine.entails_nonneg(
                sym(node.size) - sym(donor.size)
            ):
                self._pool.record_tier("polyhedral")
                return "widened"
        self._pool.record_tier("unknown")
        return None


def reuse_allocations(fun: A.Fun, shared=None) -> ReuseStats:
    """Coalesce provably non-overlapping allocations of ``fun`` in place.

    ``shared`` is the compilation's shared state (see
    :class:`repro.pipeline.CompileContext`): when given, the root
    assumption context and the Prover memo pool are reused across the
    whole pipeline instead of rebuilt per pass.
    """
    return _Coalescer(fun, shared=shared).run()
