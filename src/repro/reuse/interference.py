"""Interference graph over the blocks allocated in one IR block.

Two blocks *interfere* when their live ranges overlap: neither dies
before the other's first touch.  Ranges are statement intervals at the
allocating block's own nesting level (:class:`repro.reuse.liveranges
.BlockLiveness`); an escaping block's range is open-ended.  Only blocks
allocated in the *same* IR block are ever compared -- a block allocated
inside a ``loop`` body is a fresh buffer every iteration, so merging it
with anything outside the body would alias per-iteration instances that
double-buffering requires distinct (the same boundary
:mod:`repro.mem.hoist` refuses to move allocations across).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir import ast as A
from repro.reuse.liveranges import BlockLiveness
from repro.symbolic import SymExpr


@dataclass
class AllocNode:
    """One allocation at this block level, with its live range."""

    mem: str
    stmt: A.Let  # the alloc statement (mutated in place on widening)
    pos: int  # statement index of the alloc
    first: Optional[int]  # first touch; None when the block is never used
    end: Optional[int]  # last touch; None when live to the block's end

    @property
    def size(self) -> SymExpr:
        assert isinstance(self.stmt.exp, A.Alloc)
        return self.stmt.exp.size

    @property
    def dtype(self) -> str:
        assert isinstance(self.stmt.exp, A.Alloc)
        return self.stmt.exp.dtype


class InterferenceGraph:
    """Live-range overlap between same-block allocations."""

    def __init__(self, block: A.Block, liveness: BlockLiveness):
        self.nodes: Dict[str, AllocNode] = {}
        for i, stmt in enumerate(block.stmts):
            if not isinstance(stmt.exp, A.Alloc):
                continue
            mem = stmt.names[0]
            self.nodes[mem] = AllocNode(
                mem=mem,
                stmt=stmt,
                pos=i,
                first=liveness.first.get(mem),
                end=liveness.end_of(mem),
            )

    def ordered(self) -> List[AllocNode]:
        """Live nodes in order of first touch (the linear-scan order)."""
        used = [n for n in self.nodes.values() if n.first is not None]
        return sorted(used, key=lambda n: (n.first, n.pos))

    @staticmethod
    def interferes(a: AllocNode, b: AllocNode) -> bool:
        """Do the two live ranges overlap?

        A dead block (no touches) interferes with nothing; an escaping
        block (open range) interferes with everything that starts at or
        after its first touch.
        """
        if a.first is None or b.first is None:
            return False
        lo, hi = (a, b) if a.first <= b.first else (b, a)
        return lo.end is None or lo.end >= hi.first
