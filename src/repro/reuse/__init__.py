"""Memory reuse: lifetime analysis, block coalescing, footprint accounting.

The paper motivates its memory IR with two wins: eliding copies (array
short-circuiting, :mod:`repro.opt.shortcircuit`) and shrinking the
*allocation footprint* by reusing blocks whose lifetimes do not overlap.
This package is the second half:

* :mod:`repro.reuse.liveranges` -- per-block live ranges of memory blocks,
  derived from the bindings alone (with existential indirection expanded),
  plus the ``mem_frees`` annotations that tell the executor where a
  block's lifetime ends;
* :mod:`repro.reuse.interference` -- the interference graph over the
  blocks allocated in one IR block: two blocks interfere iff their live
  ranges overlap;
* :mod:`repro.reuse.coalesce` -- a linear-scan-style coalescer that
  rewrites a later ``alloc`` to reuse an earlier, provably dead block
  (sizes compared with :mod:`repro.symbolic.prove`; the surviving alloc
  is widened to the max of the merged sizes when the later block is the
  larger one);
* :mod:`repro.reuse.footprint` -- a peak-footprint estimator: an abstract
  interpreter over the memory IR that tracks live allocation bytes
  symbolically-sized but concretely-evaluated, mirroring the executor's
  runtime high-water mark.

Everything here is accounting or annotation-level rewriting: deleting the
``mem_frees`` annotations or disabling the coalescer never changes what a
program computes, only how many bytes back it.
"""

from repro.reuse.coalesce import ReuseStats, reuse_allocations
from repro.reuse.footprint import FootprintEstimate, estimate_peak
from repro.reuse.liveranges import LiveRanges, annotate_frees

__all__ = [
    "FootprintEstimate",
    "LiveRanges",
    "ReuseStats",
    "annotate_frees",
    "estimate_peak",
    "reuse_allocations",
]
