"""Live ranges of memory blocks, from the bindings alone.

A block's lifetime starts at its first *touch* -- the first statement
whose pattern bindings, nested bindings, or used arrays reference it --
and ends at its last.  The ``alloc`` statement itself is not a touch
(nothing reads or writes the block there), which is what gives the
coalescer room between hoisted allocations and their first use.

Existential memory (``emem``/``lmem``/``rmem``) is an indirection the
executor resolves at run time; a touch through an existential name counts
as a touch of every ground block it can stand for.  The expansion is
re-derived here from the bindings (the same model as the race checker's,
but implemented independently: :mod:`repro.analysis` verifies this
package's output and must not share its code).

Blocks reachable from a block's results *escape*: their lifetime extends
to the end of the enclosing block (for a loop body, into the next
iteration -- the double-buffering case the executor's per-iteration
freshness exists for).  Escaping blocks never get a free annotation; the
executor retires their per-iteration instances by reachability from the
carried state instead.

:func:`annotate_frees` writes each non-escaping block's last-touch
position into ``Let.mem_frees``.  The executor and the footprint
estimator apply these only at host level (outside kernels): blocks
allocated inside a ``map`` die wholesale when the kernel ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.lmad import IndexFn
from repro.mem.memir import (
    MemBinding,
    array_bindings,
    binding_of,
    iter_stmts,
    param_mem_name,
)


# ----------------------------------------------------------------------
# Existential indirection
# ----------------------------------------------------------------------
def build_indirection(fun: A.Fun) -> Dict[str, Tuple[str, ...]]:
    """Existential block name -> ground blocks it may stand for at run
    time (an ``if`` branch's block, a loop initializer's, or wherever the
    loop body left its result)."""
    indirect: Dict[str, Set[str]] = {}

    def register(mem: str, under: Set[str]) -> None:
        under.discard(mem)
        if under:
            indirect.setdefault(mem, set()).update(under)

    def block(blk: A.Block, parent: Dict[str, MemBinding]) -> Dict[str, MemBinding]:
        bindings = dict(parent)
        for stmt in blk.stmts:
            exp = stmt.exp
            if isinstance(exp, A.Loop):
                lb = dict(bindings)
                pb = getattr(exp.body, "param_bindings", {})
                for prm, _init in exp.carried:
                    if isinstance(prm.type, ArrayType) and prm.name in pb:
                        lb[prm.name] = pb[prm.name]
                child = block(exp.body, lb)
                for k, (prm, init) in enumerate(exp.carried):
                    if not isinstance(prm.type, ArrayType) or prm.name not in pb:
                        continue
                    under: Set[str] = set()
                    ib = bindings.get(init)
                    if ib is not None:
                        under.add(ib.mem)
                    rb = child.get(exp.body.result[k])
                    if rb is not None:
                        under.add(rb.mem)
                    register(pb[prm.name].mem, under)
                for k, pe in enumerate(stmt.pattern):
                    if not pe.is_array() or pe.mem is None:
                        continue
                    under = set()
                    if k < len(exp.body.result):
                        rb = child.get(exp.body.result[k])
                        if rb is not None:
                            under.add(rb.mem)
                    if k < len(exp.carried):
                        ib = bindings.get(exp.carried[k][1])
                        if ib is not None:
                            under.add(ib.mem)  # zero-trip: result is init
                    register(binding_of(pe).mem, under)
            elif isinstance(exp, A.Map):
                block(exp.lam.body, bindings)
            elif isinstance(exp, A.If):
                branches = [
                    block(sub, bindings)
                    for sub in (exp.then_block, exp.else_block)
                ]
                for k, pe in enumerate(stmt.pattern):
                    if not pe.is_array() or pe.mem is None:
                        continue
                    under = set()
                    for bb, sub in zip(
                        branches, (exp.then_block, exp.else_block)
                    ):
                        if k < len(sub.result):
                            rb = bb.get(sub.result[k])
                            if rb is not None:
                                under.add(rb.mem)
                    register(binding_of(pe).mem, under)
            for pe in stmt.pattern:
                if pe.is_array() and pe.mem is not None:
                    bindings[pe.name] = binding_of(pe)
        return bindings

    params = {
        p.name: MemBinding(param_mem_name(p.name), IndexFn.row_major(p.type.shape))
        for p in fun.params
        if isinstance(p.type, ArrayType)
    }
    block(fun.body, params)
    # Only names never bound by an alloc are true indirections.
    allocated = {
        s.names[0] for s in iter_stmts(fun.body) if isinstance(s.exp, A.Alloc)
    }
    return {
        m: tuple(sorted(t))
        for m, t in indirect.items()
        if m not in allocated
    }


def expand_mem(
    mem: str,
    indirect: Dict[str, Tuple[str, ...]],
    _seen: Tuple[str, ...] = (),
) -> Tuple[str, ...]:
    """Ground blocks a (possibly existential) name can resolve to."""
    if mem in _seen:
        return ()
    targets = indirect.get(mem)
    if targets is None:
        return (mem,)
    out: Dict[str, None] = {}
    for t in targets:
        for m in expand_mem(t, indirect, _seen + (mem,)):
            out[m] = None
    return tuple(out)


# ----------------------------------------------------------------------
# Per-block live ranges
# ----------------------------------------------------------------------
@dataclass
class BlockLiveness:
    """Lifetimes of allocated blocks as seen from one IR block."""

    block: A.Block
    #: blocks allocated by a statement of this block: mem -> stmt index
    alloc_at: Dict[str, int] = field(default_factory=dict)
    #: blocks allocated anywhere in this block's subtree
    subtree_allocs: Set[str] = field(default_factory=set)
    #: first / last statement (index in this block) touching each block
    first: Dict[str, int] = field(default_factory=dict)
    last: Dict[str, int] = field(default_factory=dict)
    #: subtree blocks reachable from this block's results
    escaping: Set[str] = field(default_factory=set)

    def end_of(self, mem: str) -> Optional[int]:
        """Last live position, or None when live to the block's end."""
        if mem in self.escaping:
            return None
        return self.last.get(mem, self.alloc_at.get(mem))


class LiveRanges:
    """Whole-function live-range analysis over memory blocks."""

    def __init__(self, fun: A.Fun):
        self.fun = fun
        self.indirect = build_indirection(fun)
        self.bindings = array_bindings(fun)
        self.alloc_names: Set[str] = {
            s.names[0]
            for s in iter_stmts(fun.body)
            if isinstance(s.exp, A.Alloc)
        }
        self.per_block: Dict[int, BlockLiveness] = {}
        self._walk(fun.body)

    def of_block(self, block: A.Block) -> BlockLiveness:
        return self.per_block[id(block)]

    # ------------------------------------------------------------------
    def _ground(self, mems) -> Set[str]:
        out: Set[str] = set()
        for m in mems:
            for g in expand_mem(m, self.indirect):
                if g in self.alloc_names:
                    out.add(g)
        return out

    def _stmt_mems(self, stmt: A.Let) -> Set[str]:
        """Every block name a statement touches (before expansion)."""
        mems: Set[str] = set()

        def of_stmt(s: A.Let) -> None:
            for pe in s.pattern:
                if pe.is_array() and pe.mem is not None:
                    mems.add(binding_of(pe).mem)
            if isinstance(s.exp, A.Loop):
                for b in getattr(s.exp.body, "param_bindings", {}).values():
                    mems.add(b.mem)
            for blk in A.sub_blocks(s.exp):
                # Existential memory flows through results by name.
                mems.update(r for r in blk.result if r not in self.bindings)
                for sub in blk.stmts:
                    of_stmt(sub)

        if isinstance(stmt.exp, A.Alloc):
            return mems  # the definition is not a touch
        of_stmt(stmt)
        for used in A.exp_uses(stmt.exp):
            b = self.bindings.get(used)
            if b is not None:
                mems.add(b.mem)
        return mems

    def _walk(self, block: A.Block) -> Set[str]:
        bl = BlockLiveness(block)
        for i, stmt in enumerate(block.stmts):
            if isinstance(stmt.exp, A.Alloc):
                bl.alloc_at[stmt.names[0]] = i
                bl.subtree_allocs.add(stmt.names[0])
            for sub in A.sub_blocks(stmt.exp):
                bl.subtree_allocs |= self._walk(sub)
            for m in self._ground(self._stmt_mems(stmt)):
                bl.first.setdefault(m, i)
                bl.last[m] = i
        result_mems: Set[str] = set()
        for r in block.result:
            b = self.bindings.get(r)
            result_mems.add(b.mem if b is not None else r)
        bl.escaping = self._ground(result_mems) & bl.subtree_allocs
        self.per_block[id(block)] = bl
        return bl.subtree_allocs


# ----------------------------------------------------------------------
# Free annotations
# ----------------------------------------------------------------------
def annotate_frees(fun: A.Fun) -> int:
    """Write last-touch positions into ``Let.mem_frees``; returns how many
    annotations were placed.

    A block is annotated at every scope level of its subtree where it is
    touched (an inner-loop block's current instance dies at its last use
    inside the body; whatever instances survive the loop die at the loop
    statement's own last-touch position in the enclosing block).  Frees
    are accounting: the executor pops the block from its live set, it
    never deletes the buffer.
    """
    ranges = LiveRanges(fun)
    placed = 0
    for bl in ranges.per_block.values():
        by_stmt: Dict[int, List[str]] = {}
        for m in bl.subtree_allocs:
            if m in bl.escaping:
                continue
            pos = bl.last.get(m)
            if pos is None:
                # Never touched at this level: an alloc here is dead on
                # arrival (free it where it was made); deeper allocs were
                # already handled at their own level.
                pos = bl.alloc_at.get(m)
                if pos is None:
                    continue
            by_stmt.setdefault(pos, []).append(m)
        for i, stmt in enumerate(bl.block.stmts):
            frees = tuple(sorted(by_stmt.get(i, ())))
            stmt.mem_frees = frees
            placed += len(frees)
    return placed
