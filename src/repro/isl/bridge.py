"""LMAD / index-function to integer-set conversions.

An LMAD ``t + {(n1:s1), ..., (nq:sq)}`` *is* an affine relation from
index space to flat offsets:

    { [i1..iq] -> [a] : a == t + i1*s1 + ... + iq*sq
                        and 0 <= ik and ik <= nk - 1 }

so the whole access-set vocabulary of the structural checker embeds
exactly.  :func:`ixfn_to_relation` extends this to *composed* index
functions -- the ones :func:`IndexFn.as_single` gives up on -- by
row-major unranking each intermediate flat offset through the next
LMAD's shape with existential coordinates, mirroring the concrete
``np.unravel_index`` step in :meth:`IndexFn.gather_offsets`:

    prev == y1*R1 + ... + yq*Rq,   0 <= yk < shape_k,
    next == t + y1*s1 + ... + yq*sq

with ``Rk`` the row-major strides of the shape.  The divs/mods of
unranking thus become stride constraints with existentials, never
explicit operators.

Parameter lifting (:func:`lift_parameters`) promotes free symbols that
only occur additively (loop counters, thread indices) into constrained
dimensions using the prover context's bounds -- Fourier-Motzkin can
then chain those bounds where the interval strategies of
:class:`~repro.symbolic.Prover` give up.  Lifting is sound for EMPTY
verdicts (the true parameter values satisfy their bounds) but forfeits
NONEMPTY exactness, which the engine accounts for.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.isl.terms import BasicRel, BasicSet, Constraint, fresh_name
from repro.lmad.lmad import Lmad
from repro.symbolic.expr import SymExpr, sym


def lmad_to_relation(l: Lmad, tag: str = "i") -> BasicRel:
    """The access relation ``[index tuple] -> [flat offset]`` of one LMAD."""
    dims = [fresh_name(f"_{tag}") for _ in l.dims]
    addr = fresh_name("_a")
    expr = l.offset
    cons: List[Constraint] = []
    for name, d in zip(dims, l.dims):
        v = SymExpr.var(name)
        expr = expr + v * d.stride
        cons.append(Constraint.ge(v))
        cons.append(Constraint.ge(d.shape - 1 - v))
    cons.append(Constraint.eq(SymExpr.var(addr) - expr))
    return BasicRel(tuple(dims), (addr,), tuple(cons))


def lmad_to_set(l: Lmad, tag: str = "i") -> BasicSet:
    """The abstract *offset set* of an LMAD (indices existentialized)."""
    return lmad_to_relation(l, tag).range()


def unrank_relation(shape: Sequence[SymExpr], out: Lmad) -> BasicRel:
    """``[flat] -> [addr]``: row-major unranking through ``shape``,
    then application of ``out``'s strides (one composition step)."""
    flat = fresh_name("_f")
    addr = fresh_name("_a")
    coords = [fresh_name("_y") for _ in shape]
    cons: List[Constraint] = []
    rank_expr = sym(0)
    stride: SymExpr = sym(1)
    row_strides: List[SymExpr] = []
    for extent in reversed(list(shape)):
        row_strides.append(stride)
        stride = stride * extent
    row_strides.reverse()
    addr_expr = out.offset
    for name, extent, rstride, d in zip(coords, shape, row_strides, out.dims):
        v = SymExpr.var(name)
        rank_expr = rank_expr + v * rstride
        addr_expr = addr_expr + v * d.stride
        cons.append(Constraint.ge(v))
        cons.append(Constraint.ge(extent - 1 - v))
    cons.append(Constraint.eq(SymExpr.var(flat) - rank_expr))
    cons.append(Constraint.eq(SymExpr.var(addr) - addr_expr))
    return BasicRel((flat,), (addr,), tuple(cons), tuple(coords))


def ixfn_to_relation(ixfn) -> BasicRel:
    """Access relation ``[index tuple] -> [flat offset]`` of any IndexFn.

    Works for compositions (the non-invertible case): each outer LMAD
    contributes an unranking step with existential coordinates.
    """
    rel = lmad_to_relation(ixfn.lmads[-1])
    for outer in reversed(ixfn.lmads[:-1]):
        rel = rel.compose(unrank_relation(outer.shape, outer))
    return rel


def ixfn_to_set(ixfn) -> BasicSet:
    return ixfn_to_relation(ixfn).range()


def overlap_set(a, b) -> BasicSet:
    """The set of flat offsets touched by *both* access relations.

    ``a`` and ``b`` may be LMADs or IndexFns; the result is empty iff
    the two access sets are disjoint.
    """
    sa = _as_set(a)
    sb = _as_set(b)
    sb = sb.rename(dict(zip(sb.dims, sa.dims)))
    return sa.intersect(sb)


def _as_set(x) -> BasicSet:
    if isinstance(x, Lmad):
        return lmad_to_set(x)
    return ixfn_to_set(x)


def slice_box_difference(
    widened: Lmad, starts: Sequence[SymExpr], counts: Sequence[SymExpr]
) -> "IntSet":
    """Offsets of ``widened`` *outside* the box ``starts/counts``.

    This is the non-convex "extra" region a widened slice inverse drags
    in: the widened LMAD's full footprint minus the sub-box that the
    original slice actually covered.  Because the widened LMAD's own
    index coordinates are available (we built it), the difference is
    taken in index space -- one basic set per box face -- and pushed
    through the address map, sidestepping the universal quantifier a
    flat-space complement would need.
    """
    from repro.isl.terms import IntSet

    rel = lmad_to_relation(widened)
    pieces: List[BasicSet] = []
    for k, (s, c) in enumerate(zip(starts, counts)):
        v = SymExpr.var(rel.in_dims[k])
        below = rel.intersect_domain(
            BasicSet(rel.in_dims, (Constraint.ge(sym(s) - 1 - v),))
        )
        above = rel.intersect_domain(
            BasicSet(rel.in_dims, (Constraint.ge(v - sym(s) - sym(c)),))
        )
        pieces.append(below.range())
        pieces.append(above.range())
    return IntSet(tuple(pieces))


def lift_parameters(bs: BasicSet, ctx, max_lift: int = 12) -> Tuple[BasicSet, bool]:
    """Promote additively-occurring free parameters into bounded dims.

    A parameter qualifies when every occurrence across all constraints
    is linear with an integer coefficient (i.e. it is an offset-like
    quantity such as a loop counter, not a stride).  Its context bounds
    become constraints; parameters without any bound are still lifted
    (Fourier-Motzkin simply drops them), which lets *relative* facts
    like ``j_other >= j + 1`` participate.

    Returns the lifted set and whether anything was lifted (in which
    case a NONEMPTY verdict must degrade to UNKNOWN).

    Constraints are rewritten through ``ctx.normalize`` *first*: a
    parameter that looks additive in the raw constraints may reappear
    inside a product after equality rewriting (``n == q*b + 1`` turns an
    additive ``b`` into a stride), and lifting it would make the set
    non-affine.
    """
    bs = BasicSet(
        bs.dims,
        tuple(Constraint(ctx.normalize(c.expr), c.is_eq) for c in bs.constraints),
        bs.exists,
    )
    taken = set(bs.all_vars())
    candidates: List[str] = []
    free: set = set()
    for c in bs.constraints:
        free |= set(c.expr.free_vars())
    for v in sorted(free - taken):
        ok = True
        for c in bs.constraints:
            coeffs = c.expr.coefficients_in(v)
            for power, coeff in coeffs.items():
                if power > 1 or (power == 1 and coeff.free_vars() & taken):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            candidates.append(v)
        if len(candidates) >= max_lift:
            break
    # A candidate whose coefficient mentions *another* candidate would
    # become bilinear once both are set variables; drop until stable.
    while True:
        cset = set(candidates)
        dropped = False
        for v in list(candidates):
            for c in bs.constraints:
                coeffs = c.expr.coefficients_in(v)
                if any(
                    p == 1 and coeff.free_vars() & (cset - {v})
                    for p, coeff in coeffs.items()
                ):
                    candidates.remove(v)
                    dropped = True
                    break
        if not dropped:
            break
    if not candidates:
        return bs, False

    extra: List[Constraint] = []
    for v in candidates:
        b = ctx.bound(v)
        ve = SymExpr.var(v)
        if b.lower is not None:
            extra.append(Constraint.ge(ve - b.lower))
        if b.upper is not None:
            extra.append(Constraint.ge(b.upper - ve))
    lifted = BasicSet(
        bs.dims,
        bs.constraints + tuple(extra),
        bs.exists + tuple(candidates),
    )
    return lifted, True
