"""Exact emptiness for affine integer sets (omega-style elimination).

The algorithm eliminates set variables one at a time until only
parameter ("ground") facts remain, then asks the interval/rewrite
:class:`~repro.symbolic.Prover` to settle those:

1. **Normalization / tightening**: constraint expressions are rewritten
   with the context's equalities (``n == q*b + 1`` style), ground facts
   are discharged or flagged as contradictions, and inequalities with
   integer variable coefficients are divided by their gcd with the
   constant floor-tightened (the classic integer tightening step).
   Equalities get the gcd divisibility test: ``2x + 4y + 1 == 0`` is
   immediately empty.

2. **Equality substitution**: an equality with a ``+-1`` coefficient on
   some variable is solved and substituted (exact over Z).  A non-unit
   integer coefficient is used when the rest divides exactly.

3. **Fourier-Motzkin** on a variable whose coefficient *signs* are all
   decidable (integer, or settled by the prover for symbolic strides).
   A variable bounded on one side only is eliminated by dropping its
   constraints (exact).  Each lower/upper pair combines into the *real
   shadow*; a derived contradiction is sound for Z regardless of
   coefficients.  When both coefficients are non-unit integers the
   elimination is inexact, so the *dark shadow* (``a*B - c*A >=
   (a-1)(c-1)``) is kept alongside: a point in the dark shadow is
   guaranteed to extend to an integer value of the eliminated variable.
   If the dark shadow is empty but the real shadow is not, the omega
   test *splinters*: integer solutions, if any, sit on one of finitely
   many hyperplanes ``a*v == alpha + i``, each checked recursively.

Verdicts are tri-state.  ``EMPTY`` is exact (never claimed unless the
set truly has no integer points); ``NONEMPTY`` is only claimed when
every elimination step was integer-exact; anything else is ``UNKNOWN``.
"""

from __future__ import annotations

import enum
from math import gcd
from typing import List, Optional, Sequence, Tuple

from repro.isl.terms import BasicSet, Constraint
from repro.symbolic.expr import SymExpr
from repro.symbolic.prove import Prover, Sign


class Verdict(enum.Enum):
    EMPTY = "empty"
    NONEMPTY = "nonempty"
    UNKNOWN = "unknown"


def _lin_coeffs(t: SymExpr, vset) -> List[SymExpr]:
    out = []
    for v in t.free_vars():
        coeff = t.coefficients_in(v).get(1)
        if coeff is not None:
            out.append(coeff)
    return out


#: Caps keeping elimination from blowing up on adversarial inputs; a cap
#: hit degrades the verdict to UNKNOWN, never to a wrong answer.
MAX_CONSTRAINTS = 160
MAX_STEPS = 48
MAX_SPLINTERS = 24
MAX_DEPTH = 5
BRANCH_BUDGET = 2
MAX_PIVOTS = 6


def set_empty(s, prover: Prover) -> Verdict:
    """Emptiness of a :class:`BasicSet` or :class:`IntSet`."""
    if isinstance(s, BasicSet):
        return basic_empty(s, prover)
    verdicts = [basic_empty(p, prover) for p in s.pieces]
    if any(v is Verdict.NONEMPTY for v in verdicts):
        return Verdict.NONEMPTY
    if all(v is Verdict.EMPTY for v in verdicts):
        return Verdict.EMPTY
    return Verdict.UNKNOWN


def basic_empty(bs: BasicSet, prover: Prover) -> Verdict:
    if not bs.is_affine():
        return Verdict.UNKNOWN
    return _empty_rec(
        prover, list(bs.all_vars()), list(bs.constraints), 0, BRANCH_BUDGET
    )


def _empty_rec(
    prover: Prover,
    variables: List[str],
    cons: List[Constraint],
    depth: int,
    budget: int,
) -> Verdict:
    """Elimination, then integer branch-and-bound on a unit bound.

    When elimination degrades to UNKNOWN (symbolic non-unit coefficient
    pairs -- e.g. ``n*r`` bounded into an interval shorter than ``n``),
    the integer dichotomy ``v == L  or  v >= L + 1`` taken at an
    *existing* unit-coefficient bound ``v >= L`` partitions the set
    exactly; each arm is usually settled by plain Fourier-Motzkin.
    This is the integer-set analogue of the structural checker's
    dimension splitting ``[l..u] -> {l} union [l+1..u]``.
    """
    elim = _Eliminator(prover)
    verdict = elim.run(list(variables), list(cons), depth)
    if verdict is not Verdict.UNKNOWN or budget <= 0:
        return verdict
    for var, bound, from_below in _unit_pivots(variables, cons):
        v = SymExpr.var(var)
        if from_below:  # v >= bound is entailed
            arms = (
                cons + [Constraint.eq(v - bound)],
                cons + [Constraint.ge(v - bound - 1)],
            )
        else:  # v <= bound is entailed
            arms = (
                cons + [Constraint.eq(v - bound)],
                cons + [Constraint.ge(bound - 1 - v)],
            )
        results = [
            _empty_rec(prover, variables, arm, depth + 1, budget - 1)
            for arm in arms
        ]
        if any(r is Verdict.NONEMPTY for r in results):
            return Verdict.NONEMPTY
        if all(r is Verdict.EMPTY for r in results):
            return Verdict.EMPTY
    return Verdict.UNKNOWN


def _unit_pivots(variables: Sequence[str], cons: Sequence[Constraint]):
    """Candidate ``(var, bound_expr, is_lower)`` branch pivots.

    A pivot is a unit-coefficient inequality bound on a variable; the
    branch at such a bound covers the set exactly.  Variables that also
    appear somewhere with a *symbolic* coefficient come first: those are
    the ones elimination got stuck on.
    """
    vset = set(variables)
    stuck = set()
    for c in cons:
        for mono, _coeff in c.expr.terms.items():
            mvars = [mv for mv, _p in mono if mv in vset]
            if len(mvars) == 1 and len(mono) > 1:
                stuck.add(mvars[0])

    pivots = []
    for c in cons:
        if c.is_eq:
            continue
        for var in vset & set(c.expr.free_vars()):
            coeff = c.expr.coefficients_in(var).get(1)
            ci = coeff.as_int() if coeff is not None else None
            if ci not in (1, -1):
                continue
            rest = c.expr - SymExpr.var(var) * ci
            if rest.free_vars() & vset:
                continue  # bound must be in terms of parameters only
            if ci == 1:  # var + rest >= 0  ==>  var >= -rest
                pivots.append((var, -rest, True))
            else:  # -var + rest >= 0  ==>  var <= rest
                pivots.append((var, rest, False))
    pivots.sort(key=lambda p: (p[0] not in stuck,))
    return pivots[:MAX_PIVOTS]


class _Eliminator:
    def __init__(self, prover: Prover):
        self.prover = prover
        self.exact = True
        self.steps = 0

    # ------------------------------------------------------------------
    def run(
        self, variables: List[str], cons: List[Constraint], depth: int = 0
    ) -> Verdict:
        if depth > MAX_DEPTH:
            return Verdict.UNKNOWN
        residual_unknown = False
        while True:
            self.steps += 1
            if self.steps > MAX_STEPS or len(cons) > MAX_CONSTRAINTS:
                return Verdict.UNKNOWN

            simplified = self._simplify(variables, cons)
            if simplified is None:
                return Verdict.EMPTY
            cons, ground_unknown = simplified
            residual_unknown = residual_unknown or ground_unknown

            variables = [
                v
                for v in variables
                if any(v in c.expr.free_vars() for c in cons)
            ]
            if not variables:
                if residual_unknown or not self.exact:
                    return Verdict.UNKNOWN
                return Verdict.NONEMPTY

            if self._substitute_equality(variables, cons):
                continue

            fm = self._fourier_motzkin(variables, cons, depth)
            if fm is None:
                return Verdict.UNKNOWN
            verdict, cons = fm
            if verdict is Verdict.NONEMPTY and (
                residual_unknown or not self.exact
            ):
                # The dark-shadow witness lives in an over-approximation
                # (an earlier elimination was inexact), so it proves
                # nothing about the original set.  EMPTY claims are
                # unaffected: emptiness of an over-approximation is
                # emptiness of the set.
                return Verdict.UNKNOWN
            if verdict is not None:
                return verdict

    # ------------------------------------------------------------------
    def _simplify(
        self, variables: Sequence[str], cons: List[Constraint]
    ) -> Optional[Tuple[List[Constraint], bool]]:
        """Normalize, tighten, and discharge ground constraints.

        Returns ``None`` on a provable contradiction (set is empty);
        otherwise the surviving constraints and whether an undecidable
        ground fact was dropped (which forfeits a NONEMPTY claim).
        """
        vset = set(variables)
        out: List[Constraint] = []
        seen = set()
        ground_unknown = False
        for c in cons:
            e = self.prover.ctx.normalize(c.expr)
            fv = e.free_vars() & vset
            if not fv:
                if c.is_eq:
                    if e.is_zero():
                        continue
                    if self.prover.pos(e) or self.prover.neg(e):
                        return None
                    ground_unknown = True
                    continue
                if self.prover.nonneg(e):
                    continue
                if self.prover.neg(e):
                    return None
                ground_unknown = True
                continue

            tightened = self._tighten(e, fv, c.is_eq)
            if tightened is None:
                return None
            key = (tightened, c.is_eq)
            if key not in seen:
                seen.add(key)
                out.append(Constraint(tightened, c.is_eq))
                if not c.is_eq:
                    derived = self._symbolic_tighten(tightened, vset)
                    if derived is not None:
                        dkey = (derived, False)
                        if dkey not in seen:
                            seen.add(dkey)
                            out.append(Constraint.ge(derived))
        return out, ground_unknown

    def _symbolic_tighten(self, e: SymExpr, vset) -> Optional[SymExpr]:
        """Integer tightening across a *symbolic* common coefficient.

        If the variable part of ``e >= 0`` factors as ``a*T`` with ``a``
        a provably-positive parameter expression and ``T`` an integer
        combination of set variables, then ``a*T >= alpha`` implies
        ``T >= ceil(alpha/a)`` -- resolved by asking the prover to
        compare ``alpha`` against small multiples of ``a``.  This is
        what turns ``n*(r - i) >= n + 1`` into the unit-coefficient
        fact ``r - i >= 2`` that Fourier-Motzkin can finish off.
        """
        var_part = SymExpr.const(0)
        for v in vset & set(e.free_vars()):
            coeff = e.coefficients_in(v).get(1)
            if coeff is not None:
                var_part = var_part + SymExpr.var(v) * coeff
        alpha = -(e - var_part)  # a*T >= alpha
        for v in sorted(vset & set(e.free_vars())):
            a = e.coefficients_in(v).get(1)
            if a is None or a.as_int() is not None:
                continue
            sign = self.prover.sign(a)
            if sign is Sign.NEGATIVE:
                a = -a
            elif sign is not Sign.POSITIVE:
                continue
            t = var_part.div_exact(a)
            if t is None or not (t.free_vars() <= vset):
                continue
            if any(coeff.as_int() is None for coeff in _lin_coeffs(t, vset)):
                continue
            for k in (3, 2, 1, 0, -1):
                # alpha > (k-1)*a  ==>  T >= k  (T integral, a > 0)
                if self.prover.pos(alpha - (k - 1) * a):
                    return t - k
            return None
        return None

    def _tighten(
        self, e: SymExpr, fv, is_eq: bool
    ) -> Optional[SymExpr]:
        """GCD-normalize variable coefficients; None means contradiction."""
        coeffs: List[int] = []
        for v in fv:
            coeff = e.coefficients_in(v).get(1)
            ci = coeff.as_int() if coeff is not None else None
            if ci is None:
                return e  # symbolic stride: leave untouched
            coeffs.append(ci)
        g = 0
        for ci in coeffs:
            g = gcd(g, abs(ci))
        if g <= 1:
            return e
        var_part = SymExpr.const(0)
        for v in fv:
            ci = e.coefficients_in(v).get(1).as_int()
            var_part = var_part + SymExpr.var(v) * ci
        rest = e - var_part
        rest_div = rest.div_exact(g)
        if rest_div is not None:
            return var_part.div_exact(g) + rest_div
        rest_int = rest.as_int()
        if rest_int is None:
            return e
        if is_eq:
            return None if rest_int % g != 0 else e
        # c + g*(...) >= 0  ==>  floor(c/g) + (...) >= 0 over Z.
        return var_part.div_exact(g) + (rest_int // g)

    # ------------------------------------------------------------------
    def _substitute_equality(
        self, variables: List[str], cons: List[Constraint]
    ) -> bool:
        """Solve one equality for a variable and substitute (exact)."""
        for idx, c in enumerate(cons):
            if not c.is_eq:
                continue
            for v in variables:
                coeff = c.expr.coefficients_in(v).get(1)
                if coeff is None:
                    continue
                ci = coeff.as_int()
                if ci is None:
                    continue
                rest = c.expr - SymExpr.var(v) * ci
                if abs(ci) == 1:
                    solution = rest * (-ci)  # v == -rest/ci
                elif (div := rest.div_exact(ci)) is not None:
                    solution = -div
                else:
                    continue
                del cons[idx]
                for j, other in enumerate(cons):
                    cons[j] = other.substitute({v: solution})
                variables.remove(v)
                return True
        return False

    # ------------------------------------------------------------------
    def _fourier_motzkin(
        self, variables: List[str], cons: List[Constraint], depth: int
    ) -> Optional[Tuple[Optional[Verdict], List[Constraint]]]:
        """Eliminate one variable.  None means every variable is blocked."""
        best = None
        for v in variables:
            split = self._classify(v, cons)
            if split is None:
                continue
            lowers, uppers, others = split
            # Exact eliminations first: a pair is integer-exact when either
            # coefficient is literally 1, so count the pairs that are not.
            inexact = sum(
                1
                for a, _ in lowers
                for c, _ in uppers
                if a.as_int() != 1 and c.as_int() != 1
            )
            cost = (inexact, len(lowers) * len(uppers))
            if best is None or cost < best[0]:
                best = (cost, v, lowers, uppers, others)
        if best is None:
            return None
        _, v, lowers, uppers, others = best
        variables.remove(v)

        if not lowers or not uppers:
            # Unbounded on one side: always satisfiable in v (exact).
            return None if others is None else (None, others)

        real: List[Constraint] = list(others)
        dark: List[Constraint] = list(others)
        inexact_pairs = []
        for a, alpha in lowers:  # a*v >= alpha, a > 0
            for cc, beta in uppers:  # c*v <= beta, c > 0
                shadow = self._scaled_sum(cc, alpha, a, beta)
                real.append(Constraint.ge(shadow))
                ai, ci = a.as_int(), cc.as_int()
                if ai == 1 or ci == 1:
                    dark.append(Constraint.ge(shadow))
                else:
                    dark.append(Constraint.ge(shadow - (a - 1) * (cc - 1)))
                    inexact_pairs.append((a, cc))

        if not inexact_pairs:
            return None, real

        # Inexact elimination: try to keep an exact verdict the omega way.
        sub = _Eliminator(self.prover)
        if sub.run(list(variables), list(real), depth + 1) is Verdict.EMPTY:
            return Verdict.EMPTY, real
        dark_sub = _Eliminator(self.prover)
        dark_verdict = dark_sub.run(list(variables), dark, depth + 1)
        if dark_verdict is Verdict.NONEMPTY:
            return Verdict.NONEMPTY, real
        if dark_verdict is Verdict.EMPTY:
            splintered = self._splinter(
                v, variables, cons, lowers, uppers, depth
            )
            if splintered is not None:
                return splintered, real
        self.exact = False
        return None, real

    def _scaled_sum(self, cc, alpha, a, beta) -> SymExpr:
        """Real shadow of ``a*v >= alpha`` and ``c*v <= beta``."""
        return a * beta - cc * alpha

    def _classify(self, v: str, cons: List[Constraint]):
        """Split constraints by the sign of their coefficient on ``v``.

        Returns ``(lowers, uppers, others)`` with each bound as a
        ``(positive_coeff, bound_expr)`` pair, or ``None`` when some
        coefficient sign cannot be decided (variable is blocked).
        Equalities touching ``v`` are expanded into two inequalities.
        """
        lowers: List[Tuple[SymExpr, SymExpr]] = []
        uppers: List[Tuple[SymExpr, SymExpr]] = []
        others: List[Constraint] = []
        for c in cons:
            coeff = c.expr.coefficients_in(v).get(1)
            if coeff is None:
                others.append(c)
                continue
            exprs = [c.expr, -c.expr] if c.is_eq else [c.expr]
            for e in exprs:
                co = e.coefficients_in(v).get(1)
                rest = e - SymExpr.var(v) * co
                ci = co.as_int()
                if ci is not None:
                    sign = Sign.POSITIVE if ci > 0 else Sign.NEGATIVE
                else:
                    sign = self.prover.sign(co)
                if sign is Sign.POSITIVE:
                    # co*v + rest >= 0  ==>  co*v >= -rest
                    lowers.append((co, -rest))
                elif sign is Sign.NEGATIVE:
                    # co*v + rest >= 0  ==>  (-co)*v <= rest
                    uppers.append((-co, rest))
                else:
                    return None
        return lowers, uppers, others

    # ------------------------------------------------------------------
    def _splinter(
        self,
        v: str,
        variables: List[str],
        cons: List[Constraint],
        lowers,
        uppers,
        depth: int,
    ) -> Optional[Verdict]:
        """Omega splintering: exact check of the inexact shadow gap.

        Only runs with all-integer coefficients.  Any integer solution
        outside the dark shadow satisfies ``a*v == alpha + i`` for some
        lower bound ``(a, alpha)`` and ``0 <= i <= (a*c - a - c)/c``
        with ``c`` the largest upper coefficient.
        """
        coeff_ints = [a.as_int() for a, _ in lowers] + [
            c.as_int() for c, _ in uppers
        ]
        if any(ci is None for ci in coeff_ints):
            return None
        c_max = max(c.as_int() for c, _ in uppers)
        total = 0
        plan: List[Tuple[SymExpr, SymExpr, int]] = []
        for a, alpha in lowers:
            ai = a.as_int()
            hi = (ai * c_max - ai - c_max) // c_max
            total += hi + 1
            if total > MAX_SPLINTERS:
                return None
            plan.append((a, alpha, hi))
        for a, alpha, hi in plan:
            for i in range(hi + 1):
                branch = list(cons) + [
                    Constraint.eq(a * SymExpr.var(v) - alpha - i)
                ]
                sub = _Eliminator(self.prover)
                verdict = sub.run([v] + list(variables), branch, depth + 1)
                if verdict is Verdict.NONEMPTY:
                    return Verdict.NONEMPTY
                if verdict is Verdict.UNKNOWN:
                    return None
        return Verdict.EMPTY
