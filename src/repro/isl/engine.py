"""The polyhedral fallback prover: one facade over terms + emptiness.

A :class:`PolyEngine` wraps a :class:`~repro.symbolic.Prover` (for
coefficient signs, ground facts, and the assumption context) and
answers the disjointness / containment questions the optimization
passes ask, as relation-emptiness problems.  Every public query returns
a :class:`~repro.isl.emptiness.Verdict`; ``EMPTY`` is exact and is the
only verdict the passes act on.

Queries are memoized per engine (the engine lives in the compilation's
:class:`~repro.lmad.overlap.ProverPool`, so memos amortize across
passes exactly like the structural prover's).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.isl.bridge import (
    lift_parameters,
    overlap_set,
)
from repro.isl.emptiness import Verdict, basic_empty
from repro.isl.terms import BasicSet, Constraint, IntSet
from repro.symbolic.expr import ExprLike, SymExpr, sym
from repro.symbolic.prove import Prover


class PolyEngine:
    """Presburger-style emptiness queries bound to one prover context."""

    def __init__(self, prover: Prover):
        self.prover = prover
        self._disjoint_memo: Dict[Tuple, Verdict] = {}

    # ------------------------------------------------------------------
    def set_is_empty(self, s) -> Verdict:
        """Emptiness of a :class:`BasicSet`/:class:`IntSet`, with
        parameter lifting applied per basic piece."""
        pieces = s.pieces if isinstance(s, IntSet) else (s,)
        verdicts = []
        for piece in pieces:
            lifted, did_lift = lift_parameters(piece, self.prover.ctx)
            v = basic_empty(lifted, self.prover)
            if v is Verdict.NONEMPTY and did_lift:
                v = Verdict.UNKNOWN
            verdicts.append(v)
        if any(v is Verdict.NONEMPTY for v in verdicts):
            return Verdict.NONEMPTY
        if all(v is Verdict.EMPTY for v in verdicts):
            return Verdict.EMPTY
        return Verdict.UNKNOWN

    # ------------------------------------------------------------------
    def accesses_disjoint(self, a, b) -> Verdict:
        """Are the access sets of two LMADs / IndexFns disjoint?

        ``EMPTY`` = provably disjoint; ``NONEMPTY`` = provably sharing
        at least one offset; ``UNKNOWN`` otherwise.
        """
        key = (a, b)
        memo = self._disjoint_memo.get(key)
        if memo is not None:
            return memo
        try:
            verdict = self.set_is_empty(overlap_set(a, b))
        except (ValueError, OverflowError):
            verdict = Verdict.UNKNOWN
        if len(self._disjoint_memo) < 4096:
            self._disjoint_memo[key] = verdict
        return verdict

    def disjoint_from_extra(self, access, extra: IntSet) -> Verdict:
        """Is ``access``'s offset set disjoint from the ``extra`` region?

        ``extra`` is a union of address-space basic sets (e.g. the
        non-convex leftovers of a widened slice inverse); ``access`` is
        an LMAD or IndexFn.
        """
        from repro.isl.bridge import _as_set

        try:
            sa = _as_set(access)
            verdicts = []
            for piece in extra.pieces:
                pc = piece.rename(dict(zip(piece.dims, sa.dims)))
                verdicts.append(self.set_is_empty(sa.intersect(pc)))
        except (ValueError, OverflowError):
            return Verdict.UNKNOWN
        if all(v is Verdict.EMPTY for v in verdicts):
            return Verdict.EMPTY
        if any(v is Verdict.NONEMPTY for v in verdicts):
            return Verdict.NONEMPTY
        return Verdict.UNKNOWN

    def lmad_injective(self, l) -> Verdict:
        """Injectivity as emptiness: can two *distinct* index tuples map
        to the same flat offset?

        Builds two copies of the access relation sharing the address
        output, plus one "indices differ in dim k" piece per dimension
        and direction; ``EMPTY`` on every piece proves injectivity.
        """
        from repro.isl.bridge import lmad_to_relation

        key = ("inj", l)
        memo = self._disjoint_memo.get(key)
        if memo is not None:
            return memo
        try:
            r1 = lmad_to_relation(l)
            r2 = lmad_to_relation(l)
            r2 = r2.rename(dict(zip(r2.out_dims, r1.out_dims)))
            base = BasicSet(
                r1.in_dims + r2.in_dims,
                r1.constraints + r2.constraints,
                r1.exists + r2.exists + r1.out_dims,
            )
            verdicts = []
            for a, b in zip(r1.in_dims, r2.in_dims):
                diff = SymExpr.var(a) - SymExpr.var(b)
                for piece in (
                    base.with_constraints([Constraint.ge(diff - 1)]),
                    base.with_constraints([Constraint.ge(-diff - 1)]),
                ):
                    verdicts.append(self.set_is_empty(piece))
        except (ValueError, OverflowError):
            verdicts = [Verdict.UNKNOWN]
        if not verdicts or all(v is Verdict.EMPTY for v in verdicts):
            verdict = Verdict.EMPTY
        elif any(v is Verdict.NONEMPTY for v in verdicts):
            verdict = Verdict.NONEMPTY
        else:
            verdict = Verdict.UNKNOWN
        if len(self._disjoint_memo) < 4096:
            self._disjoint_memo[key] = verdict
        return verdict

    # ------------------------------------------------------------------
    def entails_nonneg(self, expr: ExprLike) -> bool:
        """Fallback for ``expr >= 0`` when the interval prover gives up.

        Encodes the *negation* ``expr <= -1`` as a set over the
        expression's bounded free variables and proves it empty --
        Fourier-Motzkin chains symbolic bounds that the substitution
        strategies of :class:`~repro.symbolic.Prover` miss.
        """
        e = self.prover.ctx.normalize(sym(expr))
        if e.as_int() is not None:
            return e.as_int() >= 0
        probe = BasicSet((), (Constraint.ge(-e - 1),))
        return self.set_is_empty(probe) is Verdict.EMPTY
