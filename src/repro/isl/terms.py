"""Affine integer set / relation terms over :mod:`repro.symbolic`.

This is the term language of the Presburger-style fallback prover
(DESIGN.md §11).  A :class:`BasicSet` is a conjunction of affine
constraints over *dimension* variables, *existential* variables, and
free *parameters*:

    { [d0, d1] : exists e0 : d0 - 2*e0 == 0 and d0 >= 0 and n - 1 - d0 >= 0 }

Constraint expressions are plain :class:`~repro.symbolic.SymExpr`
polynomials; the set machinery only requires them to be *affine in the
dimension and existential variables* (parameters may appear in
coefficients, so symbolic strides like ``b*n - b`` are fine).  Mod and
div never appear as operators: following the omega tradition they are
normalized away at construction time into *stride constraints* with an
existential quantifier (``x mod m == r``  becomes
``exists k : x - m*k - r == 0``).

An :class:`IntSet` is a finite union of basic sets -- unions arise from
:meth:`IntSet.difference`, whose complement step turns one conjunction
into a disjunction of negated atoms.

A :class:`BasicRel` is a basic set whose dimensions are split into an
input and an output tuple; :meth:`BasicRel.compose` existentializes the
shared middle tuple, which is how chained (non-invertible) index
functions become single relations.

Emptiness lives in :mod:`repro.isl.emptiness`; conversions from LMADs
and index functions in :mod:`repro.isl.bridge`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.symbolic.expr import ExprLike, SymExpr, sym

_fresh_counter = itertools.count()


def fresh_name(prefix: str = "_e") -> str:
    """A globally fresh variable name for existentials."""
    return f"{prefix}{next(_fresh_counter)}"


@dataclass(frozen=True)
class Constraint:
    """``expr == 0`` (``is_eq``) or ``expr >= 0`` over set variables."""

    expr: SymExpr
    is_eq: bool = False

    @staticmethod
    def eq(expr: ExprLike) -> "Constraint":
        return Constraint(sym(expr), is_eq=True)

    @staticmethod
    def ge(expr: ExprLike) -> "Constraint":
        """``expr >= 0``."""
        return Constraint(sym(expr), is_eq=False)

    @staticmethod
    def le(a: ExprLike, b: ExprLike) -> "Constraint":
        """``a <= b``."""
        return Constraint(sym(b) - sym(a), is_eq=False)

    def substitute(self, mapping: Mapping[str, ExprLike]) -> "Constraint":
        return Constraint(self.expr.substitute(mapping), self.is_eq)

    def negated(self) -> Tuple["Constraint", ...]:
        """The negation, as a *disjunction* of constraints.

        ``not (e >= 0)``  is ``-e - 1 >= 0``; ``not (e == 0)`` is the
        two-armed ``e - 1 >= 0  or  -e - 1 >= 0`` (integer domain).
        """
        if self.is_eq:
            return (Constraint.ge(self.expr - 1), Constraint.ge(-self.expr - 1))
        return (Constraint.ge(-self.expr - 1),)

    def is_affine_in(self, variables: Iterable[str]) -> bool:
        vset = frozenset(variables)
        fv = self.expr.free_vars() & vset
        for v in fv:
            coeffs = self.expr.coefficients_in(v)
            for power, coeff in coeffs.items():
                if power > 1:
                    return False
                if power == 1 and coeff.free_vars() & vset:
                    return False  # bilinear in two set variables
        return True

    def __str__(self) -> str:
        return f"{self.expr} {'==' if self.is_eq else '>='} 0"


def stride_constraint(expr: ExprLike, modulus: int, residue: ExprLike = 0):
    """``expr mod modulus == residue`` as (existential, equality constraint).

    Returns ``(k, c)`` where ``k`` is the fresh existential name and ``c``
    the equality ``expr - modulus*k - residue == 0`` -- the normalized
    stride form of a mod/div fact.
    """
    k = fresh_name("_q")
    return k, Constraint.eq(sym(expr) - SymExpr.var(k) * modulus - sym(residue))


@dataclass(frozen=True)
class BasicSet:
    """A conjunction of affine constraints over named dimensions."""

    dims: Tuple[str, ...]
    constraints: Tuple[Constraint, ...] = ()
    exists: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def all_vars(self) -> Tuple[str, ...]:
        return self.dims + self.exists

    def is_affine(self) -> bool:
        vs = self.all_vars()
        return all(c.is_affine_in(vs) for c in self.constraints)

    def with_constraints(self, extra: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.dims, self.constraints + tuple(extra), self.exists)

    def rename(self, mapping: Mapping[str, str]) -> "BasicSet":
        subst = {old: SymExpr.var(new) for old, new in mapping.items()}
        return BasicSet(
            tuple(mapping.get(d, d) for d in self.dims),
            tuple(c.substitute(subst) for c in self.constraints),
            tuple(mapping.get(e, e) for e in self.exists),
        )

    def _fresh_exists(self, taken: Iterable[str]) -> "BasicSet":
        taken = set(taken)
        clash = [e for e in self.exists if e in taken]
        if not clash:
            return self
        return self.rename({e: fresh_name() for e in clash})

    def intersect(self, other: "BasicSet") -> "BasicSet":
        """Conjunction; both sets must agree on the dimension tuple."""
        if self.dims != other.dims:
            raise ValueError(
                f"dimension mismatch: {self.dims} vs {other.dims}"
            )
        other = other._fresh_exists(self.all_vars())
        return BasicSet(
            self.dims,
            self.constraints + other.constraints,
            self.exists + other.exists,
        )

    def project_onto_exists(self, dims_to_drop: Sequence[str]) -> "BasicSet":
        """Turn the named dimensions into existentials (projection)."""
        drop = set(dims_to_drop)
        return BasicSet(
            tuple(d for d in self.dims if d not in drop),
            self.constraints,
            self.exists + tuple(d for d in self.dims if d in drop),
        )

    # ------------------------------------------------------------------
    def contains_point(
        self, point: Sequence[int], env: Optional[Mapping[str, int]] = None,
        exist_bound: int = 12,
    ) -> bool:
        """Brute-force membership test (for differential testing).

        Existentials are searched over ``[-exist_bound, exist_bound]``;
        this is only meant for the small concrete grids the property
        tests enumerate.
        """
        binding: Dict[str, int] = dict(env or {})
        binding.update(zip(self.dims, point))
        return self._sat_exists(binding, list(self.exists), exist_bound)

    def _sat_exists(
        self, binding: Dict[str, int], remaining: List[str], bound: int
    ) -> bool:
        if not remaining:
            for c in self.constraints:
                val = c.expr.evaluate(binding)
                if (val != 0) if c.is_eq else (val < 0):
                    return False
            return True
        var, rest = remaining[0], remaining[1:]
        for k in range(-bound, bound + 1):
            binding[var] = k
            if self._sat_exists(binding, rest, bound):
                del binding[var]
                return True
        del binding[var]
        return False

    def __str__(self) -> str:
        ex = f" exists {', '.join(self.exists)} :" if self.exists else ""
        cs = " and ".join(str(c) for c in self.constraints) or "true"
        return f"{{ [{', '.join(self.dims)}] :{ex} {cs} }}"


@dataclass(frozen=True)
class IntSet:
    """A finite union of basic sets over a common dimension tuple."""

    pieces: Tuple[BasicSet, ...]

    @staticmethod
    def of(*pieces: BasicSet) -> "IntSet":
        return IntSet(tuple(pieces))

    @property
    def dims(self) -> Tuple[str, ...]:
        return self.pieces[0].dims if self.pieces else ()

    def union(self, other: "IntSet") -> "IntSet":
        return IntSet(self.pieces + other.pieces)

    def intersect(self, other: "IntSet") -> "IntSet":
        return IntSet(
            tuple(
                a.intersect(b) for a in self.pieces for b in other.pieces
            )
        )

    def difference(self, other: BasicSet) -> "IntSet":
        """``self \\ other`` for a *quantifier-free* ``other``.

        The complement of a conjunction is the union of its negated
        atoms; an existential in ``other`` would need a universal
        quantifier, which the language deliberately omits.
        """
        if other.exists:
            raise ValueError("difference against a quantified set")
        out: List[BasicSet] = []
        for piece in self.pieces:
            for c in other.constraints:
                for neg in c.negated():
                    out.append(piece.with_constraints([neg]))
        return IntSet(tuple(out))

    def contains_point(self, point, env=None, exist_bound: int = 12) -> bool:
        return any(
            p.contains_point(point, env, exist_bound) for p in self.pieces
        )

    def __str__(self) -> str:
        return " union ".join(str(p) for p in self.pieces) or "{}"


@dataclass(frozen=True)
class BasicRel:
    """An affine relation ``[in_dims] -> [out_dims]``."""

    in_dims: Tuple[str, ...]
    out_dims: Tuple[str, ...]
    constraints: Tuple[Constraint, ...] = ()
    exists: Tuple[str, ...] = ()

    def as_set(self) -> BasicSet:
        return BasicSet(
            self.in_dims + self.out_dims, self.constraints, self.exists
        )

    def range(self) -> BasicSet:
        """The image: out-dims constrained, in-dims existentialized."""
        return BasicSet(
            self.out_dims, self.constraints, self.exists + self.in_dims
        )

    def rename(self, mapping: Mapping[str, str]) -> "BasicRel":
        subst = {old: SymExpr.var(new) for old, new in mapping.items()}
        return BasicRel(
            tuple(mapping.get(d, d) for d in self.in_dims),
            tuple(mapping.get(d, d) for d in self.out_dims),
            tuple(c.substitute(subst) for c in self.constraints),
            tuple(mapping.get(e, e) for e in self.exists),
        )

    def compose(self, then: "BasicRel") -> "BasicRel":
        """``then`` after ``self``: ``x -> z`` when ``x->y`` and ``y->z``.

        The middle tuple becomes existential -- this is what makes a
        chain of non-invertible index maps a single relation.
        """
        if len(self.out_dims) != len(then.in_dims):
            raise ValueError("arity mismatch in composition")
        mid = [fresh_name("_m") for _ in self.out_dims]
        first = self.rename(dict(zip(self.out_dims, mid)))
        second = then.rename(dict(zip(then.in_dims, mid)))
        second = BasicRel(
            tuple(mid),
            second.out_dims,
            second.constraints,
            second.exists,
        )
        taken = set(first.in_dims) | set(first.exists) | set(mid)
        clash = [e for e in second.exists if e in taken]
        if clash:
            second = second.rename({e: fresh_name() for e in clash})
        return BasicRel(
            first.in_dims,
            second.out_dims,
            first.constraints + second.constraints,
            first.exists + second.exists + tuple(mid),
        )

    def intersect_domain(self, dom: BasicSet) -> "BasicRel":
        if dom.dims != self.in_dims:
            dom = dom.rename(dict(zip(dom.dims, self.in_dims)))
        dom = dom._fresh_exists(
            set(self.in_dims) | set(self.out_dims) | set(self.exists)
        )
        return BasicRel(
            self.in_dims,
            self.out_dims,
            self.constraints + dom.constraints,
            self.exists + dom.exists,
        )

    def __str__(self) -> str:
        ex = f" exists {', '.join(self.exists)} :" if self.exists else ""
        cs = " and ".join(str(c) for c in self.constraints) or "true"
        return (
            f"{{ [{', '.join(self.in_dims)}] -> "
            f"[{', '.join(self.out_dims)}] :{ex} {cs} }}"
        )
