"""``repro.isl``: a Presburger-style integer-set-relations engine.

The polyhedral fallback tier behind the structural LMAD machinery
(DESIGN.md §11).  Affine sets and relations over
:class:`~repro.symbolic.SymExpr` coefficients, existential dimensions
with mod/div normalized to stride constraints, and an exact emptiness
test (Fourier-Motzkin with integer tightening, dark shadow, and omega
splintering) with an explicit UNKNOWN verdict.
"""

from repro.isl.bridge import (
    ixfn_to_relation,
    ixfn_to_set,
    lift_parameters,
    lmad_to_relation,
    lmad_to_set,
    overlap_set,
    slice_box_difference,
    unrank_relation,
)
from repro.isl.emptiness import Verdict, basic_empty, set_empty
from repro.isl.engine import PolyEngine
from repro.isl.terms import (
    BasicRel,
    BasicSet,
    Constraint,
    IntSet,
    fresh_name,
    stride_constraint,
)

__all__ = [
    "BasicRel",
    "BasicSet",
    "Constraint",
    "IntSet",
    "PolyEngine",
    "Verdict",
    "basic_empty",
    "fresh_name",
    "ixfn_to_relation",
    "ixfn_to_set",
    "lift_parameters",
    "lmad_to_relation",
    "lmad_to_set",
    "overlap_set",
    "set_empty",
    "slice_box_difference",
    "stride_constraint",
    "unrank_relation",
]
