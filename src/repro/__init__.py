"""repro: a reproduction of "Memory Optimizations in an Array Language" (SC22).

Public API tour:

>>> from repro import FunBuilder, compile_fun, f32, run_fun
>>> from repro.lmad import lmad
>>> from repro.symbolic import Var

Build programs with :class:`repro.ir.FunBuilder` (or parse them with
:func:`repro.ir.parser.parse_fun`), check their meaning with the reference
interpreter :func:`repro.ir.run_fun`, compile them with
:func:`repro.compiler.compile_fun` (with or without array short-circuiting),
execute the compiled memory IR with :class:`repro.mem.exec.MemExecutor`
(real buffers, or traffic-only dry runs at any size), and convert the
measured statistics into simulated GPU time with
:class:`repro.gpu.CostModel`.

The seven paper benchmarks live in :mod:`repro.bench.programs`;
``python -m repro.bench`` regenerates the paper's tables.
"""

from repro.compiler import CompiledFun, compile_fun
from repro.ir import FunBuilder, boolean, f32, f64, i64, run_fun
from repro.ir.parser import parse_fun
from repro.ir.pretty import pretty_fun
from repro.pipeline import (
    PRESETS,
    CompileContext,
    PassManager,
    PipelineTrace,
    build_pipeline,
    preset_pipeline,
)

__version__ = "1.0.0"

__all__ = [
    "CompiledFun",
    "compile_fun",
    "PRESETS",
    "CompileContext",
    "PassManager",
    "PipelineTrace",
    "build_pipeline",
    "preset_pipeline",
    "FunBuilder",
    "run_fun",
    "parse_fun",
    "pretty_fun",
    "f32",
    "f64",
    "i64",
    "boolean",
    "__version__",
]
