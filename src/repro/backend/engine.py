"""Launch machinery for the native C executor tier.

:class:`NativeEngine` mirrors :class:`repro.mem.vectorize.VecEngine`'s
contract: ``try_run_map`` either executes one outermost ``map``
statement completely -- outputs *and* every simulated ``ExecStats``
quantity bit-identical to the interpreted walk -- and returns ``True``,
or touches nothing and returns ``False`` so the executor falls through
to the vectorized/interpreted tiers.

The first launch of a statement drives :func:`repro.backend.cemit.
emit_kernel` over the kernel subtree, producing launch-*structure*-
specialized C plus a list of argument directives (which host scalars,
symbolic expressions, index-function components, and buffers to marshal
per launch).  The compiled entry point is cached by source digest
(:mod:`repro.backend.build`); the per-statement plan is shared across
all executors of a :class:`repro.runtime.Program`, exactly like the
vectorized dispatch plans.  A statement whose subtree the emitter
rejects is marked and never attempted again; a launch whose concrete
structure no longer matches the plan (a rank or scalar-kind change)
falls back for that launch only.
"""

from __future__ import annotations

import ctypes
import threading
import time
from typing import Dict, Optional

import numpy as np

from repro.backend import build
from repro.backend.cemit import SLOTS, KernelSpec, Reject, emit_kernel
from repro.ir.interp import InterpError, eval_sym
from repro.ir.types import DTYPE_INFO

#: Plan sentinel: the emitter rejected this statement's subtree.
REJECTED = object()


class _Mismatch(Exception):
    """This launch's concrete structure diverges from the cached plan."""


def _eval_int(expr, env) -> int:
    v = eval_sym(expr, env)
    if isinstance(v, (bool, np.bool_)):
        return int(v)
    if not isinstance(v, (int, np.integer)):
        raise _Mismatch("non-integer symbolic value")
    return int(v)


class NativeEngine:
    """Shared native-tier state: dispatch plans + compiled kernels."""

    def __init__(self, plans: Optional[Dict[int, object]] = None):
        #: id(stmt) -> KernelSpec | REJECTED (shared per Program, like
        #: the vectorized dispatch plans).
        self.plans: Dict[int, object] = plans if plans is not None else {}
        self._lock = threading.Lock()
        #: Cumulative emission + cc wall clock (ExecStats.codegen_seconds).
        self.codegen_seconds = 0.0

    # ------------------------------------------------------------------
    def try_run_map(self, ex, stmt, exp, env, width, dests) -> bool:
        if ex.shared_memory_model:
            return False
        plan = self.plans.get(id(stmt))
        if plan is REJECTED:
            return False
        if plan is None:
            plan = self._emit(ex, stmt, exp, env, dests)
            if plan is REJECTED:
                return False
        try:
            self._launch(plan, ex, env, width, dests)
        except (_Mismatch, InterpError):
            return False
        return True

    # ------------------------------------------------------------------
    def _emit(self, ex, stmt, exp, env, dests):
        with self._lock:
            plan = self.plans.get(id(stmt))
            if plan is not None:
                return plan
            t0 = time.perf_counter()
            try:
                spec = emit_kernel(ex, stmt, exp, env, dests)
                fn, digest = build.compile_kernel(spec.source)
                spec.fn = fn
                spec.digest = digest
                plan = spec
            except (Reject, build.BuildError):
                plan = REJECTED
            self.codegen_seconds += time.perf_counter() - t0
            self.plans[id(stmt)] = plan
            return plan

    # ------------------------------------------------------------------
    def _launch(self, spec: KernelSpec, ex, env, width, dests) -> None:
        ia: list = []
        for d in spec.int_dirs:
            tag = d[0]
            if tag == "env":
                ia.append(self._scalar(env, d[1], d[2], want_int=True))
            elif tag == "sym":
                ia.append(_eval_int(d[1], env))
            else:  # ("arrcomp", source, ranks, dtype)
                _, source, ranks, dtype = d
                ra = self._source_array(source, env, dests)
                if ra.dtype != dtype:
                    raise _Mismatch("array dtype changed")
                if tuple(len(l.dims) for l in ra.ixfn.lmads) != ranks:
                    raise _Mismatch("index-function structure changed")
                for lmad in ra.ixfn.lmads:
                    ia.append(self._concrete(lmad.offset))
                    for dim in lmad.dims:
                        ia.append(self._concrete(dim.shape))
                        ia.append(self._concrete(dim.stride))
        fa = [
            self._scalar(env, d[1], d[2], want_int=False)
            for d in spec.flt_dirs
        ]

        # Resolve every concrete buffer (and pre-size the in-kernel
        # allocations) before mutating any executor state, so a mismatch
        # is a clean no-op fallback.
        bufs: list = [None] * len(spec.buf_dirs)
        allocs = []
        for i, d in enumerate(spec.buf_dirs):
            tag = d[0]
            if tag == "arr":
                ra = self._source_array(d[1], env, dests)
                bufs[i] = self._buffer(ex, ra.mem, env)
            elif tag == "mem":
                bufs[i] = self._buffer(ex, d[1], env)
            else:  # ("alloc", site_idx)
                name, size_sym, count_syms, dtype, space = (
                    spec.alloc_sites[d[1]]
                )
                size = _eval_int(size_sym, env)
                total = 1
                for cs in count_syms:
                    total *= _eval_int(cs, env)
                allocs.append((i, name, size, total, dtype, space))

        # Commit point: allocate the per-site backing blocks with the
        # interpreter's exact accounting (one fresh zeroed block per
        # site holding all per-execution slots; freed wholesale when the
        # outermost map ends, via the kernel-alloc log).
        for i, name, size, total, dtype, space in allocs:
            buf = np.zeros(total * size, dtype=DTYPE_INFO[dtype][0])
            ex._alloc_counter += 1
            unique = f"{name}@{ex._alloc_counter}"
            ex.mem[unique] = buf
            nbytes = total * size * DTYPE_INFO[dtype][1]
            ex.stats.alloc_count += total
            ex.stats.alloc_bytes += nbytes
            ex._note_alloc(name, unique, nbytes, space)
            bufs[i] = buf

        counters = np.zeros(len(spec.sites) * SLOTS, dtype=np.int64)
        ia_arr = np.asarray(ia, dtype=np.int64)
        fa_arr = np.asarray(fa, dtype=np.float64)
        buf_ptrs = (ctypes.c_void_p * max(1, len(bufs)))(
            *[b.ctypes.data for b in bufs] or [0]
        )
        spec.fn(
            ctypes.c_longlong(int(width)),
            ia_arr.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong)),
            fa_arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            buf_ptrs,
            counters.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong)),
        )

        # Distribute the counters the C code accumulated.  Site 0 is the
        # outermost map's already-pushed KernelStat; nested sites create
        # their stat only if the statement actually executed (entered >
        # 0), matching the interpreter's per-execution registry.
        for si, (sstmt, kind, label) in enumerate(spec.sites):
            ent, br, bw, fl, elc, elb, scr, scw, rgr, rgw = (
                int(x) for x in counters[si * SLOTS:(si + 1) * SLOTS]
            )
            if si == 0:
                ks = ex._kernel_stack[-1]
            else:
                if ent == 0:
                    continue
                ks = ex.stats.kernel(id(sstmt), kind, label)
            ks.bytes_read += br
            ks.bytes_written += bw
            ks.flops += fl
            # Space slots duplicate the part of br/bw that touched a
            # non-HBM space (see cemit.SPACE_SLOTS).
            for sp, rd, wr in (("scratch", scr, scw), ("regs", rgr, rgw)):
                if rd:
                    ks.space_read[sp] = ks.space_read.get(sp, 0) + rd
                if wr:
                    ks.space_written[sp] = (
                        ks.space_written.get(sp, 0) + wr
                    )
            ex.stats.elided_copies += elc
            ex.stats.elided_bytes += elb

    # ------------------------------------------------------------------
    @staticmethod
    def _scalar(env, name, kind, want_int):
        v = env.get(name)
        if v is None and name not in env:
            raise _Mismatch(f"free variable {name!r} vanished")
        ok = (
            kind == "pyint" and type(v) is int
            or kind == "npint" and isinstance(v, np.integer)
            or kind == "pybool" and type(v) is bool
            or kind == "npbool" and isinstance(v, np.bool_)
            or kind == "f32" and isinstance(v, np.float32)
            or kind == "pyfloat" and type(v) is float
            or kind == "f64"
            and isinstance(v, np.floating)
            and not isinstance(v, np.float32)
        )
        if not ok:
            raise _Mismatch(f"scalar kind of {name!r} changed")
        return int(v) if want_int else float(v)

    @staticmethod
    def _source_array(source, env, dests):
        from repro.mem.exec import RuntimeArray

        tag, key = source
        ra = env.get(key) if tag == "env" else dests[key]
        if not isinstance(ra, RuntimeArray):
            raise _Mismatch("array argument vanished")
        return ra

    @staticmethod
    def _concrete(expr) -> int:
        v = expr.as_int()
        if v is None:
            raise _Mismatch("symbolic index-function component")
        return v

    @staticmethod
    def _buffer(ex, mem, env) -> np.ndarray:
        buf = ex.mem[ex._resolve_mem(mem, env)]
        if not isinstance(buf, np.ndarray):
            raise _Mismatch("memory block is not materialized")
        return buf
