"""Compile emitted C kernels into cached shared objects.

The cache key is the SHA-256 of the *generated C source* (which is
itself a pure function of the post-pipeline memory IR, the launch
structure, and the element dtypes), the C compiler's version banner,
and the ABI version -- so a toolchain upgrade or an ABI change cold-
rebuilds instead of loading stale objects.  Artifacts live next to the
program cache under ``benchmarks/results/.nativecache/`` (override with
``REPRO_NATIVE_CACHE``); writes are atomic (temp file + ``os.replace``)
so concurrent builders never observe a torn ``.so``, and a cache entry
that fails to load (truncated, wrong architecture, hand-edited) is
unlinked and rebuilt cold -- mirroring the program cache's corruption
semantics.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.backend.cemit import ABI_VERSION

#: Flags chosen for bit-identity with NumPy: no fast-math, and FP
#: contraction off -- a fused multiply-add changes f32 rounding versus
#: the interpreter's separate multiply and add.
CC_FLAGS = ["-O2", "-shared", "-fPIC", "-ffp-contract=off"]

_CACHE_ENV = "REPRO_NATIVE_CACHE"
_DEFAULT_DIR = Path("benchmarks") / "results" / ".nativecache"


class BuildError(RuntimeError):
    """The C compiler failed (or is absent)."""


# -- toolchain detection ------------------------------------------------
_cc_info: Optional[Tuple[Optional[str], str]] = None
_warned = False


def find_cc() -> Tuple[Optional[str], str]:
    """Locate a C compiler and its version fingerprint (cached).

    Honors ``REPRO_CC``; otherwise tries ``cc``, ``gcc``, ``clang``.
    Returns ``(None, "")`` when no working compiler is found.
    """
    global _cc_info
    if _cc_info is not None:
        return _cc_info
    candidates = []
    env = os.environ.get("REPRO_CC")
    if env:
        candidates.append(env)
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path is None:
            continue
        try:
            out = subprocess.run(
                [path, "--version"], capture_output=True, text=True,
                timeout=30,
            )
        except OSError:
            continue
        if out.returncode == 0:
            banner = (out.stdout or out.stderr).splitlines()
            _cc_info = (path, banner[0] if banner else "")
            return _cc_info
    _cc_info = (None, "")
    return _cc_info


def warn_unavailable_once() -> None:
    """One-line stderr notice the first time native execution is wanted
    but no C compiler exists; all later requests degrade silently."""
    global _warned
    if not _warned:
        _warned = True
        print(
            "repro: no C compiler found (cc/gcc/clang); "
            "native tier disabled, falling back to vectorized",
            file=sys.stderr,
        )


def cache_dir() -> Path:
    return Path(os.environ.get(_CACHE_ENV) or _DEFAULT_DIR)


def source_digest(source: str) -> str:
    _, fingerprint = find_cc()
    h = hashlib.sha256()
    h.update(f"abi={ABI_VERSION}\ncc={fingerprint}\n".encode())
    h.update(source.encode())
    return h.hexdigest()


# -- compilation --------------------------------------------------------
#: In-process library memo: digest -> (CDLL, entry point).  The CDLL
#: reference keeps the object mapped; entries survive for the process
#: lifetime (kernels are tiny).
_memo: Dict[str, Tuple[ctypes.CDLL, object]] = {}


def clear_memo() -> None:
    _memo.clear()


def _atomic_write(path: Path, data: str) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(data)
    os.replace(tmp, path)


def _load(so: Path):
    lib = ctypes.CDLL(str(so), mode=ctypes.RTLD_LOCAL)
    fn = lib.repro_kernel
    fn.argtypes = [
        ctypes.c_longlong,
        ctypes.POINTER(ctypes.c_longlong),
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_void_p),
        ctypes.POINTER(ctypes.c_longlong),
    ]
    fn.restype = None
    return lib, fn


def compile_kernel(source: str):
    """Return the native entry point for ``source``, building at most
    once per (source, toolchain, ABI) across processes."""
    cc, _ = find_cc()
    if cc is None:
        raise BuildError("no C compiler available")
    digest = source_digest(source)
    hit = _memo.get(digest)
    if hit is not None:
        return hit[1], digest
    d = cache_dir()
    d.mkdir(parents=True, exist_ok=True)
    so = d / f"{digest}.so"
    csrc = d / f"{digest}.c"
    lib_fn = None
    if so.exists():
        try:
            lib_fn = _load(so)
        except OSError:
            # Corrupt/stale entry: degrade to a cold rebuild.
            try:
                so.unlink()
            except OSError:
                pass
    if lib_fn is None:
        _atomic_write(csrc, source)
        tmp = d / f".{digest}.{os.getpid()}.so"
        cmd = [cc, *CC_FLAGS, "-o", str(tmp), str(csrc), "-lm"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise BuildError(
                f"cc failed ({proc.returncode}): {proc.stderr.strip()}"
            )
        os.replace(tmp, so)
        lib_fn = _load(so)
    _memo[digest] = lib_fn
    return lib_fn[1], digest
