"""Flat-loop C emission from post-pipeline memory IR (the native tier).

One outermost ``map`` statement becomes one C function: the thread space
is an explicit ``for`` loop, LMAD index functions become inline affine
address arithmetic, and a fused kernel -- whose producer statements are
ordinary scalar statements of the consumer's body -- lowers to a
genuinely single-loop body.  The emitter mirrors the *interpreted*
executor statement by statement, in both value semantics and accounting:

* **values** -- scalar C types and promotions replicate
  ``Interpreter._binop``/``_unop`` under NumPy's value-based (NEP 50)
  promotion, including the weak/strong distinction between per-thread
  Python ints and typed array elements; ``//``/``%`` use floor-division
  helpers (C truncates, Python floors); ``sqrt`` maps to the
  correctly-rounded ``sqrtf``/``sqrt``.  Constructs whose libm result
  can drift from NumPy's (``exp``/``log``/``pow``) are rejected.
* **accounting** -- every simulated counter the interpreter would bump
  (per-kernel bytes/flops, copy elisions, allocation counts) accumulates
  in a flat ``C`` array of per-site counter slots that the engine folds
  back into :class:`~repro.mem.stats.ExecStats` after the call, so the
  native tier is ``signature()``-identical to the other tiers.

Emission is *launch-specialized but shape-generic*: it happens on the
first launch of a statement (when the runtime environment reveals each
free array's index-function structure and each free scalar's kind) and
the resulting function is reused for every later launch, receiving
widths, scalars and LMAD components as arguments.  Any construct outside
the supported set raises :class:`Reject`, and the statement permanently
falls back to the vectorized/interpreted tiers -- dispatch stays
per-statement, exactly like the vectorized planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.symbolic import SymExpr

from repro.ir import ast as A
from repro.ir.ast import Fun  # noqa: F401  (re-exported for annotations)
from repro.ir.types import ArrayType, DTYPE_INFO
from repro.mem.memir import binding_of

#: Counter slots per site: [entered, bytes_read, bytes_written, flops,
#: elided_copies, elided_bytes, scratch_read, scratch_written,
#: regs_read, regs_written].  The space slots (6-9) attribute the part
#: of slots 1/2 that touched a non-HBM memory space (repro.mem.spaces);
#: they are duplicates of, not additions to, the totals.
SLOTS = 10

#: Read/write slot pair per non-HBM space.
SPACE_SLOTS = {"scratch": (6, 7), "regs": (8, 9)}

#: Bump when the emitted ABI or counter layout changes (part of the
#: on-disk cache key).
ABI_VERSION = 2

_CTYPE = {"i64": "long long", "f32": "float", "f64": "double", "bool": "char"}

#: NEP-50 promotion over this IR's four dtypes (strong operands).
_PROMOTE = {
    ("i64", "i64"): "i64",
    ("i64", "f32"): "f64",  # int64 cannot promote into float32
    ("i64", "f64"): "f64",
    ("f32", "f32"): "f32",
    ("f32", "f64"): "f64",
    ("f64", "f64"): "f64",
    ("bool", "bool"): "bool",
    ("bool", "i64"): "i64",
    ("bool", "f32"): "f32",
    ("bool", "f64"): "f64",
}


class Reject(Exception):
    """The statement is not expressible in the native tier."""


@dataclass
class SVal:
    """A scalar value: a C expression plus its interpreter-side type.

    ``weak`` distinguishes Python ints/floats (NEP-50 weak scalars, which
    adopt the other operand's precision) from typed NumPy scalars.
    ``mutable`` marks loop-carried C locals, whose value at view-creation
    time must be *captured* rather than referenced (the interpreter
    instantiates index functions at binding time).
    """

    c: str
    dtype: str
    weak: bool = False
    mutable: bool = False
    scope: int = 0


@dataclass
class CLmad:
    """One LMAD with C-expression components (element units)."""

    offset: str
    dims: List[Tuple[str, str]]  # (shape, stride)

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class MemObj:
    """A memory block at emission time: buffer slot + element base.

    ``base`` emulates the interpreter's per-execution *unique* blocks for
    in-kernel allocations: each (thread, enclosing-iteration) tuple gets
    a disjoint slot of one flat per-launch buffer, so two views alias
    exactly when their (buffer, base) pairs coincide -- the same identity
    the interpreter's unique block names express.
    """

    buf: int
    base: str = "0"
    scope: int = 0

    def same(self, other: "MemObj") -> bool:
        return self.buf == other.buf and self.base == other.base


@dataclass
class CArr:
    """An array view: memory object + C-expression index function."""

    mem: MemObj
    dtype: str
    lmads: List[CLmad]
    scope: int = 0

    @property
    def itemsize(self) -> int:
        return DTYPE_INFO[self.dtype][1]

    @property
    def inner(self) -> CLmad:
        return self.lmads[-1]


@dataclass
class KernelSpec:
    """Everything the engine needs to launch one compiled kernel."""

    source: str
    #: Ordered int-argument directives; see _Emitter._int_arg for kinds.
    int_dirs: List[tuple]
    #: Ordered float-argument directives.
    flt_dirs: List[tuple]
    #: Ordered buffer directives ("arr" | "mem" | "alloc").
    buf_dirs: List[tuple]
    #: Per in-kernel-alloc site: (static name, size expr, enclosing
    #: count exprs, dtype).
    alloc_sites: List[tuple]
    #: Per counter-site: (stmt, kind, label); site 0 is the launch.
    sites: List[tuple]
    fn: object = None  # ctypes function, attached by the builder
    digest: str = ""


# ----------------------------------------------------------------------
def _c_int(v: int) -> str:
    return f"({v}LL)"


def _c_lit(value, dtype: str) -> str:
    if dtype == "i64":
        return _c_int(int(value))
    if dtype == "bool":
        return "1" if value else "0"
    if dtype == "f32":
        d = float(np.float32(value))
        if not np.isfinite(d):
            raise Reject("non-finite literal")
        return f"((float){d!r})"
    d = float(value)
    if not np.isfinite(d):
        raise Reject("non-finite literal")
    return f"({d!r})"


def _is_weak_int(v) -> bool:
    return isinstance(v, (bool, int)) and not isinstance(v, np.generic)


class _Emitter:
    """One kernel emission (first launch of one outermost map)."""

    def __init__(self, ex, env):
        self.ex = ex
        self.env = env  # host environment at the launch site
        self.lines: List[str] = []
        self.indent = 1
        self.tmp = 0
        self.int_dirs: List[tuple] = []
        self.flt_dirs: List[tuple] = []
        self.buf_dirs: List[tuple] = []
        #: Memory space per buffer slot, parallel to ``buf_dirs``.
        self.buf_space: List[str] = []
        self.alloc_sites: List[tuple] = []
        self.sites: List[tuple] = []
        self._int_slots: Dict[tuple, object] = {}
        #: Expanded width of ``ia`` so far (an "arrcomp" directive
        #: expands to 1 + 2*rank integers per LMAD).
        self._int_width = 0
        self._flt_slots: Dict[tuple, int] = {}
        self._buf_slots: Dict[tuple, int] = {}
        self._site_ids: Dict[int, int] = {}
        #: Stack of open lexical scopes (ids); values created in a scope
        #: are usable only while it is open.
        self._scopes: List[int] = [0]
        self._scope_seq = 0
        #: Per-open-block pending constant counter increments,
        #: (site, slot) -> int, flushed when the block closes.
        self._pending: List[Dict[Tuple[int, int], int]] = [{}]
        #: Enclosing (count expr C string, index var) pairs for in-kernel
        #: allocations (thread loop, sequential loops, nested maps);
        #: None marks a level (If) under which allocation is rejected.
        self._alloc_path: List[Optional[Tuple[str, str, SymExpr]]] = []

    # -- C text helpers -------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def fresh(self, prefix: str = "v") -> str:
        self.tmp += 1
        return f"{prefix}{self.tmp}"

    def open_block(self, header: str) -> None:
        self.emit(header + " {")
        self.indent += 1
        self._scope_seq += 1
        self._scopes.append(self._scope_seq)
        self._pending.append({})

    def close_block(self) -> None:
        self._flush_pending()
        self._scopes.pop()
        self.indent -= 1
        self.emit("}")

    def _flush_pending(self) -> None:
        pend = self._pending.pop()
        for (site, slot), n in sorted(pend.items()):
            if n:
                self.emit(f"C[{site * SLOTS + slot}] += {_c_int(n)};")

    def pend(self, site: int, slot: int, n: int = 1) -> None:
        key = (site, slot)
        self._pending[-1][key] = self._pending[-1].get(key, 0) + n

    def charge(self, site: int, slot: int, expr: str) -> None:
        self.emit(f"C[{site * SLOTS + slot}] += {expr};")

    def _space_slot(self, mem: MemObj, write: bool) -> Optional[int]:
        """Extra counter slot when ``mem`` lives in a non-HBM space."""
        pair = SPACE_SLOTS.get(self.buf_space[mem.buf])
        if pair is None:
            return None
        return pair[1] if write else pair[0]

    def pend_rw(self, site: int, mem: MemObj, write: bool, n: int) -> None:
        """Constant-sized read/write charge with space attribution."""
        self.pend(site, 2 if write else 1, n)
        extra = self._space_slot(mem, write)
        if extra is not None:
            self.pend(site, extra, n)

    def charge_rw(
        self, site: int, mem: MemObj, write: bool, expr: str
    ) -> None:
        """Expression-sized read/write charge with space attribution."""
        self.charge(site, 2 if write else 1, expr)
        extra = self._space_slot(mem, write)
        if extra is not None:
            self.charge(site, extra, expr)

    def check_scope(self, *ids: int) -> None:
        for s in ids:
            if s not in self._scopes:
                raise Reject("value escapes its C scope")

    @property
    def cur_scope(self) -> int:
        return self._scopes[-1]

    # -- argument slots -------------------------------------------------
    def _host_launch_int(self, expr: SymExpr) -> str:
        """A host-evaluable symbolic int as an ia[] argument expression."""
        for v in expr.free_vars():
            if v not in self.env:
                raise Reject(f"free var {v!r} not launch-evaluable")
        c = expr.as_int()
        if c is not None:
            return _c_int(c)
        key = ("sym", expr)
        slot = self._int_slots.get(key)
        if slot is None:
            slot = self._int_width
            self._int_width += 1
            self.int_dirs.append(("sym", expr))
            self._int_slots[key] = slot
        return f"ia[{slot}]"

    def _host_scalar(self, name: str) -> SVal:
        """A free host scalar as an argument-backed SVal."""
        if name not in self.env:
            raise Reject(f"unbound variable {name!r}")
        v = self.env[name]
        if isinstance(v, (bool, np.bool_)):
            weak = type(v) is bool
            kind, dtype = ("pybool" if weak else "npbool"), "bool"
        elif isinstance(v, (int, np.integer)):
            kind = "pyint" if _is_weak_int(v) else "npint"
            dtype, weak = "i64", kind == "pyint"
        elif isinstance(v, np.float32):
            kind, dtype, weak = "f32", "f32", False
        elif isinstance(v, (float, np.floating)):
            kind = "pyfloat" if isinstance(v, float) else "f64"
            dtype, weak = "f64", isinstance(v, float)
        else:
            raise Reject(f"unsupported free value for {name!r}")
        if dtype in ("i64", "bool"):
            key = ("env", name)
            slot = self._int_slots.get(key)
            if slot is None:
                slot = self._int_width
                self._int_width += 1
                self.int_dirs.append(("env", name, kind))
                self._int_slots[key] = slot
            c = f"ia[{slot}]" if dtype == "i64" else f"((char)ia[{slot}])"
        else:
            key = ("fenv", name)
            slot = self._flt_slots.get(key)
            if slot is None:
                slot = len(self.flt_dirs)
                self.flt_dirs.append(("env", name, kind))
                self._flt_slots[key] = slot
            c = f"((float)fa[{slot}])" if dtype == "f32" else f"fa[{slot}]"
        return SVal(c, dtype, weak=weak, scope=0)

    def _arg_array(self, source: tuple, ra) -> CArr:
        """A launch-concrete array (free array or dest) as arguments."""
        ranks = tuple(len(l.dims) for l in ra.ixfn.lmads)
        key = ("arr", source)
        ent = self._int_slots.get(key)
        if ent is None:
            bslot = len(self.buf_dirs)
            self.buf_dirs.append(("arr", source))
            self.buf_space.append(self.ex._space_of(ra.mem))
            base = self._int_width
            self._int_width += sum(1 + 2 * r for r in ranks)
            self.int_dirs.append(("arrcomp", source, ranks, ra.dtype))
            ent = (bslot, base, ranks, ra.dtype)
            self._int_slots[key] = ent
        bslot, base, eranks, edtype = ent
        if eranks != ranks or edtype != ra.dtype:
            raise Reject("inconsistent array structure at emission")
        lmads = []
        k = base
        # One "arrcomp" directive expands to 1 + 2*rank ints per LMAD:
        # offset, then (shape, stride) per dimension, appended in order.
        for r in ranks:
            off = f"ia[{k}]"
            k += 1
            dims = []
            for _ in range(r):
                dims.append((f"ia[{k}]", f"ia[{k + 1}]"))
                k += 2
            lmads.append(CLmad(off, dims))
        return CArr(MemObj(bslot, "0", 0), ra.dtype, lmads, scope=0)

    def _mem_buf(self, name: str) -> int:
        key = ("mem", name)
        slot = self._buf_slots.get(key)
        if slot is None:
            slot = len(self.buf_dirs)
            self.buf_dirs.append(("mem", name))
            try:
                resolved = self.ex._resolve_mem(name, self.env)
                space = self.ex._space_of(resolved)
            except Exception:
                space = "hbm"
            self.buf_space.append(space)
            self._buf_slots[key] = slot
        return slot

    def site_of(self, stmt: A.Let, kind: str, label: str) -> int:
        sid = self._site_ids.get(id(stmt))
        if sid is None:
            sid = len(self.sites)
            self.sites.append((stmt, kind, label))
            self._site_ids[id(stmt)] = sid
        return sid

    # -- symbolic expressions ------------------------------------------
    def sym_c(self, expr: SymExpr, scope: Dict[str, object],
              capture: Optional[Dict[str, str]] = None) -> str:
        """A SymExpr as a long long C expression.

        Variables resolve through the kernel ``scope`` (integer SVals)
        and then the host environment (argument slots).  With
        ``capture``, mutable locals are snapshotted into fresh immutable
        locals first -- index functions are instantiated at binding
        time, not at use time.
        """
        if not isinstance(expr, SymExpr):
            return _c_int(int(expr))

        def var_ref(v: str) -> str:
            sv = scope.get(v)
            if sv is None:
                sv = self._host_scalar(v)
            if not isinstance(sv, SVal) or sv.dtype not in ("i64", "bool"):
                raise Reject(f"non-integer variable {v!r} in index expression")
            self.check_scope(sv.scope)
            c = sv.c if sv.dtype == "i64" else f"((long long)({sv.c}))"
            if sv.mutable:
                if capture is None:
                    return f"({c})"
                cap = capture.get(v)
                if cap is None:
                    cap = self.fresh("cap")
                    self.emit(f"long long {cap} = {c};")
                    capture[v] = cap
                return cap
            return f"({c})"

        parts = []
        for mono, coeff in sorted(
            expr.terms.items(), key=lambda kv: str(kv[0])
        ):
            factors = [_c_int(coeff)]
            for v, p in mono:
                factors.extend([var_ref(v)] * p)
            parts.append("*".join(factors))
        if not parts:
            return _c_int(0)
        return "(" + " + ".join(parts) + ")"

    # -- views ----------------------------------------------------------
    def view_from_binding(self, pe, scope, memenv) -> CArr:
        b = binding_of(pe)
        if b is None:
            raise Reject(f"array {pe.name} lacks a memory binding")
        assert isinstance(pe.type, ArrayType)
        return self.view_of(b.mem, b.ixfn, pe.type.dtype, scope, memenv)

    def resolve_memobj(self, mem: str, scope, memenv) -> MemObj:
        obj = memenv.get(mem)
        if obj is None:
            sv = scope.get(mem)
            if isinstance(sv, MemObj):
                obj = sv
        if obj is None:
            # A host-level block: resolvable through the launch env at
            # every launch (the resolved name may differ per launch).
            try:
                self.ex._resolve_mem(mem, self.env)
            except Exception:
                raise Reject(f"unresolvable memory {mem!r}") from None
            obj = MemObj(self._mem_buf(mem), "0", 0)
        self.check_scope(obj.scope)
        return obj

    def view_of(self, mem: str, ixfn, dtype: str, scope, memenv) -> CArr:
        obj = self.resolve_memobj(mem, scope, memenv)
        capture: Dict[str, str] = {}
        lmads = []
        for l in ixfn.lmads:
            off = self.sym_c(l.offset, scope, capture)
            dims = [
                (self.sym_c(d.shape, scope, capture),
                 self.sym_c(d.stride, scope, capture))
                for d in l.dims
            ]
            lmads.append(CLmad(off, dims))
        return CArr(obj, dtype, lmads, scope=self.cur_scope)

    def use(self, arr: CArr) -> CArr:
        self.check_scope(arr.scope, arr.mem.scope)
        return arr

    # -- addressing -----------------------------------------------------
    def size_c(self, arr: CArr) -> str:
        """Element count of the visible (inner) region, as a C local."""
        expr = "*".join(f"({s})" for s, _ in arr.inner.dims) or "1LL"
        n = self.fresh("sz")
        self.emit(f"long long {n} = {expr};")
        return n

    def _through_outers(self, arr: CArr, flat: str) -> str:
        """Unrank a flat inner offset through the outer LMADs (C order),
        mirroring ``IndexFn.apply_concrete``."""
        off = flat
        for l in reversed(arr.lmads[:-1]):
            r = self.fresh("r")
            self.emit(f"long long {r} = {off};")
            coords = []
            for shp, _ in reversed(l.dims):
                c = self.fresh("c")
                self.emit(f"long long {c} = {r} % ({shp}); {r} /= ({shp});")
                coords.append(c)
            coords.reverse()
            terms = [f"({l.offset})"] + [
                f"{c}*({st})" for c, (_, st) in zip(coords, l.dims)
            ]
            o = self.fresh("o")
            self.emit(f"long long {o} = " + " + ".join(terms) + ";")
            off = o
        return off

    def point_offset(self, arr: CArr, idx: List[str]) -> str:
        inner = arr.inner
        if len(idx) != inner.rank:
            raise Reject("index rank mismatch")
        terms = [f"({inner.offset})"] + [
            f"({i})*({st})" for i, (_, st) in zip(idx, inner.dims)
        ]
        o = self.fresh("o")
        self.emit(f"long long {o} = " + " + ".join(terms) + ";")
        return self._through_outers(arr, o)

    def elem_offset(self, arr: CArr, e: str) -> str:
        """Offset of flat element ``e`` in C order of the visible shape."""
        inner = arr.inner
        r = self.fresh("r")
        self.emit(f"long long {r} = {e};")
        coords = []
        for shp, _ in reversed(inner.dims):
            c = self.fresh("c")
            self.emit(f"long long {c} = {r} % ({shp}); {r} /= ({shp});")
            coords.append(c)
        coords.reverse()
        terms = [f"({inner.offset})"] + [
            f"{c}*({st})" for c, (_, st) in zip(coords, inner.dims)
        ]
        o = self.fresh("o")
        self.emit(f"long long {o} = " + " + ".join(terms) + ";")
        return self._through_outers(arr, o)

    def addr(self, arr: CArr, off: str) -> str:
        ct = _CTYPE[arr.dtype]
        return (
            f"*({ct}*)(bufs[{arr.mem.buf}] + "
            f"{arr.itemsize}*(({arr.mem.base}) + ({off})))"
        )

    # -- scalar semantics ----------------------------------------------
    @staticmethod
    def promote(x: SVal, y: SVal) -> Tuple[str, bool]:
        if x.weak and y.weak:
            dx = "i64" if x.dtype == "bool" else x.dtype
            dy = "i64" if y.dtype == "bool" else y.dtype
            if "f64" in (dx, dy) or "f32" in (dx, dy):
                return "f64", True
            return "i64", True
        if x.weak or y.weak:
            w, s = (x, y) if x.weak else (y, x)
            # NEP 50: a weak Python scalar adopts the strong operand's
            # dtype, except weak float forcing ints up to f64.
            if w.dtype in ("f64", "f32") and s.dtype in ("i64", "bool"):
                return "f64", False
            if s.dtype == "bool":
                return ("i64" if w.dtype in ("i64", "bool") else w.dtype,
                        False)
            return s.dtype, False
        a, b = sorted((x.dtype, y.dtype))
        return _PROMOTE[(a, b)], False

    def cast(self, v: SVal, dtype: str) -> str:
        if v.dtype == dtype:
            return v.c
        return f"(({_CTYPE[dtype]})({v.c}))"

    def _bind_local(self, expr: str, dtype: str, weak: bool) -> SVal:
        n = self.fresh()
        self.emit(f"{_CTYPE[dtype]} {n} = {expr};")
        return SVal(n, dtype, weak=weak, scope=self.cur_scope)

    def binop(self, op: str, x: SVal, y: SVal) -> SVal:
        dt, weak = self.promote(x, y)
        xc, yc = self.cast(x, dt), self.cast(y, dt)
        if op in ("+", "-", "*"):
            if dt == "bool":
                raise Reject("boolean arithmetic")
            return self._bind_local(f"{xc} {op} {yc}", dt, weak)
        if op == "/":
            if dt in ("i64", "bool"):
                return self._bind_local(
                    f"((double)({xc})) / ((double)({yc}))", "f64", weak
                )
            return self._bind_local(f"{xc} / {yc}", dt, weak)
        if op in ("//", "%"):
            if dt not in ("i64",):
                raise Reject(f"float {op} has no exact C form")
            fn = "repro_fdiv" if op == "//" else "repro_fmod"
            return self._bind_local(f"{fn}({xc}, {yc})", dt, weak)
        if op in ("min", "max"):
            # Python min/max return an *operand* (no conversion), so the
            # result dtype would be value-dependent under mixed operand
            # types; only the homogeneous case is exactly expressible.
            if x.dtype != y.dtype or x.weak != y.weak:
                raise Reject("mixed-type min/max")
            cmp = "<" if op == "min" else ">"
            return self._bind_local(
                f"({yc} {cmp} {xc}) ? {yc} : {xc}", dt, weak
            )
        if op in ("<", "<=", "==", "!=", ">", ">="):
            return self._bind_local(f"({xc} {op} {yc})", "bool", False)
        if op in ("&&", "||"):
            return self._bind_local(
                f"(({x.c}) {op} ({y.c}))", "bool", False
            )
        if op == "pow":
            raise Reject("pow has no bit-exact C form")
        raise Reject(f"unknown binop {op!r}")

    def unop(self, op: str, x: SVal) -> SVal:
        if op == "neg":
            if x.dtype == "bool":
                raise Reject("negating a boolean")
            return self._bind_local(f"-({x.c})", x.dtype, x.weak)
        if op == "sqrt":
            if x.dtype == "f32" and not x.weak:
                return self._bind_local(f"sqrtf({x.c})", "f32", False)
            return self._bind_local(f"sqrt((double)({x.c}))", "f64", False)
        if op == "abs":
            if x.dtype == "i64":
                return self._bind_local(f"llabs({x.c})", "i64", x.weak)
            if x.dtype == "f32":
                return self._bind_local(f"fabsf({x.c})", "f32", x.weak)
            if x.dtype == "f64":
                return self._bind_local(f"fabs({x.c})", "f64", x.weak)
            raise Reject("abs of a boolean")
        if op == "i64":
            return self._bind_local(f"((long long)({x.c}))", "i64", True)
        if op == "f32":
            return self._bind_local(f"((float)({x.c}))", "f32", False)
        if op == "f64":
            return self._bind_local(f"((double)({x.c}))", "f64", False)
        if op in ("exp", "log"):
            raise Reject(f"{op} is not bit-stable across libm/NumPy")
        raise Reject(f"unknown unop {op!r}")

    def operand(self, op, scope) -> SVal:
        if isinstance(op, str):
            sv = scope.get(op)
            if sv is None:
                return self._host_scalar(op)
            if not isinstance(sv, SVal):
                raise Reject(f"array operand {op!r} in scalar position")
            self.check_scope(sv.scope)
            return sv
        if isinstance(op, SymExpr):
            return SVal(self.sym_c(op, scope), "i64", weak=True)
        if isinstance(op, bool):
            return SVal("1" if op else "0", "bool", weak=True)
        if isinstance(op, int):
            return SVal(_c_int(op), "i64", weak=True)
        if isinstance(op, float):
            return SVal(_c_lit(op, "f64"), "f64", weak=True)
        raise Reject(f"unsupported operand {op!r}")

    # -- statements -----------------------------------------------------
    def value_of(self, name: str, scope, memenv):
        v = scope.get(name)
        if v is not None:
            return v
        v = memenv.get(name)
        if v is not None:
            return v
        hv = self.env.get(name)
        from repro.mem.exec import RuntimeArray

        if isinstance(hv, RuntimeArray):
            return self._arg_array(("env", name), hv)
        if hv is None:
            raise Reject(f"unbound variable {name!r}")
        return self._host_scalar(name)

    def array_value(self, name: str, scope, memenv) -> CArr:
        v = self.value_of(name, scope, memenv)
        if not isinstance(v, CArr):
            raise Reject(f"{name!r} is not an array value")
        return self.use(v)

    def fix0(self, arr: CArr, idx: str) -> CArr:
        inner = arr.inner
        if inner.rank < 1:
            raise Reject("fixing a dimension of a rank-0 view")
        fixed = CLmad(
            f"({inner.offset}) + ({idx})*({inner.dims[0][1]})",
            list(inner.dims[1:]),
        )
        return CArr(
            arr.mem, arr.dtype, list(arr.lmads[:-1]) + [fixed],
            scope=self.cur_scope,
        )

    def emit_block(self, block: A.Block, scope, memenv, site: int):
        for stmt in block.stmts:
            self.emit_stmt(stmt, scope, memenv, site)
        return [self.value_of(r, scope, memenv) for r in block.result]

    def emit_stmt(self, stmt: A.Let, scope, memenv, site: int) -> None:
        exp = stmt.exp

        if isinstance(exp, A.Alloc):
            self._emit_alloc(stmt, exp, scope, memenv)
            return

        if isinstance(exp, (A.Lit, A.ScalarE, A.BinOp, A.UnOp)):
            scope[stmt.names[0]] = self._scalar_exp(exp, scope, site)
            return

        if isinstance(exp, A.VarRef):
            pe = stmt.pattern[0]
            if pe.is_array():
                scope[pe.name] = self.view_from_binding(pe, scope, memenv)
            else:
                scope[pe.name] = self.value_of(exp.name, scope, memenv)
            return

        if isinstance(
            exp, (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse)
        ):
            # Pure change of layout: the (possibly rebased) annotation is
            # authoritative; no data moves.
            scope[stmt.names[0]] = self.view_from_binding(
                stmt.pattern[0], scope, memenv
            )
            return

        if isinstance(exp, (A.Iota, A.Replicate, A.Scratch)):
            dest = self.view_from_binding(stmt.pattern[0], scope, memenv)
            if not isinstance(exp, A.Scratch):
                sz = self.size_c(dest)
                self.charge_rw(site, dest.mem, True, f"{sz}*{dest.itemsize}")
                if isinstance(exp, A.Iota):
                    val = None
                else:
                    val = self.operand(exp.value, scope)
                ev = self.fresh("e")
                self.open_block(
                    f"for (long long {ev} = 0; {ev} < {sz}; {ev}++)"
                )
                off = self.elem_offset(dest, ev)
                src = ev if val is None else val.c
                self.emit(
                    f"{self.addr(dest, off)} = "
                    f"({_CTYPE[dest.dtype]})({src});"
                )
                self.close_block()
            # Scratch is uninitialized memory: writes nothing (the fresh
            # zeroed alloc buffer already matches the interpreter's
            # deterministic "uninitialized" contents).
            scope[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Copy):
            src = self.array_value(exp.src, scope, memenv)
            dest = self.view_from_binding(stmt.pattern[0], scope, memenv)
            self.emit_copy(src, dest, site)
            scope[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Concat):
            dest = self.view_from_binding(stmt.pattern[0], scope, memenv)
            inner = dest.inner
            if inner.rank < 1:
                raise Reject("concat into a rank-0 view")
            co = self.fresh("co")
            self.emit(f"long long {co} = 0;")
            for s in exp.srcs:
                src = self.array_value(s, scope, memenv)
                if src.inner.rank < 1:
                    raise Reject("concat of a rank-0 view")
                rows = self.fresh("rw")
                self.emit(f"long long {rows} = {src.inner.dims[0][0]};")
                region = CLmad(
                    f"({inner.offset}) + ({co})*({inner.dims[0][1]})",
                    [(rows, inner.dims[0][1])] + list(inner.dims[1:]),
                )
                rarr = CArr(
                    dest.mem, dest.dtype,
                    list(dest.lmads[:-1]) + [region], scope=self.cur_scope,
                )
                self.emit_copy(src, rarr, site)
                self.emit(f"{co} += {rows};")
            scope[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Index):
            src = self.array_value(exp.src, scope, memenv)
            idx = [self.sym_c(i, scope) for i in exp.indices]
            self.pend_rw(site, src.mem, False, src.itemsize)
            off = self.point_offset(src, idx)
            n = self.fresh()
            self.emit(f"{_CTYPE[src.dtype]} {n} = {self.addr(src, off)};")
            scope[stmt.names[0]] = SVal(
                n, src.dtype, weak=False, scope=self.cur_scope
            )
            return

        if isinstance(exp, A.Update):
            self._emit_update(stmt, exp, scope, memenv, site)
            return

        if isinstance(exp, A.Map):
            self._emit_nested_map(stmt, exp, scope, memenv)
            return

        if isinstance(exp, A.Loop):
            self._emit_loop(stmt, exp, scope, memenv, site)
            return

        if isinstance(exp, A.If):
            self._emit_if(stmt, exp, scope, memenv, site)
            return

        raise Reject(f"{type(exp).__name__} inside a kernel")

    def _scalar_exp(self, exp: A.Exp, scope, site: int) -> SVal:
        if isinstance(exp, A.Lit):
            return SVal(_c_lit(exp.value, exp.dtype), exp.dtype, weak=False)
        if isinstance(exp, A.ScalarE):
            n = self.fresh()
            self.emit(f"long long {n} = {self.sym_c(exp.expr, scope)};")
            return SVal(n, "i64", weak=True, scope=self.cur_scope)
        if isinstance(exp, A.BinOp):
            self.pend(site, 3, 1)
            return self.binop(
                exp.op, self.operand(exp.x, scope), self.operand(exp.y, scope)
            )
        assert isinstance(exp, A.UnOp)
        self.pend(site, 3, 1)
        return self.unop(exp.op, self.operand(exp.x, scope))

    # -- copies ---------------------------------------------------------
    def emit_copy(self, src: CArr, dst: CArr, site: int) -> None:
        src, dst = self.use(src), self.use(dst)
        if src.dtype != dst.dtype:
            raise Reject("copy between differing element types")
        ssz, dsz = self.size_c(src), self.size_c(dst)
        snb = f"{ssz}*{src.itemsize}"
        dnb = f"{dsz}*{dst.itemsize}"
        structural = len(src.lmads) == len(dst.lmads) and all(
            a.rank == b.rank for a, b in zip(src.lmads, dst.lmads)
        )
        if structural:
            # The interpreter elides when (block, index fn) coincide;
            # concrete index functions compare componentwise numerically.
            conds = [
                f"bufs[{src.mem.buf}] == bufs[{dst.mem.buf}]",
                f"({src.mem.base}) == ({dst.mem.base})",
            ]
            for a, b in zip(src.lmads, dst.lmads):
                conds.append(f"({a.offset}) == ({b.offset})")
                for (sh1, st1), (sh2, st2) in zip(a.dims, b.dims):
                    conds.append(f"({sh1}) == ({sh2})")
                    conds.append(f"({st1}) == ({st2})")
            el = self.fresh("el")
            self.emit(f"char {el} = {' && '.join(conds)};")
            self.open_block(f"if ({el})")
            self.charge(site, 4, "1LL")
            self.charge(site, 5, f"{snb} + {dnb}")
            self.close_block()
            self.open_block("else")
            self._copy_body(src, dst, dsz, snb, dnb, site)
            self.close_block()
        else:
            self._copy_body(src, dst, dsz, snb, dnb, site)

    def _copy_body(self, src, dst, dsz, snb, dnb, site) -> None:
        self.charge_rw(site, src.mem, False, snb)
        self.charge_rw(site, dst.mem, True, dnb)
        ev = self.fresh("e")
        self.open_block(f"for (long long {ev} = 0; {ev} < {dsz}; {ev}++)")
        soff = self.elem_offset(src, ev)
        doff = self.elem_offset(dst, ev)
        self.emit(f"{self.addr(dst, doff)} = {self.addr(src, soff)};")
        self.close_block()

    # -- allocation -----------------------------------------------------
    def _emit_alloc(self, stmt: A.Let, exp: A.Alloc, scope, memenv) -> None:
        name = stmt.names[0]
        counts = []
        for entry in self._alloc_path:
            if entry is None:
                raise Reject("allocation under a data-dependent branch")
            if not entry[3]:
                raise Reject("allocation under a non-launch-evaluable loop")
            counts.append(entry)
        for fv in exp.size.free_vars():
            if fv not in self.env or fv in scope:
                raise Reject("allocation size not launch-evaluable")
        site_idx = len(self.alloc_sites)
        bslot = len(self.buf_dirs)
        self.buf_dirs.append(("alloc", site_idx))
        self.buf_space.append(exp.space)
        self.alloc_sites.append(
            (name, exp.size, tuple(e[2] for e in counts), exp.dtype,
             exp.space)
        )
        # Linearized slot: thread index, then enclosing iteration indices
        # (one disjoint slot per dynamic execution, emulating the
        # interpreter's fresh block per alloc execution).
        slot = None
        for cnt_c, idx, _, _ in counts:
            slot = idx if slot is None else f"(({slot})*({cnt_c}) + ({idx}))"
        size_c = self.sym_c(exp.size, scope)
        base = self.fresh("ab")
        self.emit(f"long long {base} = ({slot})*({size_c});")
        memenv[name] = MemObj(bslot, base, self.cur_scope)

    # -- compound statements --------------------------------------------
    def _emit_update(self, stmt, exp: A.Update, scope, memenv, site) -> None:
        result = self.view_from_binding(stmt.pattern[0], scope, memenv)
        spec = exp.spec
        if isinstance(spec, A.PointSpec):
            idx = [self.sym_c(i, scope) for i in spec.indices]
            self.pend_rw(site, result.mem, True, result.itemsize)
            off = self.point_offset(result, idx)
            val = self.operand(exp.value, scope)
            self.emit(
                f"{self.addr(result, off)} = "
                f"({_CTYPE[result.dtype]})({val.c});"
            )
            scope[stmt.names[0]] = result
            return
        if isinstance(spec, A.TripletSpec):
            inner = result.inner
            if len(spec.triplets) != inner.rank:
                raise Reject("triplet rank mismatch")
            off_terms = [f"({inner.offset})"]
            dims = []
            for (a, b, c), (_, st) in zip(spec.triplets, inner.dims):
                off_terms.append(f"({self.sym_c(a, scope)})*({st})")
                dims.append(
                    (self.sym_c(b, scope), f"({self.sym_c(c, scope)})*({st})")
                )
            region = CArr(
                result.mem, result.dtype,
                list(result.lmads[:-1])
                + [CLmad(" + ".join(off_terms), dims)],
                scope=self.cur_scope,
            )
            if not isinstance(exp.value, str):
                raise Reject("slice update value must be an array variable")
            value = self.array_value(exp.value, scope, memenv)
            self.emit_copy(value, region, site)
            scope[stmt.names[0]] = result
            return
        raise Reject("LMAD-spec update inside a kernel")

    def _emit_nested_map(self, stmt, exp: A.Map, scope, memenv) -> None:
        if len(exp.lam.params) != 1:
            raise Reject("multi-parameter map lambda")
        nsite = self.site_of(stmt, "map", f"map:{'/'.join(stmt.names)}")
        # The statement's execution (not its threads) creates the kernel
        # stat, width 0 included -- counted in the *enclosing* block.
        self.pend(nsite, 0, 1)
        dests = [
            self.view_from_binding(pe, scope, memenv) if pe.is_array()
            else None
            for pe in stmt.pattern
        ]
        wvar = self.fresh("w")
        self.emit(f"long long {wvar} = {self.sym_c(exp.width, scope)};")
        ok = all(
            fv in self.env and fv not in scope
            for fv in exp.width.free_vars()
        )
        ivar = self.fresh("i")
        self._alloc_path.append((wvar, ivar, exp.width, ok))
        self.open_block(f"for (long long {ivar} = 0; {ivar} < {wvar}; {ivar}++)")
        child = dict(scope)
        child[exp.lam.params[0]] = SVal(
            ivar, "i64", weak=True, scope=self.cur_scope
        )
        vals = self.emit_block(exp.lam.body, child, memenv, nsite)
        self._write_map_results(dests, vals, ivar, nsite)
        self.close_block()
        self._alloc_path.pop()
        for pe, dest in zip(stmt.pattern, dests):
            if dest is not None:
                scope[pe.name] = dest

    def _write_map_results(self, dests, vals, ivar, site) -> None:
        for dest, val in zip(dests, vals):
            if dest is None:
                continue
            region = self.fix0(dest, ivar)
            if isinstance(val, CArr):
                self.emit_copy(val, region, site)
            elif isinstance(val, SVal):
                self.pend_rw(site, dest.mem, True, dest.itemsize)
                off = self.point_offset(
                    region, ["0LL"] * region.inner.rank
                )
                self.emit(
                    f"{self.addr(region, off)} = "
                    f"({_CTYPE[dest.dtype]})({val.c});"
                )
            else:
                raise Reject("unsupported map result value")

    def _emit_loop(self, stmt, exp: A.Loop, scope, memenv, site) -> None:
        cnt = self.fresh("n")
        self.emit(f"long long {cnt} = {self.sym_c(exp.count, scope)};")
        param_bindings = getattr(exp.body, "param_bindings", {})
        carried = []
        for prm, initname in exp.carried:
            val = self.value_of(initname, scope, memenv)
            if isinstance(prm.type, ArrayType):
                if not isinstance(val, CArr):
                    raise Reject("array loop param initialized by non-array")
                self.check_scope(val.scope, val.mem.scope)
                b = param_bindings.get(prm.name)
                # Mirrors the interpreter: the param binding's memory
                # rebinds to the carried value's block unless it already
                # names a host-level block.
                rebind = b is None or b.mem not in self.ex.mem
                carried.append(("arr", prm, val, b, rebind))
            else:
                if not isinstance(val, SVal):
                    raise Reject("scalar loop param initialized by non-scalar")
                cvar = self.fresh("s")
                self.emit(f"{_CTYPE[val.dtype]} {cvar} = {val.c};")
                sv = SVal(
                    cvar, val.dtype, val.weak, mutable=True,
                    scope=self.cur_scope,
                )
                carried.append(("scal", prm, sv, None, False))
        ok = all(
            fv in self.env and fv not in scope
            for fv in exp.count.free_vars()
        )
        idxv = self.fresh("q")
        self._alloc_path.append((cnt, idxv, exp.count, ok))
        self.open_block(f"for (long long {idxv} = 0; {idxv} < {cnt}; {idxv}++)")
        child = dict(scope)
        child[exp.index] = SVal(idxv, "i64", weak=True, scope=self.cur_scope)
        for kind, prm, v, b, rebind in carried:
            if kind == "scal":
                child[prm.name] = v
            elif b is not None and not rebind:
                child[prm.name] = self.view_of(
                    b.mem, b.ixfn, prm.type.dtype, child, memenv
                )
            elif b is not None:
                child[b.mem] = v.mem
                capture: Dict[str, str] = {}
                lmads = [
                    CLmad(
                        self.sym_c(l.offset, child, capture),
                        [
                            (self.sym_c(d.shape, child, capture),
                             self.sym_c(d.stride, child, capture))
                            for d in l.dims
                        ],
                    )
                    for l in b.ixfn.lmads
                ]
                child[prm.name] = CArr(
                    v.mem, prm.type.dtype, lmads, scope=self.cur_scope
                )
            else:
                child[prm.name] = v
        vals = self.emit_block(exp.body, child, memenv, site)
        upds = []
        for (kind, prm, v, b, rebind), nv in zip(carried, vals):
            if kind == "scal":
                if not isinstance(nv, SVal):
                    raise Reject("scalar loop result is not a scalar")
                if nv.dtype != v.dtype or nv.weak != v.weak:
                    raise Reject("loop-carried scalar changes type")
                t = self.fresh("t")
                self.emit(f"{_CTYPE[v.dtype]} {t} = {nv.c};")
                upds.append((v.c, t))
            else:
                if not isinstance(nv, CArr):
                    raise Reject("array loop result is not an array")
                # Fixpoint requirement: the carried block must not rotate
                # across iterations (in-place update chains satisfy this;
                # in-kernel double-buffering falls back to vectorized).
                if rebind or b is None:
                    if not nv.mem.same(v.mem):
                        raise Reject("loop-carried array changes blocks")
        for cvar, t in upds:
            self.emit(f"{cvar} = {t};")
        self.close_block()
        self._alloc_path.pop()
        # Final state: scalars live in their C locals; arrays re-derive
        # from the pattern bindings (or carry just their block identity).
        finals: List[object] = []
        for (kind, prm, v, b, rebind), nv in zip(carried, vals):
            if kind == "scal":
                finals.append(v)
            else:
                finals.append(
                    CArr(nv.mem, nv.dtype, nv.lmads, scope=nv.scope)
                )
        finals.extend(vals[len(carried):])
        self._bind_compound(stmt, finals, scope, memenv)

    def _bind_compound(self, stmt, vals, scope, memenv) -> None:
        for pe, val in zip(stmt.pattern, vals):
            if not pe.is_array():
                if not isinstance(val, (SVal, MemObj)):
                    raise Reject("unsupported compound result")
                scope[pe.name] = val
        for pe, val in zip(stmt.pattern, vals):
            if pe.is_array():
                if pe.mem is not None:
                    b = binding_of(pe)
                    if not self._mem_resolvable(b.mem, scope, memenv):
                        if not isinstance(val, CArr):
                            raise Reject("existential result is not an array")
                        self.check_scope(val.mem.scope)
                        memenv[b.mem] = val.mem
                    scope[pe.name] = self.view_from_binding(
                        pe, scope, memenv
                    )
                else:
                    scope[pe.name] = val

    def _mem_resolvable(self, mem: str, scope, memenv) -> bool:
        if mem in memenv or isinstance(scope.get(mem), MemObj):
            return True
        try:
            self.ex._resolve_mem(mem, self.env)
            return True
        except Exception:
            return False

    def _emit_if(self, stmt, exp: A.If, scope, memenv, site) -> None:
        cond = self.operand(exp.cond, scope)
        mark = len(self.lines)
        decl_indent = "    " * self.indent
        self._alloc_path.append(None)
        self.open_block(f"if ({cond.c})")
        tvals = self.emit_block(exp.then_block, dict(scope), memenv, site)
        for v in tvals:
            if not isinstance(v, SVal):
                raise Reject("non-scalar if result inside a kernel")
        temps = [self.fresh("r") for _ in tvals]
        for t, v in zip(temps, tvals):
            self.emit(f"{t} = {v.c};")
        self.close_block()
        self.open_block("else")
        evals = self.emit_block(exp.else_block, dict(scope), memenv, site)
        if len(evals) != len(tvals):
            raise Reject("if branches disagree on result arity")
        for v, tv in zip(evals, tvals):
            if not isinstance(v, SVal):
                raise Reject("non-scalar if result inside a kernel")
            if v.dtype != tv.dtype or v.weak != tv.weak:
                raise Reject("if branches disagree on result type")
        for t, v in zip(temps, evals):
            self.emit(f"{t} = {v.c};")
        self.close_block()
        self._alloc_path.pop()
        decls = [
            f"{decl_indent}{_CTYPE[v.dtype]} {t};"
            for t, v in zip(temps, tvals)
        ]
        self.lines[mark:mark] = decls
        results = [
            SVal(t, v.dtype, v.weak, mutable=True, scope=self.cur_scope)
            for t, v in zip(temps, tvals)
        ]
        self._bind_compound(stmt, results, scope, memenv)


# ----------------------------------------------------------------------
_HELPERS = """\
static long long repro_fdiv(long long a, long long b) {
    long long q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q--;
    return q;
}
static long long repro_fmod(long long a, long long b) {
    long long r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
"""


def emit_kernel(ex, stmt: A.Let, exp: A.Map, env, dests) -> KernelSpec:
    """Emit one outermost map statement as a complete C translation unit.

    ``env``/``dests`` come from the statement's *first* launch; structure
    derived from them (index-function ranks, scalar kinds) is validated
    against every later launch by the engine.  Raises :class:`Reject`
    when any construct in the subtree is outside the native set.
    """
    if len(exp.lam.params) != 1:
        raise Reject("multi-parameter map lambda")
    em = _Emitter(ex, env)
    em.site_of(stmt, "map", f"map:{'/'.join(stmt.names)}")  # site 0
    dest_arrs = []
    for k, d in enumerate(dests):
        dest_arrs.append(
            em._arg_array(("dest", k), d) if d is not None else None
        )
    ok = all(fv in env for fv in exp.width.free_vars())
    em._alloc_path.append(("W", "t", exp.width, ok))
    em.open_block("for (long long t = 0; t < W; t++)")
    scope = {
        exp.lam.params[0]: SVal("t", "i64", weak=True, scope=em.cur_scope)
    }
    memenv: Dict[str, MemObj] = {}
    vals = em.emit_block(exp.lam.body, scope, memenv, 0)
    em._write_map_results(dest_arrs, vals, "t", 0)
    em.close_block()
    body = "\n".join(em.lines)
    source = (
        f"/* repro native kernel (ABI v{ABI_VERSION}) -- "
        f"generated from memory IR; do not edit. */\n"
        "#include <math.h>\n"
        "#include <stdlib.h>\n\n"
        f"{_HELPERS}\n"
        "void repro_kernel(long long W, const long long* ia, "
        "const double* fa, char** bufs, long long* C) {\n"
        "    (void)ia; (void)fa; (void)bufs; (void)C;\n"
        f"{body}\n"
        "}\n"
    )
    return KernelSpec(
        source=source,
        int_dirs=em.int_dirs,
        flt_dirs=em.flt_dirs,
        buf_dirs=em.buf_dirs,
        alloc_sites=em.alloc_sites,
        sites=em.sites,
    )
