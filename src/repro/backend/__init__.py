"""Native codegen executor tier: memory IR -> C -> cached shared objects.

The third executor tier.  :mod:`repro.backend.cemit` lowers one
outermost ``map`` statement -- post-pipeline, memory-annotated, LMAD
index functions and all -- to a single flat C translation unit whose
loops mirror the interpreter's thread walk and whose counter stores
mirror its :class:`~repro.mem.stats.ExecStats` accounting exactly.
:mod:`repro.backend.build` compiles and caches the shared objects;
:mod:`repro.backend.engine` marshals launches and falls back to the
vectorized/interpreted tiers per statement (emission rejected) or per
launch (structure changed).

``REPRO_NATIVE=off`` (or ``0``) disables the tier globally; a missing C
compiler disables it with a one-line warning.  Either way every program
still runs -- bit-identically -- on the remaining tiers.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.backend.build import BuildError, clear_memo, find_cc
from repro.backend.engine import NativeEngine

__all__ = [
    "BuildError",
    "NativeEngine",
    "clear_memo",
    "find_cc",
    "native_enabled",
    "maybe_engine",
]


def native_enabled() -> bool:
    """True when the native tier may be used: not switched off via
    ``REPRO_NATIVE`` and a C compiler is present."""
    if os.environ.get("REPRO_NATIVE", "").lower() in ("off", "0", "false"):
        return False
    return find_cc()[0] is not None


def maybe_engine(plans: Optional[Dict[int, object]] = None,
                 warn: bool = True) -> Optional[NativeEngine]:
    """A :class:`NativeEngine` when the tier is available, else None."""
    if os.environ.get("REPRO_NATIVE", "").lower() in ("off", "0", "false"):
        return None
    if find_cc()[0] is None:
        if warn:
            from repro.backend.build import warn_unavailable_once

            warn_unavailable_once()
        return None
    return NativeEngine(plans)
