"""Well-formedness lint over memory annotations (WF rules).

* WF01 -- every array-typed pattern element carries a :class:`MemBinding`
  (run after memory introduction, this is a hard invariant);
* WF02 -- every referenced memory block is bound *somewhere*: an ``alloc``
  statement, a parameter's implicit block, a loop parameter's existential
  block, or an existential scalar returned by ``if``/``loop``;
* WF03 -- alloc sizes are not provably negative;
* WF04 -- an ``if`` whose pattern binds an existentially-quantified memory
  block anti-unifies consistently: substituting each branch's returned
  block/scalars into the generalized index function reproduces that
  branch's actual binding;
* WF05 -- the pattern's array type and its binding's index function agree
  on rank (shape disagreements are reported at WARNING, since provers may
  be too weak for exotic but correct shapes);
* WF06 -- every array-typed loop parameter has a ``param_bindings`` entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.facts import (
    ScopeWalker,
    alloc_sizes,
    param_block_sizes,
    stmt_location,
)
from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.mem.memir import MemBinding, binding_of
from repro.symbolic import Context, Prover, SymExpr


def known_blocks(fun: A.Fun) -> Set[str]:
    """Every name that can legitimately serve as a memory block."""
    from repro.mem.memir import iter_stmts

    known = set(alloc_sizes(fun)) | set(param_block_sizes(fun))
    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            if not pe.is_array():
                known.add(pe.name)  # existential mem results are scalars
        if isinstance(stmt.exp, A.Loop):
            for b in getattr(stmt.exp.body, "param_bindings", {}).values():
                known.add(b.mem)
            for pe in stmt.pattern:
                # Loop results bind their existential block (rmem)
                # implicitly: there is no separate binder statement.
                if pe.is_array() and pe.mem is not None:
                    known.add(binding_of(pe).mem)
    return known


class _WfWalker(ScopeWalker):
    def __init__(self, fun: A.Fun, report: Report):
        super().__init__(fun)
        self.report = report
        self.known = known_blocks(fun)

    def on_stmt(self, stmt, ctx, bindings, avail, path, block, idx):
        loc = stmt_location(path, stmt)
        rep = self.report
        exp = stmt.exp

        if isinstance(exp, A.Alloc):
            rep.count()
            prover = Prover(ctx)
            if prover.neg(exp.size):
                rep.add(
                    "WF03", Severity.ERROR, loc,
                    f"alloc size {exp.size} is provably negative",
                )

        for pe in stmt.pattern:
            if not pe.is_array():
                continue
            rep.count()
            if pe.mem is None:
                rep.add(
                    "WF01", Severity.ERROR, loc,
                    f"array {pe.name!r} has no memory binding",
                )
                continue
            b = binding_of(pe)
            self._check_binding(pe.name, pe.type, b, ctx, loc)

        if isinstance(exp, A.Loop):
            pb = getattr(exp.body, "param_bindings", None) or {}
            for prm, _init in exp.carried:
                if not isinstance(prm.type, ArrayType):
                    continue
                rep.count()
                if prm.name not in pb:
                    rep.add(
                        "WF06", Severity.ERROR, loc,
                        f"loop array parameter {prm.name!r} has no "
                        "param_bindings entry",
                    )
                    continue
                self._check_binding(
                    prm.name, prm.type, pb[prm.name], ctx, loc
                )
        if isinstance(exp, A.If):
            self._check_if_existentials(stmt, exp, bindings, loc)

    # ------------------------------------------------------------------
    def _check_binding(
        self,
        name: str,
        typ: ArrayType,
        b: MemBinding,
        ctx: Context,
        loc: str,
    ) -> None:
        rep = self.report
        rep.count()
        if b.mem not in self.known:
            rep.add(
                "WF02", Severity.ERROR, loc,
                f"{name!r} is bound to unknown memory block {b.mem!r}",
            )
        if len(typ.shape) != b.ixfn.rank:
            rep.add(
                "WF05", Severity.ERROR, loc,
                f"{name!r} has rank {len(typ.shape)} but its index "
                f"function has rank {b.ixfn.rank}",
            )
            return
        prover = Prover(ctx)
        for ts, ixs in zip(typ.shape, b.ixfn.shape):
            rep.count()
            if not prover.eq(ts, ixs):
                rep.add(
                    "WF05", Severity.WARNING, loc,
                    f"{name!r} dimension {ts} differs from index-function "
                    f"dimension {ixs}",
                )

    # ------------------------------------------------------------------
    def _check_if_existentials(
        self,
        stmt: A.Let,
        exp: A.If,
        bindings: Dict[str, MemBinding],
        loc: str,
    ) -> None:
        """Existential returns anti-unify: pattern[k] corresponds to
        then/else ``result[k]`` in lockstep (the introduce pass's layout).
        """
        rep = self.report
        own = set(stmt.names)
        pat_index = {pe.name: k for k, pe in enumerate(stmt.pattern)}
        for k, pe in enumerate(stmt.pattern):
            if not pe.is_array() or pe.mem is None:
                continue
            b = binding_of(pe)
            if b.mem not in own:
                continue  # concrete (non-existential) result memory
            rep.count()
            m = pat_index[b.mem]
            for branch, label in (
                (exp.then_block, "then"),
                (exp.else_block, "else"),
            ):
                if k >= len(branch.result) or m >= len(branch.result):
                    rep.add(
                        "WF04", Severity.ERROR, loc,
                        f"{label}-branch returns {len(branch.result)} "
                        f"values but the pattern expects more",
                    )
                    continue
                res_name = branch.result[k]
                res_mem = branch.result[m]
                rb = _branch_binding(branch, res_name, bindings)
                if rb is None:
                    continue  # branch result is opaque here; skip
                if rb.mem != res_mem:
                    rep.add(
                        "WF04", Severity.ERROR, loc,
                        f"{label}-branch result {res_name!r} lives in "
                        f"{rb.mem!r} but the branch returns block "
                        f"{res_mem!r} for existential {b.mem!r}",
                    )
                    continue
                # Substitute the branch's returned scalars into the
                # generalized index function; it must reproduce the
                # branch's actual one.
                subst: Dict[str, SymExpr] = {}
                resolvable = True
                for v in b.ixfn.free_vars():
                    if v in own:
                        val = _branch_scalar(branch, branch.result[pat_index[v]])
                        if val is None:
                            resolvable = False
                            break
                        subst[v] = val
                if not resolvable:
                    continue
                if b.ixfn.substitute(subst) != rb.ixfn:
                    rep.add(
                        "WF04", Severity.ERROR, loc,
                        f"{label}-branch binding {rb} does not match the "
                        f"generalized index function {b.ixfn} under "
                        f"{{{', '.join(f'{a}={e}' for a, e in subst.items())}}}",
                    )


def _branch_binding(
    branch: A.Block, name: str, outer: Dict[str, MemBinding]
) -> Optional[MemBinding]:
    for s in branch.stmts:
        for pe in s.pattern:
            if pe.name == name and pe.is_array():
                return binding_of(pe) if pe.mem is not None else None
    return outer.get(name)


def _branch_scalar(branch: A.Block, name: str) -> Optional[SymExpr]:
    for s in branch.stmts:
        if name in s.names:
            if isinstance(s.exp, A.ScalarE):
                return s.exp.expr
            if isinstance(s.exp, A.Lit) and s.exp.dtype == "i64":
                return SymExpr.const(int(s.exp.value))
            return None
    return SymExpr.var(name)  # bound in an enclosing scope


def check_wellformed(fun: A.Fun, report: Report) -> None:
    _WfWalker(fun, report).run()
