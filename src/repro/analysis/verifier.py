"""Entry point: run every checker over an annotated function.

``verify_fun`` is deliberately pass-agnostic: it takes any function in
memory-IR form (i.e. after :func:`repro.mem.introduce.introduce_memory`)
and re-derives the safety obligations from scratch.  The pipeline calls
it between stages (``compile_fun(..., verify=True)``) to attribute a
regression to the pass that introduced it; the CLI calls it on whole
benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.bounds import check_bounds
from repro.analysis.diagnostics import Report
from repro.analysis.frees import check_frees
from repro.analysis.fusion import check_fusion
from repro.analysis.liveness import check_liveness
from repro.analysis.races import check_races
from repro.analysis.spaces import check_spaces
from repro.analysis.wellformed import check_wellformed
from repro.ir import ast as A

#: Checker registry, in the order they run.  Well-formedness first: the
#: later checkers assume its invariants (bindings present, blocks known).
CHECKERS = (
    ("wellformed", check_wellformed),
    ("bounds", check_bounds),
    ("liveness", check_liveness),
    ("races", check_races),
    ("frees", check_frees),
    ("fusion", check_fusion),
    ("spaces", check_spaces),
)


def verify_fun(
    fun: A.Fun, *, stage: Optional[str] = None, pool=None
) -> Report:
    """Verify one memory-IR function; returns the full :class:`Report`.

    Raises nothing on findings -- inspect ``report.ok()``.  Checker
    crashes propagate: an exception here means the *verifier* is broken,
    which must never be silently conflated with a clean program.

    ``pool`` is an optional shared :class:`~repro.lmad.ProverPool`; the
    race checker's tiered disjointness queries then memoize (and tally)
    alongside the optimization passes' own queries.
    """
    report = Report(fun_name=fun.name, stage=stage)
    for _label, checker in CHECKERS:
        if checker is check_races:
            checker(fun, report, pool)
        else:
            checker(fun, report)
    return report
