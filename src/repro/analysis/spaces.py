"""Memory-space validation (MS rules): capacities and space coherence.

Memory blocks carry a space tag (:mod:`repro.mem.spaces`): ``hbm`` is
device DRAM, ``scratch`` and ``regs`` are the bounded on-chip spaces.
Two things can go wrong once passes start moving arrays between blocks:

* MS01 -- a block placed in a bounded space must fit it.  An individual
  allocation whose *concrete* size exceeds the space's capacity is a
  proven violation (ERROR).  When the concrete allocations of one kernel
  body together overflow the space, the placement is merely suspicious
  (WARNING) -- the executor model keeps one representative thread's
  scratch, but a real backend would spill.  Symbolic sizes are skipped:
  the benchmarks are compiled at symbolic shapes and a capacity claim
  about ``n*n`` bytes is not decidable here.
* MS02 -- every binding's space tag must agree with the space of the
  block it names: an ``alloc``'s declared space, or ``hbm`` for input
  parameter blocks.  A mismatch means a pass re-homed an array across
  spaces without the corresponding copy (coalescing must never merge
  across spaces; short-circuiting must re-tag when it rebases into the
  destination block).  Existential blocks (loop/if results) have no
  declaration site and are skipped.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.facts import stmt_location
from repro.ir import ast as A
from repro.ir.types import ArrayType, DTYPE_INFO
from repro.mem.memir import binding_of, iter_stmts, param_mem_name
from repro.mem.spaces import SPACES, space_of


def _concrete_nbytes(exp: A.Alloc) -> int | None:
    if exp.size.free_vars():
        return None
    return int(exp.size.evaluate({})) * DTYPE_INFO[exp.dtype][1]


def check_spaces(fun: A.Fun, report: Report) -> None:
    """Run the MS rules over one memory-IR function."""
    # Declared space of every ground block: allocs + parameter blocks.
    declared: Dict[str, str] = {
        param_mem_name(p.name): "hbm"
        for p in fun.params
        if isinstance(p.type, ArrayType)
    }

    def walk(block: A.Block, path: str, kernel: bool) -> None:
        # Per-space concrete-byte totals of this kernel body's subtree
        # (only accumulated at the outermost map, where `kernel` flips).
        for i, stmt in enumerate(block.stmts):
            exp = stmt.exp
            loc = stmt_location(f"{path}[{i}]", stmt)
            if isinstance(exp, A.Alloc):
                declared[stmt.names[0]] = exp.space
                report.count()
                try:
                    space = space_of(exp.space)
                except KeyError:
                    report.add(
                        "MS01", Severity.ERROR, loc,
                        f"allocation names unknown memory space "
                        f"{exp.space!r} (known: {', '.join(SPACES)})",
                    )
                    continue
                nbytes = _concrete_nbytes(exp)
                if (
                    nbytes is not None
                    and space.capacity is not None
                    and nbytes > space.capacity
                ):
                    report.add(
                        "MS01", Severity.ERROR, loc,
                        f"{nbytes} bytes do not fit in space "
                        f"{space.name!r} (capacity {space.capacity})",
                    )
            for k, blk in enumerate(A.sub_blocks(exp)):
                walk(
                    blk,
                    f"{path}[{i}].sub[{k}]",
                    kernel or isinstance(exp, A.Map),
                )
            if isinstance(exp, A.Map) and not kernel:
                _check_kernel_budget(exp, loc, report)

    def _check_kernel_budget(exp: A.Map, loc: str, report: Report) -> None:
        totals: Dict[str, int] = {}
        for stmt in iter_stmts(exp.lam.body):
            if not isinstance(stmt.exp, A.Alloc):
                continue
            nbytes = _concrete_nbytes(stmt.exp)
            if nbytes is not None and stmt.exp.space in SPACES:
                totals[stmt.exp.space] = (
                    totals.get(stmt.exp.space, 0) + nbytes
                )
        for name, used in totals.items():
            cap = SPACES[name].capacity
            report.count()
            if cap is not None and used > cap:
                report.add(
                    "MS01", Severity.WARNING, loc,
                    f"kernel body allocates {used} concrete bytes in "
                    f"space {name!r}, over its {cap}-byte capacity "
                    f"(a real backend would spill)",
                )

    walk(fun.body, "body", kernel=False)

    # MS02: binding tags against declaration sites.
    def check_binding(mem: str, space: str, what: str, loc: str) -> None:
        decl = declared.get(mem)
        if decl is None:  # existential: no declaration site
            return
        report.count()
        if decl != space:
            report.add(
                "MS02", Severity.ERROR, loc,
                f"{what} is tagged @{space} but block {mem!r} lives "
                f"in @{decl}",
            )

    def walk_bindings(block: A.Block, path: str) -> None:
        for i, stmt in enumerate(block.stmts):
            loc = stmt_location(f"{path}[{i}]", stmt)
            for pe in stmt.pattern:
                if pe.is_array() and pe.mem is not None:
                    b = binding_of(pe)
                    check_binding(
                        b.mem, b.space, f"binding of {pe.name!r}", loc
                    )
            if isinstance(stmt.exp, A.Loop):
                pb = getattr(stmt.exp.body, "param_bindings", {})
                for prm, b in pb.items():
                    check_binding(
                        b.mem, b.space, f"loop param {prm!r}", loc
                    )
            for k, blk in enumerate(A.sub_blocks(stmt.exp)):
                walk_bindings(blk, f"{path}[{i}].sub[{k}]")

    walk_bindings(fun.body, "body")
