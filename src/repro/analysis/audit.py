"""Overlap audit: replay logged disjointness queries through both tiers.

Every disjointness query the compiler's passes issue goes through a
pooled :class:`~repro.lmad.overlap.TieredChecker`, which records the
query (operand LMADs, assumption context, deciding tier, result) in the
pool's ``query_log``.  The audit re-decides each logged query from
scratch with an independent structural checker and an independent
polyhedral engine and cross-examines the answers:

* **soundness**: the structural tier claiming *disjoint* while the
  relation engine proves the intersection ``NONEMPTY`` (or vice versa:
  a polyhedral EMPTY on a pair the structural tier can refute with a
  concrete shared point) is a prover bug -- the two tiers decide the
  same mathematical question and exact answers may never contradict;
* **reproducibility**: the recorded result must match the replayed
  tiered result -- the pool memos must not change answers.

Used by ``python -m repro.analysis --overlap-audit`` (wired into CI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.isl.emptiness import Verdict
from repro.isl.engine import PolyEngine
from repro.lmad.overlap import NonOverlapChecker, ProverPool
from repro.symbolic import Prover


@dataclass
class AuditResult:
    """Replay outcome for one compilation's query log."""

    name: str
    preset: str
    queries: int = 0
    dropped: int = 0
    structural: int = 0
    polyhedral: int = 0
    unknown: int = 0
    disagreements: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.disagreements

    def render(self) -> str:
        status = "ok" if self.ok() else "DISAGREEMENT"
        line = (
            f"[{status}] {self.name}/{self.preset}: {self.queries} queries "
            f"(structural {self.structural}, polyhedral {self.polyhedral}, "
            f"unknown {self.unknown}"
            + (f", {self.dropped} dropped from log" if self.dropped else "")
            + ")"
        )
        return "\n".join([line] + [f"    {d}" for d in self.disagreements])


def audit_pool(pool: ProverPool, name: str, preset: str) -> AuditResult:
    """Replay ``pool.query_log`` through fresh instances of both tiers."""
    res = AuditResult(name=name, preset=preset, dropped=pool.log_dropped)
    for rec in pool.query_log:
        res.queries += 1
        prover = Prover(rec.ctx)
        structural = NonOverlapChecker(prover).check(rec.l1, rec.l2)
        verdict = PolyEngine(prover).accesses_disjoint(rec.l1, rec.l2)
        if structural:
            res.structural += 1
        elif verdict is Verdict.EMPTY:
            res.polyhedral += 1
        else:
            res.unknown += 1

        if structural and verdict is Verdict.NONEMPTY:
            res.disagreements.append(
                f"structural=disjoint but polyhedral=NONEMPTY for "
                f"{rec.l1} vs {rec.l2} (client {rec.client})"
            )
        replayed = structural or verdict is Verdict.EMPTY
        if replayed != rec.result:
            res.disagreements.append(
                f"recorded {rec.result} (tier {rec.tier}) but replay gives "
                f"{replayed} for {rec.l1} vs {rec.l2} (client {rec.client})"
            )
    return res


def audit_compilation(fun, name: str, preset: str) -> AuditResult:
    """Compile ``fun`` under ``preset`` and audit the pool it used."""
    from repro.pipeline import (
        CompileContext,
        PassManager,
        PRESETS,
        build_pipeline,
    )

    flags = PRESETS[preset]
    ctx = CompileContext(source=fun)
    PassManager(build_pipeline(**flags), name=preset).run(ctx)
    return audit_pool(ctx.provers, name, preset)
