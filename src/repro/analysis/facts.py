"""Shared program facts for the verifier's checkers.

Everything here is derived from the annotated function alone -- none of it
consults the passes' own analyses, which is the point: the verifier must
disagree with a broken pass, not inherit its bug.

* :class:`ScopeWalker` -- a scoped traversal carrying the symbolic context
  (function assumptions, scalar definitions, loop/map index ranges), the
  array-binding environment, and the set of memory blocks bound so far.
* :func:`dataflow_edges` / :class:`Downstream` -- the directed value-flow
  relation over names: ``y in downstream(x)`` means a read through ``y``
  may legitimately observe data written through ``x`` (so the race checker
  must not flag that pair).
* :func:`alias_closure` -- the symmetric buffer-sharing relation used to
  validate last-use annotations (views, update src/result, if/loop result
  plumbing -- deliberately *not* the rebased same-block relation, which is
  exactly what short-circuiting is allowed to create).
* :func:`stmt_location` -- human-readable statement locations via the
  pretty-printer.
* :func:`sample_env` -- a concrete model of the function's assumptions for
  the bounds checker's fallback evaluation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir import ast as A
from repro.ir.pretty import _pretty_exp
from repro.ir.types import ArrayType
from repro.lmad import IndexFn
from repro.mem.memir import (
    MemBinding,
    binding_of,
    iter_stmts,
    param_mem_name,
)
from repro.symbolic import Context, SymExpr, sym


# ----------------------------------------------------------------------
# Locations
# ----------------------------------------------------------------------
def stmt_location(path: str, stmt: A.Let) -> str:
    """``body[3].loop.body[1]: let (A2, ...) = Ac with [...] = X``."""
    pat = ", ".join(pe.name for pe in stmt.pattern)
    exp = stmt.exp
    if isinstance(exp, A.Map):
        head = f"map ({exp.lam.params[0]} < {exp.width}) {{...}}"
    elif isinstance(exp, A.Loop):
        head = f"loop for {exp.index} < {exp.count} {{...}}"
    elif isinstance(exp, A.If):
        head = f"if {exp.cond} then {{...}} else {{...}}"
    else:
        head = _pretty_exp(exp)
    return f"{path}: let ({pat}) = {head}"


def _operand_expr(op: A.Operand) -> SymExpr:
    """A width/count operand as a symbolic expression."""
    if isinstance(op, str):
        return SymExpr.var(op)
    return sym(op)


# ----------------------------------------------------------------------
# Memory-block tables
# ----------------------------------------------------------------------
def alloc_sizes(fun: A.Fun) -> Dict[str, SymExpr]:
    """Memory block name -> allocated size (in elements), for every alloc."""
    out: Dict[str, SymExpr] = {}
    for stmt in iter_stmts(fun.body):
        if isinstance(stmt.exp, A.Alloc):
            out[stmt.names[0]] = stmt.exp.size
    return out


def param_block_sizes(fun: A.Fun) -> Dict[str, SymExpr]:
    """Implicit parameter block name -> size (in elements)."""
    return {
        param_mem_name(p.name): p.type.size()
        for p in fun.params
        if isinstance(p.type, ArrayType)
    }


def concrete_blocks(fun: A.Fun) -> Set[str]:
    """Blocks with real storage of known extent (allocs + param blocks).

    Everything else (``emem``/``lmem``/``rmem`` existentials) is an
    indirection the executor resolves at run time.
    """
    return set(alloc_sizes(fun)) | set(param_block_sizes(fun))


def referenced_mems(fun: A.Fun) -> Set[str]:
    """Every memory-block name any binding mentions."""
    out: Set[str] = set()
    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None:
                out.add(binding_of(pe).mem)
        if isinstance(stmt.exp, A.Loop):
            for b in getattr(stmt.exp.body, "param_bindings", {}).values():
                out.add(b.mem)
    return out


# ----------------------------------------------------------------------
# Scoped traversal
# ----------------------------------------------------------------------
class ScopeWalker:
    """Recursive traversal with symbolic context and binding environment.

    Subclasses override :meth:`on_stmt`; it runs for every statement with
    the context as of that point (function assumptions + scalar
    definitions so far + enclosing loop/map index ranges), the array
    bindings in scope, the set of memory-block names bound so far, and a
    location path.  Compound statements recurse *before* their pattern is
    bound (matching execution order).
    """

    def __init__(self, fun: A.Fun):
        self.fun = fun
        self._existential_mems = referenced_mems(fun)
        self._concrete = concrete_blocks(fun)

    def run(self) -> None:
        ctx = self.fun.build_context()
        bindings: Dict[str, MemBinding] = {}
        avail: Set[str] = set()
        for p in self.fun.params:
            if isinstance(p.type, ArrayType):
                mem = param_mem_name(p.name)
                bindings[p.name] = MemBinding(
                    mem, IndexFn.row_major(p.type.shape)
                )
                avail.add(mem)
        self._block(self.fun.body, ctx, bindings, avail, "body")

    # -- hook ----------------------------------------------------------
    def on_stmt(
        self,
        stmt: A.Let,
        ctx: Context,
        bindings: Dict[str, MemBinding],
        avail: Set[str],
        path: str,
        block: A.Block,
        idx: int,
    ) -> None:  # pragma: no cover - overridden
        pass

    # -- driver --------------------------------------------------------
    def _block(
        self,
        block: A.Block,
        parent_ctx: Context,
        parent_bindings: Dict[str, MemBinding],
        parent_avail: Set[str],
        path: str,
    ) -> None:
        ctx = parent_ctx.extended()
        bindings = dict(parent_bindings)
        avail = set(parent_avail)
        for i, stmt in enumerate(block.stmts):
            spath = f"{path}[{i}]"
            self.on_stmt(stmt, ctx, bindings, avail, spath, block, i)
            exp = stmt.exp
            if isinstance(exp, A.ScalarE):
                ctx.define(stmt.names[0], exp.expr)
            elif isinstance(exp, A.Lit) and exp.dtype == "i64":
                ctx.define(stmt.names[0], int(exp.value))
            elif isinstance(exp, A.Alloc):
                avail.add(stmt.names[0])
            elif isinstance(exp, A.Map):
                mctx = ctx.extended()
                width = _operand_expr(exp.width)
                mctx.assume_range(exp.lam.params[0], 0, width - 1)
                self._block(
                    exp.lam.body, mctx, bindings, avail, spath + ".map"
                )
            elif isinstance(exp, A.Loop):
                lctx = ctx.extended()
                count = _operand_expr(exp.count)
                lctx.assume_range(exp.index, 0, count - 1)
                lb = dict(bindings)
                lav = set(avail)
                pb = getattr(exp.body, "param_bindings", {})
                for prm, _init in exp.carried:
                    if isinstance(prm.type, ArrayType) and prm.name in pb:
                        lb[prm.name] = pb[prm.name]
                        lav.add(pb[prm.name].mem)
                self._block(exp.body, lctx, lb, lav, spath + ".loop")
            elif isinstance(exp, A.If):
                self._block(
                    exp.then_block, ctx, bindings, avail, spath + ".then"
                )
                self._block(
                    exp.else_block, ctx, bindings, avail, spath + ".else"
                )
            for pe in stmt.pattern:
                if pe.is_array() and pe.mem is not None:
                    bindings[pe.name] = binding_of(pe)
                    if isinstance(exp, A.Loop):
                        # A loop result's existential block (rmem) is
                        # bound by the loop statement itself.
                        m = binding_of(pe).mem
                        if m not in self._concrete:
                            avail.add(m)
                elif not pe.is_array() and pe.name in self._existential_mems:
                    # An existential memory result (emem): the block name
                    # becomes available once the statement binds it.
                    avail.add(pe.name)


# ----------------------------------------------------------------------
# Value-flow (downstream) relation
# ----------------------------------------------------------------------
def dataflow_edges(fun: A.Fun) -> Dict[str, Set[str]]:
    """Directed edges ``x -> y``: data written through ``x`` may be the
    value a read through ``y`` is *supposed* to observe."""
    edges: Dict[str, Set[str]] = {}

    def add(src: str, dst: str) -> None:
        edges.setdefault(src, set()).add(dst)

    for stmt in iter_stmts(fun.body):
        exp = stmt.exp
        names = stmt.names
        if isinstance(
            exp,
            (A.VarRef, A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape,
             A.Reverse, A.Copy),
        ):
            src = exp.name if isinstance(exp, A.VarRef) else exp.src
            add(src, names[0])
        elif isinstance(exp, A.Concat):
            for s in exp.srcs:
                add(s, names[0])
        elif isinstance(exp, A.Update):
            add(exp.src, names[0])
            if isinstance(exp.value, str):
                add(exp.value, names[0])
        elif isinstance(exp, A.Map):
            for pe, res in zip(stmt.pattern, exp.lam.body.result):
                add(res, pe.name)
        elif isinstance(exp, A.Loop):
            for k, (prm, init) in enumerate(exp.carried):
                res = exp.body.result[k]
                add(res, prm.name)  # carried into the next iteration
                add(init, prm.name)
                if k < len(stmt.pattern):
                    add(res, stmt.pattern[k].name)
                    add(init, stmt.pattern[k].name)  # zero-trip loops
        elif isinstance(exp, A.If):
            for k, pe in enumerate(stmt.pattern):
                if k < len(exp.then_block.result):
                    add(exp.then_block.result[k], pe.name)
                if k < len(exp.else_block.result):
                    add(exp.else_block.result[k], pe.name)
        else:
            # Scalar-level flow (Index, ScalarE, BinOp, Reduce, ...):
            # arrays are routinely rebuilt element-by-element through
            # scalar reads, so these edges are what connect an array to
            # the map/loop results computed from it.
            for used in A.exp_uses(exp):
                for n in names:
                    add(used, n)
    return edges


class Downstream:
    """Memoized reachability over :func:`dataflow_edges`."""

    def __init__(self, fun: A.Fun):
        self._edges = dataflow_edges(fun)
        self._memo: Dict[str, FrozenSet[str]] = {}

    def of(self, name: str) -> FrozenSet[str]:
        cached = self._memo.get(name)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            for nxt in self._edges.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        out = frozenset(seen)
        self._memo[name] = out
        return out

    def dependent(self, writer: str, reader: str) -> bool:
        """May a read through ``reader`` legitimately observe a write
        through ``writer``?  Same name, or forward value-flow from the
        writer into the reader.  Deliberately NOT the reverse direction:
        that an array *fed* the writer does not make clobbering it
        benign."""
        if writer == reader:
            return True
        return reader in self.of(writer)


# ----------------------------------------------------------------------
# Buffer-alias closure (for last-use validation)
# ----------------------------------------------------------------------
def alias_closure(fun: A.Fun) -> Dict[str, FrozenSet[str]]:
    """Name -> its symmetric-transitive buffer-alias class.

    Mirrors the *semantics* the last-use analysis is defined against
    (``ir/alias.py``): views share their source's buffer, an update
    result is its source's buffer, if/loop results plumb their
    branch/body results, and a loop parameter starts as the initializer.
    Fresh constructors (copy, concat, iota, replicate, map) alias
    nothing -- even when short-circuiting later rebases them into a
    shared block, because that is exactly the buffer reuse ``last_uses``
    licenses.  The loop param <-> body-result carry edge is deliberately
    excluded, matching the per-iteration binding semantics.
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for stmt in iter_stmts(fun.body):
        exp = stmt.exp
        names = stmt.names
        if isinstance(
            exp,
            (A.VarRef, A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape,
             A.Reverse),
        ):
            src = exp.name if isinstance(exp, A.VarRef) else exp.src
            union(src, names[0])
        elif isinstance(exp, A.Update):
            union(exp.src, names[0])
        elif isinstance(exp, A.Loop):
            for k, (prm, init) in enumerate(exp.carried):
                union(init, prm.name)
                if k < len(stmt.pattern):
                    union(exp.body.result[k], stmt.pattern[k].name)
        elif isinstance(exp, A.If):
            for k, pe in enumerate(stmt.pattern):
                if k < len(exp.then_block.result):
                    union(exp.then_block.result[k], pe.name)
                if k < len(exp.else_block.result):
                    union(exp.else_block.result[k], pe.name)
    classes: Dict[str, Set[str]] = {}
    for name in list(parent):
        classes.setdefault(find(name), set()).add(name)
    out: Dict[str, FrozenSet[str]] = {}
    for members in classes.values():
        cls = frozenset(members)
        for m in members:
            out[m] = cls
    return out


# ----------------------------------------------------------------------
# Concrete sample environments (bounds fallback)
# ----------------------------------------------------------------------
def sample_env(
    ctx: Context, needed: Set[str], default: int = 3, rounds: int = 8
) -> Optional[Dict[str, int]]:
    """A concrete assignment consistent with the context's equalities and
    numeric bounds; ``None`` when some needed variable cannot be pinned.

    Defined variables get their defining expression evaluated; bounded
    variables get their lower bound (clamped into the upper bound when
    both exist); free variables get ``default``.
    """
    eqs = ctx.all_equalities()
    # Close the needed set over defining expressions and bounds.
    work = set(needed)
    closed: Set[str] = set()
    while work:
        v = work.pop()
        if v in closed:
            continue
        closed.add(v)
        deps: Set[str] = set()
        if v in eqs:
            deps |= eqs[v].free_vars()
        b = ctx.bound(v)
        if b.lower is not None:
            deps |= b.lower.free_vars()
        if b.upper is not None:
            deps |= b.upper.free_vars()
        work |= deps - closed

    env: Dict[str, int] = {}

    def try_eval(e: SymExpr) -> Optional[int]:
        return e.substitute(env).as_int() if env else e.as_int()

    for _ in range(rounds):
        progress = False
        for v in sorted(closed):
            if v in env:
                continue
            val: Optional[int] = None
            if v in eqs:
                val = try_eval(eqs[v])
                if val is None:
                    continue  # wait for dependencies
            else:
                b = ctx.bound(v)
                lo = try_eval(b.lower) if b.lower is not None else None
                hi = try_eval(b.upper) if b.upper is not None else None
                if b.lower is not None and lo is None:
                    continue
                if b.upper is not None and hi is None:
                    continue
                if lo is not None and hi is not None:
                    val = min(max(lo, min(default, hi)), hi)
                elif lo is not None:
                    val = max(lo, default)
                elif hi is not None:
                    val = min(default, hi)
                else:
                    val = default
            env[v] = val
            progress = True
        if all(v in env for v in closed):
            return env
        if not progress:
            return None
    return env if all(v in env for v in closed) else None


def index_var_ranges(
    ctx: Context, vars_: Set[str], env: Dict[str, int]
) -> Optional[List[Tuple[str, int, int]]]:
    """Concrete [lo, hi] ranges for loop/map index variables, under a
    sample environment for everything else."""
    out: List[Tuple[str, int, int]] = []
    for v in sorted(vars_):
        b = ctx.bound(v)
        if b.lower is None or b.upper is None:
            return None
        lo = b.lower.substitute(env).as_int()
        hi = b.upper.substitute(env).as_int()
        if lo is None or hi is None:
            return None
        out.append((v, lo, hi))
    return out
