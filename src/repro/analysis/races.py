"""Race detection over memory annotations (R rules).

The checker re-derives, independently of the short-circuiting pass, the
paper's section V-B/V-C safety conditions from the *output* program: it
walks every block collecting read/write **events** -- (memory block, LMAD
region, variable name) triples -- and demands a non-overlap proof
(:class:`repro.lmad.NonOverlapChecker`, including the Fig. 8 dimension
splitting) for every pair that the program's own dataflow does not order:

* **sequential clobbers** (R01): a read must not overlap any earlier
  write through a value-flow-independent name -- the exact situation an
  unsafe rebase creates, where an array's bytes are silently overwritten
  while a live unrelated array still points at them;
* **map cross-thread** (R02): threads execute in unspecified order, so
  every pair of events on a shared (non-thread-private) block, one of
  them a write, must be provably disjoint for distinct thread indices --
  with *no* dataflow exemption;
* **loop cross-iteration** (R03): a later iteration's access must not
  overlap an earlier iteration's write unless the value legitimately
  flows there (the carried-dependence chain).  The dataflow exemption is
  *not* wholesale: a dependent read is the flow itself (RAW, ordered by
  sequential execution), but a dependent write is exempt only under
  distance-vector reasoning on the LMADs -- both regions must provably
  shift by the same offset per iteration with index-invariant strides,
  otherwise the pair falls through to the ordinary disjointness proof.

Accesses whose region cannot be expressed as a single LMAD (composed
index functions) are reported as R04 on shared blocks: the checker cannot
reason about them, mirroring the paper's footnote that the unknown set
defeats all later disjointness checks.

Existential memory (``emem``/``lmem``/``rmem``) is an *indirection* the
executor resolves at run time to a real block -- the ``if`` branch's, the
loop initializer's, or wherever the loop body left its result.  Events on
an existential block are expanded to every block it can stand for (all
the index functions involved are whole-buffer row-major by the introduce
pass's normalization, so offsets transfer verbatim), which lets the
thread-privacy analysis see through them: a per-thread scratch buffer
carried through a sequential in-thread loop stays private.  Blocks
allocated inside a loop or map body are fresh per iteration/thread (the
executor enforces this), so events on them are exempt from the cross
checks and invisible to enclosing scopes.  The one case the expansion
cannot name -- a double-buffered loop whose parameter aliases the
*previous* iteration's body-local allocation -- is dropped rather than
flagged, so the checker can miss (never falsely report) races there.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.facts import (
    Downstream,
    _operand_expr,
    concrete_blocks,
    stmt_location,
)
from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.lmad import IndexFn, ProverPool, aggregate_over_loop
from repro.lmad.lmad import Lmad, LmadDim
from repro.mem.memir import (
    MemBinding,
    binding_of,
    param_mem_name,
)
from repro.symbolic import Context, Prover, SymExpr


@dataclass(frozen=True)
class Event:
    kind: str  # "r" | "w"
    mem: str
    lmad: Optional[Lmad]  # None: unknown region (composed index function)
    name: str  # variable the access goes through
    pos: int  # statement index in the current block
    loc: str  # statement location
    #: Provable no-op: the write stores the value already present at its
    #: address (the widened-rebase boundary fills).  No-op writes cannot
    #: clobber anything, so they are exempt vs. reads and other no-ops.
    noop: bool = False
    #: The full index function behind the region, kept when ``lmad`` is
    #: None so the polyhedral tier can still reason about composed
    #: accesses (R04 fallback).
    ixfn: Optional[IndexFn] = None

    def describe(self) -> str:
        what = "write" if self.kind == "w" else "read"
        region = "<unknown region>" if self.lmad is None else str(self.lmad)
        return f"{what} through {self.name!r} of {self.mem}:{region}"


def _norm_lmad(l: Lmad, ctx: Context) -> Lmad:
    """Rewrite with the context's equalities so locally-defined scalars
    (e.g. ``g = r*b + 1``) are expressed in loop indices -- required for
    aggregation over those indices to see the dependence."""
    return Lmad(
        ctx.normalize(l.offset),
        tuple(
            LmadDim(ctx.normalize(d.shape), ctx.normalize(d.stride))
            for d in l.dims
        ),
    )


def _update_region(binding: MemBinding, spec: A.IndexSpec) -> IndexFn:
    """The index function of the region an in-place update writes.

    (Independent reimplementation of the executor's region computation --
    the verifier must not import the pass it is checking.)
    """
    if isinstance(spec, A.PointSpec):
        f = binding.ixfn
        for idx in spec.indices:
            f = f.fix_dim(0, idx)
        return f
    if isinstance(spec, A.TripletSpec):
        return binding.ixfn.slice_triplets(spec.triplets)
    assert isinstance(spec, A.LmadSpec)
    return binding.ixfn.lmad_slice(spec.lmad)


class RaceChecker:
    def __init__(
        self, fun: A.Fun, report: Report, pool: Optional[ProverPool] = None
    ):
        self.fun = fun
        self.report = report
        self.down = Downstream(fun)
        self.concrete = concrete_blocks(fun)
        #: Prover/checker/engine pool: every disjointness obligation goes
        #: through a tiered checker (structural test, then relation
        #: emptiness), and the deciding tiers tally under "races".
        self.pool = pool if pool is not None else ProverPool()
        #: existential block -> blocks it may stand for at run time
        self._indirect: Dict[str, Tuple[str, ...]] = {}
        self._unknown_flagged: Set[Tuple[str, str]] = set()

    def run(self) -> None:
        self.pool.set_client("races")
        tier_base = dict(self.pool.tiers.get("races", {}))
        ctx = self.fun.build_context()
        bindings: Dict[str, MemBinding] = {}
        for p in self.fun.params:
            if isinstance(p.type, ArrayType):
                bindings[p.name] = MemBinding(
                    param_mem_name(p.name), IndexFn.row_major(p.type.shape)
                )
        self._block(self.fun.body, ctx, bindings, "body")
        tier_now = self.pool.tiers.get("races", {})
        for k in set(tier_now) | set(tier_base):
            delta = tier_now.get(k, 0) - tier_base.get(k, 0)
            if delta:
                self.report.tiers[k] = self.report.tiers.get(k, 0) + delta

    # ==================================================================
    # Existential indirection
    # ==================================================================
    def _expand_mem(
        self, mem: str, _seen: Tuple[str, ...] = ()
    ) -> Tuple[str, ...]:
        if mem in _seen:
            # A cyclic resolution (loop carrying its own result) names no
            # new ground block; the acyclic paths already name them all.
            return ()
        targets = self._indirect.get(mem)
        if targets is None:
            return (mem,)
        out: Dict[str, None] = {}
        for t in targets:
            for m in self._expand_mem(t, _seen + (mem,)):
                out[m] = None
        return tuple(out)

    def _expand_events(self, events: List[Event]) -> List[Event]:
        out: List[Event] = []
        for e in events:
            expanded = self._expand_mem(e.mem)
            if expanded == (e.mem,):
                out.append(e)
            else:
                out.extend(replace(e, mem=m) for m in expanded)
        return out

    # ==================================================================
    # Block walk: sequential (program-order) checking
    # ==================================================================
    def _block(
        self,
        block: A.Block,
        parent_ctx: Context,
        parent_bindings: Dict[str, MemBinding],
        path: str,
    ) -> Tuple[List[Event], Set[str], Dict[str, MemBinding]]:
        """Returns (events, locally-allocated blocks, final bindings).

        ``local`` includes allocations of nested sub-blocks.  Events on
        locally-allocated blocks are dropped from the returned summary:
        the block is re-created by every execution of this block, so no
        enclosing scope can share it.
        """
        ctx = parent_ctx.extended()
        bindings = dict(parent_bindings)
        events: List[Event] = []
        local: Set[str] = set()
        #: scalar name -> (def position, block, normalized read address)
        #: for single-element reads, feeding the no-op-write classifier.
        index_defs: Dict[str, Tuple[int, str, SymExpr]] = {}
        for i, stmt in enumerate(block.stmts):
            spath = f"{path}[{i}]"
            evs, sub_local = self._stmt_events(stmt, ctx, bindings, spath)
            local |= sub_local
            evs = [replace(e, pos=i) for e in self._expand_events(evs)]
            evs = self._classify_noops(stmt, evs, index_defs, events, ctx)
            self._seq_check(evs, events, ctx)
            events.extend(evs)
            exp = stmt.exp
            if isinstance(exp, A.ScalarE):
                ctx.define(stmt.names[0], exp.expr)
            elif isinstance(exp, A.Lit) and exp.dtype == "i64":
                ctx.define(stmt.names[0], int(exp.value))
            elif isinstance(exp, A.Alloc):
                local.add(stmt.names[0])
            elif isinstance(exp, A.Index):
                b = bindings.get(exp.src)
                if b is not None:
                    single = b.ixfn.as_single()
                    if single is not None:
                        index_defs[stmt.names[0]] = (
                            i, b.mem, ctx.normalize(single.apply(exp.indices))
                        )
            for pe in stmt.pattern:
                if pe.is_array() and pe.mem is not None:
                    bindings[pe.name] = binding_of(pe)
        kept = [e for e in events if e.mem not in local]
        return kept, local, bindings

    def _classify_noops(
        self,
        stmt: A.Let,
        evs: List[Event],
        index_defs: Dict[str, Tuple[int, str, SymExpr]],
        prior: List[Event],
        ctx: Context,
    ) -> List[Event]:
        """Mark point writes that provably store the value already there.

        A widened rebase (see the short-circuiting pass) leaves boundary
        fills writing ``x[addr] = x[addr]``: the stored value is defined
        by an element read of the *same* block at a provably equal
        address, with no intervening write to that block.  Such writes do
        not change memory, so the cross checks may exempt them against
        reads and other no-ops (never against real writes).
        """
        exp = stmt.exp
        if not isinstance(exp, A.Update) or not isinstance(exp.value, str):
            return evs
        info = index_defs.get(exp.value)
        if info is None:
            return evs
        dpos, dmem, daddr = info
        dset = set(self._expand_mem(dmem))
        if any(
            e.kind == "w" and not e.noop and e.pos > dpos and e.mem in dset
            for e in prior
        ):
            return evs
        prover = self.pool.prover_for(ctx)
        out: List[Event] = []
        for e in evs:
            if (
                e.kind == "w"
                and e.mem in dset
                and e.lmad is not None
                and not e.lmad.dims
                and prover.eq(e.lmad.offset, daddr)
            ):
                e = replace(e, noop=True)
            out.append(e)
        return out

    def _seq_check(
        self, new: List[Event], prior: List[Event], ctx: Context
    ) -> None:
        reads = [e for e in new if e.kind == "r"]
        if not reads:
            return
        writes = [e for e in prior if e.kind == "w" and not e.noop]
        if not writes:
            return
        checker = self.pool.checker_for(ctx)
        for r in reads:
            for w in writes:
                if w.mem != r.mem:
                    continue
                if self.down.dependent(w.name, r.name):
                    continue
                if w.lmad is None or r.lmad is None:
                    if self._composed_disjoint(w, r, ctx):
                        continue
                    self._flag_unknown(w if w.lmad is None else r)
                    continue
                self.report.count()
                if not checker.check(w.lmad, r.lmad):
                    self.report.add(
                        "R01", Severity.ERROR, r.loc,
                        f"{r.describe()} may observe the earlier "
                        f"{w.describe()} (at {w.loc}); the two are "
                        "value-flow independent and not provably disjoint",
                    )

    def _composed_disjoint(
        self,
        a: Event,
        b: Event,
        ctx: Context,
        subst: Optional[Dict[str, SymExpr]] = None,
    ) -> bool:
        """Polyhedral fallback for pairs with a composed index function.

        The structural checker needs single LMADs; the relation engine
        does not -- composed accesses become unranking relations with
        existential coordinates.  Only an exact EMPTY passes.
        """
        ra = a.ixfn if a.lmad is None else a.lmad
        rb = b.ixfn if b.lmad is None else b.lmad
        if ra is None or rb is None:
            return False
        if subst:
            rb = rb.substitute(subst)
        from repro.isl.emptiness import Verdict

        engine = self.pool.engine_for(ctx)
        self.report.count()
        ok = engine.accesses_disjoint(ra, rb) is Verdict.EMPTY
        self.pool.record_tier("polyhedral" if ok else "unknown")
        return ok

    def _flag_unknown(self, e: Event) -> None:
        key = (e.mem, e.name)
        if key in self._unknown_flagged:
            return
        self._unknown_flagged.add(key)
        self.report.add(
            "R04", Severity.WARNING, e.loc,
            f"{e.describe()}: region is a composed index function on a "
            "shared block; overlap cannot be checked",
        )

    # ==================================================================
    # Per-statement events
    # ==================================================================
    def _stmt_events(
        self,
        stmt: A.Let,
        ctx: Context,
        bindings: Dict[str, MemBinding],
        spath: str,
    ) -> Tuple[List[Event], Set[str]]:
        exp = stmt.exp
        loc = stmt_location(spath, stmt)
        none: Set[str] = set()

        def region_of(ixfn: IndexFn) -> Optional[Lmad]:
            single = ixfn.as_single()
            return None if single is None else _norm_lmad(single, ctx)

        def read(name: str, b: MemBinding) -> Event:
            return Event(
                "r", b.mem, region_of(b.ixfn), name, 0, loc, ixfn=b.ixfn
            )

        def write(name: str, b: MemBinding) -> Event:
            return Event(
                "w", b.mem, region_of(b.ixfn), name, 0, loc, ixfn=b.ixfn
            )

        if isinstance(exp, A.Index):
            b = bindings.get(exp.src)
            if b is None:
                return [], none
            single = b.ixfn.as_single()
            if single is None:
                # The exact point needs run-time unranking; the whole
                # footprint over-approximates it for the fallback tier.
                return [
                    Event("r", b.mem, None, exp.src, 0, loc, ixfn=b.ixfn)
                ], none
            point = Lmad(ctx.normalize(single.apply(exp.indices)), ())
            return [Event("r", b.mem, point, exp.src, 0, loc)], none

        if isinstance(exp, A.Copy):
            src_b = bindings.get(exp.src)
            dst_b = binding_of(stmt.pattern[0])
            if dst_b is None:
                return [], none
            if src_b is not None and src_b == dst_b:
                return [], none  # elided by the executor: no traffic
            out = [write(stmt.names[0], dst_b)]
            if src_b is not None:
                out.insert(0, read(exp.src, src_b))
            return out, none

        if isinstance(exp, A.Concat):
            dst_b = binding_of(stmt.pattern[0])
            if dst_b is None:
                return [], none
            out: List[Event] = []
            offset: SymExpr = SymExpr.const(0)
            inner_shape = dst_b.ixfn.shape[1:]
            for s in exp.srcs:
                src_b = bindings.get(s)
                if src_b is None:
                    continue
                rows = src_b.ixfn.shape[0]
                region = dst_b.ixfn.slice_triplets(
                    [(offset, rows, 1)]
                    + [(SymExpr.const(0), d, 1) for d in inner_shape]
                )
                offset = offset + rows
                if src_b.mem == dst_b.mem and src_b.ixfn == region:
                    continue  # operand already in place: elided
                out.append(read(s, src_b))
                out.append(
                    Event(
                        "w", dst_b.mem, region_of(region),
                        stmt.names[0], 0, loc, ixfn=region,
                    )
                )
            return out, none

        if isinstance(exp, (A.Iota, A.Replicate)):
            dst_b = binding_of(stmt.pattern[0])
            if dst_b is None:
                return [], none
            return [write(stmt.names[0], dst_b)], none

        if isinstance(exp, A.Update):
            res_b = binding_of(stmt.pattern[0])
            if res_b is None:
                return [], none
            region = _update_region(res_b, exp.spec)
            out = []
            if isinstance(exp.value, str):
                val_b = bindings.get(exp.value)
                if val_b is not None and not (
                    val_b.mem == res_b.mem and val_b.ixfn == region
                ):
                    out.append(read(exp.value, val_b))
            out.append(
                Event(
                    "w", res_b.mem, region_of(region), stmt.names[0], 0, loc,
                    ixfn=region,
                )
            )
            return out, none

        if isinstance(exp, (A.Reduce, A.ArgMin)):
            b = bindings.get(exp.src)
            return ([] if b is None else [read(exp.src, b)]), none

        if isinstance(exp, A.Map):
            return self._map_events(stmt, exp, ctx, bindings, spath, loc)
        if isinstance(exp, A.Loop):
            return self._loop_events(stmt, exp, ctx, bindings, spath, loc)
        if isinstance(exp, A.If):
            out = []
            locals_: Set[str] = set()
            branch_bindings = []
            for sub, tag in (
                (exp.then_block, ".then"),
                (exp.else_block, ".else"),
            ):
                evs, sub_local, bb = self._block(
                    sub, ctx, bindings, spath + tag
                )
                out.extend(evs)
                locals_ |= sub_local
                branch_bindings.append(bb)
            self._register_if_indirect(stmt, exp, branch_bindings)
            return out, locals_

        # Views, scalars, allocs, scratch: no memory traffic.
        return [], none

    def _register_if_indirect(
        self, stmt, exp: A.If, branch_bindings
    ) -> None:
        own = set(stmt.names)
        for k, pe in enumerate(stmt.pattern):
            if not pe.is_array() or pe.mem is None:
                continue
            m = binding_of(pe).mem
            if m not in own or m in self._indirect:
                continue
            under: Set[str] = set()
            for bb, sub in zip(
                branch_bindings, (exp.then_block, exp.else_block)
            ):
                if k < len(sub.result):
                    rb = bb.get(sub.result[k])
                    if rb is not None:
                        under.add(rb.mem)
            under.discard(m)
            if under:
                self._indirect[m] = tuple(sorted(under))

    # ------------------------------------------------------------------
    def _map_events(
        self, stmt, exp: A.Map, ctx, bindings, spath, loc
    ) -> Tuple[List[Event], Set[str]]:
        t = exp.lam.params[0]
        width = _operand_expr(exp.width)
        mctx = ctx.extended()
        mctx.assume_range(t, 0, width - 1)
        child, local, child_bindings = self._block(
            exp.lam.body, mctx, bindings, spath + ".map"
        )
        # The implicit per-thread result write xss[t] = r (and its read of
        # r's region, unless short-circuiting made it the same region).
        extra: List[Event] = []
        for k, pe in enumerate(stmt.pattern):
            if not pe.is_array() or pe.mem is None:
                continue
            db = binding_of(pe)
            region = db.ixfn.fix_dim(0, SymExpr.var(t))
            res_name = exp.lam.body.result[k]
            rb = child_bindings.get(res_name)
            if rb is not None and rb.mem == db.mem and rb.ixfn == region:
                continue  # elided implicit copy
            if rb is not None:
                single = rb.ixfn.as_single()
                extra.append(
                    Event(
                        "r", rb.mem,
                        None if single is None else _norm_lmad(single, mctx),
                        res_name, 0, loc, ixfn=rb.ixfn,
                    )
                )
            single = region.as_single()
            extra.append(
                Event(
                    "w", db.mem,
                    None if single is None else _norm_lmad(single, mctx),
                    pe.name, 0, loc, ixfn=region,
                )
            )
        per_thread = child + [
            e for e in self._expand_events(extra) if e.mem not in local
        ]
        self._cross_check(
            per_thread, t, width, mctx, parallel=True, loc=loc
        )
        return self._aggregate(per_thread, t, width, mctx), local

    # ------------------------------------------------------------------
    def _loop_events(
        self, stmt, exp: A.Loop, ctx, bindings, spath, loc
    ) -> Tuple[List[Event], Set[str]]:
        count = _operand_expr(exp.count)
        lctx = ctx.extended()
        lctx.assume_range(exp.index, 0, count - 1)
        lb = dict(bindings)
        pb = getattr(exp.body, "param_bindings", {})
        for prm, _init in exp.carried:
            if isinstance(prm.type, ArrayType) and prm.name in pb:
                lb[prm.name] = pb[prm.name]
        child, local, child_bindings = self._block(
            exp.body, lctx, lb, spath + ".loop"
        )
        self._register_loop_indirect(stmt, exp, bindings, child_bindings)
        # Re-expand: events on the loop's own existentials were collected
        # before the entries above existed.  Expansions landing on a
        # body-local block are per-iteration private -- drop them (the
        # documented double-buffering blind spot).
        child = [
            e for e in self._expand_events(child) if e.mem not in local
        ]
        self._cross_check(
            child, exp.index, count, lctx, parallel=False, loc=loc
        )
        return self._aggregate(child, exp.index, count, lctx), local

    def _register_loop_indirect(
        self, stmt, exp: A.Loop, bindings, child_bindings
    ) -> None:
        pb = getattr(exp.body, "param_bindings", {})
        for k, (prm, init) in enumerate(exp.carried):
            if not isinstance(prm.type, ArrayType) or prm.name not in pb:
                continue
            pmem = pb[prm.name].mem
            if pmem in self.concrete or pmem in self._indirect:
                continue
            under: Set[str] = set()
            ib = bindings.get(init)
            if ib is not None:
                under.add(ib.mem)
            rb = child_bindings.get(exp.body.result[k])
            if rb is not None:
                under.add(rb.mem)
            under.discard(pmem)
            if under:
                self._indirect[pmem] = tuple(sorted(under))
        for k, pe in enumerate(stmt.pattern):
            if not pe.is_array() or pe.mem is None:
                continue
            rmem = binding_of(pe).mem
            if rmem in self.concrete or rmem in self._indirect:
                continue
            under = set()
            if k < len(exp.body.result):
                rb = child_bindings.get(exp.body.result[k])
                if rb is not None:
                    under.add(rb.mem)
            if k < len(exp.carried):
                ib = bindings.get(exp.carried[k][1])
                if ib is not None:
                    under.add(ib.mem)  # zero-trip: result is the init
            under.discard(rmem)
            if under:
                self._indirect[rmem] = tuple(sorted(under))

    # ==================================================================
    # Cross-thread / cross-iteration conditions
    # ==================================================================
    def _cross_check(
        self,
        events: List[Event],
        var: str,
        count: SymExpr,
        ctx: Context,
        parallel: bool,
        loc: str,
    ) -> None:
        writes = [e for e in events if e.kind == "w"]
        if not writes:
            return
        if Prover(ctx).le(count, SymExpr.const(1)):
            return  # at most one iteration/thread: no cross pairs
        rule = "R02" if parallel else "R03"
        var2 = f"_{var}_other"
        # Two orderings: the other index above, and (parallel only) below.
        checkers = []
        hi = ctx.extended()
        hi.assume_range(var2, SymExpr.var(var) + 1, count - 1)
        checkers.append(self.pool.checker_for(hi))
        if parallel:
            lo = ctx.extended()
            lo.assume_range(var2, 0, SymExpr.var(var) - 1)
            checkers.append(self.pool.checker_for(lo))
        memo: Dict[Tuple[Lmad, Lmad], bool] = {}
        dep_prover = self.pool.prover_for(ctx)
        for w in writes:
            for e in events:
                if e.mem != w.mem:
                    continue
                if w.noop and (e.kind == "r" or e.noop):
                    # A no-op write cannot clobber a read (memory is
                    # unchanged), and two no-ops cannot clobber each
                    # other.  Real writes against a no-op's address are
                    # still checked: they would invalidate the value the
                    # no-op's own read depends on -- but that read is a
                    # separate event, so the pair below covers it.
                    continue
                if not parallel and self.down.dependent(w.name, e.name):
                    # The carried dependence: the value legitimately
                    # flows to the later iteration.  A dependent *read*
                    # overlapping the earlier write is that flow itself
                    # (RAW, ordered by sequential execution -- LUD's
                    # triangular solves read the growing prefix earlier
                    # iterations wrote).  A dependent *write*, though, is
                    # exempt only when the two regions provably slide in
                    # lockstep (equal per-iteration offset shift,
                    # index-invariant strides; shapes may vary, e.g. NW's
                    # growing diagonals): name-level dataflow does not
                    # license a write whose overlap with the previous
                    # iteration's write drifts -- exactly what an unsafe
                    # rebase artifact looks like.  Pairs with unknown
                    # regions keep the coarse exemption (nothing to
                    # reason about); everything else falls through to the
                    # disjointness proof like an independent pair.
                    if w.lmad is None or e.lmad is None:
                        continue
                    if e.kind == "r":
                        continue
                    if self._slides_together(w.lmad, e.lmad, var, dep_prover):
                        continue
                if w.lmad is None or e.lmad is None:
                    subst = {var: SymExpr.var(var2)}
                    if all(
                        self._composed_disjoint(w, e, chk.prover.ctx, subst)
                        for chk in checkers
                    ):
                        continue
                    self._flag_unknown(w if w.lmad is None else e)
                    continue
                key = (w.lmad, e.lmad)
                if key in memo:
                    ok = memo[key]
                else:
                    self.report.count()
                    ok = False
                    if w.lmad == e.lmad and var in w.lmad.free_vars():
                        # Identical parametric regions: if promoting the
                        # index to a dimension yields an injective LMAD,
                        # distinct indices address disjoint slabs -- a
                        # linear proof where the offset-difference route
                        # is nonlinear (e.g. LUD's b^2*(q-k-1) slabs).
                        prover = self.pool.prover_for(ctx)
                        agg = aggregate_over_loop(
                            w.lmad, var, count, prover
                        )
                        ok = agg is not None and self.pool.injective(
                            ctx, agg
                        )
                    if not ok:
                        other = e.lmad.substitute({var: SymExpr.var(var2)})
                        ok = True
                        for chk in checkers:
                            if not chk.check(w.lmad, other):
                                ok = False
                                break
                    memo[key] = ok
                if not ok:
                    kind = (
                        "two threads" if parallel else "a later iteration"
                    )
                    self.report.add(
                        rule, Severity.ERROR, loc,
                        f"{w.describe()} (at {w.loc}) is not provably "
                        f"disjoint from the {e.describe()} (at {e.loc}) "
                        f"when performed by {kind} ({var} != {var2})",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _slides_together(
        w: Lmad, e: Lmad, var: str, prover: Prover
    ) -> bool:
        """Distance-vector test for dependence-carried write pairs.

        True when both regions move by the same provable offset per loop
        iteration and neither's strides depend on the index: the pair's
        overlap pattern is then iteration-invariant, so the value-flow
        ordering covers every iteration if it covers one (the in-place
        state update / double-buffer shape).
        """
        for l in (w, e):
            for d in l.dims:
                if var in d.stride.free_vars():
                    return False
        shift = {var: SymExpr.var(var) + 1}
        dw = w.offset.substitute(shift) - w.offset
        de = e.offset.substitute(shift) - e.offset
        return prover.eq(dw, de)

    # ------------------------------------------------------------------
    def _aggregate(
        self, events: List[Event], var: str, count: SymExpr, ctx: Context
    ) -> List[Event]:
        prover = self.pool.prover_for(ctx)
        out: List[Event] = []
        for e in events:
            if e.lmad is None:
                # The composed region cannot be aggregated; if it still
                # mentions this index, drop the index function too --
                # keeping it would correlate the two sides of an outer
                # cross pair through the (shared) inner index, which
                # *under*-approximates the pair set.  The outer level
                # then degrades to R04, exactly as before.
                if e.ixfn is not None and var in e.ixfn.free_vars():
                    e = replace(e, ixfn=None)
                out.append(e)
                continue
            if var not in e.lmad.free_vars():
                out.append(e)
                continue
            agg = aggregate_over_loop(e.lmad, var, count, prover)
            out.append(replace(e, lmad=agg))
        return out


def check_races(
    fun: A.Fun, report: Report, pool: Optional[ProverPool] = None
) -> None:
    RaceChecker(fun, report, pool).run()
