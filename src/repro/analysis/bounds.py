"""Bounds checking: every index function's image fits its block (B rules).

For each binding ``x @ mem -> ixfn`` the memory-side LMAD (``lmads[0]``)
determines every flat offset the array can touch; with strides normalized
non-negative the image lies in ``[offset, max_offset()]``, so the two
obligations are ``offset >= 0`` and ``max_offset() <= size - 1``.

Proof strategy (mirroring the paper's conservative-analysis stance):

1. symbolic, via :class:`repro.symbolic.Prover` under the scope's context
   (function assumptions + enclosing loop/map index ranges + scalar
   definitions);
2. concrete fallback: evaluate min/max offsets numerically under a sample
   model of the assumptions, enumerating corner values for range-bounded
   variables (loop indices) -- a definite violation here is a real bug at
   a feasible input (B01); an inconclusive evaluation is reported as a
   NOTE (B02), never an error, since the obligation may simply exceed the
   prover.

Blocks with unknown extent (existential ``if``/``loop`` memory) are
skipped: their size is chosen at run time to fit.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.facts import (
    ScopeWalker,
    alloc_sizes,
    index_var_ranges,
    param_block_sizes,
    sample_env,
    stmt_location,
)
from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.lmad.lmad import Lmad
from repro.mem.memir import MemBinding
from repro.symbolic import Context, Prover, SymExpr


class _BoundsWalker(ScopeWalker):
    def __init__(self, fun: A.Fun, report: Report):
        super().__init__(fun)
        self.report = report
        self.sizes: Dict[str, SymExpr] = {
            **alloc_sizes(fun),
            **param_block_sizes(fun),
        }

    def on_stmt(self, stmt, ctx, bindings, avail, path, block, idx):
        loc = stmt_location(path, stmt)
        for pe in stmt.pattern:
            if pe.is_array() and isinstance(pe.mem, MemBinding):
                self._check(pe.name, pe.mem, ctx, loc)
        if isinstance(stmt.exp, A.Loop):
            pb = getattr(stmt.exp.body, "param_bindings", {})
            lctx = ctx.extended()
            count = stmt.exp.count
            cexpr = SymExpr.var(count) if isinstance(count, str) else count
            lctx.assume_range(stmt.exp.index, 0, cexpr - 1)
            for prm, _init in stmt.exp.carried:
                if isinstance(prm.type, ArrayType) and prm.name in pb:
                    self._check(prm.name, pb[prm.name], lctx, loc)

    # ------------------------------------------------------------------
    def _check(
        self, name: str, b: MemBinding, ctx: Context, loc: str
    ) -> None:
        size = self.sizes.get(b.mem)
        if size is None:
            return  # existential block: extent chosen at run time
        rep = self.report
        rep.count()
        region = b.ixfn.lmads[0]
        prover = Prover(ctx)
        norm = region.normalize_positive(prover)
        if norm is not None:
            lo_ok = prover.nonneg(norm.offset) or _all_empty(norm, prover)
            hi_ok = prover.le(norm.max_offset(), size - 1)
            if lo_ok and hi_ok:
                return
        verdict, detail = _concrete_check(region, size, ctx)
        if verdict is True:
            return
        if verdict is False:
            rep.add(
                "B01", Severity.ERROR, loc,
                f"{name!r} @ {b.mem} -> {region} escapes the block's "
                f"{size} elements: {detail}",
            )
        else:
            rep.add(
                "B02", Severity.NOTE, loc,
                f"could not prove {name!r} @ {b.mem} -> {region} fits in "
                f"{size} elements (symbolic and concrete checks both "
                "inconclusive)",
            )


def _all_empty(l: Lmad, prover: Prover) -> bool:
    """Is the region provably empty (some extent == 0)?"""
    return any(prover.eq(d.shape, SymExpr.const(0)) for d in l.dims)


# ----------------------------------------------------------------------
def _concrete_check(
    region: Lmad, size: SymExpr, ctx: Context, max_corner_vars: int = 8
) -> Tuple[Optional[bool], str]:
    """Evaluate the image numerically under a model of the assumptions.

    Returns ``(True, _)`` when every corner fits, ``(False, detail)`` on a
    definite violation, ``(None, _)`` when no model could be built.
    """
    fv: Set[str] = set(region.free_vars()) | set(size.free_vars())
    env = sample_env(ctx, fv)
    if env is None:
        return None, "no concrete model"
    # Variables with a two-sided bound (loop/map indices) range over their
    # whole interval; the affine offset is extremal at interval corners.
    corner_vars = {
        v for v in fv
        if ctx.bound(v).lower is not None and ctx.bound(v).upper is not None
    }
    ranges = index_var_ranges(ctx, corner_vars, env)
    if ranges is None or len(ranges) > max_corner_vars:
        return None, "unbounded index variables"
    choices: List[List[Tuple[str, int]]] = []
    for v, lo, hi in ranges:
        if lo > hi:
            return True, ""  # an enclosing loop never executes here
        choices.append([(v, lo), (v, hi)] if lo != hi else [(v, lo)])
    # Offsets are affine in each index variable (given the others), so the
    # image extremes occur at interval corners.
    for picks in product(*choices):
        corner = dict(env)
        corner.update(picks)
        res = _eval_extremes(region, size, corner)
        if res is None:
            return None, "non-concrete under model"
        lo_off, hi_off, sz = res
        if lo_off is None:
            continue  # empty region at this corner
        if lo_off < 0 or hi_off >= sz:
            at = ", ".join(f"{v}={corner[v]}" for v in sorted(fv))
            return (
                False,
                f"offsets [{lo_off}, {hi_off}] vs size {sz} at {at}",
            )
    return True, ""


def _eval_extremes(
    region: Lmad, size: SymExpr, env: Dict[str, int]
) -> Optional[Tuple[Optional[int], int, int]]:
    off = region.offset.substitute(env).as_int()
    sz = size.substitute(env).as_int()
    if off is None or sz is None:
        return None
    lo, hi = off, off
    for d in region.dims:
        n = d.shape.substitute(env).as_int()
        s = d.stride.substitute(env).as_int()
        if n is None or s is None:
            return None
        if n <= 0:
            return None, 0, sz  # empty region: vacuously in bounds
        span = (n - 1) * s
        lo += min(0, span)
        hi += max(0, span)
    return lo, hi, sz


def check_bounds(fun: A.Fun, report: Report) -> None:
    _BoundsWalker(fun, report).run()
