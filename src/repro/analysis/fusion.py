"""Fusion provenance validation (FU rules): cross-checks ``Let.fused``.

Producer-consumer fusion (:mod:`repro.opt.fuse`) deletes an intermediate
array and records what it did in a :class:`repro.ir.ast.FusedRecord` on
the consumer statement.  This checker re-derives the two obligations the
record asserts, from the program alone (it never imports the pass --
the same translation-validation stance as the rest of the package):

* FU01 -- the elided intermediate's memory block must be *gone*: no
  binding, allocation, loop side table or existential block result may
  still reference it.  A surviving reference means the fusion was not
  actually total (the round trip it claims to have elided still happens)
  or the dead-allocation sweep was skipped.
* FU02 -- the fused kernel's write set must equal the union of the
  original pair's write sets minus the elided intermediate.  Fusion is a
  pure read-path transformation; if the consumer's destinations drifted
  from the recorded ``write_mems`` (minus the elided blocks), either the
  pass rewrote destinations it had no business touching, or a later pass
  re-homed the consumer without rewriting the provenance record
  (:func:`repro.mem.hoist.rewrite_mem_bindings` handles coalescing).
* FU03 -- duplicated producer bodies must be bit-equivalent at every
  site.  Records claiming the same (producer, mem) intermediate form a
  *group*: exactly one record may be primary (``duplicated=False`` -- it
  alone claims the elided write, so two primaries would double-count),
  all records must agree on the intermediate's width / element size /
  rank / recompute cost, and every per-site body hash in the group must
  be identical.  The hashes are alpha-normalized digests of the
  statements the pass *actually spliced* at each read site (computed at
  inline time, not from the record), so agreement certifies the splices
  are copies of one body rather than drifted rewrites.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.facts import stmt_location
from repro.ir import ast as A
from repro.mem.memir import array_bindings, binding_of, iter_stmts


class FusionChecker:
    def __init__(self, fun: A.Fun, report: Report):
        self.fun = fun
        self.report = report
        self.bindings = array_bindings(fun)
        # Every way a memory block can still be live in the program.
        self.referenced: Set[str] = {b.mem for b in self.bindings.values()}
        for stmt in iter_stmts(fun.body):
            if isinstance(stmt.exp, A.Alloc):
                self.referenced.add(stmt.names[0])
            for blk in A.sub_blocks(stmt.exp):
                # Existential memory flows through block results by name.
                self.referenced.update(
                    r for r in blk.result if r not in self.bindings
                )

    # ------------------------------------------------------------------
    def run(self) -> None:
        #: (producer, mem) -> [(record, location)] across the whole fun.
        self.groups: Dict[
            Tuple[str, str], List[Tuple[A.FusedRecord, str]]
        ] = {}
        self._block(self.fun.body, "body")
        self._check_groups()

    def _block(self, block: A.Block, path: str) -> None:
        for i, stmt in enumerate(block.stmts):
            if stmt.fused:
                loc = stmt_location(f"{path}[{i}]", stmt)
                self._check_stmt(stmt, loc)
                for rec in stmt.fused:
                    self.groups.setdefault(
                        (rec.producer, rec.mem), []
                    ).append((rec, loc))
            for k, blk in enumerate(A.sub_blocks(stmt.exp)):
                self._block(blk, f"{path}[{i}].sub[{k}]")

    def _check_groups(self) -> None:
        """FU03: duplication groups are consistent and bit-equivalent."""
        for (producer, mem), entries in self.groups.items():
            self.report.count()
            loc = entries[0][1]
            primaries = [r for r, _ in entries if not r.duplicated]
            if len(primaries) != 1:
                self.report.add(
                    "FU03", Severity.ERROR, loc,
                    f"fused producer {producer!r} ({mem!r}) has "
                    f"{len(primaries)} primary records; duplication "
                    "requires exactly one (the write is elided once)",
                )
                continue
            keys = {
                (str(r.width), r.elem_bytes, r.rank, r.recompute_stmts)
                for r, _ in entries
            }
            if len(keys) != 1:
                self.report.add(
                    "FU03", Severity.ERROR, loc,
                    f"records for fused producer {producer!r} disagree "
                    f"on the intermediate's geometry/cost: {sorted(keys)}",
                )
                continue
            hashes = {h for r, _ in entries for h in r.site_hashes}
            sites = sum(r.reads for r, _ in entries)
            hashed = sum(len(r.site_hashes) for r, _ in entries)
            if sites != hashed or len(hashes) > 1:
                self.report.add(
                    "FU03", Severity.ERROR, loc,
                    f"fused producer {producer!r} bodies are not "
                    f"bit-equivalent at every site: {hashed}/{sites} "
                    f"sites hashed, {len(hashes)} distinct hashes",
                )

    def _check_stmt(self, stmt: A.Let, loc: str) -> None:
        elided = {rec.mem for rec in stmt.fused}
        for rec in stmt.fused:
            self.report.count()
            if rec.mem in self.referenced:
                self.report.add(
                    "FU01", Severity.ERROR, loc,
                    f"fused producer {rec.producer!r} claims block "
                    f"{rec.mem!r} was elided, but it is still referenced",
                )
        expected: Set[str] = set()
        for rec in stmt.fused:
            expected.update(rec.write_mems)
        expected -= elided
        actual = {
            binding_of(pe).mem
            for pe in stmt.pattern
            if pe.is_array() and pe.mem is not None
        }
        self.report.count()
        if expected != actual:
            self.report.add(
                "FU02", Severity.ERROR, loc,
                f"fused kernel writes blocks {sorted(actual)} but its "
                f"records promise {sorted(expected)} (original write "
                f"sets minus elided {sorted(elided)})",
            )


def check_fusion(fun: A.Fun, report: Report) -> None:
    FusionChecker(fun, report).run()
