"""Static verification of memory-annotated IR (translation validation).

The passes in :mod:`repro.mem` and :mod:`repro.opt` each argue their own
correctness (the short-circuiter re-proves the paper's section V-C
non-overlap conditions before every commit), but until now nothing checked
their *output* independently -- a subtly unsound change could only be
caught by the end-to-end NumPy comparison at small sizes.  This package is
the independent referee: it re-derives, from the annotated program alone,
the invariants every pass claims to preserve, and emits structured
diagnostics when one fails.

Checkers (each its own module, all driven by :func:`verify_fun`):

* :mod:`repro.analysis.wellformed` -- WF rules: bindings present, memory
  blocks in scope, alloc sizes nonnegative, existential returns consistent;
* :mod:`repro.analysis.bounds` -- B rules: every index function's image
  fits its block's allocated size (symbolic proof, concrete fallback);
* :mod:`repro.analysis.liveness` -- L rules: last-use annotations are
  consistent with actual uses, no block is referenced before its alloc;
* :mod:`repro.analysis.races` -- R rules: in-place writes are provably
  disjoint from every non-dependent access that can observe them
  (sequential clobbers, map cross-thread, loop cross-iteration);
* :mod:`repro.analysis.frees` -- F rules: ``mem_frees`` lifetime
  annotations (:mod:`repro.reuse`) never retire a block that is still
  touched later, reachable from a result, or owned by an outer scope.

Use ``python -m repro.analysis <benchmark>`` for a command-line report, or
``compile_fun(fun, verify=True)`` to run the verifier after each memory
stage of the pipeline.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Report,
    Severity,
    VerificationError,
)
from repro.analysis.verifier import verify_fun

__all__ = [
    "Diagnostic",
    "Report",
    "Severity",
    "VerificationError",
    "verify_fun",
]
