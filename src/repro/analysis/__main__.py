"""Command-line verifier: check compiler output for memory-safety.

    python -m repro.analysis nw           # verify one benchmark
    python -m repro.analysis --all        # all seven benchmarks
    python -m repro.analysis --list       # available benchmarks
    python -m repro.analysis prog.py      # a file with a build() -> Fun
    python -m repro.analysis --all --pipeline sc+fuse
                                          # one pipeline preset only

Each program is compiled under the named pipeline presets (default: all
four -- ``unopt``, ``sc``, ``sc+fuse``, ``full``; see
:mod:`repro.pipeline.presets`) and the final IR of every preset is
verified: well-formedness of the memory annotations, index-function
bounds, last-use/ordering consistency, read/write race-freedom, fusion
provenance and frees annotations.  Exit status is nonzero when any
report has errors or warnings.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import List

from repro.analysis.verifier import verify_fun
from repro.compiler import compile_fun
from repro.pipeline import PRESETS


def _load_file(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "build"):
        raise SystemExit(f"{path} does not define build() -> Fun")
    return module


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "programs", nargs="*",
        help="benchmark names and/or .py files defining build()",
    )
    parser.add_argument("--all", action="store_true",
                        help="verify every registered benchmark")
    parser.add_argument("--list", action="store_true",
                        help="list available benchmarks")
    parser.add_argument("--pipeline", action="append", choices=list(PRESETS),
                        metavar="PRESET",
                        help="pipeline preset(s) to verify "
                             f"({', '.join(PRESETS)}; default: all)")
    parser.add_argument("--opt-only", action="store_true",
                        help="only the fully optimized pipeline "
                             "(alias for --pipeline full)")
    parser.add_argument("--unopt-only", action="store_true",
                        help="only the unoptimized pipeline "
                             "(alias for --pipeline unopt)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also show NOTE-level findings")
    parser.add_argument("--overlap-audit", action="store_true",
                        help="replay every logged disjointness query "
                             "through both prover tiers and fail on any "
                             "disagreement")
    args = parser.parse_args(argv)

    from repro.bench.programs import all_benchmarks

    registry = all_benchmarks()
    if args.list:
        for name in registry:
            print(name)
        return 0

    names: List[str] = list(args.programs)
    if args.all:
        names.extend(n for n in registry if n not in names)
    if not names:
        parser.error("no programs given (try --all or --list)")

    presets: List[str] = args.pipeline or list(PRESETS)
    if args.opt_only:
        presets = ["full"]
    if args.unopt_only:
        presets = ["unopt"]

    failed = False
    for name in names:
        if name in registry:
            fun = registry[name].build()
        elif name.endswith(".py"):
            fun = _load_file(Path(name)).build()
        else:
            print(f"unknown benchmark or file: {name}", file=sys.stderr)
            return 2
        for preset in presets:
            if args.overlap_audit:
                from repro.analysis.audit import audit_compilation

                result = audit_compilation(fun, name, preset)
                print(result.render())
                if not result.ok():
                    failed = True
                continue
            compiled = compile_fun(fun, pipeline=preset)
            report = verify_fun(compiled.fun, stage=preset)
            print(report.render(show_notes=args.verbose))
            if not report.ok():
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
