"""Free-annotation validation (F rules): cross-checks ``Let.mem_frees``.

The executor and the footprint estimator treat a ``mem_frees`` entry as
"this block's lifetime ends here" and retire it from the live set.  The
annotations are produced by :mod:`repro.reuse.liveranges`; this checker
re-derives the obligations from the program alone (it never imports
:mod:`repro.reuse` -- same translation-validation stance as the rest of
the package, including its own existential-indirection expansion):

* F01 -- a block freed at a statement must not be touched by any later
  statement of the same IR block, nor be reachable from the block's
  results.  A violation is a use-after-free in the footprint model: the
  executor would under-count live bytes, and a future allocator backed
  by the annotations would hand the buffer out while it still carries
  live data.
* F02 -- a freed block must be allocated in the annotated block's own
  subtree.  Freeing an ancestor's allocation from inside a loop or
  branch body would retire it once per execution of the body, leaving
  the enclosing scope's instance dead while still referenced.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.facts import stmt_location
from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.lmad import IndexFn
from repro.mem.memir import (
    MemBinding,
    array_bindings,
    binding_of,
    iter_stmts,
    param_mem_name,
)


class FreeChecker:
    def __init__(self, fun: A.Fun, report: Report):
        self.fun = fun
        self.report = report
        self.bindings = array_bindings(fun)
        self.allocated: Set[str] = {
            s.names[0]
            for s in iter_stmts(fun.body)
            if isinstance(s.exp, A.Alloc)
        }
        self._indirect: Dict[str, Tuple[str, ...]] = {}
        self._build_indirection()

    # ------------------------------------------------------------------
    # Existential indirection (independent re-derivation)
    # ------------------------------------------------------------------
    def _build_indirection(self) -> None:
        raw: Dict[str, Set[str]] = {}

        def register(mem: str, under: Set[str]) -> None:
            under.discard(mem)
            if under and mem not in self.allocated:
                raw.setdefault(mem, set()).update(under)

        def walk(blk: A.Block, parent: Dict[str, MemBinding]):
            bindings = dict(parent)
            for stmt in blk.stmts:
                exp = stmt.exp
                if isinstance(exp, A.Loop):
                    lb = dict(bindings)
                    pb = getattr(exp.body, "param_bindings", {})
                    for prm, _init in exp.carried:
                        if isinstance(prm.type, ArrayType) and prm.name in pb:
                            lb[prm.name] = pb[prm.name]
                    child = walk(exp.body, lb)
                    for k, (prm, init) in enumerate(exp.carried):
                        if not isinstance(prm.type, ArrayType):
                            continue
                        if prm.name not in pb:
                            continue
                        under: Set[str] = set()
                        ib = bindings.get(init)
                        if ib is not None:
                            under.add(ib.mem)
                        rb = child.get(exp.body.result[k])
                        if rb is not None:
                            under.add(rb.mem)
                        register(pb[prm.name].mem, under)
                    for k, pe in enumerate(stmt.pattern):
                        if not pe.is_array() or pe.mem is None:
                            continue
                        under = set()
                        if k < len(exp.body.result):
                            rb = child.get(exp.body.result[k])
                            if rb is not None:
                                under.add(rb.mem)
                        if k < len(exp.carried):
                            ib = bindings.get(exp.carried[k][1])
                            if ib is not None:
                                under.add(ib.mem)
                        register(binding_of(pe).mem, under)
                elif isinstance(exp, A.Map):
                    walk(exp.lam.body, bindings)
                elif isinstance(exp, A.If):
                    branches = [
                        walk(sub, bindings)
                        for sub in (exp.then_block, exp.else_block)
                    ]
                    for k, pe in enumerate(stmt.pattern):
                        if not pe.is_array() or pe.mem is None:
                            continue
                        under = set()
                        for bb, sub in zip(
                            branches, (exp.then_block, exp.else_block)
                        ):
                            if k < len(sub.result):
                                rb = bb.get(sub.result[k])
                                if rb is not None:
                                    under.add(rb.mem)
                        register(binding_of(pe).mem, under)
                for pe in stmt.pattern:
                    if pe.is_array() and pe.mem is not None:
                        bindings[pe.name] = binding_of(pe)
            return bindings

        params = {
            p.name: MemBinding(
                param_mem_name(p.name), IndexFn.row_major(p.type.shape)
            )
            for p in self.fun.params
            if isinstance(p.type, ArrayType)
        }
        walk(self.fun.body, params)
        self._indirect = {m: tuple(sorted(t)) for m, t in raw.items()}

    def _expand(self, mem: str, _seen: Tuple[str, ...] = ()) -> Tuple[str, ...]:
        if mem in _seen:
            return ()
        targets = self._indirect.get(mem)
        if targets is None:
            return (mem,)
        out: Dict[str, None] = {}
        for t in targets:
            for m in self._expand(t, _seen + (mem,)):
                out[m] = None
        return tuple(out)

    # ------------------------------------------------------------------
    # Touch collection
    # ------------------------------------------------------------------
    def _stmt_touches(self, stmt: A.Let) -> Set[str]:
        """Ground allocated blocks a statement can observe or write."""
        mems: Set[str] = set()

        def of_stmt(s: A.Let) -> None:
            for pe in s.pattern:
                if pe.is_array() and pe.mem is not None:
                    mems.add(binding_of(pe).mem)
            if isinstance(s.exp, A.Loop):
                for b in getattr(s.exp.body, "param_bindings", {}).values():
                    mems.add(b.mem)
            for blk in A.sub_blocks(s.exp):
                mems.update(r for r in blk.result if r not in self.bindings)
                for sub in blk.stmts:
                    of_stmt(sub)

        if not isinstance(stmt.exp, A.Alloc):
            of_stmt(stmt)
            for used in A.exp_uses(stmt.exp):
                b = self.bindings.get(used)
                if b is not None:
                    mems.add(b.mem)
        out: Set[str] = set()
        for m in mems:
            out.update(g for g in self._expand(m) if g in self.allocated)
        return out

    # ------------------------------------------------------------------
    # Walk
    # ------------------------------------------------------------------
    def run(self) -> None:
        self._block(self.fun.body, "body")

    def _subtree_allocs(self, block: A.Block) -> Set[str]:
        out: Set[str] = set()
        for stmt in iter_stmts(block):
            if isinstance(stmt.exp, A.Alloc):
                out.add(stmt.names[0])
        return out

    def _block(self, block: A.Block, path: str) -> None:
        own = self._subtree_allocs(block)
        touches = [self._stmt_touches(s) for s in block.stmts]
        result_mems: Set[str] = set()
        for r in block.result:
            b = self.bindings.get(r)
            for g in self._expand(b.mem if b is not None else r):
                if g in self.allocated:
                    result_mems.add(g)
        for i, stmt in enumerate(block.stmts):
            loc = stmt_location(f"{path}[{i}]", stmt)
            for m in stmt.mem_frees:
                self.report.count()
                if m not in own:
                    self.report.add(
                        "F02", Severity.ERROR, loc,
                        f"block {m!r} is freed here but allocated outside "
                        f"this scope's subtree",
                    )
                    continue
                for j in range(i + 1, len(block.stmts)):
                    if m in touches[j]:
                        later = block.stmts[j]
                        self.report.add(
                            "F01", Severity.ERROR, loc,
                            f"block {m!r} is freed here but still touched "
                            f"by a later statement "
                            f"({'/'.join(later.names)})",
                        )
                        break
                else:
                    if m in result_mems:
                        self.report.add(
                            "F01", Severity.ERROR, loc,
                            f"block {m!r} is freed here but reachable "
                            f"from the enclosing block's results",
                        )
            for k, blk in enumerate(A.sub_blocks(stmt.exp)):
                self._block(blk, f"{path}[{i}].sub[{k}]")


def check_frees(fun: A.Fun, report: Report) -> None:
    FreeChecker(fun, report).run()
