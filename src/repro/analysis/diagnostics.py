"""Structured diagnostics for the memory-IR verifier.

A :class:`Diagnostic` is one finding: a rule id, a severity, a statement
location (a ``body[i].loop.body[j]``-style path plus the pretty-printed
statement head), a message, and the rule's registered *suggested cause* --
which pass most likely regressed when the rule fires on pipeline output.

A :class:`Report` collects the findings of one verification run together
with a count of the individual proof obligations discharged, so "clean"
can be distinguished from "checked nothing".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    ERROR = "error"  # a proven violation, or an unproven safety obligation
    WARNING = "warning"  # suspicious but not proven wrong
    NOTE = "note"  # informational (e.g. a check was skipped as unprovable)

    def __str__(self) -> str:
        return self.value


#: Rule registry: id -> (summary, suggested cause when seen on pipeline
#: output).  The CLI prints the cause with each finding.
RULES = {
    "WF01": (
        "array pattern lacks a memory binding",
        "memory introduction did not run, or a pass dropped an annotation",
    ),
    "WF02": (
        "binding references a memory block that is never bound",
        "a rebase installed a binding whose block does not exist",
    ),
    "WF03": (
        "alloc size is provably negative",
        "a size expression was built from the wrong shape arithmetic",
    ),
    "WF04": (
        "if-existential return does not anti-unify with its branches",
        "memory introduction's anti-unification regressed",
    ),
    "WF05": (
        "pattern type shape disagrees with the binding's index function",
        "a rebase installed an index function of the wrong shape",
    ),
    "WF06": (
        "loop array parameter lacks a param_bindings entry",
        "a pass rebuilt a loop body without its binding side table",
    ),
    "B01": (
        "index-function image escapes its memory block",
        "an offset/stride was miscomputed, or an alloc was shrunk",
    ),
    "B02": (
        "index-function image could not be proven in bounds",
        "symbolic proof and concrete fallback were both inconclusive",
    ),
    "L01": (
        "name marked lastly-used is still observed afterwards",
        "last-use analysis is stale (program mutated after it ran)",
    ),
    "L02": (
        "memory block referenced before its alloc statement",
        "allocation hoisting moved or dropped an alloc",
    ),
    "R01": (
        "read observes an earlier overlapping write through an "
        "independent array",
        "an unsafe short-circuit rebase (overlap check regression)",
    ),
    "R02": (
        "map threads' accesses to shared memory are not provably disjoint",
        "a rebase into per-thread regions violates the V-B conditions",
    ),
    "R03": (
        "loop iterations' accesses are not provably disjoint",
        "a rebase violates the cross-iteration condition",
    ),
    "R04": (
        "access region unknown (composed index function) on a shared block",
        "a reshape produced a composed index function in shared memory",
    ),
    "F01": (
        "memory block freed while still used later or reachable",
        "stale mem_frees annotations (program mutated after annotate_frees)",
    ),
    "F02": (
        "memory block freed outside its allocation scope",
        "lifetime annotation attached to the wrong block",
    ),
    "FU01": (
        "elided intermediate of a fused kernel is still referenced",
        "fusion deleted the producer but a binding/alloc of the "
        "intermediate survived (dead-allocation sweep did not run?)",
    ),
    "FU02": (
        "fused kernel's write set disagrees with its provenance records",
        "fusion changed what the pair writes, or a later pass re-homed "
        "the consumer without rewriting the FusedRecord",
    ),
    "MS01": (
        "allocation does not fit its memory space's capacity",
        "placement chose a bounded on-chip space for a block that only "
        "fits in DRAM",
    ),
    "MS02": (
        "binding's space tag disagrees with its block's declared space",
        "a rebase or merge crossed memory spaces without re-tagging "
        "(coalescing must reject cross-space donors)",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    rule: str
    severity: Severity
    location: str  # e.g. "body[3].loop.body[1]: let (A2 : ...) = ..."
    message: str

    @property
    def cause(self) -> str:
        return RULES.get(self.rule, ("", "unknown rule"))[1]

    def render(self) -> str:
        head = f"{self.severity.value.upper()} {self.rule} at {self.location}"
        lines = [head]
        lines.append(f"  {self.message}")
        lines.append(f"  suggested cause: {self.cause}")
        return "\n".join(lines)


@dataclass
class Report:
    """Findings of one verification run over one function."""

    fun_name: str
    stage: Optional[str] = None  # pipeline stage label, when applicable
    diagnostics: List[Diagnostic] = field(default_factory=list)
    checks: int = 0  # proof obligations discharged
    #: Deciding-tier tallies of the race checker's disjointness proofs
    #: (``structural`` / ``polyhedral`` / ``unknown``).
    tiers: Dict[str, int] = field(default_factory=dict)

    def add(
        self,
        rule: str,
        severity: Severity,
        location: str,
        message: str,
    ) -> None:
        self.diagnostics.append(Diagnostic(rule, severity, location, message))

    def count(self, n: int = 1) -> None:
        self.checks += n

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def notes(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.NOTE]

    def ok(self, allow_notes: bool = True) -> bool:
        """No errors or warnings (notes tolerated by default)."""
        if allow_notes:
            return not self.errors and not self.warnings
        return not self.diagnostics

    def rules_fired(self) -> List[str]:
        return sorted({d.rule for d in self.diagnostics})

    def render(self, show_notes: bool = False) -> str:
        label = self.fun_name + (f" [{self.stage}]" if self.stage else "")
        shown = [
            d
            for d in self.diagnostics
            if show_notes or d.severity is not Severity.NOTE
        ]
        if not shown:
            hidden = len(self.diagnostics)
            tail = f", {hidden} note(s) hidden" if hidden else ""
            return f"== {label} ==\n  OK ({self.checks} checks{tail})"
        lines = [
            f"== {label} ==",
            f"  {len(shown)} finding(s), {self.checks} checks",
        ]
        for d in shown:
            lines.extend("  " + ln for ln in d.render().splitlines())
        return "\n".join(lines)


class VerificationError(Exception):
    """Raised by ``compile_fun(..., verify=True)`` when a stage fails."""

    def __init__(self, stage: str, report: Report):
        self.stage = stage
        self.report = report
        rules = ", ".join(report.rules_fired())
        super().__init__(
            f"verification failed after {stage}: {rules}\n"
            + report.render(show_notes=True)
        )
