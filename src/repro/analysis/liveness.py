"""Liveness validation (L rules): cross-checks last-use and hoisting.

* L01 -- a name marked lastly-used at a statement must not be observed
  afterwards through any buffer alias: not by later statements of the
  same block, not by enclosing blocks after the compound statement, not
  by a re-execution of an enclosing loop/map body it is free in, and not
  as a block result.  Consumers (hoisting heuristics, short-circuiting's
  dead-copy reuse) take ``last_uses`` as permission to reuse the buffer,
  so a stale annotation is a latent clobber even when today's passes
  happen not to exploit it.
* L02 -- a memory block must be bound before it is referenced: its alloc
  statement (or existential binder) precedes, in execution order, every
  binding that names it.  This is the ordering contract allocation
  hoisting maintains and `dst-memory-not-in-scope` assumes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.facts import ScopeWalker, alias_closure, stmt_location
from repro.analysis.wellformed import known_blocks
from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.mem.memir import binding_of


# ----------------------------------------------------------------------
# L01: last-use annotations
# ----------------------------------------------------------------------
class _LastUseValidator:
    def __init__(self, fun: A.Fun, report: Report):
        self.fun = fun
        self.report = report
        self.aliases = alias_closure(fun)
        self._def_block: Dict[str, int] = {}
        self._uses_memo: Dict[int, FrozenSet[str]] = {}

    def run(self) -> None:
        root = self.fun.body
        for p in self.fun.params:
            self._def_block[p.name] = id(root)
        self._index_defs(root)
        self._walk(root, [])

    def _index_defs(self, block: A.Block) -> None:
        for stmt in block.stmts:
            for name in stmt.names:
                self._def_block[name] = id(block)
            exp = stmt.exp
            for sub in A.sub_blocks(exp):
                if isinstance(exp, A.Map):
                    self._def_block[exp.lam.params[0]] = id(sub)
                elif isinstance(exp, A.Loop):
                    self._def_block[exp.index] = id(sub)
                    for prm, _ in exp.carried:
                        self._def_block[prm.name] = id(sub)
                self._index_defs(sub)

    def _all_uses(self, block: A.Block) -> FrozenSet[str]:
        cached = self._uses_memo.get(id(block))
        if cached is None:
            out: Set[str] = set(block.result)
            for stmt in block.stmts:
                out |= A.exp_uses(stmt.exp)
            cached = frozenset(out)
            self._uses_memo[id(block)] = cached
        return cached

    def _walk(
        self, block: A.Block, chain: List[Tuple[A.Block, int, bool]]
    ) -> None:
        for i, stmt in enumerate(block.stmts):
            for v in stmt.last_uses:
                self._validate(v, stmt, block, i, chain)
            exp = stmt.exp
            reexec = isinstance(exp, (A.Map, A.Loop))
            for sub in A.sub_blocks(exp):
                self._walk(sub, chain + [(block, i, reexec)])

    def _validate(
        self,
        v: str,
        stmt: A.Let,
        block: A.Block,
        i: int,
        chain: List[Tuple[A.Block, int, bool]],
    ) -> None:
        rep = self.report
        rep.count()
        cls = self.aliases.get(v, frozenset({v}))
        defb = self._def_block.get(v, id(self.fun.body))
        path = "body"
        for _ablock, idx, _re in chain:
            path += f"[{idx}].body"
        loc = stmt_location(f"{path}[{i}]", stmt)

        def flag(where: str) -> None:
            rep.add(
                "L01", Severity.ERROR, loc,
                f"{v!r} is marked lastly-used here, but its alias class "
                f"{{{', '.join(sorted(cls))}}} is still observed {where}",
            )

        for later in block.stmts[i + 1:]:
            if cls & A.exp_uses(later.exp):
                flag(f"by a later statement ({'/'.join(later.names)})")
                return
        if cls & set(block.result):
            flag("as a block result")
            return
        child = block
        for ablock, aidx, reexec in reversed(chain):
            if id(child) == defb:
                return  # v is local to `child`; nothing outside sees it
            if reexec and (cls & self._all_uses(child)):
                flag("by a re-execution of the enclosing loop/map body")
                return
            for later in ablock.stmts[aidx + 1:]:
                if cls & A.exp_uses(later.exp):
                    flag(
                        "by a later statement "
                        f"({'/'.join(later.names)}) of an enclosing block"
                    )
                    return
            if cls & set(ablock.result):
                flag("as an enclosing block's result")
                return
            child = ablock


# ----------------------------------------------------------------------
# L02: alloc-before-use ordering
# ----------------------------------------------------------------------
class _OrderWalker(ScopeWalker):
    def __init__(self, fun: A.Fun, report: Report):
        super().__init__(fun)
        self.report = report
        self.known = known_blocks(fun)

    def on_stmt(self, stmt, ctx, bindings, avail, path, block, idx):
        loc = stmt_location(path, stmt)
        effective = avail | {
            pe.name for pe in stmt.pattern if not pe.is_array()
        }
        if isinstance(stmt.exp, A.Loop):
            pb = getattr(stmt.exp.body, "param_bindings", {})
            effective = effective | {b.mem for b in pb.values()}
            # Loop results bind their own existential block (rmem).
            effective |= {
                binding_of(pe).mem
                for pe in stmt.pattern
                if pe.is_array()
                and pe.mem is not None
                and binding_of(pe).mem not in self._concrete
            }
            for prm, _init in stmt.exp.carried:
                if isinstance(prm.type, ArrayType) and prm.name in pb:
                    self._check(prm.name, pb[prm.name].mem, effective, loc)
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None:
                self._check(pe.name, binding_of(pe).mem, effective, loc)

    def _check(
        self, name: str, mem: str, effective: Set[str], loc: str
    ) -> None:
        self.report.count()
        if mem in effective or mem not in self.known:
            return  # in scope, or WF02's problem (unknown block)
        self.report.add(
            "L02", Severity.ERROR, loc,
            f"{name!r} references memory block {mem!r} before it is bound",
        )


def check_liveness(fun: A.Fun, report: Report) -> None:
    _LastUseValidator(fun, report).run()
    _OrderWalker(fun, report).run()
