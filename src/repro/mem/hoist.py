"""Allocation hoisting and dead-allocation elimination.

Short-circuiting's property (2) requires the destination memory block to be
in scope (already allocated) at the definition point of the candidate's
fresh array (paper section V).  This pass hoists each ``alloc`` statement
as early in its block as its size expression allows -- i.e. just after the
last statement defining one of the size's free variables.

Hoisting never crosses block boundaries: moving an allocation out of a
``loop`` body would merge per-iteration buffers, which is unsound for
double-buffered loops (each iteration must write a block distinct from the
one the carried value still occupies).

``remove_dead_allocations`` drops ``alloc`` statements whose block is no
longer referenced by any memory binding -- the usual cleanup after
short-circuiting re-homes arrays into their destination memory.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Set

from repro.ir import ast as A
from repro.mem.memir import MemBinding, binding_of, iter_stmts


def hoist_allocations(fun: A.Fun) -> int:
    """Hoist allocs within their blocks; returns how many statements moved."""
    moved = 0

    def process(block: A.Block, outer_defined: Set[str]) -> None:
        nonlocal moved
        defined_at: List[Set[str]] = []
        defined: Set[str] = set(outer_defined)
        for stmt in block.stmts:
            defined_at.append(set(defined))
            defined |= set(stmt.names)
            for blk in A.sub_blocks(stmt.exp):
                bound = set(stmt.names)
                if isinstance(stmt.exp, A.Loop):
                    bound |= {p.name for p, _ in stmt.exp.carried}
                    bound.add(stmt.exp.index)
                if isinstance(stmt.exp, A.Map):
                    bound |= set(stmt.exp.lam.params)
                process(blk, defined | bound)

        new_order: List[A.Let] = []
        for idx, stmt in enumerate(block.stmts):
            if not isinstance(stmt.exp, A.Alloc):
                new_order.append(stmt)
                continue
            needed = stmt.exp.size.free_vars()
            # Earliest position where all size variables are defined.
            pos = 0
            for j in range(len(new_order), 0, -1):
                prior = new_order[j - 1]
                if needed & set(prior.names):
                    pos = j
                    break
            if pos < len(new_order):
                moved += 1
            new_order.insert(pos, stmt)
        block.stmts = new_order

    process(fun.body, {p.name for p in fun.params})
    return moved


def rewrite_mem_bindings(fun: A.Fun, mapping: Dict[str, str]) -> int:
    """Re-home every binding on a merged-away block to its survivor.

    Coalescing (``repro.reuse``) replaces blocks wholesale, so a stale
    ``MemBinding`` naming a merged-away block would read memory nothing
    allocates.  This rewrites pattern bindings, loop ``param_bindings``,
    and block results that carry existential memory by name; returns how
    many references changed.  Chains in ``mapping`` are resolved.
    """

    def resolve(m: str) -> str:
        seen: Set[str] = set()
        while m in mapping and m not in seen:
            seen.add(m)
            m = mapping[m]
        return m

    changed = 0
    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            b = binding_of(pe) if pe.mem is not None else None
            if b is not None and b.mem in mapping:
                pe.mem = MemBinding(resolve(b.mem), b.ixfn, b.space)
                changed += 1
        if isinstance(stmt.exp, A.Loop):
            pb = getattr(stmt.exp.body, "param_bindings", None)
            if pb:
                for prm, b in list(pb.items()):
                    if b.mem in mapping:
                        pb[prm] = MemBinding(resolve(b.mem), b.ixfn, b.space)
                        changed += 1
        if stmt.fused and any(
            r.mem in mapping or set(r.write_mems) & mapping.keys()
            for r in stmt.fused
        ):
            # Fusion provenance names memory blocks too (the verifier's
            # FU rules compare them against live bindings) and must track
            # coalescing renames like any binding.  Only the block names
            # change; duplication/chain/hash provenance rides along.
            stmt.fused = tuple(
                replace(
                    r,
                    mem=resolve(r.mem),
                    write_mems=tuple(resolve(m) for m in r.write_mems),
                )
                for r in stmt.fused
            )
            changed += 1

    def fix_results(block: A.Block) -> None:
        nonlocal changed
        if any(r in mapping for r in block.result):
            block.result = tuple(resolve(r) for r in block.result)
            changed += 1
        for stmt in block.stmts:
            for blk in A.sub_blocks(stmt.exp):
                fix_results(blk)

    fix_results(fun.body)
    return changed


def remove_dead_allocations(fun: A.Fun) -> int:
    """Drop allocs whose memory block no binding references; returns count."""
    live: Set[str] = set()
    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            b = binding_of(pe) if pe.mem is not None else None
            if b is not None:
                live.add(b.mem)
        if isinstance(stmt.exp, A.Loop):
            extra = getattr(stmt.exp.body, "param_bindings", None)
            if extra:
                live |= {b.mem for b in extra.values()}
        # Existential memory flows through block results by name.
        for blk in A.sub_blocks(stmt.exp):
            live |= set(blk.result)

    removed = 0

    def process(block: A.Block) -> None:
        nonlocal removed
        kept = []
        for stmt in block.stmts:
            if isinstance(stmt.exp, A.Alloc) and stmt.names[0] not in live:
                removed += 1
                continue
            for blk in A.sub_blocks(stmt.exp):
                process(blk)
            kept.append(stmt)
        block.stmts = kept

    process(fun.body)
    return removed
