"""Memory bindings: the add-on that ties arrays to memory blocks.

A :class:`MemBinding` pairs the name of a memory block (bound by an
``alloc`` statement, a function parameter's implicit block, or an
existential binding returned from ``if``/``loop``) with the
:class:`repro.lmad.IndexFn` describing where each element lives in that
block.

Deleting every binding recovers the original functional program -- no
semantic content lives here (paper section I).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.lmad import IndexFn
from repro.ir import ast as A
from repro.ir.types import ArrayType, ScalarType

#: Type used for memory-block pattern elements.
MEM_TYPE = ScalarType("i64")


@dataclass(frozen=True)
class MemBinding:
    """``array @ mem -> ixfn``: where an array's elements live.

    ``space`` mirrors the block's memory space (see
    :mod:`repro.mem.spaces`); the alloc statement is authoritative and
    verifier rule MS02 audits that every binding agrees with it.
    """

    mem: str
    ixfn: IndexFn
    space: str = "hbm"

    def __str__(self) -> str:
        tag = f" @{self.space}" if self.space != "hbm" else ""
        return f"{self.mem}{tag} -> {self.ixfn}"

    def with_ixfn(self, ixfn: IndexFn) -> "MemBinding":
        return MemBinding(self.mem, ixfn, self.space)

    def with_space(self, space: str) -> "MemBinding":
        return MemBinding(self.mem, self.ixfn, space)


def param_mem_name(param: str) -> str:
    """Memory block name for an array function parameter."""
    return f"{param}_mem"


def clone_fun(fun: A.Fun) -> A.Fun:
    """Deep copy of a function so passes can annotate without aliasing."""
    return copy.deepcopy(fun)


def binding_of(pat_elem: A.PatElem) -> Optional[MemBinding]:
    b = pat_elem.mem
    if b is None:
        return None
    if not isinstance(b, MemBinding):
        raise TypeError(f"pattern {pat_elem.name} has non-MemBinding: {b!r}")
    return b


def iter_stmts(block: A.Block) -> Iterator[A.Let]:
    """All statements of a block, including nested ones, preorder."""
    for stmt in block.stmts:
        yield stmt
        for blk in A.sub_blocks(stmt.exp):
            yield from iter_stmts(blk)


def array_bindings(fun: A.Fun) -> Dict[str, MemBinding]:
    """Map from array variable name to its memory binding (post-introduce).

    Function parameters are included with their implicit bindings.
    """
    out: Dict[str, MemBinding] = {}
    for p in fun.params:
        if isinstance(p.type, ArrayType):
            out[p.name] = MemBinding(
                param_mem_name(p.name), IndexFn.row_major(p.type.shape)
            )
    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None:
                out[pe.name] = binding_of(pe)
        if isinstance(stmt.exp, A.Loop):
            for prm, _ in stmt.exp.carried:
                if isinstance(prm.type, ArrayType):
                    # Loop params carry bindings via a side table on the
                    # Loop's body block (set by the introduce pass).
                    extra = getattr(stmt.exp.body, "param_bindings", None)
                    if extra and prm.name in extra:
                        out[prm.name] = extra[prm.name]
    return out
