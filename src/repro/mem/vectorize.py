"""Vectorized kernel engine: batched NumPy execution of ``map`` bodies.

The interpreted executor (:mod:`repro.mem.exec`) runs a ``map`` by
evaluating the lambda body once per thread index -- one Python dict copy
and one tree-walk per element.  This module executes the *same* body once
with the thread dimension batched: the thread variable becomes an
``np.arange(width)`` lane vector, scalar operations become broadcast
ufuncs, and every array access evaluates its LMAD index function for all
lanes at once (strided ``np.arange`` outer sums -- never a per-element
``apply_concrete``).

The engine is SIMT-lockstep: statements execute in program order with all
lanes advancing together, lane-varying conditionals run both branches
under complementary masks, and sequential loops with uniform trip counts
iterate on the host with a vectorized body.  Race-free programs (the
:mod:`repro.analysis` checkers gate every benchmark) observe no difference
from the interpreter's sequential thread order.

Two invariants tie the engine to the interpreter:

* **bit-identical results** -- scalar semantics mirror
  ``Interpreter._binop``/``_unop`` including NumPy's value-based (weak)
  promotion of per-thread Python scalars, so validation outputs are
  unchanged;
* **bit-identical accounting** -- every simulated quantity
  (``bytes_read``/``bytes_written``/``flops`` per kernel, elisions,
  allocations) is counted exactly as the interpreted path would: an
  operation over ``L`` active lanes counts ``L`` times.

Dispatch is decided *statically* per map statement by a taint analysis
(:meth:`VecEngine._plan_map`): the thread variable seeds the taint set,
and any construct whose batched execution could diverge from per-thread
interpretation (nested ``map``, lane-varying trip counts or shapes,
reductions, array-valued lane-varying branches) rejects the whole map,
which then falls back to the interpreted path.  There is deliberately no
dynamic try/except fallback: a plan either runs vectorized to completion
or was never attempted, so statistics cannot be double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.lmad import IndexFn
from repro.symbolic import SymExpr

from repro.ir import ast as A
from repro.ir.ast import operand_vars
from repro.ir.interp import Interpreter, InterpError, eval_sym
from repro.ir.types import ArrayType, DTYPE_INFO
from repro.mem.exec import MemExecutor, MemRef, RuntimeArray
from repro.mem.memir import MemBinding, binding_of

#: Synthetic variable standing for the thread index in destination index
#: functions (``dest.ixfn.fix_dim(0, LANE_VAR)``).
LANE_VAR = "__lane__"


class _Reject(Exception):
    """Internal: the map body is not expressible in the vectorized engine."""


@dataclass
class VArr:
    """An array value inside a vectorized body.

    Unlike :class:`RuntimeArray` the index function stays *symbolic*; the
    values of its free variables are captured in ``vals`` at creation time
    (uniform ints, or full-width ``(W,)`` int64 lane vectors indexed by
    global lane id).  Capturing eagerly pins loop-scope variables to their
    creation-time values, exactly like the interpreter's per-thread
    ``_instantiate``.
    """

    mem: str
    ixfn: IndexFn
    dtype: str
    vals: Dict[str, object]

    @property
    def itemsize(self) -> int:
        return DTYPE_INFO[self.dtype][1]


class VecEngine:
    """Per-executor vectorization planner and runner."""

    def __init__(self, ex: MemExecutor, plans: Optional[Dict[int, bool]] = None):
        self.ex = ex
        #: id(map stmt) -> is the body expressible?  (Static, so cached;
        #: a Program passes a shared dict so the taint analysis runs once
        #: per compiled function, not once per serving call.)
        self._plans: Dict[int, bool] = plans if plans is not None else {}

    # ------------------------------------------------------------------
    # Entry point (called from MemExecutor._exec_map, real mode only)
    # ------------------------------------------------------------------
    def try_run_map(
        self,
        stmt: A.Let,
        exp: A.Map,
        env: Dict[str, object],
        width: int,
        dests: List[Optional[RuntimeArray]],
    ) -> bool:
        plan = self._plans.get(id(stmt))
        if plan is None:
            plan = self._plan_map(exp)
            self._plans[id(stmt)] = plan
        if not plan:
            return False
        _VecRun(self.ex, width).run_map(stmt, exp, env, dests)
        return True

    # ------------------------------------------------------------------
    # Planning: taint analysis seeded with the thread variable
    # ------------------------------------------------------------------
    def _plan_map(self, exp: A.Map) -> bool:
        try:
            tainted = {exp.lam.params[0]}
            self._plan_block(exp.lam.body, tainted, set(), set(), False)
        except _Reject:
            return False
        return True

    def _plan_block(self, block, tainted, lane_arrays, local_mems, masked):
        for stmt in block.stmts:
            self._plan_stmt(stmt, tainted, lane_arrays, local_mems, masked)

    def _check_bindings(self, stmt: A.Let, tainted) -> None:
        """Array bindings must have lane-uniform extents.

        Offsets and strides may depend on the thread variable (that is the
        whole point of short-circuited scratch buffers); the *shape* of a
        region must not, or lanes would transfer different amounts.
        """
        for pe in stmt.pattern:
            if pe.is_array():
                b = binding_of(pe)
                if b is None:
                    raise _Reject
                for l in b.ixfn.lmads:
                    for d in l.dims:
                        if d.shape.free_vars() & tainted:
                            raise _Reject

    def _lane_binding(self, pe, tainted, local_mems) -> bool:
        b = binding_of(pe)
        return bool(b.ixfn.free_vars() & tainted) or b.mem in local_mems

    def _plan_stmt(self, stmt, tainted, lane_arrays, local_mems, masked):
        exp = stmt.exp
        name = stmt.names[0]

        if isinstance(exp, A.Alloc):
            if masked or (exp.size.free_vars() & tainted):
                raise _Reject
            local_mems.add(name)
            return

        if isinstance(exp, A.Lit):
            return

        if isinstance(exp, A.ScalarE):
            if exp.expr.free_vars() & tainted:
                tainted.add(name)
            return

        if isinstance(exp, (A.BinOp, A.UnOp)):
            if A.exp_uses(exp) & tainted:
                tainted.add(name)
            return

        if isinstance(exp, A.VarRef):
            pe = stmt.pattern[0]
            if pe.is_array():
                if masked:
                    raise _Reject
                self._check_bindings(stmt, tainted)
                if (
                    self._lane_binding(pe, tainted, local_mems)
                    or exp.name in lane_arrays
                ):
                    lane_arrays.add(pe.name)
            elif exp.name in tainted:
                tainted.add(pe.name)
            return

        if isinstance(exp, (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse)):
            if masked:
                raise _Reject
            self._check_bindings(stmt, tainted)
            if (
                self._lane_binding(stmt.pattern[0], tainted, local_mems)
                or exp.src in lane_arrays
            ):
                lane_arrays.add(name)
            return

        if isinstance(exp, (A.Iota, A.Replicate, A.Scratch)):
            if masked:
                raise _Reject
            self._check_bindings(stmt, tainted)
            if isinstance(exp, A.Iota) and (exp.n.free_vars() & tainted):
                raise _Reject
            if isinstance(exp, A.Replicate):
                for s in exp.shape:
                    if s.free_vars() & tainted:
                        raise _Reject
            # Scratch contents get written per-lane later; replicate of a
            # tainted value differs per lane; all are conservatively
            # lane-varying unless provably uniform, which we never need.
            lane_arrays.add(name)
            return

        if isinstance(exp, A.Copy):
            if masked:
                raise _Reject
            self._check_bindings(stmt, tainted)
            if (
                self._lane_binding(stmt.pattern[0], tainted, local_mems)
                or exp.src in lane_arrays
            ):
                lane_arrays.add(name)
            return

        if isinstance(exp, A.Index):
            idx_vars = frozenset()
            for i in exp.indices:
                idx_vars |= i.free_vars()
            if (idx_vars & tainted) or exp.src in lane_arrays:
                tainted.add(name)
            return

        if isinstance(exp, A.Update):
            if masked:
                raise _Reject
            self._check_bindings(stmt, tainted)
            spec = exp.spec
            if isinstance(spec, A.TripletSpec):
                for _, count, _ in spec.triplets:
                    if count.free_vars() & tainted:
                        raise _Reject
            elif isinstance(spec, A.LmadSpec):
                for d in spec.lmad.dims:
                    if d.shape.free_vars() & tainted:
                        raise _Reject
            lane_arrays.add(name)
            return

        if isinstance(exp, (A.Reduce, A.ArgMin)):
            raise _Reject

        if isinstance(exp, A.Concat):
            if masked:
                raise _Reject
            self._check_bindings(stmt, tainted)
            lane_arrays.add(name)
            return

        if isinstance(exp, A.Map):
            # A nested map extends the lane space: width_outer x width_inner
            # composite lanes, provided the inner width is lane-uniform.
            if masked or (exp.width.free_vars() & tainted):
                raise _Reject
            self._check_bindings(stmt, tainted)
            tainted.add(exp.lam.params[0])
            self._plan_block(exp.lam.body, tainted, lane_arrays, local_mems, False)
            for pe in stmt.pattern:
                if pe.is_array():
                    lane_arrays.add(pe.name)
                else:
                    tainted.add(pe.name)
            return

        if isinstance(exp, A.Loop):
            if masked or (exp.count.free_vars() & tainted):
                raise _Reject
            param_bindings: Dict[str, MemBinding] = getattr(
                exp.body, "param_bindings", {}
            )
            for prm, _init in exp.carried:
                if isinstance(prm.type, ArrayType):
                    b = param_bindings.get(prm.name)
                    if b is not None:
                        for l in b.ixfn.lmads:
                            for d in l.dims:
                                if d.shape.free_vars() & tainted:
                                    raise _Reject
                    lane_arrays.add(prm.name)
                else:
                    # Even a uniform initializer can become lane-varying
                    # through the body; taint conservatively.
                    tainted.add(prm.name)
            self._plan_block(exp.body, tainted, lane_arrays, local_mems, False)
            self._check_bindings(stmt, tainted)
            for pe in stmt.pattern:
                if pe.is_array():
                    lane_arrays.add(pe.name)
                else:
                    tainted.add(pe.name)
            return

        if isinstance(exp, A.If):
            if masked and any(pe.is_array() for pe in stmt.pattern):
                raise _Reject
            if operand_vars(exp.cond) & tainted:
                # Lane-varying condition: masked execution of both
                # branches.  Array-producing statements are forbidden
                # inside (they would need per-lane shapes), and all
                # results become lane vectors.
                if any(pe.is_array() for pe in stmt.pattern):
                    raise _Reject
                self._plan_block(exp.then_block, tainted, lane_arrays, local_mems, True)
                self._plan_block(exp.else_block, tainted, lane_arrays, local_mems, True)
                for pe in stmt.pattern:
                    tainted.add(pe.name)
            else:
                self._plan_block(
                    exp.then_block, tainted, lane_arrays, local_mems, masked
                )
                self._plan_block(
                    exp.else_block, tainted, lane_arrays, local_mems, masked
                )
                self._check_bindings(stmt, tainted)
                for pe, tr, er in zip(
                    stmt.pattern, exp.then_block.result, exp.else_block.result
                ):
                    if pe.is_array():
                        lane_arrays.add(pe.name)
                    elif tr in tainted or er in tainted:
                        tainted.add(pe.name)
            return

        raise _Reject


class _VecRun:
    """One vectorized execution of one map statement.

    Run-scoped so that re-entrant dispatches (an interpreted outer map
    whose inner maps vectorize per-thread) never share lane state.
    """

    def __init__(self, ex: MemExecutor, width: int):
        self.ex = ex
        self.width = width
        #: Lane-expanded blocks for in-body allocs: one buffer of
        #: ``width * size`` elements; block name -> (per-lane size,
        #: divisor).  Lane ``c``'s block starts at ``(c // divisor) *
        #: size`` -- divisor 1 for blocks allocated at this lane depth;
        #: composite sub-runs of a nested map see outer blocks with the
        #: divisor multiplied by the inner width, since ``wi`` composite
        #: lanes share each outer lane's block.
        self.lane_blocks: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def run_map(self, stmt, exp: A.Map, env, dests) -> None:
        ex = self.ex
        W = self.width
        lanes = np.arange(W, dtype=np.int64)
        venv: Dict[str, object] = dict(env)
        venv[exp.lam.params[0]] = lanes
        vals = self.exec_block(exp.lam.body, venv, lanes)
        lane_expr = SymExpr.var(LANE_VAR)
        for dest, val in zip(dests, vals):
            if dest is None:
                continue
            region = VArr(
                dest.mem,
                dest.ixfn.fix_dim(0, lane_expr),
                dest.dtype,
                {LANE_VAR: lanes},
            )
            if isinstance(val, (VArr, RuntimeArray)):
                self.copy_region(self._as_varr(val), region, lanes)
            else:
                ex._count_write(dest.itemsize * W, ex._space_of(dest.mem))
                offs = self.point_offsets(region, [0] * region.ixfn.rank, lanes)
                buf = ex.mem[dest.mem]
                if isinstance(offs, np.ndarray):
                    buf[offs] = val
                else:
                    # All lanes write one cell: the interpreter's last
                    # thread wins.
                    buf[offs] = val[-1] if isinstance(val, np.ndarray) else val

    # ------------------------------------------------------------------
    # Block / statement execution
    # ------------------------------------------------------------------
    def exec_block(self, block: A.Block, venv, lanes) -> List[object]:
        for stmt in block.stmts:
            self.exec_stmt(stmt, venv, lanes)
        out = []
        for r in block.result:
            if r in venv:
                out.append(venv[r])
            elif r in self.ex.mem:
                out.append(MemRef(r))
            else:
                raise InterpError(f"unbound result {r!r}")
        return out

    def exec_stmt(self, stmt: A.Let, venv, lanes) -> None:
        ex = self.ex
        exp = stmt.exp
        L = len(lanes)

        if isinstance(exp, A.Alloc):
            size = int(self._eval_scalar(exp.size, venv, lanes))
            W = self.width
            ex._alloc_counter += 1
            unique = f"{stmt.names[0]}@{ex._alloc_counter}"
            ex.mem[unique] = np.zeros(W * size, dtype=DTYPE_INFO[exp.dtype][0])
            self.lane_blocks[unique] = (size, 1)
            if ex._kernel_stack and ex.shared_memory_model:
                ex._local_mems.add(unique)
            venv[stmt.names[0]] = MemRef(unique)
            ex.stats.alloc_count += W
            ex.stats.alloc_bytes += W * size * DTYPE_INFO[exp.dtype][1]
            # One W-lane buffer stands for W per-thread blocks: same live
            # bytes as the interpreted tier's per-thread allocations.
            ex._note_alloc(
                stmt.names[0],
                unique,
                W * size * DTYPE_INFO[exp.dtype][1],
                exp.space,
            )
            return

        if isinstance(exp, (A.Lit, A.ScalarE, A.BinOp, A.UnOp)):
            venv[stmt.names[0]] = self._scalar_exp(exp, venv, lanes)
            return

        if isinstance(exp, A.VarRef):
            pe = stmt.pattern[0]
            if pe.is_array():
                venv[pe.name] = self._binding_value(pe, venv, lanes)
            else:
                venv[pe.name] = venv[exp.name]
            return

        if isinstance(exp, (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse)):
            venv[stmt.names[0]] = self._binding_value(stmt.pattern[0], venv, lanes)
            return

        if isinstance(exp, (A.Iota, A.Replicate, A.Scratch)):
            dest = self._binding_value(stmt.pattern[0], venv, lanes)
            if not isinstance(exp, A.Scratch):
                if dest.mem not in ex._local_mems:
                    ex._count_write(
                        self._varr_nbytes(dest, lanes) * L,
                        ex._space_of(dest.mem),
                    )
                offs = self.region_offsets(dest, lanes)
                buf = ex.mem[dest.mem]
                if offs.size:
                    if isinstance(exp, A.Iota):
                        n = int(self._eval_scalar(exp.n, venv, lanes))
                        buf[offs] = np.arange(n, dtype=DTYPE_INFO[exp.dtype][0])
                    else:
                        val = self._operand(exp.value, venv, lanes)
                        if isinstance(val, np.ndarray):
                            buf[offs] = val[:, None]
                        else:
                            buf[offs] = val
            venv[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Copy):
            src = self._as_varr(venv[exp.src])
            dest = self._binding_value(stmt.pattern[0], venv, lanes)
            self.copy_region(src, dest, lanes)
            venv[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Index):
            src = self._as_varr(venv[exp.src])
            idx = [self._eval_scalar(i, venv, lanes) for i in exp.indices]
            if src.mem not in ex._local_mems:
                ex._count_read(src.itemsize * L, ex._space_of(src.mem))
            off = self.point_offsets(src, idx, lanes)
            buf = ex.mem[src.mem]
            venv[stmt.names[0]] = buf[off]
            return

        if isinstance(exp, A.Concat):
            dest = self._binding_value(stmt.pattern[0], venv, lanes)
            offset = 0
            dshape = [
                int(self._eval_vals(d.shape, dest.vals, lanes))
                for d in dest.ixfn.lmads[-1].dims
            ]
            for s in exp.srcs:
                src = self._as_varr(venv[s])
                rows = int(
                    self._eval_vals(src.ixfn.lmads[-1].dims[0].shape, src.vals, lanes)
                )
                region_ixfn = dest.ixfn.slice_triplets(
                    [(offset, rows, 1)] + [(0, d, 1) for d in dshape[1:]]
                )
                region = VArr(dest.mem, region_ixfn, dest.dtype, dest.vals)
                self.copy_region(src, region, lanes)
                offset += rows
            venv[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Update):
            self._exec_update(stmt, exp, venv, lanes)
            return

        if isinstance(exp, A.Map):
            self._exec_nested_map(stmt, exp, venv, lanes)
            return

        if isinstance(exp, A.Loop):
            self._exec_loop(stmt, exp, venv, lanes)
            return

        if isinstance(exp, A.If):
            self._exec_if(stmt, exp, venv, lanes)
            return

        raise InterpError(
            f"vectorized engine cannot execute {type(exp).__name__} "
            "(planner should have rejected this map)"
        )

    # ------------------------------------------------------------------
    def _exec_update(self, stmt, exp: A.Update, venv, lanes) -> None:
        ex = self.ex
        L = len(lanes)
        result = self._binding_value(stmt.pattern[0], venv, lanes)
        spec = exp.spec
        if isinstance(spec, A.PointSpec):
            if result.mem not in ex._local_mems:
                ex._count_write(
                    result.itemsize * L, ex._space_of(result.mem)
                )
            idx = [self._eval_scalar(i, venv, lanes) for i in spec.indices]
            off = self.point_offsets(result, idx, lanes)
            val = self._operand(exp.value, venv, lanes)
            buf = ex.mem[result.mem]
            if isinstance(off, np.ndarray):
                buf[off] = val
            else:
                buf[off] = val[-1] if isinstance(val, np.ndarray) else val
            venv[stmt.names[0]] = result
            return
        if isinstance(spec, A.TripletSpec):
            region_ixfn = result.ixfn.slice_triplets(spec.triplets)
        else:
            assert isinstance(spec, A.LmadSpec)
            region_ixfn = result.ixfn.lmad_slice(spec.lmad)
        region_vals = dict(result.vals)
        for v in region_ixfn.free_vars():
            if v not in region_vals:
                region_vals[v] = self._capture(venv[v])
        region = VArr(result.mem, region_ixfn, result.dtype, region_vals)
        value = venv[exp.value] if isinstance(exp.value, str) else None
        if not isinstance(value, (VArr, RuntimeArray)):
            raise InterpError("slice update value must be an array variable")
        self.copy_region(self._as_varr(value), region, lanes)
        venv[stmt.names[0]] = result

    # ------------------------------------------------------------------
    def _exec_nested_map(self, stmt, exp: A.Map, venv, lanes) -> None:
        """Execute a nested map by expanding to a composite lane space.

        With outer width ``W`` and (lane-uniform) inner width ``wi``, the
        body runs in a fresh ``_VecRun`` of ``W * wi`` composite lanes,
        outer-major: composite lane ``c`` is outer lane ``c // wi``,
        inner thread ``c % wi``.  Outer lane vectors are ``np.repeat``-ed;
        outer lane-block bases are baked into a synthetic offset variable
        so the sub-run needs no knowledge of the outer lane geometry.
        Mirrors the interpreter exactly: the nested map charges its own
        kernel entry and adds no launch (a multi-dimensional grid, not a
        separate kernel).
        """
        ex = self.ex
        W = len(lanes)
        wi = int(self._eval_scalar(exp.width, venv, lanes))
        dests = [
            self._binding_value(pe, venv, lanes) if pe.is_array() else None
            for pe in stmt.pattern
        ]
        ks = ex._kernel(stmt, "map", f"map:{'/'.join(stmt.names)}")
        big = W * wi
        sub = _VecRun(ex, big)
        sub.lane_blocks = {
            m: (sz, div * max(wi, 1)) for m, (sz, div) in self.lane_blocks.items()
        }

        def expand(val):
            if isinstance(val, np.ndarray) and val.ndim == 1 and val.shape[0] == W:
                return np.repeat(val, wi)
            if isinstance(val, VArr):
                vals = {
                    k: np.repeat(v, wi) if isinstance(v, np.ndarray) else v
                    for k, v in val.vals.items()
                }
                return VArr(val.mem, val.ixfn, val.dtype, vals)
            return val

        used = A.exp_uses(exp)
        senv = {k: (expand(v) if k in used else v) for k, v in venv.items()}
        clanes = np.arange(big, dtype=np.int64)
        inner_ids = np.tile(np.arange(wi, dtype=np.int64), W)
        senv[exp.lam.params[0]] = inner_ids
        ex._kernel_stack.append(ks)
        try:
            if wi > 0:
                vals = sub.exec_block(exp.lam.body, senv, clanes)
                lane_expr = SymExpr.var(LANE_VAR)
                for dest, val in zip(dests, vals):
                    if dest is None:
                        continue
                    dexp = expand(dest)
                    rvals = dict(dexp.vals)
                    rvals[LANE_VAR] = inner_ids
                    region = VArr(
                        dexp.mem,
                        dexp.ixfn.fix_dim(0, lane_expr),
                        dexp.dtype,
                        rvals,
                    )
                    if isinstance(val, (VArr, RuntimeArray)):
                        sub.copy_region(sub._as_varr(val), region, clanes)
                    else:
                        ex._count_write(
                            dexp.itemsize * big, ex._space_of(dexp.mem)
                        )
                        offs = sub.point_offsets(
                            region, [0] * region.ixfn.rank, clanes
                        )
                        buf = ex.mem[dexp.mem]
                        if isinstance(offs, np.ndarray):
                            buf[offs] = val
                        else:
                            buf[offs] = (
                                val[-1] if isinstance(val, np.ndarray) else val
                            )
        finally:
            ex._kernel_stack.pop()
        for pe, dest in zip(stmt.pattern, dests):
            venv[pe.name] = dest

    # ------------------------------------------------------------------
    def _exec_loop(self, stmt, exp: A.Loop, venv, lanes) -> None:
        ex = self.ex
        count = int(self._eval_scalar(exp.count, venv, lanes))
        state = [venv[init] for _, init in exp.carried]
        param_bindings: Dict[str, MemBinding] = getattr(
            exp.body, "param_bindings", {}
        )
        for it in range(count):
            child = dict(venv)
            child[exp.index] = it
            for (prm, _), val in zip(exp.carried, state):
                if isinstance(prm.type, ArrayType):
                    v = self._as_varr(val)
                    b = param_bindings.get(prm.name)
                    if b is not None and b.mem not in ex.mem:
                        child[b.mem] = MemRef(v.mem)
                    if b is not None:
                        child[prm.name] = self._binding_to_varr(
                            b, prm.type.dtype, child, lanes
                        )
                    else:
                        child[prm.name] = v
                else:
                    child[prm.name] = val
            state[:] = self.exec_block(exp.body, child, lanes)
        self._bind_compound_results(stmt, state, venv, lanes)

    # ------------------------------------------------------------------
    def _exec_if(self, stmt, exp: A.If, venv, lanes) -> None:
        cond = self._operand(exp.cond, venv, lanes)
        if not isinstance(cond, np.ndarray):
            block = exp.then_block if cond else exp.else_block
            vals = self.exec_block(block, dict(venv), lanes)
            self._bind_compound_results(stmt, vals, venv, lanes)
            return
        mask = cond
        tvals = evals = None
        if mask.any():
            tvals = self.exec_block(
                exp.then_block, self._mask_env(venv, mask, len(lanes)), lanes[mask]
            )
        inv = ~mask
        if inv.any():
            evals = self.exec_block(
                exp.else_block, self._mask_env(venv, inv, len(lanes)), lanes[inv]
            )
        if tvals is None:
            merged = evals
        elif evals is None:
            merged = tvals
        else:
            merged = [
                self._merge_masked(mask, tv, ev) for tv, ev in zip(tvals, evals)
            ]
        for pe, val in zip(stmt.pattern, merged):
            venv[pe.name] = val

    @staticmethod
    def _mask_env(venv, mask, L):
        return {
            k: v[mask]
            if isinstance(v, np.ndarray) and v.ndim == 1 and v.shape[0] == L
            else v
            for k, v in venv.items()
        }

    @staticmethod
    def _merge_masked(mask, tv, ev):
        out = np.empty(mask.shape[0], dtype=np.result_type(tv, ev))
        out[mask] = tv
        out[~mask] = ev
        return out

    # ------------------------------------------------------------------
    def _bind_compound_results(self, stmt, vals, venv, lanes) -> None:
        ex = self.ex
        for pe, val in zip(stmt.pattern, vals):
            if not pe.is_array():
                venv[pe.name] = val
        for pe, val in zip(stmt.pattern, vals):
            if pe.is_array():
                if pe.mem is not None:
                    b = binding_of(pe)
                    if b.mem not in ex.mem and b.mem not in venv:
                        venv[b.mem] = MemRef(self._as_varr(val).mem)
                    venv[pe.name] = self._binding_value(pe, venv, lanes)
                else:
                    venv[pe.name] = val

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    @staticmethod
    def _capture(val):
        if isinstance(val, np.generic):
            return val.item()
        return val

    def _as_varr(self, val) -> VArr:
        if isinstance(val, VArr):
            return val
        if isinstance(val, RuntimeArray):
            return VArr(val.mem, val.ixfn, val.dtype, {})
        raise InterpError(f"expected an array value, got {type(val).__name__}")

    def _binding_value(self, pe, venv, lanes) -> VArr:
        b = binding_of(pe)
        if b is None:
            raise InterpError(f"array {pe.name} lacks a memory binding")
        assert isinstance(pe.type, ArrayType)
        return self._binding_to_varr(b, pe.type.dtype, venv, lanes)

    def _binding_to_varr(self, b: MemBinding, dtype, venv, lanes) -> VArr:
        mem = self.ex._resolve_mem(b.mem, venv)
        vals: Dict[str, object] = {}
        for v in b.ixfn.free_vars():
            if v not in venv:
                raise InterpError(f"unbound variable {v!r} in index function")
            vals[v] = self._capture(venv[v])
        return VArr(mem, b.ixfn, dtype, vals)

    # ------------------------------------------------------------------
    # Offset evaluation: batched index-function application
    # ------------------------------------------------------------------
    def _eval_vals(self, expr: SymExpr, vals, lanes):
        """Evaluate an ixfn component under creation-time captures.

        Captured lane vectors are full-width and indexed by global lane
        id, so slicing by ``lanes`` yields the active lanes' values.
        Returns a Python int (uniform) or an ``(L,)`` int64 vector.
        """
        out = 0
        for m, c in expr.terms.items():
            val = c
            for var, p in m:
                v = vals[var]
                if isinstance(v, np.ndarray):
                    v = v[lanes]
                val = val * v**p
            out = out + val
        return out

    def point_offsets(self, varr: VArr, idx, lanes):
        """Flat offsets of ``varr[idx]`` for all active lanes.

        ``idx`` entries are uniform ints or ``(L,)`` vectors; the result
        is a uniform int or an ``(L,)`` int64 vector.  Composed index
        functions unrank through the outer LMADs exactly like
        ``IndexFn.apply_concrete``, but for all lanes at once.
        """
        ixfn = varr.ixfn
        inner = ixfn.lmads[-1]
        off = self._eval_vals(inner.offset, varr.vals, lanes)
        for i, d in zip(idx, inner.dims):
            off = off + i * self._eval_vals(d.stride, varr.vals, lanes)
        for l in reversed(ixfn.lmads[:-1]):
            shape = tuple(
                int(self._eval_vals(d.shape, varr.vals, lanes)) for d in l.dims
            )
            coords = np.unravel_index(off, shape)
            off = self._eval_vals(l.offset, varr.vals, lanes)
            for coord, d in zip(coords, l.dims):
                off = off + coord * self._eval_vals(d.stride, varr.vals, lanes)
        ent = self.lane_blocks.get(varr.mem)
        if ent is not None:
            size, div = ent
            off = off + (lanes // div if div != 1 else lanes) * size
        return off

    def region_offsets(self, varr: VArr, lanes) -> np.ndarray:
        """All flat offsets of the region, shape ``(L, region_size)``.

        Row ``k`` holds lane ``lanes[k]``'s offsets in C order of the
        region's visible shape -- matching both ``gather_offsets`` and the
        interpreter's ``data.reshape`` convention.
        """
        L = len(lanes)
        ixfn = varr.ixfn
        inner = ixfn.lmads[-1]
        shape = tuple(
            int(self._eval_vals(d.shape, varr.vals, lanes)) for d in inner.dims
        )
        q = len(shape)
        off0 = self._eval_vals(inner.offset, varr.vals, lanes)
        offs = np.zeros((L,) + shape, dtype=np.int64)
        offs += np.asarray(off0, dtype=np.int64).reshape((-1,) + (1,) * q)
        for axis, d in enumerate(inner.dims):
            n = shape[axis]
            s = self._eval_vals(d.stride, varr.vals, lanes)
            cshape = [1] * (q + 1)
            cshape[axis + 1] = n
            if isinstance(s, np.ndarray):
                cshape[0] = L
                offs += (np.arange(n, dtype=np.int64)[None, :] * s[:, None]).reshape(
                    cshape
                )
            else:
                offs += (np.arange(n, dtype=np.int64) * s).reshape(cshape)
        offs = offs.reshape(L, -1)
        for l in reversed(ixfn.lmads[:-1]):
            oshape = tuple(
                int(self._eval_vals(d.shape, varr.vals, lanes)) for d in l.dims
            )
            coords = np.unravel_index(offs, oshape)
            acc = np.zeros_like(offs)
            acc += np.asarray(
                self._eval_vals(l.offset, varr.vals, lanes), dtype=np.int64
            ).reshape(-1, 1)
            for coord, d in zip(coords, l.dims):
                s = self._eval_vals(d.stride, varr.vals, lanes)
                if isinstance(s, np.ndarray):
                    s = s[:, None]
                acc += coord * s
            offs = acc
        ent = self.lane_blocks.get(varr.mem)
        if ent is not None:
            size, div = ent
            base = (lanes // div if div != 1 else lanes) * size
            offs = offs + base[:, None]
        return offs

    def _varr_size(self, varr: VArr, lanes) -> int:
        n = 1
        for d in varr.ixfn.lmads[-1].dims:
            n *= int(self._eval_vals(d.shape, varr.vals, lanes))
        return n

    def _varr_nbytes(self, varr: VArr, lanes) -> int:
        return self._varr_size(varr, lanes) * varr.itemsize

    # ------------------------------------------------------------------
    # The one copy rule, per lane
    # ------------------------------------------------------------------
    def copy_region(self, src: VArr, dst: VArr, lanes) -> None:
        """Per-lane mirror of ``MemExecutor._copy_region``.

        A lane's copy is elided iff its instantiated source and
        destination index functions coincide -- decided numerically here,
        which is equivalent to the interpreter's structural comparison of
        instantiated (constant) index functions.
        """
        ex = self.ex
        L = len(lanes)
        elide = None
        if src.mem == dst.mem and len(src.ixfn.lmads) == len(dst.ixfn.lmads):
            elide = np.ones(L, dtype=bool)
            for ls, ld in zip(src.ixfn.lmads, dst.ixfn.lmads):
                if ls.rank != ld.rank:
                    elide = None
                    break
                pairs = [(ls.offset, ld.offset)]
                for ds, dd in zip(ls.dims, ld.dims):
                    pairs.append((ds.shape, dd.shape))
                    pairs.append((ds.stride, dd.stride))
                for es, ed in pairs:
                    vs = self._eval_vals(es, src.vals, lanes)
                    vd = self._eval_vals(ed, dst.vals, lanes)
                    elide = elide & np.asarray(vs == vd)
                    if not elide.any():
                        break
                else:
                    continue
                break
        if elide is None:
            elide = np.zeros(L, dtype=bool)
        n_el = int(np.count_nonzero(elide))
        src_nb = self._varr_nbytes(src, lanes)
        dst_nb = self._varr_nbytes(dst, lanes)
        if n_el:
            ex.stats.elided_copies += n_el
            ex.stats.elided_bytes += (src_nb + dst_nb) * n_el
        n_rem = L - n_el
        if n_rem == 0:
            return
        ks = ex._current_kernel()
        assert ks is not None
        if src.mem not in ex._local_mems:
            ks.note_read(src_nb * n_rem, ex._space_of(src.mem))
        if dst.mem not in ex._local_mems:
            ks.note_written(dst_nb * n_rem, ex._space_of(dst.mem))
        rlanes = lanes[~elide]
        doffs = self.region_offsets(dst, rlanes)
        if doffs.size:
            soffs = self.region_offsets(src, rlanes)
            sbuf = ex.mem[src.mem]
            dbuf = ex.mem[dst.mem]
            dbuf[doffs] = sbuf[soffs].reshape(doffs.shape)

    # ------------------------------------------------------------------
    # Scalars
    # ------------------------------------------------------------------
    def _eval_scalar(self, expr, venv, lanes):
        """Evaluate an index/scalar SymExpr in the current environment."""
        if not isinstance(expr, SymExpr):
            return expr
        for v in expr.free_vars():
            if isinstance(venv.get(v), np.ndarray):
                break
        else:
            # All-uniform: the interpreter's exact integer path.
            return eval_sym(expr, venv)
        out = 0
        for m, c in expr.terms.items():
            val = c
            for var, p in m:
                v = venv[var]
                if isinstance(v, np.generic):
                    v = v.item()
                val = val * v**p
            out = out + val
        return out

    def _operand(self, op: A.Operand, venv, lanes):
        if isinstance(op, str):
            return venv[op]
        if isinstance(op, SymExpr):
            return self._eval_scalar(op, venv, lanes)
        return op

    def _scalar_exp(self, exp: A.Exp, venv, lanes):
        if isinstance(exp, A.Lit):
            return np.dtype(DTYPE_INFO[exp.dtype][0]).type(exp.value)
        if isinstance(exp, A.ScalarE):
            return self._eval_scalar(exp.expr, venv, lanes)
        if isinstance(exp, A.BinOp):
            self.ex._count_flop(len(lanes))
            return self._vec_binop(
                exp.op,
                self._operand(exp.x, venv, lanes),
                self._operand(exp.y, venv, lanes),
            )
        assert isinstance(exp, A.UnOp)
        self.ex._count_flop(len(lanes))
        return self._vec_unop(exp.op, self._operand(exp.x, venv, lanes))

    @staticmethod
    def _weak_promote(x, y):
        """Mimic per-thread weak scalar promotion for int lane vectors.

        In the interpreter, integer scalars are *Python* ints, so mixing
        one into float32 arithmetic stays float32 (NEP 50 weak promotion).
        The batched equivalent is an int64 lane vector, which NumPy would
        promote to float64 -- so cast int vectors to the float operand's
        dtype before the op.
        """

        def float_dtype(v):
            if isinstance(v, np.ndarray) and v.dtype.kind == "f":
                return v.dtype
            if isinstance(v, np.floating):
                return v.dtype
            if isinstance(v, float):
                return np.dtype(np.float64)
            return None

        fx, fy = float_dtype(x), float_dtype(y)
        if isinstance(x, np.ndarray) and x.dtype.kind in "iub" and fy is not None:
            x = x.astype(fy)
        if isinstance(y, np.ndarray) and y.dtype.kind in "iub" and fx is not None:
            y = y.astype(fx)
        return x, y

    @classmethod
    def _vec_binop(cls, op: str, x, y):
        if not isinstance(x, np.ndarray) and not isinstance(y, np.ndarray):
            return Interpreter._binop(op, x, y)
        if op in ("+", "-", "*", "/", "//", "%", "pow"):
            x, y = cls._weak_promote(x, y)
            if op == "+":
                return x + y
            if op == "-":
                return x - y
            if op == "*":
                return x * y
            if op == "/":
                return x / y
            if op == "//":
                return x // y
            if op == "%":
                return x % y
            return x**y
        if op == "min":
            return np.minimum(x, y)
        if op == "max":
            return np.maximum(x, y)
        if op == "<":
            return x < y
        if op == "<=":
            return x <= y
        if op == "==":
            return x == y
        if op == "!=":
            return x != y
        if op == ">":
            return x > y
        if op == ">=":
            return x >= y
        if op == "&&":
            return np.logical_and(x, y)
        if op == "||":
            return np.logical_or(x, y)
        raise InterpError(f"unknown binop {op!r}")

    @staticmethod
    def _vec_unop(op: str, x):
        if not isinstance(x, np.ndarray):
            return Interpreter._unop(op, x)
        if op == "neg":
            return -x
        if op == "sqrt":
            return np.sqrt(x)
        if op == "exp":
            return np.exp(x)
        if op == "log":
            return np.log(x)
        if op == "abs":
            return np.abs(x)
        if op == "i64":
            return x.astype(np.int64)
        if op == "f32":
            return x.astype(np.float32)
        if op == "f64":
            return x.astype(np.float64)
        raise InterpError(f"unknown unop {op!r}")
