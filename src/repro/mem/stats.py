"""Execution statistics: the raw material of the simulated-GPU cost model.

The memory-IR executor records, per *kernel* (a ``map`` launch, an explicit
``copy``/``concat``/``update`` data movement, or a ``reduce``):

* bytes read from and written to memory blocks,
* scalar floating-point operations,
* launch counts (a map inside a sequential loop launches once per
  iteration, exactly like a kernel inside a host loop on a real GPU).

Copies whose source already lives at the destination (the result of
short-circuiting) are tallied as *elided* instead -- the measured
difference between the unoptimized and optimized pipelines is precisely
the paper's "Opt. Impact" column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class KernelStat:
    """Aggregated statistics for one static kernel site."""

    kind: str  # "map" | "copy" | "update" | "concat" | "reduce" | "fill"
    label: str
    #: (site, kind) registry key, set by ExecStats.kernel.
    key: Optional[Tuple[int, str]] = None
    launches: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    flops: int = 0
    #: Per-space traffic attribution (:mod:`repro.mem.spaces`): bytes of
    #: ``bytes_read``/``bytes_written`` that touched a *non-HBM* space.
    #: HBM traffic is the remainder, so the totals above stay the single
    #: source of truth (and the signature stays space-agnostic).
    space_read: Dict[str, int] = field(default_factory=dict)
    space_written: Dict[str, int] = field(default_factory=dict)

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def read_in(self, space: str) -> int:
        if space == "hbm":
            return self.bytes_read - sum(self.space_read.values())
        return self.space_read.get(space, 0)

    def written_in(self, space: str) -> int:
        if space == "hbm":
            return self.bytes_written - sum(self.space_written.values())
        return self.space_written.get(space, 0)

    def note_read(self, nbytes: int, space: str = "hbm") -> None:
        self.bytes_read += nbytes
        if space != "hbm":
            self.space_read[space] = self.space_read.get(space, 0) + nbytes

    def note_written(self, nbytes: int, space: str = "hbm") -> None:
        self.bytes_written += nbytes
        if space != "hbm":
            self.space_written[space] = (
                self.space_written.get(space, 0) + nbytes
            )

    def merge_scaled(self, other: "KernelStat", factor: float) -> None:
        self.launches += other.launches  # launches do not scale with threads
        self.bytes_read += int(other.bytes_read * factor)
        self.bytes_written += int(other.bytes_written * factor)
        self.flops += int(other.flops * factor)
        for sp, n in other.space_read.items():
            self.space_read[sp] = self.space_read.get(sp, 0) + int(n * factor)
        for sp, n in other.space_written.items():
            self.space_written[sp] = (
                self.space_written.get(sp, 0) + int(n * factor)
            )


@dataclass
class ExecStats:
    """Whole-run statistics."""

    kernels: Dict[Tuple[int, str], KernelStat] = field(default_factory=dict)
    elided_copies: int = 0
    elided_bytes: int = 0
    alloc_bytes: int = 0
    alloc_count: int = 0
    #: High-water mark of live allocation bytes (input blocks plus
    #: allocations whose lifetime has not ended), maintained by the
    #: executor's lifetime model (``mem_frees`` annotations, kernel-end
    #: frees, loop-iteration reachability).  Excluded from
    #: :meth:`signature` and :meth:`merge_scaled`: it is a property of
    #: the whole run, set once at the end, not a mergeable counter --
    #: and programs compiled with and without ``mem_frees`` annotations
    #: must still be signature-equal.
    peak_bytes: int = 0
    #: Execution-tier counters (real mode): how many ``map`` statement
    #: executions ran on the vectorized engine vs the interpreted
    #: fallback.  Pure wall-clock bookkeeping -- excluded from
    #: :meth:`signature`, because the tiers must agree on every simulated
    #: quantity.
    vec_launches: int = 0
    interp_launches: int = 0
    #: Outermost map launches served by the compiled-C tier
    #: (:mod:`repro.backend`) and the cumulative C-emission + compiler
    #: wall clock behind them.  Like the other tier counters these
    #: describe *how* the run executed, never *what* it simulated, so
    #: both are excluded from :meth:`signature`.
    native_launches: int = 0
    codegen_seconds: float = 0.0
    #: Fusion accounting (:mod:`repro.opt.fuse`): producers inlined into
    #: the kernels this run launched, and the write+read round trip the
    #: elided intermediates would have cost.  Excluded from
    #: :meth:`signature`: fusion intentionally changes the traffic, so
    #: the gates compare fused-vs-unfused *outputs* (bit-identical) and
    #: assert the traffic strictly decreases instead.
    fused_kernels: int = 0
    bytes_elided_fusion: int = 0
    #: Runtime buffer-pool counters (:mod:`repro.runtime.pool`): how many
    #: allocations this run served from reused pooled buffers vs fresh
    #: ``np.zeros``.  Like the execution-tier counters, these describe
    #: *how* memory was obtained, not *what* the program simulated, so
    #: they are excluded from :meth:`signature` and from
    #: :meth:`merge_scaled`.
    pool_hits: int = 0
    pool_misses: int = 0
    #: Compile-once/serve-many timing pair, stamped by
    #: :meth:`repro.runtime.Program.run`: the original (uncached) compile
    #: wall clock this call amortizes, and this call's own wall clock.
    #: Pure bookkeeping -- excluded from :meth:`signature`.
    cold_compile_seconds: float = 0.0
    warm_call_seconds: float = 0.0
    #: Per-space high-water marks, same lifetime model as ``peak_bytes``
    #: (which remains the all-spaces total).  Keyed by space name; like
    #: ``peak_bytes`` they are stamped once at run end and excluded from
    #: :meth:`signature` and :meth:`merge_scaled`.
    space_peak_bytes: Dict[str, int] = field(default_factory=dict)
    #: Bytes moved by inter-device halo-exchange copies when a program
    #: runs sharded (:mod:`repro.shard`).  Describes the *distribution*
    #: of the run, not the program's own semantics, so it is excluded
    #: from :meth:`signature` (satellite of the pool_hits precedent) and
    #: surfaced in ``--explain`` instead.
    halo_bytes: int = 0

    # ------------------------------------------------------------------
    def kernel(self, site: int, kind: str, label: str) -> KernelStat:
        key = (site, kind)
        ks = self.kernels.get(key)
        if ks is None:
            ks = KernelStat(kind, label)
            ks.key = key
            self.kernels[key] = ks
        return ks

    def merge_scaled(self, other: "ExecStats", factor: float) -> None:
        """Fold in a sub-run's stats, scaling data volume by ``factor``.

        Used by the dry-run executor: a map body is executed once and its
        traffic multiplied by the map's width (or a sampled loop body by
        the trip-count/samples ratio).
        """
        for key, ks in other.kernels.items():
            mine = self.kernels.get(key)
            if mine is None:
                mine = KernelStat(ks.kind, ks.label)
                self.kernels[key] = mine
            mine.merge_scaled(ks, factor)
        self.elided_copies += int(other.elided_copies * factor)
        self.elided_bytes += int(other.elided_bytes * factor)
        self.alloc_bytes += int(other.alloc_bytes * factor)
        self.alloc_count += int(other.alloc_count * factor)
        # Like launches, fused-kernel counts are per-launch facts; the
        # elided traffic is data volume and scales with the thread count.
        self.fused_kernels += other.fused_kernels
        self.bytes_elided_fusion += int(other.bytes_elided_fusion * factor)

    # ------------------------------------------------------------------
    @property
    def bytes_read(self) -> int:
        return sum(k.bytes_read for k in self.kernels.values())

    @property
    def bytes_written(self) -> int:
        return sum(k.bytes_written for k in self.kernels.values())

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def flops(self) -> int:
        return sum(k.flops for k in self.kernels.values())

    @property
    def launches(self) -> int:
        return sum(k.launches for k in self.kernels.values())

    def read_in(self, space: str) -> int:
        return sum(k.read_in(space) for k in self.kernels.values())

    def written_in(self, space: str) -> int:
        return sum(k.written_in(space) for k in self.kernels.values())

    def bytes_in(self, space: str) -> int:
        return self.read_in(space) + self.written_in(space)

    def spaces_touched(self) -> tuple:
        """Space names with any traffic or peak recorded, hbm first."""
        seen = {"hbm"}
        for k in self.kernels.values():
            seen |= set(k.space_read) | set(k.space_written)
        seen |= set(self.space_peak_bytes)
        return tuple(sorted(seen, key=lambda s: (s != "hbm", s)))

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of buffer acquisitions served by the pool's free
        lists.  0.0 when nothing was pooled (no lease, or dry mode)."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    @property
    def vec_hit_rate(self) -> float:
        """Fraction of real-mode map dispatches served by the vectorized
        engine.  0.0 when nothing dispatched (dry mode)."""
        total = self.vec_launches + self.interp_launches
        return self.vec_launches / total if total else 0.0

    @property
    def native_hit_rate(self) -> float:
        """Fraction of real-mode map dispatches served by compiled
        native kernels.  0.0 when nothing dispatched (dry mode, or the
        tier is off)."""
        total = (
            self.native_launches + self.vec_launches + self.interp_launches
        )
        return self.native_launches / total if total else 0.0

    def signature(self) -> tuple:
        """Canonical tuple of every *simulated* quantity.

        Two runs of the same program are cost-model equivalent iff their
        signatures are equal; the differential tests use this to pin the
        vectorized engine to the interpreted path bit-for-bit.  Kernel
        registry keys carry ``id(stmt)`` (not stable across compiles), so
        kernels are identified by (kind, label) here.  Execution-tier
        counters are deliberately excluded: they describe *how* the run
        executed, not *what* it simulated.
        """
        kernels = sorted(
            (k.kind, k.label, k.launches, k.bytes_read, k.bytes_written, k.flops)
            for k in self.kernels.values()
        )
        return (
            tuple(kernels),
            self.elided_copies,
            self.elided_bytes,
            self.alloc_bytes,
            self.alloc_count,
        )

    def traffic_signature(self) -> tuple:
        """:meth:`signature` minus the allocation counters.

        Memory reuse (:mod:`repro.reuse`) merges allocations, so runs
        with and without it agree on traffic, flops and launches but not
        on ``alloc_bytes``/``alloc_count``; the differential tests pin
        exactly that.
        """
        return self.signature()[:3]

    def copy_traffic(self) -> int:
        """Bytes moved by pure data-movement kernels (copy/update/concat)."""
        return sum(
            k.bytes_total
            for k in self.kernels.values()
            if k.kind in ("copy", "update", "concat")
        )

    def summary(self) -> str:
        lines = [
            f"kernel launches : {self.launches}",
            f"bytes read      : {self.bytes_read:,}",
            f"bytes written   : {self.bytes_written:,}",
            f"flops           : {self.flops:,}",
            f"copy traffic    : {self.copy_traffic():,} bytes",
            f"elided copies   : {self.elided_copies} ({self.elided_bytes:,} bytes)",
            f"fused producers : {self.fused_kernels} "
            f"({self.bytes_elided_fusion:,} bytes elided)",
            f"allocations     : {self.alloc_count} ({self.alloc_bytes:,} bytes)",
        ]
        if self.native_launches:
            lines.append(
                f"native kernels  : {self.native_launches} launches "
                f"(hit rate {self.native_hit_rate:.2f}, "
                f"codegen {self.codegen_seconds:.3f}s)"
            )
        if self.pool_hits or self.pool_misses:
            lines.append(
                f"pooled buffers  : {self.pool_hits} reused / "
                f"{self.pool_misses} fresh "
                f"(hit rate {self.pool_hit_rate:.2f})"
            )
        spaces = self.spaces_touched()
        if len(spaces) > 1:
            for sp in spaces:
                lines.append(
                    f"space {sp:<9} : {self.read_in(sp):,} read / "
                    f"{self.written_in(sp):,} written / "
                    f"peak {self.space_peak_bytes.get(sp, 0):,}"
                )
        if self.halo_bytes:
            lines.append(f"halo exchange   : {self.halo_bytes:,} bytes")
        return "\n".join(lines)
