"""First-class memory spaces.

Every memory block (``alloc`` statement or parameter block) lives in a
named *space*: the flat device memory (``hbm``), the on-chip scratchpad
shared by a kernel's threads (``scratch``), or the register file
(``regs``).  The space is carried on both the :class:`~repro.ir.ast.Alloc`
expression (the source of truth) and on every
:class:`~repro.mem.memir.MemBinding` that views the block (audited by
verifier rule MS02), so it survives pretty-print/parse round-trips and
is visible to every pass.

Spaces are deliberately *descriptive*, not semantic: erasing them (like
erasing the bindings themselves) recovers the same functional program.
They change what the accountants report (per-space traffic and peaks),
what the coalescer may merge (never across spaces, MS02), what the
capacity rule admits (MS01), and what the cost model charges (tiered
bandwidths in :mod:`repro.gpu.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.mem.memir import binding_of, iter_stmts, param_mem_name


@dataclass(frozen=True)
class MemSpace:
    """One addressable memory tier of the simulated device."""

    name: str
    #: Capacity in bytes; ``None`` means unbounded (host-sized HBM).
    capacity: Optional[int]
    description: str


#: Default space for every block the frontend or a pass does not place
#: explicitly.  All parameter blocks live here.
DEFAULT_SPACE = "hbm"

#: The registry.  Capacities model a generic data-center GPU: HBM is
#: treated as unbounded (the footprint gates police it separately),
#: the scratchpad is 192 KiB per kernel instance (A100-class unified
#: shared memory), and the register file budget per thread is 1 KiB
#: (256 x 32-bit registers).
SPACES: Dict[str, MemSpace] = {
    "hbm": MemSpace("hbm", None, "device-global high-bandwidth memory"),
    "scratch": MemSpace(
        "scratch", 192 * 1024, "per-kernel shared scratchpad (on-chip)"
    ),
    "regs": MemSpace("regs", 1024, "per-thread register file"),
}


def space_of(name: str) -> MemSpace:
    """Look up a space by name; unknown names are a hard error."""
    try:
        return SPACES[name]
    except KeyError:
        raise KeyError(
            f"unknown memory space {name!r} (known: {sorted(SPACES)})"
        ) from None


def is_space(name: str) -> bool:
    return name in SPACES


def alloc_spaces(fun: A.Fun) -> Dict[str, str]:
    """Map every memory block name to its space.

    Covers ``alloc``-bound blocks (their :class:`~repro.ir.ast.Alloc`
    carries the space) and parameter blocks (always ``hbm``).
    Existential blocks (if/loop results) are *not* included -- their
    space is whichever branch block they resolve to at run time.
    """
    out: Dict[str, str] = {}
    for p in fun.params:
        if isinstance(p.type, ArrayType):
            out[param_mem_name(p.name)] = DEFAULT_SPACE
    for stmt in iter_stmts(fun.body):
        if isinstance(stmt.exp, A.Alloc):
            out[stmt.pattern[0].name] = stmt.exp.space
    return out


def assign_space(fun: A.Fun, mem: str, space: str) -> int:
    """Re-home one alloc'd block into ``space``, updating the Alloc and
    every binding that views the block.  Returns the number of rewritten
    sites.  Used by the fuzz corpus to generate cross-space programs and
    by tests; real placement happens in :mod:`repro.mem.introduce`.
    """
    space_of(space)  # validate
    changed = 0
    for stmt in iter_stmts(fun.body):
        if (
            isinstance(stmt.exp, A.Alloc)
            and stmt.pattern
            and stmt.pattern[0].name == mem
        ):
            stmt.exp = A.Alloc(stmt.exp.size, stmt.exp.dtype, space)
            changed += 1
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None:
                b = binding_of(pe)
                if b.mem == mem and b.space != space:
                    pe.mem = b.with_space(space)
                    changed += 1
        if isinstance(stmt.exp, A.Loop):
            pb = getattr(stmt.exp.body, "param_bindings", None)
            if pb:
                for prm, b in list(pb.items()):
                    if b.mem == mem and b.space != space:
                        pb[prm] = b.with_space(space)
                        changed += 1
    return changed


def sync_binding_spaces(fun: A.Fun) -> int:
    """Stamp every binding with its block's declared space.

    The introduce pass and all rewriting passes maintain binding spaces
    incrementally; this helper exists for programs built by hand (tests,
    the parser) whose bindings predate a space assignment.  Bindings to
    existential blocks are left untouched.  Returns the number of
    bindings updated.
    """
    table = alloc_spaces(fun)
    changed = 0
    for stmt in iter_stmts(fun.body):
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None:
                b = binding_of(pe)
                want = table.get(b.mem)
                if want is not None and b.space != want:
                    pe.mem = b.with_space(want)
                    changed += 1
        if isinstance(stmt.exp, A.Loop):
            pb = getattr(stmt.exp.body, "param_bindings", None)
            if pb:
                for prm, b in list(pb.items()):
                    want = table.get(b.mem)
                    if want is not None and b.space != want:
                        pb[prm] = b.with_space(want)
                        changed += 1
    return changed
