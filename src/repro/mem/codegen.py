"""Code generation: emit imperative pseudo-CUDA from the memory IR.

Paper section IV-A: "By knowing the structure of the LMAD of an array at
compile time, we can emit an expression such as the above when generating
code for an array access" -- and the abstract promises "code similar to
what imperative users would write".  This backend makes that concrete: it
lowers a memory-annotated function to readable, imperative, CUDA-flavoured
pseudo-code in which

* every array access is a *flat index expression* inlined from the array's
  index function (never a run-time dope vector -- the contrast with Sisal
  the related-work section draws);
* each ``map`` becomes a ``__global__`` kernel plus a host-side launch;
* short-circuited copies are visibly absent: an elided update/concat emits
  only a comment, because the producing kernel already wrote in place.

The output is illustrative (we have no GPU to hand it to -- the simulated
executor is the runnable backend); its purpose is to show, textually, the
imperative program the optimization recovers, and the test suite checks
its structural properties (kernel counts, inlined offsets, absent copies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lmad import IndexFn
from repro.symbolic import Prover, SymExpr

from repro.ir import ast as A
from repro.ir.types import ArrayType
from repro.mem.memir import MemBinding, binding_of, param_mem_name
from repro.opt.summaries import _ixfn_region_of_update

_CTYPE = {"f32": "float", "f64": "double", "i64": "long", "bool": "bool"}


@dataclass
class _Emitter:
    lines: List[str] = field(default_factory=list)
    indent: int = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def __str__(self) -> str:
        return "\n".join(self.lines)


class CodeGen:
    """Lower one memory-annotated function to pseudo-CUDA text."""

    def __init__(self, fun: A.Fun):
        self.fun = fun
        self.prover = Prover(fun.build_context())
        self.host = _Emitter()
        self.kernels: List[_Emitter] = []
        self.bindings: Dict[str, MemBinding] = {}
        self.dtypes: Dict[str, str] = {}
        self.kernel_count = 0
        for p in fun.params:
            if isinstance(p.type, ArrayType):
                self.bindings[p.name] = MemBinding(
                    param_mem_name(p.name), IndexFn.row_major(p.type.shape)
                )
                self.dtypes[p.name] = p.type.dtype

    # ------------------------------------------------------------------
    def generate(self) -> str:
        self.host.emit(f"// generated from fun {self.fun.name}")
        params = ", ".join(
            f"{_CTYPE[p.type.dtype]} *{param_mem_name(p.name)}"
            if isinstance(p.type, ArrayType)
            else f"{_CTYPE[p.type.dtype]} {p.name}"
            for p in self.fun.params
        )
        self.host.emit(f"void {self.fun.name}({params}) {{")
        self.host.indent += 1
        self.gen_block(self.fun.body)
        self.host.emit(
            "// result: " + ", ".join(self.fun.body.result)
        )
        self.host.indent -= 1
        self.host.emit("}")
        pieces = [str(k) for k in self.kernels] + [str(self.host)]
        return "\n\n".join(pieces)

    # ------------------------------------------------------------------
    def _flat(self, binding: MemBinding, indices: List[str]) -> str:
        """Inline the flat-offset expression of an access (paper IV-A)."""
        single = binding.ixfn.as_single()
        if single is None:
            return f"unrank({binding.mem}, ...)"  # the rare fig. 3 case
        offset = single.offset
        parts = [str(offset)] if not offset.is_zero() else []
        for idx, d in zip(indices, single.dims):
            if d.stride.is_zero():
                continue
            s = str(d.stride)
            s = f"({s})" if any(c in s for c in "+- ") else s
            parts.append(f"{idx}*{s}" if s != "1" else idx)
        return " + ".join(parts) if parts else "0"

    def _access(self, name: str, indices: List[str]) -> str:
        b = self.bindings[name]
        return f"{b.mem}[{self._flat(b, indices)}]"

    def _record(self, stmt: A.Let) -> None:
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None:
                self.bindings[pe.name] = binding_of(pe)
                assert isinstance(pe.type, ArrayType)
                self.dtypes[pe.name] = pe.type.dtype

    # ------------------------------------------------------------------
    def gen_block(self, block: A.Block, em: Optional[_Emitter] = None) -> None:
        em = em or self.host
        for stmt in block.stmts:
            self.gen_stmt(stmt, em)
            self._record(stmt)

    def gen_stmt(self, stmt: A.Let, em: _Emitter) -> None:
        exp = stmt.exp
        name = stmt.names[0]

        if isinstance(exp, A.Alloc):
            item = _CTYPE[exp.dtype]
            em.emit(f"{item} *{name} = ({item}*) malloc(({exp.size}) * sizeof({item}));")
            return
        if isinstance(exp, (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse, A.VarRef)):
            b = binding_of(stmt.pattern[0])
            em.emit(f"// view {name} = {b.mem} -> {b.ixfn}   (no data movement)")
            return
        if isinstance(exp, A.Update):
            self.gen_update(stmt, exp, em)
            return
        if isinstance(exp, A.Concat):
            self.gen_concat(stmt, exp, em)
            return
        if isinstance(exp, A.Copy):
            self.gen_copy(stmt, exp, em)
            return
        if isinstance(exp, A.Map):
            self.gen_map(stmt, exp, em)
            return
        if isinstance(exp, A.Loop):
            em.emit(f"// loop producing {', '.join(stmt.names)}")
            em.emit(f"for (long {exp.index} = 0; {exp.index} < {exp.count}; {exp.index}++) {{")
            em.indent += 1
            pb = getattr(exp.body, "param_bindings", {})
            self.bindings.update(pb)
            for (prm, init) in exp.carried:
                if isinstance(prm.type, ArrayType) and init in self.bindings:
                    self.bindings.setdefault(prm.name, self.bindings[init])
                    self.dtypes.setdefault(prm.name, prm.type.dtype)
            self.gen_block(exp.body, em)
            em.indent -= 1
            em.emit("}")
            return
        if isinstance(exp, A.If):
            em.emit(f"if ({_scalar(exp.cond)}) {{")
            em.indent += 1
            self.gen_block(exp.then_block, em)
            em.indent -= 1
            em.emit("} else {")
            em.indent += 1
            self.gen_block(exp.else_block, em)
            em.indent -= 1
            em.emit("}")
            return
        if isinstance(exp, (A.Reduce, A.ArgMin)):
            op = exp.op if isinstance(exp, A.Reduce) else "argmin"
            em.emit(
                f"auto {name} = device_reduce_{_c_ident(op)}"
                f"({self._src_ptr(exp.src)});  // tree reduction kernel"
            )
            return
        if isinstance(exp, A.Index):
            idx = [str(i) for i in exp.indices]
            em.emit(f"auto {name} = {self._access(exp.src, idx)};")
            return
        if isinstance(exp, (A.Iota, A.Replicate, A.Scratch)):
            b = binding_of(stmt.pattern[0])
            what = type(exp).__name__.lower()
            em.emit(f"// {what} {name} in {b.mem} -> {b.ixfn}")
            return
        if isinstance(exp, A.Lit):
            em.emit(f"{_CTYPE[exp.dtype]} {name} = {exp.value};")
            return
        if isinstance(exp, A.ScalarE):
            em.emit(f"long {name} = {exp.expr};")
            return
        if isinstance(exp, A.BinOp):
            em.emit(f"auto {name} = {_scalar(exp.x)} {_c_op(exp.op)} {_scalar(exp.y)};")
            return
        if isinstance(exp, A.UnOp):
            em.emit(f"auto {name} = {_c_unop(exp.op)}({_scalar(exp.x)});")
            return
        em.emit(f"// <{type(exp).__name__}> {name}")

    def _src_ptr(self, name: str) -> str:
        b = self.bindings[name]
        return b.mem

    # ------------------------------------------------------------------
    def gen_update(self, stmt: A.Let, exp: A.Update, em: _Emitter) -> None:
        result = binding_of(stmt.pattern[0])
        if isinstance(exp.spec, A.PointSpec):
            idx = [str(i) for i in exp.spec.indices]
            em.emit(
                f"{self._access_via(result, idx)} = {_scalar(exp.value)};"
            )
            return
        region = _ixfn_region_of_update(result, exp.spec)
        vb = self.bindings.get(exp.value) if isinstance(exp.value, str) else None
        if vb is not None and vb.mem == result.mem and vb.ixfn == region:
            em.emit(
                f"// update {stmt.names[0]}[...] = {exp.value}: "
                "short-circuited, already in place"
            )
            return
        self._emit_copy_kernel(em, vb, MemBinding(result.mem, region),
                               f"update_{stmt.names[0]}")

    def gen_concat(self, stmt: A.Let, exp: A.Concat, em: _Emitter) -> None:
        dst = binding_of(stmt.pattern[0])
        offset: SymExpr = SymExpr.const(0)
        for o in exp.srcs:
            ob = self.bindings[o]
            rows = ob.ixfn.shape[0]
            region = dst.ixfn.slice_triplets(
                [(offset, rows, SymExpr.const(1))]
                + [(SymExpr.const(0), d, SymExpr.const(1)) for d in dst.ixfn.shape[1:]]
            )
            if ob.mem == dst.mem and ob.ixfn == region:
                em.emit(f"// concat piece {o}: short-circuited, already in place")
            else:
                self._emit_copy_kernel(
                    em, ob, MemBinding(dst.mem, region), f"concat_{o}"
                )
            offset = offset + rows

    def gen_copy(self, stmt: A.Let, exp: A.Copy, em: _Emitter) -> None:
        src = self.bindings[exp.src]
        dst = binding_of(stmt.pattern[0])
        if src.mem == dst.mem and src.ixfn == dst.ixfn:
            em.emit(f"// copy {stmt.names[0]} = {exp.src}: short-circuited, no-op")
            return
        self._emit_copy_kernel(em, src, dst, f"copy_{stmt.names[0]}")

    def _access_via(self, binding: MemBinding, indices: List[str]) -> str:
        return f"{binding.mem}[{self._flat(binding, indices)}]"

    def _emit_copy_kernel_inline_comment(
        self, k: _Emitter, res: str, dst: MemBinding, tvar: str
    ) -> None:
        """Per-thread array result copied into its row (not short-circuited)."""
        rb = self.bindings[res]
        k.emit(
            f"// per-thread copy: {res} ({rb.mem}) -> row {tvar} of {dst.mem}"
        )

    def _emit_copy_kernel(
        self,
        em: _Emitter,
        src: Optional[MemBinding],
        dst: MemBinding,
        label: str,
    ) -> None:
        self.kernel_count += 1
        kname = f"k{self.kernel_count}_{_c_ident(label)}"
        k = _Emitter()
        rank = dst.ixfn.rank
        idxs = [f"i{d}" for d in range(rank)]
        k.emit(f"__global__ void {kname}(...) {{")
        k.indent += 1
        for d, idx in enumerate(idxs):
            k.emit(f"long {idx} = blockIdx_{d} * blockDim_{d} + threadIdx_{d};")
        src_txt = self._access_via(src, idxs) if src is not None else "..."
        k.emit(f"{self._access_via(dst, idxs)} = {src_txt};")
        k.indent -= 1
        k.emit("}")
        self.kernels.append(k)
        em.emit(f"{kname}<<<grid, block>>>(...);  // copy kernel")

    # ------------------------------------------------------------------
    def gen_map(self, stmt: A.Let, exp: A.Map, em: _Emitter) -> None:
        self.kernel_count += 1
        kname = f"k{self.kernel_count}_map_{_c_ident(stmt.names[0])}"
        k = _Emitter()
        k.emit(f"__global__ void {kname}(...) {{")
        k.indent += 1
        for rec in stmt.fused:
            # Fusion provenance: the producer map was inlined here and its
            # intermediate never reaches global memory.
            k.emit(
                f"// fused producer {rec.producer}: body inlined at "
                f"{rec.reads} read site(s), intermediate block {rec.mem} "
                f"({rec.width} x {rec.elem_bytes}B) elided"
            )
        tvar = exp.lam.params[0]
        k.emit(f"long {tvar} = blockIdx_x * blockDim_x + threadIdx_x;")
        k.emit(f"if ({tvar} >= {exp.width}) return;")
        # Record result bindings first: the body's implicit writes target them.
        self._record(stmt)
        self.gen_block(exp.lam.body, k)
        for pe, res in zip(stmt.pattern, exp.lam.body.result):
            b = binding_of(pe)
            if b is None:
                continue
            region = b.ixfn.fix_dim(0, SymExpr.var(tvar))
            rb = self.bindings.get(res)
            if rb is not None and rb.mem == b.mem and rb.ixfn == region:
                k.emit(
                    f"// implicit write of {res}: short-circuited, already in place"
                )
            elif rb is None:
                # Scalar per-thread result: one flat-indexed store.
                k.emit(
                    f"{self._access_via(MemBinding(b.mem, region), [])} = {res};"
                    "  // implicit result write"
                )
            else:
                self._emit_copy_kernel_inline_comment(k, res, b, tvar)
        k.indent -= 1
        k.emit("}")
        self.kernels.append(k)
        em.emit(f"{kname}<<<ceil({exp.width}/256.0), 256>>>(...);")


def _scalar(op: A.Operand) -> str:
    if isinstance(op, bool):
        return "true" if op else "false"
    if isinstance(op, float):
        return f"{op}f"
    return str(op)


def _c_op(op: str) -> str:
    return {"min": "/*min*/", "max": "/*max*/", "pow": "/*pow*/",
            "&&": "&&", "||": "||"}.get(op, op)


def _c_unop(op: str) -> str:
    return {"neg": "-", "i64": "(long)", "f32": "(float)",
            "f64": "(double)"}.get(op, op)


def _c_ident(text: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in text)


def generate_code(fun: A.Fun) -> str:
    """Emit pseudo-CUDA for a memory-annotated function."""
    return CodeGen(fun).generate()
