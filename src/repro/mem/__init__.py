"""The memory pipeline: introducing and executing memory in the IR.

Following paper section IV, the source program is memory-agnostic; this
package adds a *notion of memory* as annotations on pattern elements:

* :mod:`repro.mem.memir` -- the :class:`MemBinding` (memory block + index
  function) attached to every array-typed pattern element, plus helpers.
* :mod:`repro.mem.introduce` -- the memory introduction pass: ``alloc``
  statements for fresh arrays, transformed index functions for O(1)
  change-of-layout operations, anti-unification (least general
  generalization) for ``if``/``loop`` results that may live in different
  memory blocks, with copy-insertion fallback.
* :mod:`repro.mem.hoist` -- allocation hoisting, the enabler for the
  short-circuiting pass's property (2) (destination memory in scope at the
  candidate's definition point).
* :mod:`repro.mem.exec` -- the memory-IR executor: runs annotated programs
  on flat NumPy buffers (this is our "GPU"), counting memory traffic and
  flops per kernel.  A copy whose source binding equals its destination
  binding is a no-op -- which is all short-circuiting needs to change.
* :mod:`repro.mem.stats` -- traffic/kernel statistics consumed by the
  simulated-GPU cost model in :mod:`repro.gpu`.
"""

from repro.mem.memir import MemBinding, MEM_TYPE
from repro.mem.introduce import introduce_memory
from repro.mem.hoist import hoist_allocations
from repro.mem.exec import MemExecutor, run_mem_fun
from repro.mem.stats import ExecStats, KernelStat

__all__ = [
    "MemBinding",
    "MEM_TYPE",
    "introduce_memory",
    "hoist_allocations",
    "MemExecutor",
    "run_mem_fun",
    "ExecStats",
    "KernelStat",
]
