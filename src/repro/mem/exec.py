"""Memory-IR executor: runs annotated programs on flat buffers.

This is the reproduction's GPU.  Arrays are (memory block, concrete index
function) pairs; every data movement -- explicit ``copy``/``concat``/
``update`` statements and the implicit per-thread result write of a
``map`` -- goes through :meth:`MemExecutor._copy_region`, which has exactly
one optimization rule:

    if the source already lives at the destination (same block, same
    index function), the copy is a no-op.

Short-circuiting only ever changes memory annotations, so this single rule
is what turns the optimization into measured savings, in both executor
modes:

* ``mode="real"``  -- buffers are real NumPy arrays; results are
  bit-compared against the reference interpreter by the test suite.
* ``mode="dry"``   -- buffers are sizes only; ``map`` bodies execute once
  (at a representative thread index) and their traffic is scaled by the
  width.  This is how paper-scale datasets (up to 32768 x 32768) are
  measured without allocating terabytes.

Kernel accounting mirrors a GPU host program: each ``map`` statement
execution is one kernel launch (a map inside a sequential loop launches
per iteration); explicit copies are their own kernels; scalar host code is
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.lmad import IndexFn
from repro.symbolic import SymExpr

from repro.ir import ast as A
from repro.ir.interp import Interpreter, InterpError, eval_sym
from repro.ir.types import ArrayType, DTYPE_INFO
from repro.mem.memir import MemBinding, binding_of, param_mem_name
from repro.mem.stats import ExecStats, KernelStat


class MemCheckError(InterpError):
    """Base class for violations found by the debug shadow memory."""


class OutOfBoundsError(MemCheckError):
    """An access touched offsets outside its memory block.

    NumPy would silently wrap negative offsets, so without this check a
    mis-rebased index function can read the *end* of a buffer and still
    validate by luck.
    """


class UninitializedReadError(MemCheckError):
    """A scalar read consumed memory nothing ever wrote.

    Copies of partially-initialized buffers are legal (double-buffered
    loops do this constantly); the shadow bit simply travels with the
    data, and only a scalar *use* of a poisoned element is an error.
    """


@dataclass(frozen=True)
class MemRef:
    """Runtime value of a memory-block binding (existential or concrete)."""

    name: str


@dataclass(frozen=True)
class RuntimeArray:
    """An array value at run time: block name + fully concrete index fn."""

    mem: str
    ixfn: IndexFn
    dtype: str

    @property
    def itemsize(self) -> int:
        return DTYPE_INFO[self.dtype][1]

    def size(self) -> int:
        n = self.ixfn.size().as_int()
        assert n is not None
        return n

    def nbytes(self) -> int:
        return self.size() * self.itemsize

    def region(self, ixfn: IndexFn) -> "RuntimeArray":
        return RuntimeArray(self.mem, ixfn, self.dtype)


class MemExecutor:
    """Execute one memory-annotated function."""

    def __init__(
        self,
        fun: A.Fun,
        mode: str = "real",
        shared_memory_model: bool = False,
        loop_sample: Optional[int] = None,
        debug: bool = False,
        vectorize: bool = True,
        pool=None,
        offs_cache: Optional[Dict[Tuple[str, IndexFn], np.ndarray]] = None,
        vec_plans: Optional[Dict[int, bool]] = None,
        native=None,
    ):
        if mode not in ("real", "dry"):
            raise ValueError(f"unknown mode {mode!r}")
        self.fun = fun
        self.mode = mode
        #: Dispatch eligible real-mode ``map`` statements to the batched
        #: NumPy engine (repro.mem.vectorize).  Per-element interpretation
        #: remains the semantic reference; debug mode always interprets so
        #: shadow-memory checks see every access.
        self.vectorize = vectorize and mode == "real" and not debug
        #: Optional :class:`repro.backend.engine.NativeEngine` -- the
        #: compiled-C tier, attempted before the vectorized dispatch.
        #: Off by default on bare executors (the differential tests pin
        #: exact vec/interp launch counts); :class:`repro.runtime.
        #: Program` wires a shared engine in for warm serving.
        self._native = native if self.vectorize else None
        #: Shadow-memory checking: every block gets a parallel boolean
        #: "was this element ever written" array; reads and writes are
        #: bounds-checked against the block extent.  Copies *propagate*
        #: the shadow bits (valgrind-style) so double-buffering partially
        #: initialized arrays stays legal; only scalar uses of poisoned
        #: elements raise.  Zero overhead when off.
        #:
        #: In dry mode there are no buffers to shadow, so ``debug=True``
        #: degrades to *bounds-only* checking: every region access is
        #: validated against its block extent analytically (O(rank) LMAD
        #: span, no offset enumeration), which is what lets paper-scale
        #: datasets be checked without allocating terabytes.
        #: Initialization checking needs real data and stays real-only.
        self.debug = debug
        self._shadow: Dict[str, np.ndarray] = {}
        #: When True, arrays allocated inside kernels are treated as
        #: GPU shared memory (free traffic).  The default models Futhark's
        #: *expanded allocations*: per-thread arrays live in global memory,
        #: which is what makes the mapnest implicit-copy elision profitable
        #: (LBM / LocVolCalib in the paper).
        self.shared_memory_model = shared_memory_model
        #: In dry mode: sample at most this many iterations of sequential
        #: loops *inside kernels* and extrapolate the traffic (per-thread
        #: work is uniform or linearly varying in these benchmarks).  None
        #: disables sampling (exact counts).
        self.loop_sample = loop_sample
        self.mem: Dict[str, object] = {}  # name -> ndarray (real) | int (dry)
        self.stats = ExecStats()
        self._kernel_stack: List[KernelStat] = []
        self._alloc_counter = 0
        # Live-allocation accounting (the runtime high-water mark that
        # repro.reuse.footprint predicts statically).  Lifetimes follow
        # the Let.mem_frees annotations at host level; blocks allocated
        # inside a kernel die wholesale when the outermost map ends; and
        # blocks born inside a host loop die at each iteration's end
        # unless the carried state still reaches them.
        self._live_bytes = 0
        self._peak_bytes = 0
        # Per-space shadow of the live/peak counters (repro.mem.spaces):
        # the totals above stay authoritative; these partition them.
        self._live_by_space: Dict[str, int] = {}
        self._peak_by_space: Dict[str, int] = {}
        self._kernel_baseline_by_space: Dict[str, int] = {}
        # unique (run-time) block name -> memory space; parameter blocks
        # and anything absent default to "hbm".
        self._mem_space: Dict[str, str] = {}
        self._live_insts: Dict[str, Tuple[int, str]] = {}  # unique -> (nbytes, space)
        self._static_live: Dict[str, List[str]] = {}  # static -> uniques
        self._alloc_log: List[Tuple[str, str]] = []  # (static, unique)
        self._kernel_allocs: List[Tuple[str, str]] = []
        self._kernel_baseline = 0
        # Blocks allocated inside a kernel are thread-local (the GPU's
        # shared memory / registers): traffic to them is not DRAM traffic.
        self._local_mems: set = set()
        # Offset arrays depend only on the (fully concrete) index function,
        # so identical regions accessed across loop iterations share one
        # array.  Callers never mutate the result.  A Program serving the
        # same compiled function many times passes a shared dict so the
        # enumeration cost amortizes across calls (keys are deterministic:
        # the per-run unique block names repeat run to run).
        self._offs_cache: Dict[Tuple[str, IndexFn], np.ndarray] = (
            offs_cache if offs_cache is not None else {}
        )
        #: Pooled-buffer lease (repro.runtime.pool.PoolLease): real-mode
        #: allocations draw zero-filled buffers from it instead of paying
        #: a fresh np.zeros per call.  The lease's lifetime is the
        #: caller's concern -- buffers may be recycled once it closes, so
        #: outputs must be materialized first.
        self._pool = pool if mode == "real" else None
        #: Shared vectorization-plan dict (id(stmt) -> expressible?),
        #: again for cross-run amortization; None keeps a private one.
        self._vec_plans = vec_plans
        self._vec_engine = None  # lazily built repro.mem.vectorize.VecEngine
        # Static fused-producer plans per outermost map statement (see
        # _fused_plan); the subtree never changes after compilation.
        self._fused_cache: Dict[
            int, List[Tuple[A.FusedRecord, Tuple[SymExpr, ...]]]
        ] = {}

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def run(self, **inputs) -> Tuple[List[object], ExecStats]:
        env: Dict[str, object] = {}
        declared = {p.name for p in self.fun.params}
        for k, v in inputs.items():
            if k not in declared:
                env[k] = v
        for p in self.fun.params:
            if isinstance(p.type, ArrayType):
                self._bind_input_array(p, inputs, env)
            else:
                if p.name not in inputs:
                    raise InterpError(f"missing input {p.name!r}")
                env[p.name] = inputs[p.name]
        values = self.run_block(self.fun.body, env)
        self.stats.peak_bytes = self._peak_bytes
        self.stats.space_peak_bytes = dict(self._peak_by_space)
        return values, self.stats

    def _bind_input_array(self, p: A.Param, inputs, env) -> None:
        t = p.type
        assert isinstance(t, ArrayType)
        mem = param_mem_name(p.name)
        if self.mode == "real":
            if p.name not in inputs:
                raise InterpError(f"missing input {p.name!r}")
            arr = np.ascontiguousarray(
                inputs[p.name], dtype=DTYPE_INFO[t.dtype][0]
            )
            # Unify symbolic shape vars with the concrete input shape.
            for dim_expr, extent in zip(t.shape, arr.shape):
                fv = sorted(dim_expr.free_vars())
                if (
                    len(fv) == 1
                    and fv[0] not in env
                    and dim_expr == SymExpr.var(fv[0])
                ):
                    env[fv[0]] = int(extent)
            if self._pool is not None:
                # Input contents overwrite the whole buffer: skip the
                # zero fill, count the pool round trip like an alloc.
                buf, reused = self._pool.acquire(arr.size, t.dtype, zero=False)
                np.copyto(buf, arr.reshape(-1))
                self.mem[mem] = buf
                if reused:
                    self.stats.pool_hits += 1
                else:
                    self.stats.pool_misses += 1
            else:
                self.mem[mem] = arr.reshape(-1).copy()
            size = arr.size
            if self.debug:
                self._shadow[mem] = np.ones(arr.size, dtype=bool)
        else:
            size = eval_sym(t.size(), env)
            self.mem[mem] = size
        # Input blocks are live for the whole run (never freed).
        self._bump_live("hbm", size * DTYPE_INFO[t.dtype][1])
        ixfn = self._instantiate(IndexFn.row_major(t.shape), env)
        env[p.name] = RuntimeArray(mem, ixfn, t.dtype)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _instantiate(self, ixfn: IndexFn, env: Mapping[str, object]) -> IndexFn:
        subst = {}
        for v in ixfn.free_vars():
            if v not in env:
                raise InterpError(f"unbound variable {v!r} in index function")
            val = env[v]
            if isinstance(val, np.generic):
                val = val.item()
            if not isinstance(val, int):
                raise InterpError(f"index-function var {v!r} is not an int")
            subst[v] = val
        return ixfn.substitute(subst) if subst else ixfn

    def _fresh_buffer(self, size: int, dtype: str) -> np.ndarray:
        """A zero-filled flat buffer: pooled when leased, np.zeros else.

        Pooled buffers are zero-filled on acquisition, so the two paths
        are indistinguishable to the program -- the differential tests
        pin outputs and traffic signatures bit-identical either way.
        """
        if self._pool is not None:
            buf, reused = self._pool.acquire(size, dtype)
            if reused:
                self.stats.pool_hits += 1
            else:
                self.stats.pool_misses += 1
            return buf
        return np.zeros(size, dtype=DTYPE_INFO[dtype][0])

    def _resolve_mem(self, name: str, env: Mapping[str, object]) -> str:
        seen = set()
        while name in env and isinstance(env[name], MemRef) and name not in seen:
            seen.add(name)
            name = env[name].name
        if name not in self.mem:
            raise InterpError(f"unknown memory block {name!r}")
        return name

    # ------------------------------------------------------------------
    # Footprint accounting
    # ------------------------------------------------------------------
    def _bump_live(self, space: str, delta: int) -> None:
        self._live_bytes += delta
        if self._live_bytes > self._peak_bytes:
            self._peak_bytes = self._live_bytes
        live = self._live_by_space.get(space, 0) + delta
        self._live_by_space[space] = live
        if live > self._peak_by_space.get(space, 0):
            self._peak_by_space[space] = live

    def _space_of(self, mem: str) -> str:
        return self._mem_space.get(mem, "hbm")

    def _note_alloc(
        self, static: str, unique: str, nbytes: int, space: str = "hbm"
    ) -> None:
        self._bump_live(space, nbytes)
        self._mem_space[unique] = space
        self._live_insts[unique] = (nbytes, space)
        self._static_live.setdefault(static, []).append(unique)
        self._alloc_log.append((static, unique))
        if self._kernel_stack:
            self._kernel_allocs.append((static, unique))

    def _note_free_unique(self, static: str, unique: str) -> None:
        inst = self._live_insts.pop(unique, None)
        if inst is None:
            return
        nbytes, space = inst
        self._bump_live(space, -nbytes)
        lst = self._static_live.get(static)
        if lst and unique in lst:
            lst.remove(unique)

    def _note_free_static(self, static: str) -> None:
        for unique in list(self._static_live.get(static, ())):
            self._note_free_unique(static, unique)

    def _binding_value(
        self, pe: A.PatElem, env: Mapping[str, object]
    ) -> RuntimeArray:
        b = binding_of(pe)
        if b is None:
            raise InterpError(f"array {pe.name} lacks a memory binding")
        assert isinstance(pe.type, ArrayType)
        return self._binding_to_value(b, pe.type.dtype, env)

    def _binding_to_value(
        self, b: MemBinding, dtype: str, env: Mapping[str, object]
    ) -> RuntimeArray:
        mem = self._resolve_mem(b.mem, env)
        return RuntimeArray(mem, self._instantiate(b.ixfn, env), dtype)

    def _offsets(self, arr: RuntimeArray) -> np.ndarray:
        key = (arr.mem, arr.ixfn)
        offs = self._offs_cache.get(key)
        if offs is None:
            offs = arr.ixfn.gather_offsets({})
            self._offs_cache[key] = offs
        return offs

    def _read(self, arr: RuntimeArray) -> np.ndarray:
        buf = self.mem[arr.mem]
        assert isinstance(buf, np.ndarray)
        offs = self._offsets(arr)
        if self.debug:
            self._check_bounds(arr.mem, offs)
        return buf[offs]

    def _write(self, arr: RuntimeArray, data) -> None:
        buf = self.mem[arr.mem]
        assert isinstance(buf, np.ndarray)
        offs = self._offsets(arr)
        if self.debug:
            self._check_bounds(arr.mem, offs)
            sh = self._shadow.get(arr.mem)
            if sh is not None:
                sh[offs] = True
        buf[offs] = data

    # ------------------------------------------------------------------
    # Debug shadow memory
    # ------------------------------------------------------------------
    def _check_bounds(self, mem: str, offs) -> None:
        buf = self.mem[mem]
        size = buf.size if isinstance(buf, np.ndarray) else int(buf)
        offs = np.asarray(offs)
        if offs.size and (int(offs.min()) < 0 or int(offs.max()) >= size):
            raise OutOfBoundsError(
                f"access to block {mem!r} touches offsets "
                f"[{int(offs.min())}, {int(offs.max())}], outside [0, {size})"
            )

    def _check_defined(self, mem: str, offs, what: str) -> None:
        sh = self._shadow.get(mem)
        if sh is None:
            return
        offs = np.asarray(offs)
        bad = ~sh[offs]
        if np.any(bad):
            first = int(np.asarray(offs).reshape(-1)[bad.reshape(-1).argmax()])
            raise UninitializedReadError(
                f"{what} reads uninitialized element(s) of block {mem!r} "
                f"(first poisoned offset: {first})"
            )

    def _check_region(self, arr: RuntimeArray) -> None:
        """Dry-mode bounds check: analytic extent of a region access.

        Real mode checks the enumerated offsets; dry mode cannot afford
        enumeration at paper scale, but the reachable-offset set of a
        single concrete LMAD has a closed-form envelope: the offset plus,
        per dimension, ``(shape-1)*stride`` added to the max (positive
        stride) or the min (negative stride, i.e. a reversal).  Composed
        index functions (no single-LMAD form) are skipped -- their final
        offsets are not an affine image of the index space.
        """
        bounds = _region_bounds(arr.ixfn)
        if bounds is None:
            return
        lo, hi = bounds
        buf = self.mem[arr.mem]
        size = buf.size if isinstance(buf, np.ndarray) else int(buf)
        if lo < 0 or hi >= size:
            raise OutOfBoundsError(
                f"region of block {arr.mem!r} spans offsets [{lo}, {hi}], "
                f"outside [0, {size})"
            )

    def _point_write_check(self, mem: str, off: int) -> None:
        self._check_bounds(mem, np.array([off]))
        sh = self._shadow.get(mem)
        if sh is not None:
            sh[off] = True

    def _point_read_check(self, mem: str, off: int, what: str) -> None:
        self._check_bounds(mem, np.array([off]))
        self._check_defined(mem, np.array([off]), what)

    # ------------------------------------------------------------------
    # Kernel accounting
    # ------------------------------------------------------------------
    def _kernel(self, stmt: A.Let, kind: str, label: str) -> KernelStat:
        return self.stats.kernel(id(stmt), kind, label)

    def _current_kernel(self) -> Optional[KernelStat]:
        return self._kernel_stack[-1] if self._kernel_stack else None

    def _count_read(self, nbytes: int, space: str = "hbm") -> None:
        ks = self._current_kernel()
        if ks is not None:
            ks.note_read(nbytes, space)

    def _count_write(self, nbytes: int, space: str = "hbm") -> None:
        ks = self._current_kernel()
        if ks is not None:
            ks.note_written(nbytes, space)

    def _count_flop(self, n: int = 1) -> None:
        ks = self._current_kernel()
        if ks is not None:
            ks.flops += n

    # ------------------------------------------------------------------
    # The one copy rule
    # ------------------------------------------------------------------
    def _copy_region(
        self,
        src: RuntimeArray,
        dst: RuntimeArray,
        stmt: A.Let,
        kind: str,
    ) -> None:
        if src.mem == dst.mem and src.ixfn == dst.ixfn:
            self.stats.elided_copies += 1
            self.stats.elided_bytes += src.nbytes() + dst.nbytes()
            return
        ks = self._current_kernel()
        if ks is None:
            ks = self._kernel(stmt, kind, f"{kind}:{'/'.join(stmt.names)}")
            ks.launches += 1
        if src.mem not in self._local_mems:
            ks.note_read(src.nbytes(), self._space_of(src.mem))
        if dst.mem not in self._local_mems:
            ks.note_written(dst.nbytes(), self._space_of(dst.mem))
        if self.mode == "real":
            offs = self._offsets(dst)
            if offs.size:
                data = self._read(src)
                self._write(dst, data.reshape(offs.shape))
                if self.debug:
                    # Copies move the shadow bits with the data: copying
                    # poison is legal, consuming it later is the error.
                    ssh = self._shadow.get(src.mem)
                    dsh = self._shadow.get(dst.mem)
                    if ssh is not None and dsh is not None:
                        dsh[offs] = ssh[self._offsets(src)].reshape(offs.shape)
        elif self.debug:
            self._check_region(src)
            self._check_region(dst)

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def run_block(self, block: A.Block, env: Dict[str, object]) -> List[object]:
        for stmt in block.stmts:
            self.exec_stmt(stmt, env)
            if stmt.mem_frees and not self._kernel_stack:
                # Host-level lifetime ends (repro.reuse.liveranges);
                # inside a kernel, blocks die at the outermost map's end.
                for m in stmt.mem_frees:
                    self._note_free_static(m)
        return [self._resolve_result(r, env) for r in block.result]

    def _resolve_result(self, name: str, env: Dict[str, object]):
        if name in env:
            return env[name]
        if name in self.mem:
            return MemRef(name)
        raise InterpError(f"unbound result {name!r}")

    def exec_stmt(self, stmt: A.Let, env: Dict[str, object]) -> None:
        exp = stmt.exp

        if isinstance(exp, A.Alloc):
            size = eval_sym(exp.size, env)
            name = stmt.names[0]
            # Each execution creates a *fresh* block: an alloc inside a loop
            # body must not alias the previous iteration's block, or
            # double-buffered loops would read their own writes.
            self._alloc_counter += 1
            unique = f"{name}@{self._alloc_counter}"
            if self.mode == "real":
                self.mem[unique] = self._fresh_buffer(size, exp.dtype)
                if self.debug:
                    self._shadow[unique] = np.zeros(size, dtype=bool)
            else:
                self.mem[unique] = size
            if self._kernel_stack and self.shared_memory_model:
                self._local_mems.add(unique)
            env[name] = MemRef(unique)
            self.stats.alloc_count += 1
            self.stats.alloc_bytes += size * DTYPE_INFO[exp.dtype][1]
            self._note_alloc(
                name, unique, size * DTYPE_INFO[exp.dtype][1], exp.space
            )
            return

        if isinstance(exp, (A.Lit, A.ScalarE, A.BinOp, A.UnOp)):
            env[stmt.names[0]] = self._scalar_exp(exp, env)
            return

        if isinstance(exp, A.VarRef):
            pe = stmt.pattern[0]
            if pe.is_array():
                env[pe.name] = self._binding_value(pe, env)
            else:
                env[pe.name] = env[exp.name]
            return

        if isinstance(exp, (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse)):
            # Pure change of layout: the annotation is authoritative (it may
            # have been rebased by short-circuiting); no data moves.
            env[stmt.names[0]] = self._binding_value(stmt.pattern[0], env)
            return

        if isinstance(exp, (A.Iota, A.Replicate, A.Scratch)):
            dest = self._binding_value(stmt.pattern[0], env)
            ks = self._current_kernel()
            if ks is None:
                ks = self._kernel(stmt, "fill", f"fill:{stmt.names[0]}")
                if not isinstance(exp, A.Scratch):
                    ks.launches += 1
            if not isinstance(exp, A.Scratch):
                if dest.mem not in self._local_mems:
                    ks.note_written(dest.nbytes(), self._space_of(dest.mem))
                if self.mode != "real" and self.debug:
                    self._check_region(dest)
                if self.mode == "real":
                    if isinstance(exp, A.Iota):
                        n = eval_sym(exp.n, env)
                        self._write(dest, np.arange(n, dtype=DTYPE_INFO[exp.dtype][0]))
                    else:
                        self._write(
                            dest,
                            np.full(
                                self._offsets(dest).shape,
                                self._scalar_operand(exp.value, env),
                            ),
                        )
            # Scratch is *uninitialized* memory: it must not write anything.
            # (Zero-filling a scratch that short-circuiting re-homed into a
            # live destination region would clobber real data; fresh alloc
            # buffers are already zeroed, matching the reference
            # interpreter's deterministic "uninitialized" contents.)
            env[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Copy):
            src = env[exp.src]
            assert isinstance(src, RuntimeArray)
            dest = self._binding_value(stmt.pattern[0], env)
            self._copy_region(src, dest, stmt, "copy")
            env[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Concat):
            dest = self._binding_value(stmt.pattern[0], env)
            offset = 0
            for s in exp.srcs:
                src = env[s]
                assert isinstance(src, RuntimeArray)
                rows = src.ixfn.shape[0].as_int()
                assert rows is not None
                region_ixfn = dest.ixfn.slice_triplets(
                    [(offset, rows, 1)]
                    + [
                        (0, d, 1)
                        for d in [
                            s_.as_int() for s_ in dest.ixfn.shape[1:]
                        ]
                    ]
                )
                self._copy_region(src, dest.region(region_ixfn), stmt, "concat")
                offset += rows
            env[stmt.names[0]] = dest
            return

        if isinstance(exp, A.Index):
            src = env[exp.src]
            assert isinstance(src, RuntimeArray)
            idx = [eval_sym(i, env) for i in exp.indices]
            if src.mem not in self._local_mems:
                self._count_read(src.itemsize, self._space_of(src.mem))
            if self.mode == "real":
                off = src.ixfn.apply_concrete(idx, {})
                if self.debug:
                    self._point_read_check(
                        src.mem, off, f"{stmt.names[0]} = {exp.src}{idx}"
                    )
                buf = self.mem[src.mem]
                env[stmt.names[0]] = buf[off]
            else:
                if self.debug:
                    off = src.ixfn.apply_concrete(idx, {})
                    self._check_bounds(src.mem, np.array([off]))
                env[stmt.names[0]] = _dummy(src.dtype)
            return

        if isinstance(exp, A.Update):
            self._exec_update(stmt, exp, env)
            return

        if isinstance(exp, A.Map):
            self._exec_map(stmt, exp, env)
            return

        if isinstance(exp, A.Loop):
            self._exec_loop(stmt, exp, env)
            return

        if isinstance(exp, A.If):
            cond = self._scalar_operand(exp.cond, env)
            block = exp.then_block if cond else exp.else_block
            vals = self.run_block(block, dict(env))
            self._bind_compound_results(stmt, vals, env)
            return

        if isinstance(exp, (A.Reduce, A.ArgMin)):
            src = env[exp.src]
            assert isinstance(src, RuntimeArray)
            ks = self._current_kernel()
            if ks is None:
                ks = self._kernel(stmt, "reduce", f"reduce:{stmt.names[0]}")
                ks.launches += 1
            if src.mem not in self._local_mems:
                ks.note_read(src.nbytes(), self._space_of(src.mem))
                ks.bytes_written += src.itemsize
            ks.flops += src.size()
            if self.mode == "real":
                if self.debug:
                    self._check_defined(
                        src.mem, self._offsets(src),
                        f"{type(exp).__name__.lower()} of {exp.src!r}",
                    )
                data = self._read(src)
                if isinstance(exp, A.ArgMin):
                    i = int(np.argmin(data))
                    env[stmt.names[0]] = data.reshape(-1)[i]
                    env[stmt.names[1]] = i
                elif exp.op == "+":
                    env[stmt.names[0]] = data.sum(dtype=data.dtype)
                elif exp.op == "min":
                    env[stmt.names[0]] = data.min()
                else:
                    env[stmt.names[0]] = data.max()
            else:
                if self.debug:
                    self._check_region(src)
                env[stmt.names[0]] = _dummy(src.dtype)
                if isinstance(exp, A.ArgMin):
                    env[stmt.names[1]] = 0
            return

        raise InterpError(f"unknown expression {type(exp).__name__}")

    # ------------------------------------------------------------------
    def _exec_update(self, stmt: A.Let, exp: A.Update, env) -> None:
        result = self._binding_value(stmt.pattern[0], env)
        spec = exp.spec
        if isinstance(spec, A.PointSpec):
            idx = [eval_sym(i, env) for i in spec.indices]
            is_global = result.mem not in self._local_mems
            ks = self._current_kernel()
            if ks is None:
                ks = self._kernel(stmt, "update", f"update:{stmt.names[0]}")
                ks.launches += 1
            if is_global:
                ks.note_written(result.itemsize, self._space_of(result.mem))
            if self.mode == "real":
                off = result.ixfn.apply_concrete(idx, {})
                if self.debug:
                    self._point_write_check(result.mem, off)
                buf = self.mem[result.mem]
                buf[off] = self._scalar_operand(exp.value, env)
            elif self.debug:
                off = result.ixfn.apply_concrete(idx, {})
                self._check_bounds(result.mem, np.array([off]))
            env[stmt.names[0]] = result
            return
        if isinstance(spec, A.TripletSpec):
            trips = [
                (eval_sym(a, env), eval_sym(b, env), eval_sym(c, env))
                for a, b, c in spec.triplets
            ]
            region = result.region(result.ixfn.slice_triplets(trips))
        else:
            assert isinstance(spec, A.LmadSpec)
            inst = spec.lmad.substitute(
                {
                    v: env[v] if not isinstance(env[v], np.generic) else env[v].item()
                    for v in spec.lmad.free_vars()
                }
            )
            region = result.region(result.ixfn.lmad_slice(inst))
        value = env[exp.value] if isinstance(exp.value, str) else None
        if not isinstance(value, RuntimeArray):
            raise InterpError("slice update value must be an array variable")
        self._copy_region(value, region, stmt, "update")
        env[stmt.names[0]] = result

    # ------------------------------------------------------------------
    def _fused_plan(
        self, stmt: A.Let
    ) -> List[Tuple[A.FusedRecord, Tuple[SymExpr, ...]]]:
        """Fused producers in a launch's subtree, with thread multipliers.

        A record on the launched map itself elides one intermediate per
        launch; a record nested under further maps/loops elides one per
        enclosing thread/iteration, so each record carries the widths and
        trip counts on its path (``if`` branches are assumed taken --
        fusion under data-dependent branches is counted optimistically).
        Counted once per outermost launch, *before* tier dispatch, so the
        vectorized, interpreted and dry paths agree exactly.
        """
        plan = self._fused_cache.get(id(stmt))
        if plan is None:
            plan = []

            def walk(s: A.Let, factors: Tuple[SymExpr, ...]) -> None:
                for rec in s.fused:
                    plan.append((rec, factors))
                exp = s.exp
                if isinstance(exp, A.Map):
                    for sub in exp.lam.body.stmts:
                        walk(sub, factors + (exp.width,))
                elif isinstance(exp, A.Loop):
                    for sub in exp.body.stmts:
                        walk(sub, factors + (exp.count,))
                elif isinstance(exp, A.If):
                    for blk in (exp.then_block, exp.else_block):
                        for sub in blk.stmts:
                            walk(sub, factors)

            walk(stmt, ())
            self._fused_cache[id(stmt)] = plan
        return plan

    def _exec_map(self, stmt: A.Let, exp: A.Map, env) -> None:
        width = eval_sym(exp.width, env)
        dests = [
            self._binding_value(pe, env) if pe.is_array() else None
            for pe in stmt.pattern
        ]
        # A map nested inside another map is part of the same GPU kernel
        # (a multi-dimensional grid), not a separate launch.
        nested = bool(self._kernel_stack)
        ks = self._kernel(stmt, "map", f"map:{'/'.join(stmt.names)}")
        if not nested:
            ks.launches += 1
            for rec, factors in self._fused_plan(stmt):
                self.stats.fused_kernels += 1
                try:
                    n = eval_sym(rec.width, env)
                    for f in factors:
                        n *= eval_sym(f, env)
                except (InterpError, KeyError):
                    continue  # width not host-evaluable: count fusion only
                # The elided round trip: the producer's write of the
                # intermediate plus the consumer's read of it.  A
                # duplicated record (multi-consumer fusion) claims only
                # its own elided read -- the write is claimed once, by
                # the primary record, so the total over a (producer,
                # mem) group is (1 write + k reads) * n, never more.
                per_elem = (1 if rec.duplicated else 2) * rec.elem_bytes
                self.stats.bytes_elided_fusion += per_elem * n
            self._kernel_baseline = self._live_bytes
            self._kernel_baseline_by_space = dict(self._live_by_space)
            self._kernel_allocs = []

        def run_thread(i: int) -> None:
            child = dict(env)
            child[exp.lam.params[0]] = i
            vals = self.run_block(exp.lam.body, child)
            for dest, val in zip(dests, vals):
                if dest is None:
                    continue
                region = dest.region(dest.ixfn.fix_dim(0, i))
                if isinstance(val, RuntimeArray):
                    self._copy_region(val, region, stmt, "map")
                else:
                    self._count_write(
                        dest.itemsize, self._space_of(dest.mem)
                    )
                    if self.mode == "real":
                        buf = self.mem[dest.mem]
                        off = region.ixfn.apply_concrete(
                            [0] * region.ixfn.rank, {}
                        ) if region.ixfn.rank else region.ixfn.apply_concrete([], {})
                        if self.debug:
                            self._point_write_check(dest.mem, off)
                        buf[off] = val
                    elif self.debug:
                        self._check_region(region)

        self._kernel_stack.append(ks)
        try:
            if self.mode == "real":
                ran_native = False
                if (
                    self._native is not None
                    and not nested
                    and width > 0
                ):
                    ran_native = self._native.try_run_map(
                        self, stmt, exp, env, width, dests
                    )
                ran_vec = False
                if ran_native:
                    self.stats.native_launches += 1
                elif self.vectorize and width > 0:
                    if self._vec_engine is None:
                        from repro.mem.vectorize import VecEngine

                        self._vec_engine = VecEngine(
                            self, plans=self._vec_plans
                        )
                    ran_vec = self._vec_engine.try_run_map(
                        stmt, exp, env, width, dests
                    )
                if ran_vec:
                    self.stats.vec_launches += 1
                elif not ran_native and width > 0:
                    self.stats.interp_launches += 1
                    for i in range(width):
                        run_thread(i)
            else:
                # Dry mode: one representative thread, traffic scaled --
                # but bounds are checked analytically over the *whole*
                # destination region, not just the sampled thread's slice.
                if self.debug:
                    for dest in dests:
                        if dest is not None:
                            self._check_region(dest)
                if width > 0:
                    outer_stats = self.stats
                    sub = ExecStats()
                    self.stats = sub
                    sub_ks = sub.kernel(id(stmt), "map", ks.label)
                    self._kernel_stack.append(sub_ks)
                    live_before = dict(self._live_by_space)
                    try:
                        run_thread(width // 2)
                    finally:
                        self._kernel_stack.pop()
                        self.stats = outer_stats
                    # Every thread's scratch coexists for the kernel's
                    # duration: scale the representative thread's growth
                    # (per space, so the partitioned peaks scale exactly
                    # like the total).
                    for sp in set(self._live_by_space) | set(live_before):
                        growth = self._live_by_space.get(
                            sp, 0
                        ) - live_before.get(sp, 0)
                        if growth:
                            self._bump_live(sp, growth * (width - 1))
                    self.stats.merge_scaled(sub, width)
        finally:
            self._kernel_stack.pop()
            if not nested:
                # Kernel scratch dies wholesale at the outermost map's
                # end (per-thread arrays have no host-visible lifetime).
                for static, unique in self._kernel_allocs:
                    self._live_insts.pop(unique, None)
                    lst = self._static_live.get(static)
                    if lst and unique in lst:
                        lst.remove(unique)
                self._kernel_allocs = []
                self._live_bytes = self._kernel_baseline
                self._live_by_space = dict(self._kernel_baseline_by_space)

        for pe, dest in zip(stmt.pattern, dests):
            env[pe.name] = dest

    # ------------------------------------------------------------------
    def _exec_loop(self, stmt: A.Let, exp: A.Loop, env) -> None:
        count = eval_sym(exp.count, env)
        state = [env[init] for _, init in exp.carried]
        param_bindings: Dict[str, MemBinding] = getattr(
            exp.body, "param_bindings", {}
        )
        iterations = range(count)
        scale = 1.0
        if (
            self.mode == "dry"
            and self.loop_sample is not None
            and self._kernel_stack
            and count > self.loop_sample
        ):
            # Evenly spread samples give the right mean for uniform and
            # linearly-varying (triangular) per-iteration work.
            step = count / self.loop_sample
            iterations = [int(step * (k + 0.5)) for k in range(self.loop_sample)]
            scale = count / len(iterations)
        if scale != 1.0:
            # Counters flow through BOTH self.stats and the innermost
            # kernel object, so the sub-run swaps the stats AND pushes a
            # proxy kernel (same registry key) for correct attribution.
            outer_stats = self.stats
            cur = self._current_kernel()
            assert cur is not None and cur.key is not None
            sub = ExecStats()
            self.stats = sub
            proxy = sub.kernel(cur.key[0], cur.key[1], cur.label)
            self._kernel_stack.append(proxy)
            live_before = dict(self._live_by_space)
            try:
                self._run_loop_iterations(
                    iterations, stmt, exp, env, state, param_bindings
                )
            finally:
                self._kernel_stack.pop()
                self.stats = outer_stats
                self.stats.merge_scaled(sub, scale)
                # Extrapolate the sampled iterations' allocation growth
                # the same way merge_scaled extrapolates their traffic
                # (per space, mirroring the dry-map scaling).
                for sp in set(self._live_by_space) | set(live_before):
                    growth = self._live_by_space.get(
                        sp, 0
                    ) - live_before.get(sp, 0)
                    if growth:
                        self._bump_live(
                            sp, int(growth * scale) - growth
                        )
        else:
            self._run_loop_iterations(
                iterations, stmt, exp, env, state, param_bindings
            )
        self._bind_compound_results(stmt, state, env)

    def _run_loop_iterations(
        self, iterations, stmt, exp, env, state, param_bindings
    ) -> None:
        free_mark = len(self._alloc_log)
        for it in iterations:
            child = dict(env)
            child[exp.index] = it
            for (prm, _), val in zip(exp.carried, state):
                if isinstance(prm.type, ArrayType):
                    assert isinstance(val, RuntimeArray)
                    b = param_bindings.get(prm.name)
                    if b is not None and b.mem not in self.mem:
                        child[b.mem] = MemRef(val.mem)
                    if b is not None:
                        child[prm.name] = self._binding_to_value(
                            b, prm.type.dtype, child
                        )
                    else:
                        child[prm.name] = val
                else:
                    child[prm.name] = val
            new_state = self.run_block(exp.body, child)
            state[:] = new_state
            if not self._kernel_stack:
                # Blocks born inside a host loop die at the iteration's
                # end unless the carried state still reaches them (the
                # double-buffering rotation keeps exactly the live pair).
                reachable = set()
                for val in state:
                    if isinstance(val, RuntimeArray):
                        reachable.add(val.mem)
                    elif isinstance(val, MemRef):
                        n, seen = val.name, set()
                        while (
                            n in child
                            and isinstance(child[n], MemRef)
                            and n not in seen
                        ):
                            seen.add(n)
                            n = child[n].name
                        reachable.add(n)
                for static, unique in self._alloc_log[free_mark:]:
                    if unique in self._live_insts and unique not in reachable:
                        self._note_free_unique(static, unique)

    # ------------------------------------------------------------------
    def _bind_compound_results(self, stmt: A.Let, vals: List[object], env) -> None:
        """Bind an if/loop's results, including existential mem/scalars.

        Pattern layout: original results first, then appended existential
        pattern elements aligned with appended block results.
        """
        # First pass: non-array results (scalars, MemRefs for existentials).
        for pe, val in zip(stmt.pattern, vals):
            if not pe.is_array():
                env[pe.name] = val
        # Second pass: arrays, resolved through the now-bound existentials.
        for pe, val in zip(stmt.pattern, vals):
            if pe.is_array():
                if pe.mem is not None:
                    b = binding_of(pe)
                    if b.mem not in self.mem and b.mem not in env:
                        # Unopt pipeline: existential result memory binds to
                        # wherever the branch/loop actually left the value.
                        assert isinstance(val, RuntimeArray)
                        env[b.mem] = MemRef(val.mem)
                    env[pe.name] = self._binding_value(pe, env)
                else:
                    env[pe.name] = val

    # ------------------------------------------------------------------
    # Scalars
    # ------------------------------------------------------------------
    def _scalar_operand(self, op: A.Operand, env):
        if isinstance(op, str):
            return env[op]
        if isinstance(op, SymExpr):
            return eval_sym(op, env)
        return op

    def _scalar_exp(self, exp: A.Exp, env):
        if isinstance(exp, A.Lit):
            return np.dtype(DTYPE_INFO[exp.dtype][0]).type(exp.value)
        if isinstance(exp, A.ScalarE):
            return eval_sym(exp.expr, env)
        if isinstance(exp, A.BinOp):
            self._count_flop()
            return Interpreter._binop(
                exp.op,
                self._scalar_operand(exp.x, env),
                self._scalar_operand(exp.y, env),
            )
        assert isinstance(exp, A.UnOp)
        self._count_flop()
        return Interpreter._unop(exp.op, self._scalar_operand(exp.x, env))


def run_mem_fun(fun: A.Fun, mode: str = "real", debug: bool = False, **inputs):
    """One-shot convenience for executing a memory-annotated function."""
    return MemExecutor(fun, mode=mode, debug=debug).run(**inputs)


def _dummy(dtype: str):
    """Placeholder value for dry-mode reads (data never matters there).

    Floats use 1.0 so dummy divisions don't raise spurious 0/0 warnings;
    integers use 0 so dummy indices stay in bounds.
    """
    if dtype == "bool":
        return False
    if dtype == "i64":
        return 0
    return np.dtype(DTYPE_INFO[dtype][0]).type(1)


def _region_bounds(ixfn: IndexFn) -> Optional[Tuple[int, int]]:
    """Inclusive [min, max] flat offset a concrete single-LMAD region
    can touch, or None when no closed form applies (composed index
    functions, symbolic components, empty extents)."""
    lmad = ixfn.as_single()
    if lmad is None:
        return None
    off = lmad.offset.as_int()
    if off is None:
        return None
    lo = hi = off
    for d in lmad.dims:
        n = d.shape.as_int()
        s = d.stride.as_int()
        if n is None or s is None or n <= 0:
            return None
        span = (n - 1) * s
        if span >= 0:
            hi += span
        else:
            lo += span
    return lo, hi
