"""The memory introduction pass (paper section IV-C).

Walks a memory-agnostic function and:

* inserts an ``alloc`` statement before every statement that creates a
  fresh array (``iota``, ``scratch``, ``replicate``, ``copy``, ``concat``,
  ``map`` results), annotating the result with a row-major index function
  in the new block;
* gives change-of-layout results (slices, rearrange, reshape, reverse) the
  *same* memory block with a transformed index function -- O(1), no data
  movement;
* handles ``if`` results whose branches produce arrays in different blocks
  or layouts via anti-unification of index functions, extending the pattern
  with an existential memory binding and existential scalars for the
  generalized components (paper's ``let (zmem, a, b, z : ... @ zmem -> 0 +
  {(n:a)(m:b)}) = if c then (xmem, m, 1, x) else (ymem, 1, n, y)``);
  when anti-unification fails, copies are inserted to normalize;
* normalizes ``loop``-carried arrays to whole-buffer row-major form
  (inserting copies when necessary), binding each array parameter to an
  existential memory block that re-binds every iteration -- the natural
  expression of double buffering, and the copies that the short-circuiting
  pass later tries to remove.

The pass never changes program semantics; it only adds annotations and
(semantically inert) ``alloc``/``copy`` statements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lmad import IndexFn, antiunify_ixfns
from repro.symbolic import Prover, SymExpr

from repro.ir import ast as A
from repro.ir.types import ArrayType, ScalarType
from repro.mem.memir import MEM_TYPE, MemBinding, clone_fun, param_mem_name


class _Introducer:
    def __init__(self, fun: A.Fun):
        self.fun = fun
        self.prover = Prover(fun.build_context())
        self.counter = 0
        # Depth of map-lambda nesting at the current program point.  A
        # fresh array allocated inside a kernel body is thread-private
        # working storage and is placed in the on-chip scratchpad; only
        # host-level allocations default to HBM.
        self.kernel_depth = 0
        # Bindings of every array variable currently in scope.
        self.bindings: Dict[str, MemBinding] = {}
        for p in fun.params:
            if isinstance(p.type, ArrayType):
                self.bindings[p.name] = MemBinding(
                    param_mem_name(p.name), IndexFn.row_major(p.type.shape)
                )

    # ------------------------------------------------------------------
    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}_{self.counter}"

    def placement_space(self) -> str:
        """Default memory space at the current program point."""
        return "scratch" if self.kernel_depth else "hbm"

    def alloc_stmt(
        self, size: SymExpr, dtype: str, space: Optional[str] = None
    ) -> Tuple[A.Let, str]:
        if space is None:
            space = self.placement_space()
        mem = self.fresh("mem")
        stmt = A.Let([A.PatElem(mem, MEM_TYPE)], A.Alloc(size, dtype, space))
        return stmt, mem

    def bind_fresh(
        self, pe: A.PatElem, out: List[A.Let]
    ) -> None:
        """Alloc a block for a fresh array and annotate its pattern element."""
        t = pe.type
        assert isinstance(t, ArrayType)
        space = self.placement_space()
        stmt, mem = self.alloc_stmt(t.size(), t.dtype, space)
        out.append(stmt)
        binding = MemBinding(mem, IndexFn.row_major(t.shape), space)
        pe.mem = binding
        self.bindings[pe.name] = binding

    def bind_view(self, pe: A.PatElem, binding: MemBinding) -> None:
        pe.mem = binding
        self.bindings[pe.name] = binding

    # ------------------------------------------------------------------
    def process_block(self, block: A.Block) -> None:
        new_stmts: List[A.Let] = []
        for stmt in block.stmts:
            self.process_stmt(stmt, new_stmts)
            new_stmts.append(stmt)
        block.stmts = new_stmts

    def process_stmt(self, stmt: A.Let, out: List[A.Let]) -> None:
        exp = stmt.exp
        # --- fresh-array constructors -------------------------------
        if isinstance(exp, (A.Iota, A.Scratch, A.Replicate, A.Copy, A.Concat)):
            self.bind_fresh(stmt.pattern[0], out)
            return
        # --- change-of-layout ---------------------------------------
        if isinstance(exp, A.VarRef):
            pe = stmt.pattern[0]
            if pe.is_array():
                self.bind_view(pe, self.bindings[exp.name])
            return
        if isinstance(exp, A.SliceT):
            src = self.bindings[exp.src]
            self.bind_view(
                stmt.pattern[0], src.with_ixfn(src.ixfn.slice_triplets(exp.triplets))
            )
            return
        if isinstance(exp, A.LmadSlice):
            src = self.bindings[exp.src]
            self.bind_view(
                stmt.pattern[0], src.with_ixfn(src.ixfn.lmad_slice(exp.lmad))
            )
            return
        if isinstance(exp, A.Rearrange):
            src = self.bindings[exp.src]
            self.bind_view(
                stmt.pattern[0], src.with_ixfn(src.ixfn.permute(exp.perm))
            )
            return
        if isinstance(exp, A.Reshape):
            src = self.bindings[exp.src]
            self.bind_view(
                stmt.pattern[0],
                src.with_ixfn(src.ixfn.reshape(exp.shape, self.prover)),
            )
            return
        if isinstance(exp, A.Reverse):
            src = self.bindings[exp.src]
            self.bind_view(
                stmt.pattern[0], src.with_ixfn(src.ixfn.reverse(exp.dim))
            )
            return
        # --- updates: result lives where the consumed source lived ---
        if isinstance(exp, A.Update):
            src = self.bindings[exp.src]
            self.bind_view(stmt.pattern[0], src)
            return
        # --- compound statements -------------------------------------
        if isinstance(exp, A.Map):
            self.kernel_depth += 1
            try:
                self.process_block(exp.lam.body)
            finally:
                self.kernel_depth -= 1
            for pe in stmt.pattern:
                if pe.is_array():
                    self.bind_fresh(pe, out)
            return
        if isinstance(exp, A.If):
            self.process_if(stmt, exp)
            return
        if isinstance(exp, A.Loop):
            self.process_loop(stmt, exp, out)
            return
        # Scalars (BinOp, UnOp, Lit, ScalarE, Index, Reduce, ArgMin, Alloc):
        # no memory annotations.

    # ------------------------------------------------------------------
    # if: anti-unification with existential memory
    # ------------------------------------------------------------------
    def process_if(self, stmt: A.Let, exp: A.If) -> None:
        saved = dict(self.bindings)
        self.process_block(exp.then_block)
        then_bindings = {
            r: self.bindings.get(r) for r in exp.then_block.result
        }
        self.bindings = dict(saved)
        self.process_block(exp.else_block)
        else_bindings = {
            r: self.bindings.get(r) for r in exp.else_block.result
        }
        self.bindings = dict(saved)

        extra_pat: List[A.PatElem] = []
        extra_then: List[str] = []
        extra_else: List[str] = []

        for k, pe in enumerate(list(stmt.pattern)):
            if not pe.is_array():
                continue
            tres = exp.then_block.result[k]
            eres = exp.else_block.result[k]
            b1 = then_bindings[tres]
            b2 = else_bindings[eres]
            assert b1 is not None and b2 is not None

            if b1.ixfn == b2.ixfn:
                gen_ixfn, bindings = b1.ixfn, ()
            else:
                prefix = self.fresh("ext") + "_"
                au = antiunify_ixfns(b1.ixfn, b2.ixfn, prefix=prefix)
                if au is None:
                    # Fallback: normalize both branches with copies.
                    b1 = self._copy_result(exp.then_block, k, pe.type)
                    b2 = self._copy_result(exp.else_block, k, pe.type)
                    tres = exp.then_block.result[k]
                    eres = exp.else_block.result[k]
                    gen_ixfn, bindings = b1.ixfn, ()
                else:
                    gen_ixfn, bindings = au.ixfn, au.bindings

            if b1.mem == b2.mem and not bindings:
                self.bind_view(pe, b1)
                continue

            # Existential memory + scalars returned by each branch.
            em = self.fresh("emem")
            extra_pat.append(A.PatElem(em, MEM_TYPE))
            extra_then.append(b1.mem)
            extra_else.append(b2.mem)
            for name, tval, eval_ in bindings:
                extra_pat.append(A.PatElem(name, ScalarType("i64")))
                tn = self._bind_scalar(exp.then_block, tval)
                en = self._bind_scalar(exp.else_block, eval_)
                extra_then.append(tn)
                extra_else.append(en)
            self.bind_view(pe, MemBinding(em, gen_ixfn))

        if extra_pat:
            stmt.pattern.extend(extra_pat)
            exp.then_block.result = exp.then_block.result + tuple(extra_then)
            exp.else_block.result = exp.else_block.result + tuple(extra_else)

    def _bind_scalar(self, block: A.Block, value: SymExpr) -> str:
        name = self.fresh("exv")
        block.stmts.append(
            A.Let([A.PatElem(name, ScalarType("i64"))], A.ScalarE(value))
        )
        return name

    def _copy_result(
        self, block: A.Block, k: int, t: ArrayType
    ) -> MemBinding:
        """Replace result position k with a fresh row-major copy."""
        old = block.result[k]
        space = self.placement_space()
        stmt_alloc, mem = self.alloc_stmt(t.size(), t.dtype, space)
        new_name = self.fresh(old + "_cp")
        pe = A.PatElem(new_name, ArrayType(t.dtype, t.shape, unique=True))
        binding = MemBinding(mem, IndexFn.row_major(t.shape), space)
        pe.mem = binding
        block.stmts.append(stmt_alloc)
        block.stmts.append(A.Let([pe], A.Copy(old)))
        res = list(block.result)
        res[k] = new_name
        block.result = tuple(res)
        self.bindings[new_name] = binding
        return binding

    # ------------------------------------------------------------------
    # loop: existential memory per carried array, normalized layouts
    # ------------------------------------------------------------------
    def process_loop(self, stmt: A.Let, exp: A.Loop, out: List[A.Let]) -> None:
        # Normalize initializers to whole-buffer row-major arrays.
        new_carried = []
        for prm, init in exp.carried:
            if isinstance(prm.type, ArrayType):
                b = self.bindings[init]
                if not b.ixfn.is_direct(self.prover):
                    space = self.placement_space()
                    stmt_alloc, mem = self.alloc_stmt(
                        prm.type.size(), prm.type.dtype, space
                    )
                    out.append(stmt_alloc)
                    cp = self.fresh(init + "_cp")
                    pe = A.PatElem(
                        cp, ArrayType(prm.type.dtype, prm.type.shape, True)
                    )
                    binding = MemBinding(
                        mem, IndexFn.row_major(prm.type.shape), space
                    )
                    pe.mem = binding
                    out.append(A.Let([pe], A.Copy(init)))
                    self.bindings[cp] = binding
                    init = cp
            new_carried.append((prm, init))
        object.__setattr__(exp, "carried", tuple(new_carried))

        # Bind params to existential memory, row-major.
        param_bindings: Dict[str, MemBinding] = {}
        saved = dict(self.bindings)
        for prm, _ in exp.carried:
            if isinstance(prm.type, ArrayType):
                pm = self.fresh("lmem")
                binding = MemBinding(pm, IndexFn.row_major(prm.type.shape))
                param_bindings[prm.name] = binding
                self.bindings[prm.name] = binding

        self.process_block(exp.body)

        # Normalize body results to whole-buffer row-major arrays.
        for k, (prm, _) in enumerate(exp.carried):
            if not isinstance(prm.type, ArrayType):
                continue
            res = exp.body.result[k]
            b = self.bindings.get(res)
            assert b is not None
            if not b.ixfn.is_direct(self.prover):
                self._copy_result(exp.body, k, prm.type)

        # Record param bindings on the body for downstream passes/executor.
        exp.body.param_bindings = param_bindings  # type: ignore[attr-defined]

        self.bindings = saved
        # Loop results: existential memory, row-major.
        for k, pe in enumerate(stmt.pattern):
            if pe.is_array():
                rm = self.fresh("rmem")
                assert isinstance(pe.type, ArrayType)
                self.bind_view(
                    pe, MemBinding(rm, IndexFn.row_major(pe.type.shape))
                )


def introduce_memory(fun: A.Fun, in_place: bool = False) -> A.Fun:
    """Annotate ``fun`` with memory; returns a (deep-copied) annotated Fun."""
    target = fun if in_place else clone_fun(fun)
    _Introducer(target).process_block(target.body)
    return target


def refresh_derived_bindings(fun: A.Fun) -> int:
    """Recompute bindings of pure views and update results from their sources.

    View bindings (slices, rearrange, reshape, reverse, aliases) and
    ``Update`` result bindings are *derived* from their source's binding.
    When the short-circuiting pass re-homes a source (e.g. a loop parameter
    into destination memory), every derived binding must follow; this pass
    recomputes them all, cascading through chains.  Returns the number of
    bindings that changed.
    """
    prover = Prover(fun.build_context())
    bindings: Dict[str, MemBinding] = {}
    for p in fun.params:
        if isinstance(p.type, ArrayType):
            bindings[p.name] = MemBinding(
                param_mem_name(p.name), IndexFn.row_major(p.type.shape)
            )
    changed = 0

    def derive(exp: A.Exp, src: MemBinding) -> MemBinding:
        if isinstance(exp, (A.VarRef, A.Update)):
            return src
        if isinstance(exp, A.SliceT):
            return src.with_ixfn(src.ixfn.slice_triplets(exp.triplets))
        if isinstance(exp, A.LmadSlice):
            return src.with_ixfn(src.ixfn.lmad_slice(exp.lmad))
        if isinstance(exp, A.Rearrange):
            return src.with_ixfn(src.ixfn.permute(exp.perm))
        if isinstance(exp, A.Reshape):
            return src.with_ixfn(src.ixfn.reshape(exp.shape, prover))
        assert isinstance(exp, A.Reverse)
        return src.with_ixfn(src.ixfn.reverse(exp.dim))

    def walk(block: A.Block) -> None:
        nonlocal changed
        for stmt in block.stmts:
            exp = stmt.exp
            if isinstance(exp, A.Loop):
                pb = getattr(exp.body, "param_bindings", {})
                bindings.update(pb)
            for blk in A.sub_blocks(exp):
                walk(blk)
            if isinstance(
                exp,
                (A.VarRef, A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse, A.Update),
            ):
                src_name = exp.name if isinstance(exp, A.VarRef) else exp.src
                pe = stmt.pattern[0]
                if pe.is_array() and src_name in bindings and pe.mem is not None:
                    new = derive(exp, bindings[src_name])
                    if new != pe.mem:
                        pe.mem = new
                        changed += 1
            for pe in stmt.pattern:
                if pe.is_array() and pe.mem is not None:
                    bindings[pe.name] = pe.mem

    walk(fun.body)
    return changed
