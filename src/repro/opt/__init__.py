"""The array short-circuiting optimization (paper section V).

At every *circuit point* -- ``let xss[W] = b_lu``, ``let x = concat a b_lu``,
or the implicit per-thread result write of a mapnest -- the pass tries to
construct the lastly-used array ``b`` (and every alias of it) directly in
the destination memory block, so the copy becomes a no-op.

The analysis is bottom-up: from the circuit point towards the creation of
``b``'s fresh array, maintaining two summaries of memory locations as
unions of LMADs:

* ``U_xss`` -- uses (reads and writes) of the destination memory between
  the current statement and the circuit point;
* ``W_bs`` -- writes performed through the rebased candidate.

Every write through the candidate must be provably disjoint from every
later use of the destination (checked by the LMAD non-overlap test of
:mod:`repro.lmad.overlap`); change-of-layout chains are rebased through
operation inverses; ``if``/``loop`` definitions recurse into the bodies
with the cross-iteration conditions of paper section V-B; transitive
chaining (fig. 6a) falls out of running the pass to a fixpoint.
"""

from repro.opt.summaries import AccessSet, StmtAccess
from repro.opt.shortcircuit import ShortCircuitStats, short_circuit_fun
from repro.opt.fuse import FuseStats, fuse_fun

__all__ = [
    "AccessSet",
    "StmtAccess",
    "ShortCircuitStats",
    "short_circuit_fun",
    "FuseStats",
    "fuse_fun",
]
