"""Rebasing index functions through change-of-layout chains (section V-A).

Two directions arise while walking from a circuit point up to the fresh
array's creation:

* **forward** (``cs = op(bs)`` where ``bs`` is the candidate): the rebased
  index function of ``cs`` is simply ``op`` applied to the candidate's
  rebased function -- always possible.
* **backward** (``bs = op(as)`` where ``bs`` is the candidate and ``as`` is
  the fresh array): we must solve ``F = op . ixfn_as`` for ``ixfn_as``,
  which requires ``op`` to be *invertible* -- permutations, reversals and
  reshapes are; slices are not (paper: a dense slice cannot hold the 2n
  elements of its every-other-element source).

Index-function *translation* substitutes scalar definitions (the compiler's
symbol table of simple arithmetic bindings) to a fixpoint so that a rebased
index function only references variables in scope at the definition point
it is being moved to (paper section V-A-b).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from repro.lmad import IndexFn
from repro.lmad.lmad import Lmad, LmadDim
from repro.symbolic import Prover, SymExpr, sym

from repro.ir import ast as A


def inverse_rebase(
    exp: A.Exp, rebased: IndexFn, src_shape, prover: Prover
) -> Optional[IndexFn]:
    """Given ``candidate = exp(src)`` and the candidate's rebased index
    function, compute the index function to assign to ``src``.

    Returns ``None`` for non-invertible operations (slices), in which case
    the whole candidate fails (conservatively keeping the copy).
    """
    if isinstance(exp, A.VarRef):
        return rebased
    if isinstance(exp, A.Rearrange):
        inv = [0] * len(exp.perm)
        for new_dim, src_dim in enumerate(exp.perm):
            inv[src_dim] = new_dim
        return rebased.permute(inv)
    if isinstance(exp, A.Reverse):
        return rebased.reverse(exp.dim)
    if isinstance(exp, A.Reshape):
        # Reshape is a bijective row-major re-indexing; its inverse is the
        # reshape back to the source shape.
        return rebased.reshape(list(src_shape), prover)
    # SliceT / LmadSlice: not surjective, not invertible.
    return None


def widened_slice_inverse(
    exp: A.Exp, rebased: IndexFn, src_shape, prover: Prover
) -> Optional[Tuple[IndexFn, Tuple[SymExpr, ...], Tuple[SymExpr, ...]]]:
    """Widened inverse of a unit-step triplet slice (polyhedral tier).

    ``candidate = src[s1:c1:1, ...]`` is not invertible, but when every
    step is provably 1 the slice's destination footprint is a contiguous
    sub-box of a *widened* layout for ``src``: keep the candidate's
    strides, pull the offset back by ``sum(s_k * stride_k)``, and extend
    each extent to the full source shape.  The widened layout writes
    ``src`` elements outside the slice box to addresses the slice never
    claimed, so the caller must prove that leftover region (see
    :func:`repro.isl.bridge.slice_box_difference`) is not otherwise used.

    Steps > 1 are rejected: the leftover of a strided slice is not a
    union of box faces, so the contiguous difference would under-count.

    Returns ``(widened_ixfn, starts, counts)`` or ``None``.
    """
    if not isinstance(exp, A.SliceT):
        return None
    single = rebased.as_single()
    if single is None:
        return None
    trips = exp.triplets
    if len(trips) != len(single.dims) or len(trips) != len(src_shape):
        return None
    if not all(prover.eq(step, sym(1)) for _, _, step in trips):
        return None
    offset = single.offset
    dims = []
    for (start, _, _), d, extent in zip(trips, single.dims, src_shape):
        offset = offset - sym(start) * d.stride
        dims.append(LmadDim(sym(extent), d.stride))
    widened = IndexFn((Lmad(offset, tuple(dims)),))
    starts = tuple(sym(t[0]) for t in trips)
    counts = tuple(sym(t[1]) for t in trips)
    return widened, starts, counts


def translate_ixfn(
    ixfn: IndexFn,
    available: Set[str],
    symtab: Mapping[str, SymExpr],
    max_rounds: int = 16,
) -> Optional[IndexFn]:
    """Rewrite ``ixfn`` to only use variables in ``available``.

    Substitutes symbol-table definitions (bindings of integral variables to
    simple arithmetic, recorded from ``ScalarE`` statements) to a fixpoint.
    Returns ``None`` when some variable cannot be eliminated -- the
    candidate then fails (it would reference a variable defined after the
    point the index function is being installed at).
    """
    current = ixfn
    for _ in range(max_rounds):
        missing = {v for v in current.free_vars() if v not in available}
        if not missing:
            return current
        subst: Dict[str, SymExpr] = {}
        for v in missing:
            if v in symtab:
                subst[v] = symtab[v]
        if not subst:
            return None
        current = current.substitute(subst)
    return None
